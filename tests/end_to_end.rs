//! Cross-crate integration tests: every algorithm, every runtime, one
//! graph suite, validated against single-threaded references.

use kimbap::engine::Engine;
use kimbap::prelude::*;
use kimbap_algos::msf::{merge_forest, msf};
use kimbap_algos::{
    cc, compose_labels, leiden, louvain, merge_master_values, mis, refcheck, LouvainConfig,
    NpmBuilder,
};
use kimbap_baselines::{galois, gluon, mckv::McBuilder, vite};
use kimbap_compiler::{compile, programs, OptLevel};

fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("road", gen::grid_road(12, 12, 1)),
        ("social", gen::rmat(8, 6, 2)),
        ("sparse", gen::erdos_renyi(150, 200, 3)),
    ]
}

#[test]
fn all_cc_algorithms_and_runtimes_agree() {
    for (name, g) in graphs() {
        let expected = refcheck::connected_components(&g);
        for hosts in [1, 3] {
            let parts = partition(&g, Policy::CartesianVertexCut, hosts);
            let b = NpmBuilder::default();
            for (algo_name, labels) in [
                (
                    "sv",
                    Cluster::with_threads(hosts, 2)
                        .run(|ctx| cc::cc_sv(&parts[ctx.host()], ctx, &b)),
                ),
                (
                    "lp",
                    Cluster::with_threads(hosts, 2)
                        .run(|ctx| cc::cc_lp(&parts[ctx.host()], ctx, &b)),
                ),
                (
                    "sclp",
                    Cluster::with_threads(hosts, 2)
                        .run(|ctx| cc::cc_sclp(&parts[ctx.host()], ctx, &b)),
                ),
            ] {
                assert_eq!(
                    merge_master_values(g.num_nodes(), labels),
                    expected,
                    "{algo_name} on {name} with {hosts} hosts"
                );
            }
            // Gluon baseline.
            let gl = Cluster::with_threads(hosts, 2).run(|ctx| gluon::cc_lp(&parts[ctx.host()], ctx));
            assert_eq!(merge_master_values(g.num_nodes(), gl), expected, "gluon {name}");
        }
        // Galois shared-memory.
        assert_eq!(galois::cc_lp(&g, 4), expected, "galois lp {name}");
        assert_eq!(galois::cc_sv(&g, 4), expected, "galois sv {name}");
    }
}

#[test]
fn npm_variants_and_mc_agree_on_cc_sv() {
    let g = gen::rmat(7, 4, 5);
    let expected = refcheck::connected_components(&g);
    let hosts = 3;
    let parts = partition(&g, Policy::EdgeCutBlocked, hosts);
    for variant in [Variant::SgrOnly, Variant::SgrCf, Variant::SgrCfGar] {
        let b = NpmBuilder::new(variant);
        let labels = Cluster::with_threads(hosts, 2)
            .run(|ctx| cc::cc_sv(&parts[ctx.host()], ctx, &b));
        assert_eq!(
            merge_master_values(g.num_nodes(), labels),
            expected,
            "variant {variant}"
        );
    }
    let mc = McBuilder::new(hosts);
    let labels =
        Cluster::with_threads(hosts, 2).run(|ctx| cc::cc_sv(&parts[ctx.host()], ctx, &mc));
    assert_eq!(merge_master_values(g.num_nodes(), labels), expected, "MC");
}

#[test]
fn msf_agrees_across_runtimes() {
    let g = gen::with_random_weights(&gen::rmat(7, 4, 8), 300, 5);
    let expected_weight = refcheck::msf_weight(&g);
    let expected_count = refcheck::msf_edge_count(&g);

    let parts = partition(&g, Policy::CartesianVertexCut, 3);
    let b = NpmBuilder::default();
    let per_host = Cluster::with_threads(3, 2).run(|ctx| msf(&parts[ctx.host()], ctx, &b));
    let (edges, weight) = merge_forest(per_host);
    assert_eq!((edges.len(), weight), (expected_count, expected_weight));

    let (ga_edges, ga_weight) = galois::msf(&g, 4);
    assert_eq!((ga_edges.len(), ga_weight), (expected_count, expected_weight));
}

#[test]
fn mis_valid_on_all_runtimes() {
    let g = gen::rmat(8, 4, 9);
    let parts = partition(&g, Policy::CartesianVertexCut, 2);
    let b = NpmBuilder::default();
    let set = merge_master_values(
        g.num_nodes(),
        Cluster::with_threads(2, 2).run(|ctx| mis(&parts[ctx.host()], ctx, &b)),
    );
    refcheck::check_mis(&g, &set).unwrap();
    // The shared-memory Galois result is also valid (possibly different —
    // it is asynchronous).
    refcheck::check_mis(&g, &galois::mis(&g, 4)).unwrap();
}

#[test]
fn community_detection_quality_chain() {
    // LV and LD (Kimbap), Vite, and Galois all report real modularity on
    // the same graph, and the distributed ones agree with the reference
    // modularity of their own labels.
    let g = gen::rmat(8, 8, 11);
    let hosts = 2;
    let parts = partition(&g, Policy::EdgeCutBlocked, hosts);
    let b = NpmBuilder::default();
    let cfg = LouvainConfig::default();

    let lv = Cluster::with_threads(hosts, 2)
        .run(|ctx| louvain(&parts[ctx.host()], ctx, &b, &cfg));
    let lv_labels = compose_labels(g.num_nodes(), &lv);
    assert!((lv[0].modularity - refcheck::modularity(&g, &lv_labels)).abs() < 1e-9);
    assert!(lv[0].modularity > 0.0);

    let ld = Cluster::with_threads(hosts, 2)
        .run(|ctx| leiden(&parts[ctx.host()], ctx, &b, &cfg));
    let ld_labels = compose_labels(g.num_nodes(), &ld);
    assert!((ld[0].modularity - refcheck::modularity(&g, &ld_labels)).abs() < 1e-9);

    let v = Cluster::with_threads(hosts, 2).run(|ctx| {
        vite::louvain(&parts[ctx.host()], ctx, &vite::ViteConfig::default())
    });
    assert!(v[0].modularity > 0.0);

    let (_, ga_q) = galois::louvain(&g, 4, 50);
    assert!(ga_q > 0.0);
}

#[test]
fn compiled_plans_match_native_algorithms() {
    let g = gen::rmat(7, 4, 13);
    let hosts = 2;
    let parts = partition(&g, Policy::EdgeCutBlocked, hosts);
    let b = NpmBuilder::default();

    for (prog, native) in [
        (programs::cc_sv(), {
            let labels = Cluster::with_threads(hosts, 2)
                .run(|ctx| cc::cc_sv(&parts[ctx.host()], ctx, &b));
            merge_master_values(g.num_nodes(), labels)
        }),
        (programs::cc_lp(), {
            let labels = Cluster::with_threads(hosts, 2)
                .run(|ctx| cc::cc_lp(&parts[ctx.host()], ctx, &b));
            merge_master_values(g.num_nodes(), labels)
        }),
    ] {
        for opt in [OptLevel::Full, OptLevel::None] {
            let plan = compile(&prog, opt);
            let outs = Cluster::with_threads(hosts, 2)
                .run(|ctx| Engine::new(&parts[ctx.host()], ctx, &plan).run(ctx));
            let mut labels = vec![0u64; g.num_nodes()];
            for o in &outs {
                for &(gid, v) in &o.map_values[0] {
                    labels[gid as usize] = v;
                }
            }
            assert_eq!(labels, native, "{} at {opt:?}", prog.name);
        }
    }
}

#[test]
fn partitioning_policies_do_not_change_results() {
    let g = gen::rmat(7, 4, 17);
    let expected = refcheck::connected_components(&g);
    for policy in [
        Policy::EdgeCutBlocked,
        Policy::EdgeCutIncoming,
        Policy::EdgeCutHashed,
        Policy::CartesianVertexCut,
    ] {
        let parts = partition(&g, policy, 4);
        let b = NpmBuilder::default();
        let labels = Cluster::with_threads(4, 1)
            .run(|ctx| cc::cc_sv(&parts[ctx.host()], ctx, &b));
        assert_eq!(
            merge_master_values(g.num_nodes(), labels),
            expected,
            "policy {policy}"
        );
    }
}
