//! Umbrella crate for the Kimbap reproduction workspace: hosts the
//! cross-crate integration tests in `tests/` and the runnable examples in
//! `examples/`. Re-exports nothing; depend on the member crates directly.
