//! Serve-vs-serial differential suite: a batch of jobs submitted
//! concurrently through the serve scheduler must produce byte-identical
//! per-job outputs to the same jobs run serially (the `kimbap run`
//! execution path), across algorithms (cc-lp, louvain, mis, plus the
//! engine-run cc-sv) and local backends (in-proc and the deterministic
//! simulation). Also pins the agreed-schedule ordering rules and the
//! cache-hit accounting the scheduler reports through `HostStats`.

mod common;

use common::HOSTS;
use kimbap::serve::{self, Algo, HostServer, JobReport, JobSpec, JobStatus};
use kimbap_comm::{Cluster, HostStats};
use kimbap_dist::{partition, DistGraph, Policy};
use kimbap_graph::{gen, Graph};
use std::time::Duration;

fn graph() -> Graph {
    gen::rmat(7, 4, 21)
}

/// The resident partition every serve test shares: edge-cut blocked, the
/// one policy all algorithms accept, identical for the scheduled runs
/// and their serial baselines so partition-dependent outputs (louvain's
/// merge order) are directly comparable.
fn resident_parts(g: &Graph) -> Vec<DistGraph> {
    partition(g, Policy::EdgeCutBlocked, HOSTS)
}

/// The two local backends the differential runs on. The sim cluster is
/// seeded, so its interleavings differ from in-proc while staying
/// reproducible.
fn backends() -> [(&'static str, Cluster); 2] {
    [
        ("inproc", Cluster::with_threads(HOSTS, 2)),
        ("sim", Cluster::with_threads(HOSTS, 1).sim(0x5e44)),
    ]
}

/// Serves one batch (fault-free) and returns per-host reports and stats.
fn serve_batch_on(
    cluster: &Cluster,
    parts: &[DistGraph],
    queues: &[Vec<JobSpec>],
) -> (Vec<Vec<JobReport>>, Vec<HostStats>) {
    let results = cluster.run(|ctx| {
        let mut server = HostServer::new(16);
        let reports = server.serve_batch(ctx, &parts[ctx.host()], &queues[ctx.host()]);
        (reports, ctx.stats())
    });
    results.into_iter().unzip()
}

/// Asserts every host returned the same schedule and statuses, then
/// merges each job's per-host outputs into its canonical fingerprint.
fn merged_jobs(n: usize, per_host: &[Vec<JobReport>]) -> Vec<(JobReport, Vec<u64>)> {
    let first = &per_host[0];
    for (h, reports) in per_host.iter().enumerate() {
        assert_eq!(reports.len(), first.len(), "host {h} schedule length");
        for (k, (r, r0)) in reports.iter().zip(first).enumerate() {
            assert_eq!(r.job, r0.job, "host {h} disagrees on job {k}");
            assert_eq!(r.status, r0.status, "host {h} disagrees on job {k} status");
        }
    }
    (0..first.len())
        .map(|k| {
            let outs = per_host
                .iter()
                .map(|r| r[k].output.clone().expect("fault-free jobs complete"))
                .collect();
            let fp = serve::merge_job_outputs(first[k].job.spec.algo, n, outs);
            (first[k].clone(), fp)
        })
        .collect()
}

/// Round-robins `jobs` across the hosts' admission queues.
fn round_robin(jobs: &[JobSpec]) -> Vec<Vec<JobSpec>> {
    let mut queues = vec![Vec::new(); HOSTS];
    for (i, &spec) in jobs.iter().enumerate() {
        queues[i % HOSTS].push(spec);
    }
    queues
}

/// Five submissions of one algorithm over two distinct param tags, on
/// both backends: every job's merged output must equal the serial
/// reference, and the three repeated queries must be served from the
/// cache (2 computed + 3 cached on every host).
#[test]
fn repeated_jobs_match_serial_and_hit_cache() {
    let g = graph();
    let n = g.num_nodes();
    let parts = resident_parts(&g);
    for algo in [Algo::CcLp, Algo::Louvain, Algo::Mis] {
        let reference = serve::serial_reference(n, &parts, &Cluster::with_threads(HOSTS, 2), algo);
        let jobs: Vec<JobSpec> = [0u64, 1, 0, 1, 0]
            .into_iter()
            .map(|params| JobSpec {
                params,
                ..JobSpec::new(algo)
            })
            .collect();
        for (name, cluster) in backends() {
            let (per_host, stats) = serve_batch_on(&cluster, &parts, &round_robin(&jobs));
            let merged = merged_jobs(n, &per_host);
            assert_eq!(merged.len(), 5);
            let mut cached = 0;
            for (k, (report, fp)) in merged.iter().enumerate() {
                assert_eq!(
                    fp,
                    &reference,
                    "{} job {k} diverged from serial on {name}",
                    algo.name()
                );
                if report.status == (JobStatus::Completed { cached: true }) {
                    cached += 1;
                }
            }
            assert_eq!(cached, 3, "{} on {name}: repeats must be cached", algo.name());
            for (h, s) in stats.iter().enumerate() {
                assert_eq!(
                    (s.cache_hits, s.cache_misses),
                    (3, 2),
                    "{} on {name}: host {h} cache counters",
                    algo.name()
                );
            }
        }
    }
}

/// A mixed batch — every algorithm family at once, including the
/// engine-run cc-sv, with a duplicate mid-stream — must give each job
/// exactly its own serial output on both backends.
#[test]
fn mixed_batch_matches_serial_per_job() {
    let g = graph();
    let n = g.num_nodes();
    let parts = resident_parts(&g);
    let jobs = vec![
        JobSpec::new(Algo::CcLp),
        JobSpec::new(Algo::CcSv),
        JobSpec::new(Algo::Mis),
        JobSpec::new(Algo::Louvain),
        JobSpec::new(Algo::CcLp), // duplicate: must be served from cache
    ];
    let serial = Cluster::with_threads(HOSTS, 2);
    for (name, cluster) in backends() {
        let (per_host, stats) = serve_batch_on(&cluster, &parts, &round_robin(&jobs));
        let merged = merged_jobs(n, &per_host);
        assert_eq!(merged.len(), jobs.len());
        for (k, (report, fp)) in merged.iter().enumerate() {
            let reference = serve::serial_reference(n, &parts, &serial, report.job.spec.algo);
            assert_eq!(
                fp,
                &reference,
                "job {k} ({}) diverged from serial on {name}",
                report.job.spec.algo.name()
            );
        }
        let hits: u64 = stats.iter().map(|s| s.cache_hits).sum();
        assert_eq!(hits, HOSTS as u64, "one cached job, hit on every host");
    }
}

/// The agreed schedule follows (priority desc, tightest deadline first,
/// submitter, seq) — identically on both backends — regardless of which
/// host submitted what.
#[test]
fn schedule_order_is_canonical_across_backends() {
    let g = graph();
    let parts = resident_parts(&g);
    // Host 0 submits a low-priority job first; host 2 a high-priority
    // one; host 1 two mid-priority jobs with different deadlines.
    let queues = vec![
        vec![JobSpec::new(Algo::CcLp)],
        vec![
            JobSpec {
                priority: 1,
                deadline: Some(Duration::from_secs(60)),
                ..JobSpec::new(Algo::Mis)
            },
            JobSpec {
                priority: 1,
                deadline: Some(Duration::from_secs(1)),
                params: 7,
                ..JobSpec::new(Algo::CcLp)
            },
        ],
        vec![JobSpec {
            priority: 5,
            ..JobSpec::new(Algo::Louvain)
        }],
    ];
    for (name, cluster) in backends() {
        let (per_host, _) = serve_batch_on(&cluster, &parts, &queues);
        let order: Vec<(usize, usize)> = per_host[0]
            .iter()
            .map(|r| (r.job.submitter, r.job.seq))
            .collect();
        // priority 5 first; then the two priority-1 jobs, tighter
        // deadline leading; the deadline-less priority-0 job last.
        assert_eq!(
            order,
            vec![(2, 0), (1, 1), (1, 0), (0, 0)],
            "schedule order on {name}"
        );
        for reports in &per_host[1..] {
            let other: Vec<(usize, usize)> =
                reports.iter().map(|r| (r.job.submitter, r.job.seq)).collect();
            assert_eq!(other, order, "hosts disagree on {name}");
        }
    }
}
