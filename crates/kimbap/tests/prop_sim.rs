//! Simulation-backed property tests: under ANY partition policy and ANY
//! randomized fault schedule (drops, duplicates, delays, crashes,
//! stalls), a simulated cc_lp run must either converge to the
//! single-threaded reference labels or surface a communication error
//! (`Timeout` / `PeerDown` / `HostFailure`) — it must never hang and
//! never silently diverge. Failures print the `kimbap sim` command that
//! replays the offending schedule.

mod common;

use common::{comm_rooted, maybe, permanent_loss, HOSTS};
use kimbap::elastic::{join_plan_elastic, run_plan_elastic};
use kimbap::engine::EngineConfig;
use kimbap::simfuzz;
use kimbap_algos::{cc::cc_lp, merge_master_values, refcheck, NpmBuilder};
use kimbap_comm::{Cluster, Deadline, FaultPlan};
use kimbap_compiler::{compile, programs, OptLevel};
use kimbap_dist::{partition, Policy};
use kimbap_graph::gen;
use proptest::prelude::*;
use std::time::Duration;

fn policies() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::EdgeCutBlocked),
        Just(Policy::EdgeCutIncoming),
        Just(Policy::EdgeCutHashed),
        Just(Policy::CartesianVertexCut),
    ]
}

/// Random fault schedules: per-mille frame-noise rates plus optional
/// structured crash and stall faults in the early rounds.
fn fault_plans() -> impl Strategy<Value = FaultPlan> {
    (
        (0u64..=u64::MAX, 0u64..=40, 0u64..=30, 0u64..=50),
        maybe((1usize..HOSTS, 1u64..4)),
        maybe((0usize..HOSTS, 1u64..4, 150u32..450)),
    )
        .prop_map(|((seed, drop, dup, delay), crash, stall)| {
            let mut plan = FaultPlan::new()
                .with_seed(seed)
                .drop_rate(drop as f64 / 1000.0)
                .duplicate_rate(dup as f64 / 1000.0)
                .delay_rate(delay as f64 / 1000.0);
            if let Some((h, r)) = crash {
                plan = plan.crash_host(h, r);
            }
            if let Some((h, r, ms)) = stall {
                plan = plan.stall_host(h, r, ms);
            }
            plan
        })
}

/// Runs cc_lp on the simulation backend and classifies the outcome:
/// `Ok(Some(labels))` converged, `Ok(None)` surfaced a communication
/// failure, `Err` a non-communication panic (a real bug).
fn sim_cc_lp(
    g: &kimbap_graph::Graph,
    policy: Policy,
    plan: FaultPlan,
    sim_seed: u64,
) -> Result<Option<Vec<u64>>, String> {
    let parts = partition(g, policy, HOSTS);
    let b = NpmBuilder::default();
    let cluster = Cluster::with_threads(HOSTS, 1)
        .sim(sim_seed)
        .with_transport_config(simfuzz::sim_transport_config());
    let res = cluster.try_run_with_faults(plan, |ctx| {
        ctx.run_recovering(|ctx| cc_lp(&parts[ctx.host()], ctx, &b))
    });
    let mut vals = Vec::with_capacity(HOSTS);
    for r in res {
        match r {
            Ok(v) => vals.push(v),
            Err(e) if comm_rooted(&e.message) => {
                return Ok(None);
            }
            Err(e) => return Err(format!("non-communication panic: {e}")),
        }
    }
    Ok(Some(merge_master_values(g.num_nodes(), vals)))
}

/// The elastic variant: permanent host loss is survivable, so the killed
/// host's own abort is an expected casualty and the survivors' merged
/// labels are the outcome. `Ok(None)` means a host surfaced a clean
/// communication failure (`MembershipLost` when the shrink could not be
/// agreed, or a plain timeout) instead of converging.
fn sim_cc_lp_elastic(
    g: &kimbap_graph::Graph,
    plan: FaultPlan,
    sim_seed: u64,
) -> Result<Option<Vec<u64>>, String> {
    let b = NpmBuilder::default();
    let cluster = Cluster::with_threads(HOSTS, 1)
        .sim(sim_seed)
        .with_transport_config(simfuzz::sim_transport_config());
    let res = cluster.try_run_with_faults(plan, |ctx| {
        ctx.run_elastic(|ctx| {
            let parts = partition(g, Policy::CartesianVertexCut, ctx.num_hosts());
            cc_lp(&parts[ctx.host()], ctx, &b)
        })
    });
    let mut vals = Vec::with_capacity(HOSTS);
    let mut surfaced = false;
    for r in res {
        match r {
            Ok(v) => vals.push(v),
            Err(e) if permanent_loss(&e.message) => {}
            Err(e) if comm_rooted(&e.message) => {
                surfaced = true;
            }
            Err(e) => return Err(format!("non-communication panic: {e}")),
        }
    }
    if surfaced || vals.is_empty() {
        return Ok(None);
    }
    Ok(Some(merge_master_values(g.num_nodes(), vals)))
}

/// The churn variant: the compiled elastic engine with grow armed, on a
/// cluster sized one past the members when the plan carries a latent
/// joiner. Members may shrink past a kill AND admit the joiner in the
/// same run; a joiner that gives up (the members finished first)
/// contributes no masters, which is benign. Outcome classification
/// matches [`sim_cc_lp_elastic`].
fn sim_cc_lp_churn(
    g: &kimbap_graph::Graph,
    plan: FaultPlan,
    sim_seed: u64,
) -> Result<Option<Vec<u64>>, String> {
    let prog = compile(&programs::cc_lp(), OptLevel::Full);
    let capacity = HOSTS + plan.latent_hosts().len();
    let cluster = Cluster::with_threads(capacity, 1)
        .sim(sim_seed)
        .with_transport_config(simfuzz::sim_transport_config());
    let res = cluster.try_run_with_faults(plan, |ctx| {
        let config = EngineConfig {
            allow_grow: true,
            ..EngineConfig::default()
        };
        if ctx.is_member() {
            Some(run_plan_elastic(g, Policy::EdgeCutBlocked, &prog, config, ctx))
        } else {
            join_plan_elastic(
                g,
                Policy::EdgeCutBlocked,
                &prog,
                config,
                ctx,
                &Deadline::after("join", Duration::from_secs(30)),
            )
        }
    });
    let mut vals = Vec::with_capacity(capacity);
    let mut surfaced = false;
    for r in res {
        match r {
            Ok(Some(out)) => vals.push(out.map_values.into_iter().next().unwrap_or_default()),
            Ok(None) => {} // joiner gave up cleanly — no masters to merge
            Err(e) if permanent_loss(&e.message) => {}
            Err(e) if comm_rooted(&e.message) => {
                surfaced = true;
            }
            Err(e) => return Err(format!("non-communication panic: {e}")),
        }
    }
    if surfaced || vals.is_empty() {
        return Ok(None);
    }
    Ok(Some(merge_master_values(g.num_nodes(), vals)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary (policy, fault schedule, scheduler seed, graph): the run
    /// converges to the reference labels or aborts with a surfaced
    /// communication error.
    #[test]
    fn cc_lp_converges_or_surfaces(
        policy in policies(),
        plan in fault_plans(),
        sim_seed in 0u64..=u64::MAX,
        graph_seed in 0u64..64,
    ) {
        let g = gen::rmat(6, 4, graph_seed);
        match sim_cc_lp(&g, policy, plan, sim_seed) {
            Ok(Some(labels)) => {
                prop_assert_eq!(labels, refcheck::connected_components(&g),
                    "converged labels diverged from reference");
            }
            Ok(None) => {} // surfaced cleanly — acceptable under faults
            Err(bug) => panic!("{bug}"),
        }
    }

    /// The CLI fuzz path: everything — graph, fault plan, schedule — is
    /// derived from ONE seed, so a failure here is replayed exactly by
    /// the printed `kimbap sim` command.
    #[test]
    fn cli_fuzz_seed_converges_or_surfaces(seed in 0u64..=u64::MAX) {
        let replay = simfuzz::replay_command("cc-lp", seed, HOSTS, 1, 6, 4, false, false);
        let g = gen::rmat(6, 4, seed);
        let plan = simfuzz::random_fault_plan(seed, HOSTS);
        match sim_cc_lp(&g, Policy::CartesianVertexCut, plan, seed) {
            Ok(Some(labels)) => {
                prop_assert_eq!(labels, refcheck::connected_components(&g),
                    "labels diverged from reference; replay: {}", replay);
            }
            Ok(None) => {}
            Err(bug) => panic!("{bug}; replay: {replay}"),
        }
    }

    /// Permanent loss at an ARBITRARY time: whatever host is killed at
    /// whatever round under whatever schedule, an elastic run either
    /// shrinks past it and converges to the reference labels, or
    /// surfaces a clean membership-lost failure — never a hang, never a
    /// silent divergence, never an unexplained panic.
    #[test]
    fn killed_host_shrinks_and_converges_or_surfaces(
        victim in 1usize..HOSTS,
        round in 1u64..6,
        sim_seed in 0u64..=u64::MAX,
        graph_seed in 0u64..32,
    ) {
        let g = gen::rmat(6, 4, graph_seed);
        let plan = FaultPlan::new().kill_host(victim, round);
        match sim_cc_lp_elastic(&g, plan, sim_seed) {
            Ok(Some(labels)) => {
                prop_assert_eq!(labels, refcheck::connected_components(&g),
                    "survivor labels diverged from reference");
            }
            Ok(None) => {} // surfaced membership loss — acceptable
            Err(bug) => panic!("{bug}"),
        }
    }

    /// The elastic CLI fuzz path: seed-derived kill-bearing plans
    /// (`random_kill_plan`) must shrink-and-converge or surface, and the
    /// printed `kimbap sim --allow-shrink` command replays them exactly.
    #[test]
    fn cli_elastic_fuzz_seed_shrinks_or_surfaces(seed in 0u64..=u64::MAX) {
        let replay = simfuzz::replay_command("cc-lp", seed, HOSTS, 1, 6, 4, true, false);
        let g = gen::rmat(6, 4, seed);
        let plan = simfuzz::random_kill_plan(seed, HOSTS);
        match sim_cc_lp_elastic(&g, plan, seed) {
            Ok(Some(labels)) => {
                prop_assert_eq!(labels, refcheck::connected_components(&g),
                    "survivor labels diverged from reference; replay: {}", replay);
            }
            Ok(None) => {}
            Err(bug) => panic!("{bug}; replay: {replay}"),
        }
    }

    /// The churn CLI fuzz path: seed-derived mixed join/kill plans
    /// (`random_churn_plan`) run the compiled elastic engine through
    /// every membership interleaving — join-only, kill-only, both, or
    /// quiet — and the final merged labels must still equal the
    /// static-membership reference (or the run surfaces a clean
    /// failure). The printed `kimbap sim --allow-shrink --allow-grow`
    /// command replays the schedule exactly.
    #[test]
    fn cli_churn_fuzz_seed_grows_shrinks_or_surfaces(seed in 0u64..=u64::MAX) {
        let replay = simfuzz::replay_command("cc-lp", seed, HOSTS, 1, 6, 4, true, true);
        let g = gen::rmat(6, 4, seed);
        let plan = simfuzz::random_churn_plan(seed, HOSTS);
        match sim_cc_lp_churn(&g, plan, seed) {
            Ok(Some(labels)) => {
                prop_assert_eq!(labels, refcheck::connected_components(&g),
                    "churned labels diverged from reference; replay: {}", replay);
            }
            Ok(None) => {}
            Err(bug) => panic!("{bug}; replay: {replay}"),
        }
    }
}
