//! Determinism of the simulation backend at the whole-system level: a
//! seed fully determines the multi-host schedule, so a seed is a bug
//! report. Same seed, same graph, same fault plan => byte-identical
//! event trace and identical output labels; a different seed perturbs
//! the schedule but never the converged labels.

use kimbap::simfuzz;
use kimbap_algos::{cc::cc_lp, merge_master_values, refcheck, NpmBuilder};
use kimbap_comm::{new_trace_sink, Cluster, FaultPlan, TraceEvent};
use kimbap_dist::{partition, Policy};
use kimbap_graph::gen;

const HOSTS: usize = 3;

/// One full cc_lp run on the simulation backend under `seed`'s derived
/// fault plan; returns the merged labels and the JSONL-serialized trace.
fn traced_run(g: &kimbap_graph::Graph, sim_seed: u64, plan: FaultPlan) -> (Vec<u64>, Vec<String>) {
    let parts = partition(g, Policy::EdgeCutBlocked, HOSTS);
    let b = NpmBuilder::default();
    let sink = new_trace_sink();
    let cluster = Cluster::with_threads(HOSTS, 1)
        .sim(sim_seed)
        .with_transport_config(simfuzz::sim_transport_config())
        .with_trace_sink(sink.clone());
    let per_host = cluster.run_with_faults(plan, |ctx| {
        ctx.run_recovering(|ctx| cc_lp(&parts[ctx.host()], ctx, &b))
    });
    let labels = merge_master_values(g.num_nodes(), per_host);
    let trace = std::mem::take(&mut *sink.lock());
    (labels, trace.iter().map(TraceEvent::to_json).collect())
}

#[test]
fn same_seed_replays_byte_identical_trace_and_labels() {
    let g = gen::rmat(6, 4, 9);
    let seed = 4242;
    let (l1, t1) = traced_run(&g, seed, simfuzz::random_fault_plan(seed, HOSTS));
    let (l2, t2) = traced_run(&g, seed, simfuzz::random_fault_plan(seed, HOSTS));
    assert!(!t1.is_empty(), "trace must be recorded");
    assert_eq!(l1, l2, "same seed must produce identical labels");
    assert_eq!(t1, t2, "same seed must produce a byte-identical trace");
    assert_eq!(
        l1,
        refcheck::connected_components(&g),
        "converged labels must match the reference"
    );
}

/// Louvain's coarse-edge aggregation once leaked `HashMap` iteration
/// order (per-process random) into the wire payloads: labels matched
/// but traces differed across replays. Guard the byte-level claim on
/// the algorithm with the most serialization surface.
#[test]
fn louvain_replays_byte_identical_trace() {
    use kimbap_algos::louvain::{compose_labels, louvain, LouvainConfig};
    let g = gen::rmat(6, 4, 9);
    let run = || {
        let parts = partition(&g, Policy::EdgeCutBlocked, HOSTS);
        let b = NpmBuilder::default();
        let cfg = LouvainConfig::default();
        let sink = new_trace_sink();
        let cluster = Cluster::with_threads(HOSTS, 1)
            .sim(17)
            .with_transport_config(simfuzz::sim_transport_config())
            .with_trace_sink(sink.clone());
        let per_host = cluster.run_with_faults(simfuzz::random_fault_plan(17, HOSTS), |ctx| {
            ctx.run_recovering(|ctx| louvain(&parts[ctx.host()], ctx, &b, &cfg))
        });
        let labels = compose_labels(g.num_nodes(), &per_host);
        let trace = std::mem::take(&mut *sink.lock());
        (labels, trace.iter().map(TraceEvent::to_json).collect::<Vec<_>>())
    };
    let (l1, t1) = run();
    let (l2, t2) = run();
    assert_eq!(l1, l2, "same seed must produce identical community labels");
    assert_eq!(t1, t2, "louvain replay must be byte-identical");
}

/// A live join racing a permanent kill — the gnarliest interleaving the
/// elastic engine supports (the knock can land while the survivors are
/// mid-shrink) — is still a pure function of the seed: two runs replay
/// byte-identical traces and identical labels.
#[test]
fn join_during_recovery_replays_byte_identical_trace() {
    use kimbap::elastic::{join_plan_elastic, run_plan_elastic};
    use kimbap::engine::EngineConfig;
    use kimbap_comm::Deadline;
    use kimbap_compiler::{compile, programs, OptLevel};

    let g = gen::rmat(6, 4, 9);
    let run = || {
        let prog = compile(&programs::cc_lp(), OptLevel::Full);
        // Host 1 dies at round 2 while the spare slot knocks from the
        // very start: join and shrink recovery race by construction.
        let plan = FaultPlan::new().kill_host(1, 2).join_host(HOSTS, 0);
        let sink = new_trace_sink();
        let cluster = Cluster::with_threads(HOSTS + 1, 1)
            .sim(23)
            .with_transport_config(simfuzz::sim_transport_config())
            .with_trace_sink(sink.clone());
        let res = cluster.try_run_with_faults(plan, |ctx| {
            let config = EngineConfig {
                allow_grow: true,
                ..EngineConfig::default()
            };
            if ctx.is_member() {
                Some(run_plan_elastic(&g, Policy::EdgeCutBlocked, &prog, config, ctx))
            } else {
                join_plan_elastic(
                    &g,
                    Policy::EdgeCutBlocked,
                    &prog,
                    config,
                    ctx,
                    &Deadline::after("join", std::time::Duration::from_secs(30)),
                )
            }
        });
        let mut vals = Vec::new();
        for (h, r) in res.into_iter().enumerate() {
            match r {
                Ok(Some(out)) => vals.push(out.map_values.into_iter().next().unwrap_or_default()),
                Ok(None) => {} // joiner gave up cleanly
                Err(e) if e.message.starts_with("permanent host loss") => {
                    assert_eq!(h, 1, "only the planned victim may die");
                }
                Err(e) => panic!("host {h}: {e}"),
            }
        }
        let labels = merge_master_values(g.num_nodes(), vals);
        let trace = std::mem::take(&mut *sink.lock());
        (labels, trace.iter().map(TraceEvent::to_json).collect::<Vec<_>>())
    };
    let (l1, t1) = run();
    let (l2, t2) = run();
    assert_eq!(
        l1,
        refcheck::connected_components(&g),
        "churned labels must match the reference"
    );
    assert_eq!(l1, l2, "same seed must produce identical labels under churn");
    assert_eq!(t1, t2, "join-during-recovery replay must be byte-identical");
}

#[test]
fn different_seed_changes_schedule_but_not_labels() {
    let g = gen::rmat(6, 4, 9);
    let (l1, t1) = traced_run(&g, 1, FaultPlan::new());
    let (l2, t2) = traced_run(&g, 2, FaultPlan::new());
    assert_ne!(t1, t2, "a different seed should reorder the schedule");
    assert_eq!(l1, l2, "the schedule must never change converged labels");
}

#[test]
fn trace_linearizes_fault_verdicts_and_repairs() {
    // A targeted drop plus background drops: the trace must record both
    // the injected faults and the repair traffic they trigger.
    let g = gen::rmat(6, 4, 9);
    let plan = FaultPlan::new().drop_frame(0, 1, 1).with_seed(3).drop_rate(0.03);
    let (labels, trace) = traced_run(&g, 77, plan);
    assert_eq!(labels, refcheck::connected_components(&g));
    let has = |kind: &str| trace.iter().any(|line| line.contains(&format!("\"kind\":\"{kind}\"")));
    for kind in ["schedule", "send", "barrier_arrive", "barrier_complete", "fault_drop", "retx_request"] {
        assert!(has(kind), "trace is missing `{kind}` events");
    }
    // seq must be a total order starting at 0 with no gaps.
    for (i, line) in trace.iter().enumerate() {
        assert!(
            line.contains(&format!("\"seq\":{i},")),
            "trace seq out of order at {i}: {line}"
        );
    }
}
