//! Cache correctness for the serve layer: repeated identical submissions
//! must be answered from the result cache (visible as `cache_hits` in
//! `HostStats`), a graph-epoch bump must invalidate every older entry —
//! a stale result must never be served for the new resident graph — and
//! capacity pressure must surface as eviction counts.

mod common;

use common::HOSTS;
use kimbap::serve::{self, Algo, HostServer, JobSpec};
use kimbap_comm::Cluster;
use kimbap_dist::{partition, DistGraph, Policy};
use kimbap_graph::{gen, Graph};
use proptest::prelude::*;

fn parts_of(g: &Graph) -> Vec<DistGraph> {
    partition(g, Policy::EdgeCutBlocked, HOSTS)
}

fn cluster() -> Cluster {
    Cluster::with_threads(HOSTS, 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any sequence of submissions over a small param space: the first
    /// occurrence of each distinct `(algo, params)` query computes, every
    /// repeat hits the cache, and every job's output equals the serial
    /// reference regardless of where in the sequence it ran.
    #[test]
    fn repeats_hit_cache_and_match_serial(
        params in proptest::collection::vec(0u64..3, 1..8),
        algo_pick in 0usize..3,
        graph_seed in 0u64..16,
    ) {
        let algo = [Algo::CcLp, Algo::Mis, Algo::Louvain][algo_pick];
        let g = gen::rmat(6, 4, graph_seed);
        let n = g.num_nodes();
        let parts = parts_of(&g);
        let reference = serve::serial_reference(n, &parts, &cluster(), algo);
        let jobs: Vec<JobSpec> = params
            .iter()
            .map(|&p| JobSpec { params: p, ..JobSpec::new(algo) })
            .collect();
        let distinct = {
            let mut d: Vec<u64> = params.clone();
            d.sort_unstable();
            d.dedup();
            d.len() as u64
        };
        // All jobs through host 0's queue; every host serves the batch.
        let mut queues = vec![Vec::new(); HOSTS];
        queues[0] = jobs;
        let q = &queues;
        let p = &parts;
        let results = cluster().run(|ctx| {
            let mut server = HostServer::new(16);
            let reports = server.serve_batch(ctx, &p[ctx.host()], &q[ctx.host()]);
            (reports, ctx.stats())
        });
        for (h, (reports, stats)) in results.iter().enumerate() {
            prop_assert_eq!(
                (stats.cache_hits, stats.cache_misses),
                (params.len() as u64 - distinct, distinct),
                "host {} cache counters", h
            );
            for report in reports {
                let out = report.output.clone().expect("fault-free jobs complete");
                prop_assert_eq!(&report.job.spec.algo, &algo);
                // Per-host partials merged below; here just check status
                // consistency: a repeat is cached, a first sight is not.
                let _ = out;
            }
        }
        // Merge each job across hosts and diff against the reference.
        for k in 0..params.len() {
            let outs = results
                .iter()
                .map(|(r, _)| r[k].output.clone().expect("completed"))
                .collect();
            prop_assert_eq!(
                serve::merge_job_outputs(algo, n, outs),
                reference.clone(),
                "job {} diverged", k
            );
        }
    }
}

/// Epoch semantics end to end: the same query served twice at epoch 0
/// hits the cache; after `bump_epoch` plus a resident-graph swap the
/// query recomputes against the NEW graph — the old entry is purged
/// (counted as an eviction) and its stale result is never served.
#[test]
fn epoch_bump_never_serves_stale_results() {
    let g_a = gen::rmat(6, 4, 1);
    let g_b = gen::rmat(6, 4, 2);
    let (n_a, n_b) = (g_a.num_nodes(), g_b.num_nodes());
    let parts_a = parts_of(&g_a);
    let parts_b = parts_of(&g_b);
    let ref_a = serve::serial_reference(n_a, &parts_a, &cluster(), Algo::CcLp);
    let ref_b = serve::serial_reference(n_b, &parts_b, &cluster(), Algo::CcLp);
    assert_ne!(ref_a, ref_b, "distinct graphs must give distinct labels");
    let job = vec![JobSpec::new(Algo::CcLp)];
    let (pa, pb, j) = (&parts_a, &parts_b, &job);
    let results = cluster().run(|ctx| {
        let mut server = HostServer::new(8);
        let queue = if ctx.host() == 0 { j.as_slice() } else { &[] };
        let r1 = server.serve_batch(ctx, &pa[ctx.host()], queue);
        let r2 = server.serve_batch(ctx, &pa[ctx.host()], queue);
        // The resident graph is swapped: epoch must be bumped in
        // lockstep, making every epoch-0 cache entry unreachable.
        server.bump_epoch();
        let r3 = server.serve_batch(ctx, &pb[ctx.host()], queue);
        (r1, r2, r3, ctx.stats())
    });
    let merged = |batch: usize, n: usize| {
        let outs = results
            .iter()
            .map(|(r1, r2, r3, _)| {
                let r = match batch {
                    0 => r1,
                    1 => r2,
                    _ => r3,
                };
                r[0].output.clone().expect("completed")
            })
            .collect();
        serve::merge_job_outputs(Algo::CcLp, n, outs)
    };
    assert_eq!(merged(0, n_a), ref_a, "epoch-0 compute");
    assert_eq!(merged(1, n_a), ref_a, "epoch-0 repeat");
    assert_eq!(
        merged(2, n_b),
        ref_b,
        "post-bump query must be answered from the NEW graph, never the stale cache"
    );
    for (h, (r1, r2, r3, stats)) in results.iter().enumerate() {
        assert!(!r1[0].status.is_cached() && r2[0].status.is_cached());
        assert!(
            !r3[0].status.is_cached(),
            "host {h}: stale epoch-0 result served after bump"
        );
        assert_eq!(stats.cache_hits, 1, "host {h}: only the epoch-0 repeat hits");
        assert_eq!(stats.cache_misses, 2, "host {h}: both epochs compute once");
        assert!(
            stats.cache_evictions >= 1,
            "host {h}: the stale entry's purge must be counted"
        );
    }
}

/// Capacity pressure: a capacity-1 cache thrashed by two alternating
/// queries evicts on every insert past the first and never hits.
#[test]
fn capacity_evictions_are_counted() {
    let g = gen::rmat(6, 4, 3);
    let parts = parts_of(&g);
    let jobs = vec![
        JobSpec { params: 0, ..JobSpec::new(Algo::CcLp) },
        JobSpec { params: 1, ..JobSpec::new(Algo::CcLp) },
        JobSpec { params: 0, ..JobSpec::new(Algo::CcLp) },
    ];
    let (p, j) = (&parts, &jobs);
    let results = cluster().run(|ctx| {
        let mut server = HostServer::new(1);
        let queue = if ctx.host() == 0 { j.as_slice() } else { &[] };
        server.serve_batch(ctx, &p[ctx.host()], queue);
        ctx.stats()
    });
    for (h, stats) in results.iter().enumerate() {
        assert_eq!(stats.cache_hits, 0, "host {h}: capacity 1 cannot hold both");
        assert_eq!(stats.cache_misses, 3, "host {h}");
        assert_eq!(stats.cache_evictions, 2, "host {h}");
    }
}
