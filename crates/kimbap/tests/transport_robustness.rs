//! Cross-backend robustness: the transport abstraction must not change
//! algorithm output, and recovery must behave identically whether hosts
//! are threads with in-memory mailboxes, threads connected over real TCP
//! loopback sockets, or cooperatively scheduled hosts inside the
//! deterministic simulation.
//!
//! Three properties are checked end to end:
//! * the fixed-seed fault matrix (drops, corruption, mid-run crash x
//!   cc_lp, louvain, msf) produces bit-identical output on all three
//!   backends, and the injecting plans actually exercise the repair path
//!   (nonzero retransmission counters);
//! * a hung host is flagged — by the phase deadline or by the heartbeat
//!   failure detector — and checkpoint replay restores the fault-free
//!   answer. Each detector is checked on the simulation backend (where
//!   the stall elapses in virtual time) plus one real backend, so both
//!   real transports stay covered without paying every wall-clock stall
//!   twice.

mod common;

use common::{cc_lp_labels, louvain_result as louvain_labels, msf_forest, HOSTS};
use kimbap::engine::{Engine, EngineConfig};
use kimbap_algos::merge_master_values;
use kimbap_comm::{Cluster, FaultPlan, HeartbeatConfig, TransportConfig};
use kimbap_compiler::{compile, programs, OptLevel};
use kimbap_dist::{partition, Policy};
use kimbap_graph::gen;
use std::time::Duration;

/// Scheduler seed for the simulation backend in the conformance matrix;
/// conformance must hold for any seed, this pins one for reproducibility.
const SIM_SEED: u64 = 0xC0FFEE;

/// The three cluster configurations under test: in-memory mailboxes, TCP
/// loopback sockets, and the deterministic simulation — otherwise
/// identical.
fn backends() -> [(&'static str, Cluster); 3] {
    [
        ("inproc", Cluster::with_threads(HOSTS, 2)),
        ("tcp", Cluster::with_threads(HOSTS, 2).tcp()),
        ("sim", Cluster::with_threads(HOSTS, 2).sim(SIM_SEED)),
    ]
}

/// The same three seeded plans as `fault_injection::fault_matrix_smoke`.
fn matrix_plans() -> [FaultPlan; 3] {
    [
        FaultPlan::new().drop_frame(0, 1, 1).with_seed(1).drop_rate(0.02),
        FaultPlan::new()
            .corrupt_frame(1, 2, 1, 55)
            .with_seed(2)
            .corrupt_rate(0.02),
        FaultPlan::new().crash_host(1, 2),
    ]
}

/// The PR's acceptance matrix: three seeded plans x three algorithms must
/// produce identical output on the in-proc, TCP-loopback, and simulation
/// backends — and the frame-injecting plans must actually exercise the
/// retransmission path on every backend.
#[test]
fn fault_matrix_is_transport_invariant() {
    let g = gen::rmat(6, 4, 9);
    let gw = gen::with_random_weights(&g, 1 << 16, 9 ^ 0x5eed);
    let baseline = Cluster::with_threads(HOSTS, 2);
    let (cc_baseline, _) = cc_lp_labels(&g, &baseline, FaultPlan::new(), true);
    let louvain_baseline = louvain_labels(&g, &baseline, FaultPlan::new());
    let msf_baseline = msf_forest(&gw, &baseline, FaultPlan::new());
    for (name, cluster) in backends() {
        for (i, plan) in matrix_plans().into_iter().enumerate() {
            let (labels, retransmits) = cc_lp_labels(&g, &cluster, plan, true);
            assert_eq!(labels, cc_baseline, "cc diverged under plan {i} on {name}");
            if i == 0 {
                // The drop plan removes a frame outright: repair must go
                // through the retransmission path, on every backend.
                assert!(retransmits >= 1, "drop plan caused no retransmits on {name}");
            }
        }
        for (i, plan) in matrix_plans().into_iter().enumerate() {
            assert_eq!(
                louvain_labels(&g, &cluster, plan),
                louvain_baseline,
                "louvain diverged under plan {i} on {name}"
            );
        }
        for (i, plan) in matrix_plans().into_iter().enumerate() {
            assert_eq!(
                msf_forest(&gw, &cluster, plan),
                msf_baseline,
                "msf diverged under plan {i} on {name}"
            );
        }
    }
}

/// Runs the compiled cc_sv plan and merges the label map, reporting the
/// per-host robustness counters alongside.
fn engine_cc_sv(
    g: &kimbap_graph::Graph,
    cluster: &Cluster,
    plan: FaultPlan,
    config: EngineConfig,
) -> (Vec<u64>, u64, u64) {
    let compiled = compile(&programs::cc_sv(), OptLevel::Full);
    let parts = partition(g, Policy::EdgeCutBlocked, HOSTS);
    let outs = cluster.run_with_faults(plan, |ctx| {
        let out = Engine::with_config(&parts[ctx.host()], ctx, &compiled, config).run(ctx);
        let s = ctx.stats();
        (out, s.timeout_aborts, s.heartbeat_suspicions)
    });
    let timeouts = outs.iter().map(|(_, t, _)| t).sum();
    let suspicions = outs.iter().map(|(_, _, s)| s).sum();
    let labels = merge_master_values(
        g.num_nodes(),
        outs.into_iter().map(|(o, _, _)| o.map_values[0].clone()).collect(),
    );
    (labels, timeouts, suspicions)
}

/// A host that stalls mid-round is flagged by the phase deadline; every
/// host aborts the round and checkpoint replay restores the fault-free
/// labels. Checked on the simulation backend (virtual time) and in-proc
/// (real clock).
#[test]
fn engine_hung_host_recovers_via_deadline() {
    let g = gen::rmat(7, 4, 31);
    let config = EngineConfig {
        phase_timeout: Some(Duration::from_millis(150)),
        ..EngineConfig::default()
    };
    let (baseline, t0, _) =
        engine_cc_sv(&g, &Cluster::with_threads(HOSTS, 2), FaultPlan::new(), config);
    assert_eq!(t0, 0, "fault-free run must not trip the deadline");
    let backends = [
        ("sim", Cluster::with_threads(HOSTS, 2).sim(SIM_SEED)),
        ("inproc", Cluster::with_threads(HOSTS, 2)),
    ];
    for (name, cluster) in backends {
        let plan = FaultPlan::new().stall_host(1, 2, 400);
        let (labels, timeouts, _) = engine_cc_sv(&g, &cluster, plan, config);
        assert_eq!(labels, baseline, "stall recovery diverged on {name}");
        assert!(timeouts >= 1, "no timeout abort recorded on {name}");
    }
}

/// The same hung host flagged by the heartbeat failure detector instead:
/// no phase deadline configured, but the stalled host goes silent past
/// `suspect_after` and peers abort with `PeerDown`. Checked on the
/// simulation backend (virtual time) and TCP loopback (real detector
/// threads).
#[test]
fn engine_hung_host_recovers_via_heartbeat() {
    let g = gen::rmat(7, 4, 31);
    let hb = TransportConfig::with_heartbeat(HeartbeatConfig {
        interval: Duration::from_millis(10),
        suspect_after: Duration::from_millis(80),
    });
    let (baseline, _, _) = engine_cc_sv(
        &g,
        &Cluster::with_threads(HOSTS, 2),
        FaultPlan::new(),
        EngineConfig::default(),
    );
    let backends = [
        ("sim", Cluster::with_threads(HOSTS, 2).sim(SIM_SEED)),
        ("tcp", Cluster::with_threads(HOSTS, 2).tcp()),
    ];
    for (name, cluster) in backends {
        let cluster = cluster.with_transport_config(hb.clone());
        let plan = FaultPlan::new().stall_host(1, 2, 400);
        let (labels, _, suspicions) = engine_cc_sv(&g, &cluster, plan, EngineConfig::default());
        assert_eq!(labels, baseline, "heartbeat recovery diverged on {name}");
        assert!(suspicions >= 1, "no heartbeat suspicion recorded on {name}");
    }
}
