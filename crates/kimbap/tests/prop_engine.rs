//! Property-based end-to-end test of the compiler + engine: for *random*
//! well-formed vertex programs, the optimized and unoptimized plans must
//! produce identical results on random graphs — the §5.2 elisions are
//! semantics-preserving by construction, and this hunts for counterexamples.

use kimbap::engine::Engine;
use kimbap_comm::Cluster;
use kimbap_compiler::ir::{
    BinOp, Expr, KimbapWhile, MapDecl, NodeIterator, Program, Stmt, TopStmt,
};
use kimbap_compiler::{compile, OptLevel};
use kimbap_dist::{partition, Policy};
use kimbap_graph::builder::from_edges;
use kimbap_npm::DynReduceOp;
use proptest::prelude::*;

/// A random monotone operator: reads chained up to depth 2, a guarded
/// min-reduce to either an adjacent or a computed key. Monotone (min with
/// quiescence) so every generated program terminates.
fn operator_strategy() -> impl Strategy<Value = Vec<Stmt>> {
    // Key of the final reduce: node, edge dst, or the value read at v0.
    let reduce_key = prop_oneof![
        Just(Expr::Node),
        Just(Expr::EdgeDst),
        Just(Expr::Var(0)),
    ];
    // Guard comparing the two reads.
    let guard = prop_oneof![
        Just(Expr::bin(BinOp::Gt, Expr::Var(0), Expr::Var(1))),
        Just(Expr::bin(BinOp::Ne, Expr::Var(0), Expr::Var(1))),
        Just(Expr::bin(BinOp::Lt, Expr::Var(1), Expr::Var(0))),
    ];
    // Whether the second read is chained (trans-vertex) or adjacent.
    (reduce_key, guard, prop::bool::ANY, prop::bool::ANY).prop_map(
        |(rkey, cond, chained, reduce_min_of_both)| {
            let second_read_key = if chained { Expr::Var(0) } else { Expr::EdgeDst };
            let reduce_value = if reduce_min_of_both {
                Expr::bin(BinOp::Min, Expr::Var(0), Expr::Var(1))
            } else {
                Expr::Var(1)
            };
            vec![
                Stmt::Read {
                    dst: 0,
                    map: 0,
                    key: Expr::Node,
                },
                Stmt::ForEdges {
                    body: vec![
                        Stmt::Read {
                            dst: 1,
                            map: 0,
                            key: second_read_key,
                        },
                        Stmt::If {
                            cond,
                            then: vec![Stmt::Reduce {
                                map: 0,
                                key: rkey,
                                value: reduce_value,
                            }],
                        },
                    ],
                },
            ]
        },
    )
}

fn program_strategy() -> impl Strategy<Value = Program> {
    prop::collection::vec(operator_strategy(), 1..3).prop_map(|ops| Program {
        name: "random",
        maps: vec![MapDecl {
            op: DynReduceOp::Min,
            name: "m",
        }],
        num_reducers: 0,
        num_vars: 2,
        body: std::iter::once(TopStmt::InitMap {
            map: 0,
            value: Expr::Node,
        })
        .chain(ops.into_iter().map(|body| {
            TopStmt::While(KimbapWhile {
                quiesce_map: 0,
                iterator: NodeIterator::AllNodes,
                body,
            })
        }))
        .collect(),
    })
}

fn edge_list() -> impl Strategy<Value = Vec<(u32, u32, u64)>> {
    prop::collection::vec((0u32..24, 0u32..24, Just(1u64)), 1..60)
}

fn run(program: &Program, opt: OptLevel, edges: &[(u32, u32, u64)], hosts: usize) -> Vec<u64> {
    let g = from_edges(edges.iter().copied());
    let parts = partition(&g, Policy::EdgeCutBlocked, hosts);
    let plan = compile(program, opt);
    let outs = Cluster::new(hosts).run(|ctx| {
        Engine::new(&parts[ctx.host()], ctx, &plan).run(ctx)
    });
    let mut vals = vec![0u64; g.num_nodes()];
    for o in outs {
        for (gid, v) in &o.map_values[0] {
            vals[*gid as usize] = *v;
        }
    }
    vals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn opt_and_noopt_agree_on_random_programs(
        program in program_strategy(),
        edges in edge_list(),
    ) {
        let full = run(&program, OptLevel::Full, &edges, 2);
        let none = run(&program, OptLevel::None, &edges, 2);
        prop_assert_eq!(full, none);
    }

    #[test]
    fn host_count_does_not_change_results(
        program in program_strategy(),
        edges in edge_list(),
    ) {
        let one = run(&program, OptLevel::Full, &edges, 1);
        let three = run(&program, OptLevel::Full, &edges, 3);
        prop_assert_eq!(one, three);
    }
}
