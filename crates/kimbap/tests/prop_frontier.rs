//! Property-based differential test of active-set (frontier) execution:
//! for random sparse-eligible vertex programs, sparse rounds must be
//! round-for-round identical to dense execution — same final maps, same
//! round count — across every runtime variant and thread count. Sparse
//! iteration only skips nodes whose read inputs provably did not change,
//! so any divergence is an engine soundness bug, not a tolerance issue.

use kimbap::engine::{Engine, EngineConfig, EngineOutput};
use kimbap_comm::Cluster;
use kimbap_compiler::ir::{
    BinOp, Expr, KimbapWhile, MapDecl, NodeIterator, Program, Stmt, TopStmt,
};
use kimbap_compiler::transform::CompiledTop;
use kimbap_compiler::{compile, OptLevel};
use kimbap_dist::{partition, Policy};
use kimbap_graph::builder::from_edges;
use kimbap_npm::{DynReduceOp, Variant};
use proptest::prelude::*;

/// A random monotone *adjacent-vertex* operator: reads keyed only by the
/// active node and the current edge destination, min-reduce to an
/// adjacent key. At `OptLevel::Full` the compiler certifies these for
/// sparse execution (the read map is pinned, reductions idempotent).
fn adjacent_operator_strategy() -> impl Strategy<Value = Vec<Stmt>> {
    let reduce_key = prop_oneof![Just(Expr::Node), Just(Expr::EdgeDst)];
    let guard = prop_oneof![
        Just(Expr::bin(BinOp::Gt, Expr::Var(0), Expr::Var(1))),
        Just(Expr::bin(BinOp::Ne, Expr::Var(0), Expr::Var(1))),
        Just(Expr::bin(BinOp::Lt, Expr::Var(1), Expr::Var(0))),
    ];
    (reduce_key, guard, prop::bool::ANY).prop_map(|(rkey, cond, reduce_min_of_both)| {
        let reduce_value = if reduce_min_of_both {
            Expr::bin(BinOp::Min, Expr::Var(0), Expr::Var(1))
        } else {
            Expr::Var(1)
        };
        vec![
            Stmt::Read {
                dst: 0,
                map: 0,
                key: Expr::Node,
            },
            Stmt::ForEdges {
                body: vec![
                    Stmt::Read {
                        dst: 1,
                        map: 0,
                        key: Expr::EdgeDst,
                    },
                    Stmt::If {
                        cond,
                        then: vec![Stmt::Reduce {
                            map: 0,
                            key: rkey,
                            value: reduce_value,
                        }],
                    },
                ],
            },
        ]
    })
}

fn program_of(ops: Vec<Vec<Stmt>>) -> Program {
    Program {
        name: "random-frontier",
        maps: vec![MapDecl {
            op: DynReduceOp::Min,
            name: "m",
        }],
        num_reducers: 0,
        num_vars: 2,
        body: std::iter::once(TopStmt::InitMap {
            map: 0,
            value: Expr::Node,
        })
        .chain(ops.into_iter().map(|body| {
            TopStmt::While(KimbapWhile {
                quiesce_map: 0,
                iterator: NodeIterator::AllNodes,
                body,
            })
        }))
        .collect(),
    }
}

fn program_strategy() -> impl Strategy<Value = Program> {
    prop::collection::vec(adjacent_operator_strategy(), 1..3).prop_map(program_of)
}

fn edge_list() -> impl Strategy<Value = Vec<(u32, u32, u64)>> {
    prop::collection::vec((0u32..24, 0u32..24, Just(1u64)), 1..60)
}

fn variant_strategy() -> impl Strategy<Value = Variant> {
    prop_oneof![
        Just(Variant::SgrOnly),
        Just(Variant::SgrCf),
        Just(Variant::SgrCfGar),
    ]
}

fn run_cfg(
    program: &Program,
    edges: &[(u32, u32, u64)],
    hosts: usize,
    threads: usize,
    cfg: EngineConfig,
) -> (Vec<u64>, Vec<EngineOutput>) {
    let g = from_edges(edges.iter().copied());
    let parts = partition(&g, Policy::EdgeCutBlocked, hosts);
    let plan = compile(program, OptLevel::Full);
    let outs = Cluster::with_threads(hosts, threads)
        .run(|ctx| Engine::with_config(&parts[ctx.host()], ctx, &plan, cfg).run(ctx));
    let mut vals = vec![0u64; g.num_nodes()];
    for o in &outs {
        for (gid, v) in &o.map_values[0] {
            vals[*gid as usize] = *v;
        }
    }
    (vals, outs)
}

/// Number of `While` loops in the program (each contributes one dense pin
/// round per invocation).
fn num_loops(p: &Program) -> usize {
    p.body
        .iter()
        .filter(|t| matches!(t, TopStmt::While(_)))
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sparse_execution_matches_dense(
        program in program_strategy(),
        edges in edge_list(),
        variant in variant_strategy(),
        threads in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
    ) {
        let sparse_cfg = EngineConfig { variant, sparse: true, ..EngineConfig::default() };
        let dense_cfg = EngineConfig { variant, sparse: false, ..EngineConfig::default() };
        let (sv, souts) = run_cfg(&program, &edges, 2, threads, sparse_cfg);
        let (dv, douts) = run_cfg(&program, &edges, 2, threads, dense_cfg);
        prop_assert_eq!(sv, dv);
        prop_assert_eq!(souts[0].rounds, douts[0].rounds);

        // Dense runs, and any run on a non-GAR variant (no changed-key
        // tracking), must never report a sparse round.
        prop_assert!(douts.iter().all(|o| o.activity.iter().all(|a| !a.sparse)));
        if variant != Variant::SgrCfGar {
            prop_assert!(souts.iter().all(|o| o.activity.iter().all(|a| !a.sparse)));
        } else {
            // Under GAR every certified loop goes sparse right after its
            // pin round: only the per-loop pin rounds stay dense.
            let plan = compile(&program, OptLevel::Full);
            let certified = plan.body.iter().all(|t| match t {
                CompiledTop::Loop(l) => l.sparse.is_some(),
                _ => true,
            });
            prop_assert!(certified, "adjacent min programs must certify at Full");
            let pins = num_loops(&program) as u64;
            for o in &souts {
                let sparse_rounds =
                    o.activity.iter().filter(|a| a.sparse).count() as u64;
                prop_assert_eq!(sparse_rounds, o.rounds - pins);
            }
        }
    }
}

/// A trans-vertex read (`m[m[n]]`) makes sparse iteration unsound; the
/// compiler must refuse to certify the loop and the engine must stay
/// dense even with sparse execution enabled, while still agreeing with
/// the dense run.
#[test]
fn trans_vertex_program_falls_back_to_dense() {
    let body = vec![
        Stmt::Read {
            dst: 0,
            map: 0,
            key: Expr::Node,
        },
        Stmt::Read {
            dst: 1,
            map: 0,
            key: Expr::Var(0), // chained: key computed from a prior read
        },
        Stmt::If {
            cond: Expr::bin(BinOp::Lt, Expr::Var(1), Expr::Var(0)),
            then: vec![Stmt::Reduce {
                map: 0,
                key: Expr::Node,
                value: Expr::Var(1),
            }],
        },
        Stmt::ForEdges {
            body: vec![
                Stmt::Read {
                    dst: 1,
                    map: 0,
                    key: Expr::EdgeDst,
                },
                Stmt::If {
                    cond: Expr::bin(BinOp::Lt, Expr::Var(1), Expr::Var(0)),
                    then: vec![Stmt::Reduce {
                        map: 0,
                        key: Expr::Node,
                        value: Expr::Var(1),
                    }],
                },
            ],
        },
    ];
    let program = program_of(vec![body]);
    let plan = compile(&program, OptLevel::Full);
    for t in &plan.body {
        if let CompiledTop::Loop(l) = t {
            assert!(l.sparse.is_none(), "trans-vertex loop must not certify");
        }
    }
    let edges: Vec<(u32, u32, u64)> = (0..40).map(|i| (i % 20, (i * 7 + 3) % 20, 1)).collect();
    let (sv, souts) = run_cfg(
        &program,
        &edges,
        3,
        2,
        EngineConfig {
            variant: Variant::SgrCfGar,
            sparse: true,
            ..EngineConfig::default()
        },
    );
    let (dv, _) = run_cfg(
        &program,
        &edges,
        3,
        2,
        EngineConfig {
            variant: Variant::SgrCfGar,
            sparse: false,
            ..EngineConfig::default()
        },
    );
    assert_eq!(sv, dv);
    assert!(souts.iter().all(|o| o.activity.iter().all(|a| !a.sparse)));
}
