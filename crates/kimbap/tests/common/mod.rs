//! Helpers shared by the kimbap integration suites (fault injection,
//! transport robustness, the sim property tests, and the serve suites):
//! the standard three-host cluster, one run-and-merge wrapper per
//! algorithm family, host-error classifiers, and proptest strategy
//! utilities. Each suite compiles its own copy (`mod common;`), so
//! anything a given suite doesn't call is expectedly dead there.
#![allow(dead_code)]

use kimbap_algos::{self as algos, cc::cc_lp, merge_master_values, msf, NpmBuilder};
use kimbap_comm::{Cluster, FaultPlan, HostCtx};
use kimbap_dist::{partition, DistGraph, Policy};
use kimbap_graph::Graph;
use proptest::prelude::*;

/// Host count every suite's cluster runs with.
pub const HOSTS: usize = 3;

/// The standard in-proc baseline cluster.
pub fn inproc() -> Cluster {
    Cluster::with_threads(HOSTS, 2)
}

/// Runs cc_lp on `cluster` under `plan` and returns the merged labels
/// plus the cluster-wide retransmission count. `recovering` wraps each
/// host in [`HostCtx::run_recovering`] (required for crash-bearing
/// plans).
pub fn cc_lp_labels(
    g: &Graph,
    cluster: &Cluster,
    plan: FaultPlan,
    recovering: bool,
) -> (Vec<u64>, u64) {
    let parts = partition(g, Policy::EdgeCutBlocked, HOSTS);
    let b = NpmBuilder::default();
    let per_host = cluster.run_with_faults(plan, |ctx| {
        let labels = if recovering {
            ctx.run_recovering(|ctx| cc_lp(&parts[ctx.host()], ctx, &b))
        } else {
            cc_lp(&parts[ctx.host()], ctx, &b)
        };
        (labels, ctx.stats().retransmits)
    });
    let retransmits = per_host.iter().map(|(_, r)| r).sum();
    let labels = merge_master_values(
        g.num_nodes(),
        per_host.into_iter().map(|(l, _)| l).collect(),
    );
    (labels, retransmits)
}

/// Runs louvain under `plan` (always inside `run_recovering`) and returns
/// (composed labels, modularity bits).
pub fn louvain_result(g: &Graph, cluster: &Cluster, plan: FaultPlan) -> (Vec<u32>, u64) {
    let parts = partition(g, Policy::EdgeCutBlocked, HOSTS);
    let b = NpmBuilder::default();
    let cfg = algos::LouvainConfig::default();
    let results = cluster.run_with_faults(plan, |ctx| {
        ctx.run_recovering(|ctx| algos::louvain(&parts[ctx.host()], ctx, &b, &cfg))
    });
    let modularity = results[0].modularity;
    let labels = algos::compose_labels(g.num_nodes(), &results);
    (labels, modularity.to_bits())
}

/// Runs msf under `plan` inside `run_recovering` and returns the
/// canonical (sorted edges, total weight) forest.
pub fn msf_forest(g: &Graph, cluster: &Cluster, plan: FaultPlan) -> (Vec<(u32, u32, u64)>, u64) {
    let parts = partition(g, Policy::CartesianVertexCut, HOSTS);
    let b = NpmBuilder::default();
    let per_host = cluster.run_with_faults(plan, |ctx| {
        ctx.run_recovering(|ctx| algos::msf(&parts[ctx.host()], ctx, &b))
    });
    let (mut edges, total) = msf::merge_forest(per_host);
    edges.sort_unstable();
    (edges, total)
}

/// Runs mis under `plan` inside `run_recovering` and returns the merged
/// membership vector.
pub fn mis_set(g: &Graph, cluster: &Cluster, plan: FaultPlan) -> Vec<bool> {
    let parts = partition(g, Policy::CartesianVertexCut, HOSTS);
    let b = NpmBuilder::default();
    let per_host = cluster.run_with_faults(plan, |ctx| {
        ctx.run_recovering(|ctx| algos::mis(&parts[ctx.host()], ctx, &b))
    });
    merge_master_values(g.num_nodes(), per_host)
}

/// Runs `f` elastically (partition recomputed from the live membership on
/// every attempt) and returns the survivors' values, skipping the killed
/// hosts' own permanent-loss aborts. Any other host error is a bug.
pub fn run_elastic_survivors<R: Send>(
    g: &Graph,
    cluster: &Cluster,
    plan: FaultPlan,
    policy: Policy,
    f: impl Fn(&DistGraph, &HostCtx) -> R + Sync,
) -> Vec<R> {
    let res = cluster.try_run_with_faults(plan, |ctx| {
        ctx.run_elastic(|ctx| {
            let parts = partition(g, policy, ctx.num_hosts());
            f(&parts[ctx.host()], ctx)
        })
    });
    res.into_iter()
        .enumerate()
        .filter_map(|(h, r)| match r {
            Ok(v) => Some(v),
            Err(e) if permanent_loss(&e.message) => None,
            Err(e) => panic!("host {h}: {e}"),
        })
        .collect()
}

/// True for the host-error messages rooted in communication failure —
/// the set a faulted run may legitimately surface instead of converging.
/// Anything else escaping a host is a bug.
pub fn comm_rooted(msg: &str) -> bool {
    msg.starts_with("communication failed")
        || msg.starts_with("injected crash")
        || msg.starts_with("permanent host loss")
        || msg.contains("membership lost")
}

/// True for a killed host's own abort — the *expected* casualty of an
/// elastic run, skipped rather than surfaced.
pub fn permanent_loss(msg: &str) -> bool {
    msg.starts_with("permanent host loss")
}

/// `Some(inner)` half the time, `None` the other half — the vendored
/// proptest has no `prop::option`, so build it from a weighted union.
pub fn maybe<S>(inner: S) -> impl Strategy<Value = Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Clone + 'static,
{
    prop_oneof![Just(None), inner.prop_map(Some).boxed(),]
}
