//! End-to-end fault injection: whole algorithms run under seeded fault
//! plans and must produce output bit-identical to a fault-free run.
//!
//! Three recovery mechanisms are exercised:
//! * frame-level faults (drop/duplicate/delay/corrupt) survived
//!   transparently by the retransmitting exchange;
//! * host crashes survived by full replay (`HostCtx::run_recovering`,
//!   used by the hand-written algorithms);
//! * host crashes survived by round-level checkpoint replay (the engine's
//!   recovery path for compiled plans).
//!
//! The fixed-seed fault matrix (`fault_matrix_smoke`) runs four
//! algorithms — cc_lp, louvain, msf, mis — on the deterministic
//! simulation backend, with fault-free baselines computed on the in-proc
//! backend: every matrix cell is simultaneously a recovery check and a
//! cross-backend conformance check.

mod common;

use common::{cc_lp_labels, inproc, louvain_result, mis_set, msf_forest, run_elastic_survivors, HOSTS};
use kimbap::engine::Engine;
use kimbap_algos::{self as algos, cc::cc_lp, merge_master_values, msf, NpmBuilder};
use kimbap_comm::{Cluster, FaultPlan};
use kimbap_compiler::{compile, programs, OptLevel};
use kimbap_dist::{partition, Policy};
use kimbap_graph::gen;

/// Scheduler seed for matrix runs on the simulation backend.
const SIM_SEED: u64 = 7;

#[test]
fn cc_lp_survives_targeted_frame_faults() {
    let g = gen::rmat(7, 4, 31);
    let (baseline, _) = cc_lp_labels(&g, &inproc(), FaultPlan::new(), false);
    // One of each frame fault, spread over early rounds and host pairs.
    let plan = FaultPlan::new()
        .drop_frame(0, 1, 1)
        .duplicate_frame(2, 0, 1)
        .delay_frame(1, 2, 2)
        .corrupt_frame(2, 1, 2, 123);
    let (faulted, _) = cc_lp_labels(&g, &inproc(), plan, false);
    assert_eq!(faulted, baseline);
}

#[test]
fn cc_lp_reports_retransmits_under_drops() {
    let g = gen::grid_road(6, 6, 3);
    let plan = FaultPlan::new().drop_frame(0, 1, 1).corrupt_frame(1, 0, 1, 9);
    let (_, retx) = cc_lp_labels(&g, &Cluster::new(HOSTS), plan, false);
    assert!(
        retx >= 2,
        "dropped and corrupted frames must be retransmitted, got {retx}"
    );
}

#[test]
fn cc_lp_survives_random_fault_soup() {
    let g = gen::rmat(6, 4, 9);
    let (baseline, _) = cc_lp_labels(&g, &inproc(), FaultPlan::new(), false);
    for seed in [1u64, 42, 1337] {
        let plan = FaultPlan::new()
            .with_seed(seed)
            .drop_rate(0.03)
            .duplicate_rate(0.03)
            .corrupt_rate(0.03);
        assert_eq!(
            cc_lp_labels(&g, &inproc(), plan, false).0,
            baseline,
            "seed {seed} diverged"
        );
    }
}

#[test]
fn cc_lp_recovers_from_mid_run_crash() {
    let g = gen::rmat(7, 4, 31);
    let (baseline, _) = cc_lp_labels(&g, &inproc(), FaultPlan::new(), false);
    // Host 1 crashes entering round 2; all hosts replay from the top.
    let plan = FaultPlan::new().crash_host(1, 2);
    let (recovered, _) = cc_lp_labels(&g, &inproc(), plan, true);
    assert_eq!(recovered, baseline);
}

#[test]
fn engine_checkpoint_replay_matches_fault_free() {
    // The compiled cc_sv plan under a mid-run host crash: the engine
    // checkpoints master properties and scalar reducers at every round
    // boundary, so the crashed round replays from the checkpoint instead
    // of restarting the program.
    let g = gen::rmat(7, 4, 31);
    let plan = compile(&programs::cc_sv(), OptLevel::Full);
    let parts = partition(&g, Policy::EdgeCutBlocked, HOSTS);
    let run = |faults: FaultPlan| {
        let outs = Cluster::with_threads(HOSTS, 2).run_with_faults(faults, |ctx| {
            Engine::new(&parts[ctx.host()], ctx, &plan).run(ctx)
        });
        let labels = merge_master_values(
            g.num_nodes(),
            outs.iter().map(|o| o.map_values[0].clone()).collect(),
        );
        (labels, outs[0].rounds)
    };
    let (baseline, rounds) = run(FaultPlan::new());
    assert!(rounds >= 3, "need a multi-round run to crash mid-way");
    assert_eq!(baseline, kimbap_algos::refcheck::connected_components(&g));

    for crash_round in [2, 3] {
        let (labels, replayed_rounds) = run(FaultPlan::new().crash_host(1, crash_round));
        assert_eq!(labels, baseline, "crash at round {crash_round} diverged");
        // Replayed rounds are not double-counted.
        assert_eq!(replayed_rounds, rounds);
    }
}

#[test]
fn engine_recovers_from_crash_plus_frame_faults() {
    let g = gen::grid_road(7, 7, 3);
    let plan = compile(&programs::cc_lp(), OptLevel::Full);
    let parts = partition(&g, Policy::EdgeCutBlocked, HOSTS);
    let run = |faults: FaultPlan| {
        let outs = Cluster::new(HOSTS).run_with_faults(faults, |ctx| {
            Engine::new(&parts[ctx.host()], ctx, &plan).run(ctx)
        });
        merge_master_values(
            g.num_nodes(),
            outs.into_iter().map(|o| o.map_values[0].clone()).collect(),
        )
    };
    let baseline = run(FaultPlan::new());
    let faults = FaultPlan::new()
        .drop_frame(0, 2, 1)
        .corrupt_frame(2, 0, 1, 321)
        .crash_host(2, 2)
        .with_seed(5)
        .drop_rate(0.02);
    assert_eq!(run(faults), baseline);
}

#[test]
fn louvain_recovers_from_mid_run_crash() {
    let g = gen::rmat(6, 6, 4);
    let baseline = louvain_result(&g, &inproc(), FaultPlan::new());
    let plan = FaultPlan::new().crash_host(0, 3);
    let recovered = louvain_result(&g, &inproc(), plan);
    assert_eq!(recovered.0, baseline.0, "community labels diverged");
    assert_eq!(recovered.1, baseline.1, "modularity diverged");
}

#[test]
fn louvain_survives_frame_faults() {
    let g = gen::rmat(6, 6, 4);
    let baseline = louvain_result(&g, &inproc(), FaultPlan::new());
    let plan = FaultPlan::new()
        .drop_frame(1, 0, 1)
        .duplicate_frame(0, 2, 2)
        .with_seed(11)
        .corrupt_rate(0.02);
    assert_eq!(louvain_result(&g, &inproc(), plan), baseline);
}

/// Crash-then-shrink matrix: host 1 is permanently killed mid-run on the
/// simulation backend, the two survivors agree it out of the membership,
/// re-partition, and re-converge. cc_lp / msf / mis outputs are
/// partition-independent, so they must equal the fault-free run of the
/// full cluster; louvain's merge order tracks the partition, so its
/// baseline is the fault-free run of the surviving two-host cluster
/// (full-restart semantics make that the exact expectation).
#[test]
fn shrink_matrix_smoke() {
    let g = gen::rmat(6, 4, 9);
    let gw = gen::with_random_weights(&g, 1 << 16, 9 ^ 0x5eed);
    let n = g.num_nodes();
    let b = NpmBuilder::default();
    let kill = || FaultPlan::new().kill_host(1, 2);
    let sim = || Cluster::with_threads(HOSTS, 2).sim(SIM_SEED);

    let (cc_baseline, _) = cc_lp_labels(&g, &inproc(), FaultPlan::new(), true);
    let run_cc = || {
        let ph = run_elastic_survivors(&g, &sim(), kill(), Policy::EdgeCutBlocked, |dg, ctx| {
            cc_lp(dg, ctx, &b)
        });
        assert_eq!(ph.len(), HOSTS - 1, "exactly the victim must be lost");
        merge_master_values(n, ph)
    };
    let cc_first = run_cc();
    assert_eq!(cc_first, cc_baseline, "cc diverged after shrink");
    // Same seed, same kill, same schedule: the degraded run is
    // byte-reproducible.
    assert_eq!(run_cc(), cc_first, "shrunk cc run is not seed-reproducible");

    let msf_baseline = msf_forest(&gw, &inproc(), FaultPlan::new());
    let ph = run_elastic_survivors(&gw, &sim(), kill(), Policy::CartesianVertexCut, |dg, ctx| {
        algos::msf(dg, ctx, &b)
    });
    let (mut edges, total) = msf::merge_forest(ph);
    edges.sort_unstable();
    assert_eq!((edges, total), msf_baseline, "msf diverged after shrink");

    let mis_baseline = mis_set(&g, &inproc(), FaultPlan::new());
    let ph = run_elastic_survivors(&g, &sim(), kill(), Policy::CartesianVertexCut, |dg, ctx| {
        algos::mis(dg, ctx, &b)
    });
    assert_eq!(
        merge_master_values(n, ph),
        mis_baseline,
        "mis diverged after shrink"
    );

    let cfg = algos::LouvainConfig::default();
    let parts2 = partition(&g, Policy::EdgeCutBlocked, HOSTS - 1);
    let base2 = Cluster::with_threads(HOSTS - 1, 2)
        .run(|ctx| algos::louvain(&parts2[ctx.host()], ctx, &b, &cfg));
    let expected = algos::compose_labels(n, &base2);
    let ph = run_elastic_survivors(&g, &sim(), kill(), Policy::EdgeCutBlocked, |dg, ctx| {
        algos::louvain(dg, ctx, &b, &cfg)
    });
    assert_eq!(
        algos::compose_labels(n, &ph),
        expected,
        "louvain diverged after shrink"
    );
}

/// The fixed-seed fault matrix run by scripts/ci.sh: three plans (drops,
/// corruption, mid-run crash) x four algorithms (cc_lp, louvain, msf,
/// mis), executed on the deterministic simulation backend against
/// fault-free in-proc baselines.
#[test]
fn fault_matrix_smoke() {
    let g = gen::rmat(6, 4, 9);
    let gw = gen::with_random_weights(&g, 1 << 16, 9 ^ 0x5eed);
    let plans = || {
        [
            FaultPlan::new().drop_frame(0, 1, 1).with_seed(1).drop_rate(0.02),
            FaultPlan::new()
                .corrupt_frame(1, 2, 1, 55)
                .with_seed(2)
                .corrupt_rate(0.02),
            FaultPlan::new().crash_host(1, 2),
        ]
    };
    let sim = || Cluster::with_threads(HOSTS, 2).sim(SIM_SEED);

    let (cc_baseline, _) = cc_lp_labels(&g, &inproc(), FaultPlan::new(), true);
    for (i, plan) in plans().into_iter().enumerate() {
        assert_eq!(
            cc_lp_labels(&g, &sim(), plan, true).0,
            cc_baseline,
            "cc diverged under plan {i}"
        );
    }

    let louvain_baseline = louvain_result(&g, &inproc(), FaultPlan::new());
    for (i, plan) in plans().into_iter().enumerate() {
        assert_eq!(
            louvain_result(&g, &sim(), plan),
            louvain_baseline,
            "louvain diverged under plan {i}"
        );
    }

    let msf_baseline = msf_forest(&gw, &inproc(), FaultPlan::new());
    for (i, plan) in plans().into_iter().enumerate() {
        assert_eq!(
            msf_forest(&gw, &sim(), plan),
            msf_baseline,
            "msf diverged under plan {i}"
        );
    }

    let mis_baseline = mis_set(&g, &inproc(), FaultPlan::new());
    kimbap_algos::refcheck::check_mis(&g, &mis_baseline).expect("baseline MIS invalid");
    for (i, plan) in plans().into_iter().enumerate() {
        assert_eq!(
            mis_set(&g, &sim(), plan),
            mis_baseline,
            "mis diverged under plan {i}"
        );
    }
}
