//! Seed-derived fuzz inputs for the deterministic simulation backend,
//! shared by the `kimbap sim` subcommand and the simulation test suites.
//!
//! Everything here is a pure function of the seed: the fault plan a fuzz
//! run injects, the heartbeat configuration it runs under, and the CLI
//! command that replays it. Tests that fail on a seed print the replay
//! command and the CLI reconstructs the identical run — same graph, same
//! faults, same schedule — because both sides derive from this module.

use crate::serve::{Algo, JobSpec};
use kimbap_comm::{FaultPlan, HeartbeatConfig, TransportConfig, JOB_ROUND_STRIDE};
use std::time::Duration;

/// One splitmix64 step: advances `z` and returns a well-mixed draw.
pub fn splitmix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derives the randomized fault plan a simulated fuzz run injects for
/// `seed`: always some background frame noise (drop/duplicate/corrupt/
/// delay rates), plus a crash and/or a stall in the first few rounds
/// about a quarter of the time each. Pure function of the seed, so a
/// replay reconstructs the identical plan.
pub fn random_fault_plan(seed: u64, hosts: usize) -> FaultPlan {
    let mut z = seed ^ 0x5eed_fa57;
    let mut rate = |hi: u64| (splitmix(&mut z) % hi) as f64 / 1000.0;
    let mut plan = FaultPlan::new()
        .with_seed(seed ^ 0x0bad_cafe)
        .drop_rate(rate(30))
        .duplicate_rate(rate(20))
        .corrupt_rate(rate(20))
        .delay_rate(rate(50));
    if hosts >= 2 {
        if splitmix(&mut z) % 100 < 25 {
            let h = 1 + (splitmix(&mut z) as usize) % (hosts - 1);
            plan = plan.crash_host(h, 1 + splitmix(&mut z) % 3);
        }
        if splitmix(&mut z) % 100 < 25 {
            let h = (splitmix(&mut z) as usize) % hosts;
            let round = 1 + splitmix(&mut z) % 3;
            let millis = (150 + splitmix(&mut z) % 350) as u32;
            plan = plan.stall_host(h, round, millis);
        }
    }
    if let Some((from, to, round, chunk)) = chunk_drop(seed, hosts) {
        plan = plan.drop_chunk(from, to, round, chunk);
    }
    plan
}

/// The chunk-boundary fault a seed's fuzz plans carry, if any: about a
/// third of seeds drop the `k`-th wire chunk of one directed link in an
/// early round, so the 50-seed smoke exercises partial-stream reassembly
/// and chunk-targeted retransmit (not just whole-frame loss). Returns
/// `(from, to, round, chunk)`. Derived from its own splitmix salt so it
/// composes with the other seed-derived draws without perturbing them.
pub fn chunk_drop(seed: u64, hosts: usize) -> Option<(usize, usize, u64, u32)> {
    let mut z = seed ^ 0xc41c_0b0a;
    if hosts >= 2 && splitmix(&mut z) % 100 < 35 {
        let from = (splitmix(&mut z) as usize) % hosts;
        let to = (from + 1 + (splitmix(&mut z) as usize) % (hosts - 1)) % hosts;
        let round = 1 + splitmix(&mut z) % 3;
        // Low indices hit both the first data chunk and the stream's
        // terminator chunk on small payloads; an index past the stream
        // end is a harmless no-op, preserving plan determinism.
        let chunk = (splitmix(&mut z) % 4) as u32;
        Some((from, to, round, chunk))
    } else {
        None
    }
}

/// The permanent-kill a seed's elastic fuzz plan carries, if any: about
/// 40% of seeds kill one non-zero host within the first few rounds. Pure
/// function of the seed; [`random_kill_plan`] injects exactly this kill,
/// and the launcher uses it to pick the right convergence baseline (a
/// fired kill makes the run finish on the shrunk membership).
pub fn kill_victim(seed: u64, hosts: usize) -> Option<(usize, u64)> {
    let mut z = seed ^ 0x1057_4057;
    if hosts >= 2 && splitmix(&mut z) % 100 < 40 {
        let h = 1 + (splitmix(&mut z) as usize) % (hosts - 1);
        let round = 1 + splitmix(&mut z) % 4;
        Some((h, round))
    } else {
        None
    }
}

/// Derives the fault plan an elastic (`--allow-shrink`) fuzz run injects
/// for `seed`: the usual background frame noise plus, for the seeds
/// [`kill_victim`] selects, a permanent host kill — so crash → shrink →
/// re-converge interleavings are seed-fuzzable and replayable.
pub fn random_kill_plan(seed: u64, hosts: usize) -> FaultPlan {
    let mut z = seed ^ 0xe1a5_71c5;
    let mut rate = |hi: u64| (splitmix(&mut z) % hi) as f64 / 1000.0;
    let mut plan = FaultPlan::new()
        .with_seed(seed ^ 0x0bad_cafe)
        .drop_rate(rate(30))
        .duplicate_rate(rate(20))
        .corrupt_rate(rate(20))
        .delay_rate(rate(50));
    if let Some((h, round)) = kill_victim(seed, hosts) {
        plan = plan.kill_host(h, round);
    }
    if let Some((from, to, round, chunk)) = chunk_drop(seed, hosts) {
        plan = plan.drop_chunk(from, to, round, chunk);
    }
    plan
}

/// The live join a seed's churn fuzz plan carries, if any: about half
/// the seeds spawn one latent host (the cluster's spare capacity slot,
/// index `hosts`) that knocks `delay_ms` into the run. Pure function of
/// the seed; [`random_churn_plan`] injects exactly this join, and the
/// launcher uses it to pick the right convergence baseline (an admitted
/// join makes the run finish on the grown membership).
pub fn join_entry(seed: u64, hosts: usize) -> Option<(usize, u64)> {
    let mut z = seed ^ 0x6a01_4b0b;
    if hosts >= 2 && splitmix(&mut z) % 100 < 50 {
        // Delay 0 or 1 ms of virtual time: small graphs finish in a few
        // virtual milliseconds, so this lands the knock mid-run for most
        // seeds and past the finish line for a few — both interleavings
        // (admission and benign give-up) stay in the fuzzed population.
        let delay_ms = splitmix(&mut z) % 2;
        Some((hosts, delay_ms))
    } else {
        None
    }
}

/// Derives the fault plan a churn (`--allow-shrink --allow-grow`) fuzz
/// run injects for `seed`: the usual background frame noise, the
/// permanent kill [`kill_victim`] selects (~40% of seeds), and the live
/// join [`join_entry`] selects (~50% of seeds). The two draws are
/// independent, so the seed population covers join-only, kill-only,
/// join-then-kill, kill-then-join, and quiet runs — every grow/shrink
/// interleaving the elastic engine must survive, each replayable by
/// seed.
pub fn random_churn_plan(seed: u64, hosts: usize) -> FaultPlan {
    let mut plan = random_kill_plan(seed, hosts);
    if let Some((h, delay_ms)) = join_entry(seed, hosts) {
        plan = plan.join_host(h, delay_ms);
    }
    plan
}

/// The algorithm pool serve fuzz job mixes draw from. Deliberately spans
/// the execution paths the scheduler multiplexes: hand-written label
/// propagation, the compiled-plan engine (`cc-sv`), a round-free
/// algorithm (`mis`, which never advances the job's round band), and the
/// multi-level Louvain pipeline.
const SERVE_ALGOS: [Algo; 4] = [Algo::CcLp, Algo::CcSv, Algo::Mis, Algo::Louvain];

/// Derives the job mix a serve fuzz run submits for `seed`: 3–8 jobs,
/// each tagged with the host whose admission queue receives it. About a
/// third of jobs past the first duplicate an earlier `(algo, params)`
/// pair — exercising the result cache mid-schedule — and about a quarter
/// carry a deadline, a third of those tight enough (1–3 virtual ms) to
/// expire even on a fault-free run, the rest generous (200–1000 ms) so
/// they fire mainly when a seeded stall lands inside that job's band.
/// Pure function of the seed, so a replay reconstructs the identical
/// queue on every host.
pub fn serve_job_mix(seed: u64, hosts: usize) -> Vec<(usize, JobSpec)> {
    let mut z = seed ^ 0x5e44_e10b;
    let n = 3 + (splitmix(&mut z) % 6) as usize;
    let mut jobs: Vec<(usize, JobSpec)> = Vec::with_capacity(n);
    for _ in 0..n {
        let dup = !jobs.is_empty() && splitmix(&mut z) % 100 < 35;
        let (algo, params) = if dup {
            let prev = jobs[(splitmix(&mut z) as usize) % jobs.len()].1;
            (prev.algo, prev.params)
        } else {
            let algo = SERVE_ALGOS[(splitmix(&mut z) as usize) % SERVE_ALGOS.len()];
            (algo, splitmix(&mut z) % 4)
        };
        let priority = (splitmix(&mut z) % 4) as u8;
        let deadline = if splitmix(&mut z) % 100 < 25 {
            let ms = if splitmix(&mut z).is_multiple_of(3) {
                1 + splitmix(&mut z) % 3
            } else {
                200 + splitmix(&mut z) % 800
            };
            Some(Duration::from_millis(ms))
        } else {
            None
        };
        let host = (splitmix(&mut z) as usize) % hosts;
        jobs.push((
            host,
            JobSpec {
                algo,
                params,
                priority,
                deadline,
            },
        ));
    }
    jobs
}

/// Derives the fault plan a serve fuzz run injects for `seed`: the usual
/// background frame noise plus, for ~40% of seeds, one mid-stream crash
/// or stall targeted at an early round *inside a random job's round
/// band* (`k * JOB_ROUND_STRIDE + r`), so scheduler interleavings get
/// fuzzed against faults landing in specific jobs — including jobs that
/// never publish a round in that band (the fault then stays a harmless
/// no-op, which is itself an interleaving worth covering).
pub fn serve_fault_plan(seed: u64, hosts: usize, jobs: usize) -> FaultPlan {
    let mut z = seed ^ 0x5e4f_a017;
    let mut rate = |hi: u64| (splitmix(&mut z) % hi) as f64 / 1000.0;
    let mut plan = FaultPlan::new()
        .with_seed(seed ^ 0x0bad_cafe)
        .drop_rate(rate(30))
        .duplicate_rate(rate(20))
        .corrupt_rate(rate(20))
        .delay_rate(rate(50));
    if hosts >= 2 && jobs > 0 && splitmix(&mut z) % 100 < 40 {
        let k = splitmix(&mut z) % jobs as u64;
        let round = k * JOB_ROUND_STRIDE + 1 + splitmix(&mut z) % 3;
        if splitmix(&mut z).is_multiple_of(2) {
            let h = 1 + (splitmix(&mut z) as usize) % (hosts - 1);
            plan = plan.crash_host(h, round);
        } else {
            let h = (splitmix(&mut z) as usize) % hosts;
            let millis = (150 + splitmix(&mut z) % 350) as u32;
            plan = plan.stall_host(h, round, millis);
        }
    }
    plan
}

/// The exact CLI invocation that replays one serve fuzz seed.
pub fn serve_replay_command(
    seed: u64,
    hosts: usize,
    threads: usize,
    scale: u32,
    ef: usize,
) -> String {
    format!(
        "kimbap serve-sim --seed {seed} --hosts {hosts} --threads {threads} \
         --scale {scale} --ef {ef}"
    )
}

/// The transport configuration simulated fuzz runs use: a fast heartbeat
/// (10 ms interval, 80 ms suspicion) so injected stalls are detected —
/// both delays elapse on the virtual clock, costing microseconds of wall
/// time.
pub fn sim_transport_config() -> TransportConfig {
    TransportConfig::with_heartbeat(HeartbeatConfig {
        interval: Duration::from_millis(10),
        suspect_after: Duration::from_millis(80),
    })
}

/// The exact CLI invocation that replays one simulated fuzz seed.
#[allow(clippy::too_many_arguments)]
pub fn replay_command(
    algo: &str,
    seed: u64,
    hosts: usize,
    threads: usize,
    scale: u32,
    ef: usize,
    allow_shrink: bool,
    allow_grow: bool,
) -> String {
    let shrink = if allow_shrink { " --allow-shrink" } else { "" };
    let grow = if allow_grow { " --allow-grow" } else { "" };
    format!(
        "kimbap sim --algo {algo} --seed {seed} --hosts {hosts} --threads {threads} \
         --scale {scale} --ef {ef}{shrink}{grow} --trace trace.jsonl"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plans_are_seed_deterministic() {
        for seed in 0..64 {
            assert_eq!(
                format!("{:?}", random_fault_plan(seed, 3)),
                format!("{:?}", random_fault_plan(seed, 3))
            );
        }
    }

    #[test]
    fn fault_plans_vary_with_seed() {
        let distinct = (0..64)
            .map(|s| format!("{:?}", random_fault_plan(s, 3)))
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 32, "plans should differ across seeds");
    }

    #[test]
    fn kill_plans_are_deterministic_and_cover_both_modes() {
        // The CI fuzz smoke runs seeds 1..=25: a healthy mix of seeds
        // with and without a permanent kill must fall in that window.
        let kills = (1..=25).filter(|&s| kill_victim(s, 4).is_some()).count();
        assert!((5..=20).contains(&kills), "skewed kill coverage: {kills}/25");
        for seed in 0..32 {
            assert_eq!(
                format!("{:?}", random_kill_plan(seed, 4)),
                format!("{:?}", random_kill_plan(seed, 4))
            );
        }
    }

    #[test]
    fn chunk_drops_are_deterministic_and_well_formed() {
        // The CI fuzz smoke runs seeds 1..=25: a healthy share of them
        // must carry a chunk-targeted drop so partial-stream recovery is
        // exercised, and the derived link must always be a remote pair.
        let hits = (1..=25).filter(|&s| chunk_drop(s, 4).is_some()).count();
        assert!((5..=18).contains(&hits), "skewed chunk-drop coverage: {hits}/25");
        for seed in 0..64 {
            assert_eq!(chunk_drop(seed, 4), chunk_drop(seed, 4));
            if let Some((from, to, round, chunk)) = chunk_drop(seed, 4) {
                assert!(from < 4 && to < 4 && from != to);
                assert!((1..=3).contains(&round));
                assert!(chunk < 4);
            }
        }
        assert_eq!(chunk_drop(7, 1), None, "no peers, no chunk faults");
    }

    #[test]
    fn churn_plans_are_deterministic_and_cover_all_interleavings() {
        // The CI churn fuzz runs seeds 1..=25: that window must contain
        // joins, kills, AND at least a few seeds drawing both at once
        // (the join-then-kill / kill-then-join interleavings the grow
        // and shrink recovery paths have to compose under).
        let joins = (1..=25).filter(|&s| join_entry(s, 4).is_some()).count();
        assert!((8..=20).contains(&joins), "skewed join coverage: {joins}/25");
        let both = (1..=25)
            .filter(|&s| join_entry(s, 4).is_some() && kill_victim(s, 4).is_some())
            .count();
        assert!(both >= 2, "no seeds mix a join with a kill: {both}/25");
        for seed in 0..32 {
            assert_eq!(
                format!("{:?}", random_churn_plan(seed, 4)),
                format!("{:?}", random_churn_plan(seed, 4))
            );
            if let Some((h, delay_ms)) = join_entry(seed, 4) {
                assert_eq!(h, 4, "the joiner is the spare capacity slot");
                assert!(delay_ms <= 1);
                assert_eq!(
                    random_churn_plan(seed, 4).latent_hosts(),
                    vec![4],
                    "the churn plan must declare the joiner latent"
                );
            }
        }
    }

    #[test]
    fn serve_job_mixes_are_deterministic_with_healthy_coverage() {
        // The CI serve fuzz runs seeds 1..=25: that window must contain
        // duplicate submissions (cache hits mid-schedule), deadlines of
        // both flavours, and every algorithm in the pool.
        let mut dup_seeds = 0;
        let mut tight = 0;
        let mut generous = 0;
        let mut algos = std::collections::HashSet::new();
        for seed in 1..=25u64 {
            let mix = serve_job_mix(seed, 3);
            assert_eq!(mix, serve_job_mix(seed, 3), "mix must be seed-pure");
            assert!((3..=8).contains(&mix.len()));
            let mut seen = std::collections::HashSet::new();
            let mut dups = false;
            for (host, job) in &mix {
                assert!(*host < 3);
                algos.insert(job.algo);
                dups |= !seen.insert((job.algo, job.params));
                match job.deadline {
                    Some(d) if d <= Duration::from_millis(3) => tight += 1,
                    Some(_) => generous += 1,
                    None => {}
                }
            }
            dup_seeds += usize::from(dups);
        }
        // Deliberate dups plus accidental (algo, params) collisions make
        // duplicate-rich mixes the norm — exactly what the cache wants.
        assert!(dup_seeds >= 8, "skewed dup coverage: {dup_seeds}/25");
        assert!(tight >= 2, "no tight deadlines in the CI window: {tight}");
        assert!(generous >= 2, "no generous deadlines in the CI window: {generous}");
        assert_eq!(algos.len(), SERVE_ALGOS.len(), "algo pool not covered");
    }

    #[test]
    fn serve_fault_plans_are_deterministic_and_banded() {
        // A healthy share of the CI window must carry the mid-stream
        // crash-or-stall, and it must land inside some job's round band.
        let mut structured = 0;
        for seed in 1..=25u64 {
            let jobs = serve_job_mix(seed, 3).len();
            let plan = serve_fault_plan(seed, 3, jobs);
            assert_eq!(
                format!("{plan:?}"),
                format!("{:?}", serve_fault_plan(seed, 3, jobs))
            );
            let debug = format!("{plan:?}");
            if debug.contains("Crash") || debug.contains("Stall") {
                structured += 1;
            }
        }
        assert!(
            (4..=18).contains(&structured),
            "skewed serve fault coverage: {structured}/25"
        );
        // Single host: background noise only, no one to crash against.
        let lone = format!("{:?}", serve_fault_plan(7, 1, 5));
        assert!(!lone.contains("Crash") && !lone.contains("Stall"));
    }

    #[test]
    fn single_host_plans_have_no_structured_faults() {
        // With one host there is no peer to crash or stall relative to.
        let plan = random_fault_plan(9, 1);
        assert_eq!(format!("{plan:?}"), format!("{:?}", random_fault_plan(9, 1)));
    }
}
