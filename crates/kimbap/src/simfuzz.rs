//! Seed-derived fuzz inputs for the deterministic simulation backend,
//! shared by the `kimbap sim` subcommand and the simulation test suites.
//!
//! Everything here is a pure function of the seed: the fault plan a fuzz
//! run injects, the heartbeat configuration it runs under, and the CLI
//! command that replays it. Tests that fail on a seed print the replay
//! command and the CLI reconstructs the identical run — same graph, same
//! faults, same schedule — because both sides derive from this module.

use kimbap_comm::{FaultPlan, HeartbeatConfig, TransportConfig};
use std::time::Duration;

/// One splitmix64 step: advances `z` and returns a well-mixed draw.
pub fn splitmix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derives the randomized fault plan a simulated fuzz run injects for
/// `seed`: always some background frame noise (drop/duplicate/corrupt/
/// delay rates), plus a crash and/or a stall in the first few rounds
/// about a quarter of the time each. Pure function of the seed, so a
/// replay reconstructs the identical plan.
pub fn random_fault_plan(seed: u64, hosts: usize) -> FaultPlan {
    let mut z = seed ^ 0x5eed_fa57;
    let mut rate = |hi: u64| (splitmix(&mut z) % hi) as f64 / 1000.0;
    let mut plan = FaultPlan::new()
        .with_seed(seed ^ 0x0bad_cafe)
        .drop_rate(rate(30))
        .duplicate_rate(rate(20))
        .corrupt_rate(rate(20))
        .delay_rate(rate(50));
    if hosts >= 2 {
        if splitmix(&mut z) % 100 < 25 {
            let h = 1 + (splitmix(&mut z) as usize) % (hosts - 1);
            plan = plan.crash_host(h, 1 + splitmix(&mut z) % 3);
        }
        if splitmix(&mut z) % 100 < 25 {
            let h = (splitmix(&mut z) as usize) % hosts;
            let round = 1 + splitmix(&mut z) % 3;
            let millis = (150 + splitmix(&mut z) % 350) as u32;
            plan = plan.stall_host(h, round, millis);
        }
    }
    if let Some((from, to, round, chunk)) = chunk_drop(seed, hosts) {
        plan = plan.drop_chunk(from, to, round, chunk);
    }
    plan
}

/// The chunk-boundary fault a seed's fuzz plans carry, if any: about a
/// third of seeds drop the `k`-th wire chunk of one directed link in an
/// early round, so the 50-seed smoke exercises partial-stream reassembly
/// and chunk-targeted retransmit (not just whole-frame loss). Returns
/// `(from, to, round, chunk)`. Derived from its own splitmix salt so it
/// composes with the other seed-derived draws without perturbing them.
pub fn chunk_drop(seed: u64, hosts: usize) -> Option<(usize, usize, u64, u32)> {
    let mut z = seed ^ 0xc41c_0b0a;
    if hosts >= 2 && splitmix(&mut z) % 100 < 35 {
        let from = (splitmix(&mut z) as usize) % hosts;
        let to = (from + 1 + (splitmix(&mut z) as usize) % (hosts - 1)) % hosts;
        let round = 1 + splitmix(&mut z) % 3;
        // Low indices hit both the first data chunk and the stream's
        // terminator chunk on small payloads; an index past the stream
        // end is a harmless no-op, preserving plan determinism.
        let chunk = (splitmix(&mut z) % 4) as u32;
        Some((from, to, round, chunk))
    } else {
        None
    }
}

/// The permanent-kill a seed's elastic fuzz plan carries, if any: about
/// 40% of seeds kill one non-zero host within the first few rounds. Pure
/// function of the seed; [`random_kill_plan`] injects exactly this kill,
/// and the launcher uses it to pick the right convergence baseline (a
/// fired kill makes the run finish on the shrunk membership).
pub fn kill_victim(seed: u64, hosts: usize) -> Option<(usize, u64)> {
    let mut z = seed ^ 0x1057_4057;
    if hosts >= 2 && splitmix(&mut z) % 100 < 40 {
        let h = 1 + (splitmix(&mut z) as usize) % (hosts - 1);
        let round = 1 + splitmix(&mut z) % 4;
        Some((h, round))
    } else {
        None
    }
}

/// Derives the fault plan an elastic (`--allow-shrink`) fuzz run injects
/// for `seed`: the usual background frame noise plus, for the seeds
/// [`kill_victim`] selects, a permanent host kill — so crash → shrink →
/// re-converge interleavings are seed-fuzzable and replayable.
pub fn random_kill_plan(seed: u64, hosts: usize) -> FaultPlan {
    let mut z = seed ^ 0xe1a5_71c5;
    let mut rate = |hi: u64| (splitmix(&mut z) % hi) as f64 / 1000.0;
    let mut plan = FaultPlan::new()
        .with_seed(seed ^ 0x0bad_cafe)
        .drop_rate(rate(30))
        .duplicate_rate(rate(20))
        .corrupt_rate(rate(20))
        .delay_rate(rate(50));
    if let Some((h, round)) = kill_victim(seed, hosts) {
        plan = plan.kill_host(h, round);
    }
    if let Some((from, to, round, chunk)) = chunk_drop(seed, hosts) {
        plan = plan.drop_chunk(from, to, round, chunk);
    }
    plan
}

/// The live join a seed's churn fuzz plan carries, if any: about half
/// the seeds spawn one latent host (the cluster's spare capacity slot,
/// index `hosts`) that knocks `delay_ms` into the run. Pure function of
/// the seed; [`random_churn_plan`] injects exactly this join, and the
/// launcher uses it to pick the right convergence baseline (an admitted
/// join makes the run finish on the grown membership).
pub fn join_entry(seed: u64, hosts: usize) -> Option<(usize, u64)> {
    let mut z = seed ^ 0x6a01_4b0b;
    if hosts >= 2 && splitmix(&mut z) % 100 < 50 {
        // Delay 0 or 1 ms of virtual time: small graphs finish in a few
        // virtual milliseconds, so this lands the knock mid-run for most
        // seeds and past the finish line for a few — both interleavings
        // (admission and benign give-up) stay in the fuzzed population.
        let delay_ms = splitmix(&mut z) % 2;
        Some((hosts, delay_ms))
    } else {
        None
    }
}

/// Derives the fault plan a churn (`--allow-shrink --allow-grow`) fuzz
/// run injects for `seed`: the usual background frame noise, the
/// permanent kill [`kill_victim`] selects (~40% of seeds), and the live
/// join [`join_entry`] selects (~50% of seeds). The two draws are
/// independent, so the seed population covers join-only, kill-only,
/// join-then-kill, kill-then-join, and quiet runs — every grow/shrink
/// interleaving the elastic engine must survive, each replayable by
/// seed.
pub fn random_churn_plan(seed: u64, hosts: usize) -> FaultPlan {
    let mut plan = random_kill_plan(seed, hosts);
    if let Some((h, delay_ms)) = join_entry(seed, hosts) {
        plan = plan.join_host(h, delay_ms);
    }
    plan
}

/// The transport configuration simulated fuzz runs use: a fast heartbeat
/// (10 ms interval, 80 ms suspicion) so injected stalls are detected —
/// both delays elapse on the virtual clock, costing microseconds of wall
/// time.
pub fn sim_transport_config() -> TransportConfig {
    TransportConfig::with_heartbeat(HeartbeatConfig {
        interval: Duration::from_millis(10),
        suspect_after: Duration::from_millis(80),
    })
}

/// The exact CLI invocation that replays one simulated fuzz seed.
#[allow(clippy::too_many_arguments)]
pub fn replay_command(
    algo: &str,
    seed: u64,
    hosts: usize,
    threads: usize,
    scale: u32,
    ef: usize,
    allow_shrink: bool,
    allow_grow: bool,
) -> String {
    let shrink = if allow_shrink { " --allow-shrink" } else { "" };
    let grow = if allow_grow { " --allow-grow" } else { "" };
    format!(
        "kimbap sim --algo {algo} --seed {seed} --hosts {hosts} --threads {threads} \
         --scale {scale} --ef {ef}{shrink}{grow} --trace trace.jsonl"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plans_are_seed_deterministic() {
        for seed in 0..64 {
            assert_eq!(
                format!("{:?}", random_fault_plan(seed, 3)),
                format!("{:?}", random_fault_plan(seed, 3))
            );
        }
    }

    #[test]
    fn fault_plans_vary_with_seed() {
        let distinct = (0..64)
            .map(|s| format!("{:?}", random_fault_plan(s, 3)))
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 32, "plans should differ across seeds");
    }

    #[test]
    fn kill_plans_are_deterministic_and_cover_both_modes() {
        // The CI fuzz smoke runs seeds 1..=25: a healthy mix of seeds
        // with and without a permanent kill must fall in that window.
        let kills = (1..=25).filter(|&s| kill_victim(s, 4).is_some()).count();
        assert!((5..=20).contains(&kills), "skewed kill coverage: {kills}/25");
        for seed in 0..32 {
            assert_eq!(
                format!("{:?}", random_kill_plan(seed, 4)),
                format!("{:?}", random_kill_plan(seed, 4))
            );
        }
    }

    #[test]
    fn chunk_drops_are_deterministic_and_well_formed() {
        // The CI fuzz smoke runs seeds 1..=25: a healthy share of them
        // must carry a chunk-targeted drop so partial-stream recovery is
        // exercised, and the derived link must always be a remote pair.
        let hits = (1..=25).filter(|&s| chunk_drop(s, 4).is_some()).count();
        assert!((5..=18).contains(&hits), "skewed chunk-drop coverage: {hits}/25");
        for seed in 0..64 {
            assert_eq!(chunk_drop(seed, 4), chunk_drop(seed, 4));
            if let Some((from, to, round, chunk)) = chunk_drop(seed, 4) {
                assert!(from < 4 && to < 4 && from != to);
                assert!((1..=3).contains(&round));
                assert!(chunk < 4);
            }
        }
        assert_eq!(chunk_drop(7, 1), None, "no peers, no chunk faults");
    }

    #[test]
    fn churn_plans_are_deterministic_and_cover_all_interleavings() {
        // The CI churn fuzz runs seeds 1..=25: that window must contain
        // joins, kills, AND at least a few seeds drawing both at once
        // (the join-then-kill / kill-then-join interleavings the grow
        // and shrink recovery paths have to compose under).
        let joins = (1..=25).filter(|&s| join_entry(s, 4).is_some()).count();
        assert!((8..=20).contains(&joins), "skewed join coverage: {joins}/25");
        let both = (1..=25)
            .filter(|&s| join_entry(s, 4).is_some() && kill_victim(s, 4).is_some())
            .count();
        assert!(both >= 2, "no seeds mix a join with a kill: {both}/25");
        for seed in 0..32 {
            assert_eq!(
                format!("{:?}", random_churn_plan(seed, 4)),
                format!("{:?}", random_churn_plan(seed, 4))
            );
            if let Some((h, delay_ms)) = join_entry(seed, 4) {
                assert_eq!(h, 4, "the joiner is the spare capacity slot");
                assert!(delay_ms <= 1);
                assert_eq!(
                    random_churn_plan(seed, 4).latent_hosts(),
                    vec![4],
                    "the churn plan must declare the joiner latent"
                );
            }
        }
    }

    #[test]
    fn single_host_plans_have_no_structured_faults() {
        // With one host there is no peer to crash or stall relative to.
        let plan = random_fault_plan(9, 1);
        assert_eq!(format!("{plan:?}"), format!("{:?}", random_fault_plan(9, 1)));
    }
}
