//! Kimbap: a node-property map system for distributed graph analytics.
//!
//! This is the umbrella crate of the reproduction workspace. It hosts the
//! [`engine`] that executes compiler-generated BSP plans, and re-exports
//! the member crates under one roof:
//!
//! * [`kimbap_graph`] — CSR graphs and synthetic generators;
//! * [`kimbap_comm`] — the simulated cluster (hosts, collectives, pools);
//! * [`kimbap_dist`] — partitioning policies and per-host `DistGraph`s;
//! * [`kimbap_npm`] — the distributed node-property map (GAR + CF + SGR);
//! * [`kimbap_compiler`] — the vertex-program compiler.
//!
//! The performance-grade algorithm implementations live in `kimbap-algos`
//! (not re-exported here to keep the dependency graph acyclic: its tests
//! cross-validate against this crate's engine).
//!
//! # Example: compile and run CC-SV end to end
//!
//! ```
//! use kimbap::engine::Engine;
//! use kimbap::prelude::*;
//! use kimbap_compiler::{compile, programs, OptLevel};
//!
//! let g = gen::grid_road(6, 6, 0);
//! let plan = compile(&programs::cc_sv(), OptLevel::Full);
//! let parts = partition(&g, Policy::EdgeCutBlocked, 2);
//! let outputs = Cluster::new(2).run(|ctx| {
//!     Engine::new(&parts[ctx.host()], ctx, &plan).run(ctx)
//! });
//! // Map 0 is `parent`; a grid is connected, so every master label is 0.
//! assert!(outputs
//!     .iter()
//!     .flat_map(|o| o.map_values[0].iter())
//!     .all(|&(_, v)| v == 0));
//! ```

pub mod elastic;
pub mod engine;
pub mod serve;
pub mod simfuzz;

/// One-stop imports for applications built on Kimbap.
pub mod prelude {
    pub use kimbap_comm::{Cluster, CommError, FaultPlan, HostCtx, HostStats};
    pub use kimbap_dist::{assemble_dist_graph, partition, DistGraph, Policy};
    pub use kimbap_graph::{gen, Graph, GraphBuilder, GraphStats, NodeId, Weight};
    pub use kimbap_npm::{
        BoolReducer, Max, Min, NodePropMap, Npm, Or, ReduceOp, Sum, SumReducer, Variant,
    };
}
