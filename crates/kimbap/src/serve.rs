//! `kimbap serve`: multi-tenant job scheduling over resident graphs.
//!
//! A single `kimbap run` loads the graph, executes one algorithm, and
//! exits; the NPM design only pays off when many analytics queries
//! amortize one resident partitioned graph. This module turns the engine
//! into that long-lived server: each host keeps its `DistGraph` partition
//! resident in a [`HostServer`], accepts a local admission queue of
//! [`JobSpec`]s (algorithm, opaque params tag, priority, deadline), and
//! executes them under an **agreed schedule** so every host runs the same
//! jobs in the same order.
//!
//! The moving parts, in the order a batch flows through them:
//!
//! * **Admission → agreement.** Hosts submit jobs independently, so no
//!   host sees the global queue. [`HostServer::serve_batch`] starts with
//!   one all-to-all exchange of the local queues; every host then sorts
//!   the union by `(priority desc, deadline budget asc, submitter, seq)`
//!   and executes that canonical order. No coordinator, one collective.
//! * **Result cache.** Keyed by `(graph epoch, algorithm, params)` with
//!   bounded LRU capacity. Because the schedule and the cache operations
//!   are identical on every host, the per-host caches stay in lockstep —
//!   a hit on one host is a hit on all, so a cached job completes without
//!   a single collective. Hit/miss/eviction counts surface in
//!   [`kimbap_comm::HostStats`] and the tracked bench JSON.
//! * **Deadline escalation.** A job deadline is stamped into the
//!   [`HostCtx`] as a *job-scoped* deadline that clamps every collective
//!   the job runs (see [`HostCtx::set_job_deadline`]); expiry escalates
//!   through the existing timeout → crash-signal → recovery path. At the
//!   next attempt the hosts agree (min all-reduce) which job ran out of
//!   budget, mark it [`JobStatus::DeadlineMissed`], and skip it.
//! * **Recovery.** The whole batch runs inside one
//!   [`HostCtx::run_recovering`] region and the result cache doubles as
//!   the checkpoint: after a crash the schedule replays from the top and
//!   every already-completed job replays as a cache hit, so recovery cost
//!   is proportional to the interrupted job, not the whole batch.
//! * **Job-banded rounds.** Job `k` publishes BSP rounds in the band
//!   `k * JOB_ROUND_STRIDE ..`, so round-targeted fault plans and traces
//!   can address "round `r` of job `k`" across a multi-job schedule.
//!
//! The differential obligation (tested by `serve_differential.rs` and the
//! `kimbap serve-sim` fuzz loop): a batch served concurrently from many
//! hosts' queues is byte-identical, job for job, to the same jobs run
//! serially.

use crate::engine::{Engine, EngineConfig};
use kimbap_algos::louvain::CommunityResult;
use kimbap_algos::msf::MsfHostResult;
use kimbap_algos::{
    cc, compose_labels, leiden, louvain, merge_master_values, mis, msf, LouvainConfig, NpmBuilder,
};
use kimbap_comm::{Cluster, Deadline, HostCtx, JOB_ROUND_STRIDE};
use kimbap_compiler::{compile, programs, CompiledProgram, OptLevel};
use kimbap_dist::DistGraph;
use kimbap_graph::NodeId;
use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::HashSet;
use std::sync::OnceLock;
use std::time::Duration;

/// The analytics algorithms a serve job can request.
///
/// All of them run on the server's single resident partition (the serve
/// CLI partitions with [`kimbap_dist::Policy::EdgeCutBlocked`], the one
/// policy every algorithm accepts), so switching algorithms never
/// repartitions the graph. `cc-sv` runs through the compiled-plan engine
/// — exercising the engine's job-context plumbing ([`EngineConfig::round_base`])
/// — the rest through the hand-written implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Connected components, Shiloach–Vishkin (compiled engine plan).
    CcSv,
    /// Connected components, label propagation.
    CcLp,
    /// Connected components, short-cutting label propagation.
    CcSclp,
    /// Maximal independent set.
    Mis,
    /// Minimum spanning forest.
    Msf,
    /// Louvain community detection.
    Louvain,
    /// Leiden community detection.
    Leiden,
}

impl Algo {
    /// Parses the CLI spelling (the same names `kimbap run` accepts).
    pub fn parse(s: &str) -> Option<Algo> {
        Some(match s {
            "cc-sv" => Algo::CcSv,
            "cc-lp" => Algo::CcLp,
            "cc-sclp" => Algo::CcSclp,
            "mis" => Algo::Mis,
            "msf" => Algo::Msf,
            "louvain" => Algo::Louvain,
            "leiden" => Algo::Leiden,
            _ => return None,
        })
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Algo::CcSv => "cc-sv",
            Algo::CcLp => "cc-lp",
            Algo::CcSclp => "cc-sclp",
            Algo::Mis => "mis",
            Algo::Msf => "msf",
            Algo::Louvain => "louvain",
            Algo::Leiden => "leiden",
        }
    }

    /// Stable wire/cache id.
    fn id(self) -> u64 {
        match self {
            Algo::CcSv => 0,
            Algo::CcLp => 1,
            Algo::CcSclp => 2,
            Algo::Mis => 3,
            Algo::Msf => 4,
            Algo::Louvain => 5,
            Algo::Leiden => 6,
        }
    }

    fn from_id(id: u64) -> Option<Algo> {
        Some(match id {
            0 => Algo::CcSv,
            1 => Algo::CcLp,
            2 => Algo::CcSclp,
            3 => Algo::Mis,
            4 => Algo::Msf,
            5 => Algo::Louvain,
            6 => Algo::Leiden,
            _ => return None,
        })
    }
}

/// One submitted analytics job, as it sits in a host's admission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Algorithm to run.
    pub algo: Algo,
    /// Opaque client tag: part of the cache key and the agreed order, not
    /// interpreted by execution — two submissions with equal `(algo,
    /// params)` are the *same query* and share one cached result.
    pub params: u64,
    /// Higher runs earlier in the agreed schedule.
    pub priority: u8,
    /// Wall-clock budget from the moment the job starts executing; a job
    /// that exceeds it is marked [`JobStatus::DeadlineMissed`] rather
    /// than wedging the batch. `None` waits as long as it takes.
    pub deadline: Option<Duration>,
}

impl JobSpec {
    /// A plain no-priority, no-deadline submission.
    pub fn new(algo: Algo) -> JobSpec {
        JobSpec {
            algo,
            params: 0,
            priority: 0,
            deadline: None,
        }
    }

    /// The deadline in whole milliseconds (the wire/ordering granularity).
    fn deadline_ms(&self) -> Option<u64> {
        self.deadline.map(|d| d.as_millis() as u64)
    }
}

/// A job placed into the agreed schedule: the spec plus its provenance
/// (which host submitted it, at which position of that host's queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledJob {
    /// The submitted spec.
    pub spec: JobSpec,
    /// Logical rank of the submitting host.
    pub submitter: usize,
    /// Position in the submitter's local queue.
    pub seq: usize,
}

/// One host's share of a completed job's result, in the algorithm's
/// native shape. Merging across hosts stays caller-side (via
/// [`merge_job_outputs`]) so the cache stores exactly what a fresh run
/// produces — identical partials merge to identical outputs.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutput {
    /// Per-master `u64` values (the cc family).
    Masters(Vec<(NodeId, u64)>),
    /// Per-master set membership (MIS).
    MisSet(Vec<(NodeId, bool)>),
    /// This host's forest edges (MSF).
    Forest(MsfHostResult),
    /// This host's community mappings (Louvain/Leiden).
    Communities(CommunityResult),
}

/// How one scheduled job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The job produced its output — freshly computed or served from the
    /// result cache.
    Completed {
        /// True when the output came from the result cache.
        cached: bool,
    },
    /// The job's deadline expired before it completed; the schedule
    /// agreed to skip it and moved on.
    DeadlineMissed,
}

impl JobStatus {
    /// True for a completed job answered from the result cache.
    pub fn is_cached(self) -> bool {
        matches!(self, JobStatus::Completed { cached: true })
    }
}

/// One host's record of one scheduled job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// The job, in agreed-schedule position.
    pub job: ScheduledJob,
    /// How it ended.
    pub status: JobStatus,
    /// This host's output partial (`None` iff the deadline was missed).
    pub output: Option<JobOutput>,
}

/// Result-cache key: `(graph epoch, algorithm, params)`. The epoch is
/// part of the key so bumping it (a graph swap) makes every older entry
/// unreachable — stale results are structurally impossible to serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    epoch: u64,
    algo: Algo,
    params: u64,
}

/// Bounded LRU result cache. A `Vec` in recency order (most recent last)
/// keeps iteration — and therefore eviction — deterministic, which the
/// lockstep-cache invariant of [`HostServer::serve_batch`] relies on;
/// serve capacities are small enough that the linear scan is noise next
/// to running an algorithm.
struct ResultCache {
    capacity: usize,
    entries: Vec<(CacheKey, JobOutput)>,
}

impl ResultCache {
    fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity: capacity.max(1),
            entries: Vec::new(),
        }
    }

    /// Looks `key` up, refreshing its recency on a hit.
    fn get(&mut self, key: &CacheKey) -> Option<JobOutput> {
        let i = self.entries.iter().position(|(k, _)| k == key)?;
        let e = self.entries.remove(i);
        let out = e.1.clone();
        self.entries.push(e);
        Some(out)
    }

    /// Inserts (or refreshes) `key`, returning how many entries were
    /// evicted to make room.
    fn insert(&mut self, key: CacheKey, out: JobOutput) -> u64 {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(i);
        }
        self.entries.push((key, out));
        let mut evicted = 0;
        while self.entries.len() > self.capacity {
            self.entries.remove(0);
            evicted += 1;
        }
        evicted
    }

    /// Drops every entry older than `epoch`, returning the count.
    fn purge_epochs_before(&mut self, epoch: u64) -> u64 {
        let before = self.entries.len();
        self.entries.retain(|(k, _)| k.epoch >= epoch);
        (before - self.entries.len()) as u64
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// One host's long-lived serving state: the result cache and the graph
/// epoch. Lives across batches (and across graph swaps) on the host's
/// side of the cluster closure; the resident `DistGraph` itself is passed
/// into [`HostServer::serve_batch`] by reference so the caller controls
/// its lifetime.
pub struct HostServer {
    cache: ResultCache,
    epoch: u64,
}

impl HostServer {
    /// A fresh server at epoch 0 with a result cache bounded to
    /// `cache_capacity` entries (minimum 1).
    pub fn new(cache_capacity: usize) -> HostServer {
        HostServer {
            cache: ResultCache::new(cache_capacity),
            epoch: 0,
        }
    }

    /// The current graph epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Live entries in the result cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Advances the graph epoch — the caller does this exactly when it
    /// swaps in a new resident graph. Every cache entry keyed to an older
    /// epoch becomes unreachable immediately (and is purged, counted as
    /// evictions, at the start of the next batch). All hosts must bump in
    /// lockstep, like every other serve-side operation.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Serves one batch of jobs over the resident partition `dg`.
    ///
    /// Collective: every host calls this with its own `local` admission
    /// queue, the schedules are agreed via one all-to-all exchange, and
    /// every host returns reports in the same agreed order with the same
    /// statuses. Faults (and deadline misses) recover inside this call;
    /// it panics out only on a permanent kill or an exhausted recovery
    /// budget, like any [`HostCtx::run_recovering`] region.
    pub fn serve_batch(
        &mut self,
        ctx: &HostCtx,
        dg: &DistGraph,
        local: &[JobSpec],
    ) -> Vec<JobReport> {
        let epoch = self.epoch;
        let cache = &mut self.cache;
        // An epoch bump since the last batch leaves stale entries behind;
        // purge them up front and count them as evictions.
        let purged = cache.purge_epochs_before(epoch);
        ctx.add_cache_events(0, 0, purged);
        let b = NpmBuilder::default();
        // Jobs (by schedule index) whose deadline the hosts agreed was
        // missed, and the job the current attempt is executing. Both live
        // outside the recovery closure so state survives replays.
        let missed: RefCell<HashSet<usize>> = RefCell::new(HashSet::new());
        let in_flight: Cell<Option<(usize, Deadline)>> = Cell::new(None);
        ctx.run_recovering(|ctx| {
            // A replayed attempt may still carry the aborted job's
            // deadline — job-scoped or the ambient one an engine phase
            // stamped before dying; clear both before the first collective.
            ctx.set_job_deadline(None);
            ctx.set_deadline(Deadline::none());
            // Deadline escalation: if the previous attempt aborted inside
            // a job whose budget has run out, agree (min all-reduce — any
            // single expired host suffices) to mark it missed and skip it
            // on this and every later attempt.
            let candidate = match in_flight.take() {
                Some((k, dl)) if dl.expired() => k as u64,
                _ => u64::MAX,
            };
            let expired = ctx.all_reduce_u64(candidate, u64::min);
            if expired != u64::MAX {
                missed.borrow_mut().insert(expired as usize);
            }
            let schedule = agree_schedule(ctx, local);
            let mut reports = Vec::with_capacity(schedule.len());
            for (k, job) in schedule.into_iter().enumerate() {
                if missed.borrow().contains(&k) {
                    reports.push(JobReport {
                        job,
                        status: JobStatus::DeadlineMissed,
                        output: None,
                    });
                    continue;
                }
                let key = CacheKey {
                    epoch,
                    algo: job.spec.algo,
                    params: job.spec.params,
                };
                if let Some(out) = cache.get(&key) {
                    // Lockstep caches: every host hits together, so a
                    // cached job involves no collective at all. This is
                    // also what makes the cache a free checkpoint — on a
                    // replay, completed jobs take this path.
                    ctx.add_cache_events(1, 0, 0);
                    reports.push(JobReport {
                        job,
                        status: JobStatus::Completed { cached: true },
                        output: Some(out),
                    });
                    continue;
                }
                ctx.add_cache_events(0, 1, 0);
                // Band the job's rounds so fault plans and traces can
                // address "round r of job k".
                let band = k as u64 * JOB_ROUND_STRIDE;
                ctx.set_round(band);
                let dl = job
                    .spec
                    .deadline
                    .map(|budget| Deadline::after("job", budget));
                in_flight.set(Some((k, dl.unwrap_or_else(Deadline::none))));
                ctx.set_job_deadline(dl);
                let out = exec_algo(job.spec.algo, dg, ctx, &b, band);
                ctx.set_job_deadline(None);
                in_flight.set(None);
                let evicted = cache.insert(key, out.clone());
                ctx.add_cache_events(0, 0, evicted);
                reports.push(JobReport {
                    job,
                    status: JobStatus::Completed { cached: false },
                    output: Some(out),
                });
            }
            reports
        })
    }
}

/// Agrees the batch schedule: one all-to-all exchange of the hosts' local
/// queues, then a canonical sort every host computes identically —
/// priority first (descending), then deadline budget (tightest first,
/// `None` last), then submitter rank and queue position as the total
/// tiebreak.
fn agree_schedule(ctx: &HostCtx, local: &[JobSpec]) -> Vec<ScheduledJob> {
    let me = ctx.host();
    let hosts = ctx.num_hosts();
    let mine = encode_jobs(local);
    let outgoing = (0..hosts)
        .map(|h| if h == me { Vec::new() } else { mine.clone() })
        .collect();
    let incoming = ctx.exchange(outgoing);
    let mut all = Vec::new();
    for (h, buf) in incoming.iter().enumerate() {
        let specs = if h == me {
            local.to_vec()
        } else {
            decode_jobs(buf)
        };
        for (seq, spec) in specs.into_iter().enumerate() {
            all.push(ScheduledJob {
                spec,
                submitter: h,
                seq,
            });
        }
    }
    all.sort_by_key(|j| {
        (
            Reverse(j.spec.priority),
            j.spec.deadline_ms().unwrap_or(u64::MAX),
            j.submitter,
            j.seq,
        )
    });
    all
}

/// Fixed-size wire records for the admission exchange: four `u64` words
/// per job. CRC framing below already guards the bytes, so decode treats
/// malformation as a protocol bug, not recoverable input.
fn encode_jobs(jobs: &[JobSpec]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(jobs.len() * 32);
    for j in jobs {
        for w in [
            j.algo.id(),
            u64::from(j.priority),
            j.params,
            j.deadline_ms().unwrap_or(u64::MAX),
        ] {
            buf.extend_from_slice(&w.to_le_bytes());
        }
    }
    buf
}

fn decode_jobs(buf: &[u8]) -> Vec<JobSpec> {
    assert!(buf.len().is_multiple_of(32), "malformed job-queue payload");
    buf.chunks_exact(32)
        .map(|c| {
            let w = |i: usize| u64::from_le_bytes(c[i * 8..(i + 1) * 8].try_into().unwrap());
            JobSpec {
                algo: Algo::from_id(w(0)).expect("malformed job algo id"),
                priority: w(1) as u8,
                params: w(2),
                deadline: match w(3) {
                    u64::MAX => None,
                    ms => Some(Duration::from_millis(ms)),
                },
            }
        })
        .collect()
}

/// The compiled CC-SV plan, shared by every serve job that requests it.
static CC_SV_PLAN: OnceLock<CompiledProgram> = OnceLock::new();

/// Runs one algorithm on this host's resident partition. `cc-sv` goes
/// through the compiled-plan engine with [`EngineConfig::round_base`] set
/// to the job's round band; the hand-written algorithms advance rounds
/// relatively (`set_round(current_round() + 1)`), so the band the caller
/// pre-stamped carries through on its own.
fn exec_algo(algo: Algo, dg: &DistGraph, ctx: &HostCtx, b: &NpmBuilder, band: u64) -> JobOutput {
    match algo {
        Algo::CcSv => {
            let plan = CC_SV_PLAN.get_or_init(|| compile(&programs::cc_sv(), OptLevel::Full));
            let cfg = EngineConfig {
                round_base: band,
                ..EngineConfig::default()
            };
            let out = Engine::with_config(dg, ctx, plan, cfg).run(ctx);
            JobOutput::Masters(out.map_values.into_iter().next().unwrap_or_default())
        }
        Algo::CcLp => JobOutput::Masters(cc::cc_lp(dg, ctx, b)),
        Algo::CcSclp => JobOutput::Masters(cc::cc_sclp(dg, ctx, b)),
        Algo::Mis => JobOutput::MisSet(mis(dg, ctx, b)),
        Algo::Msf => JobOutput::Forest(msf(dg, ctx, b)),
        Algo::Louvain => JobOutput::Communities(louvain(dg, ctx, b, &LouvainConfig::default())),
        Algo::Leiden => JobOutput::Communities(leiden(dg, ctx, b, &LouvainConfig::default())),
    }
}

/// Merges one job's per-host output partials into the canonical `u64`
/// fingerprint the CLI writes and the differential suites diff: labels
/// for the cc family and Louvain/Leiden, 0/1 membership for MIS, and
/// `[total weight, edge count, (u, v, w)...]` with sorted edges for MSF.
/// `n` is the graph's node count.
pub fn merge_job_outputs(algo: Algo, n: usize, outs: Vec<JobOutput>) -> Vec<u64> {
    match algo {
        Algo::CcSv | Algo::CcLp | Algo::CcSclp => {
            let ph = outs
                .into_iter()
                .map(|o| match o {
                    JobOutput::Masters(v) => v,
                    other => panic!("cc job produced {other:?}"),
                })
                .collect();
            merge_master_values(n, ph)
        }
        Algo::Mis => {
            let ph = outs
                .into_iter()
                .map(|o| match o {
                    JobOutput::MisSet(v) => v,
                    other => panic!("mis job produced {other:?}"),
                })
                .collect();
            merge_master_values(n, ph)
                .into_iter()
                .map(u64::from)
                .collect()
        }
        Algo::Msf => {
            let ph = outs
                .into_iter()
                .map(|o| match o {
                    JobOutput::Forest(f) => f,
                    other => panic!("msf job produced {other:?}"),
                })
                .collect();
            let (mut edges, total) = msf::merge_forest(ph);
            edges.sort_unstable();
            let mut fp = vec![total, edges.len() as u64];
            for (u, v, w) in edges {
                fp.extend([u as u64, v as u64, w]);
            }
            fp
        }
        Algo::Louvain | Algo::Leiden => {
            let ph: Vec<CommunityResult> = outs
                .into_iter()
                .map(|o| match o {
                    JobOutput::Communities(c) => c,
                    other => panic!("community job produced {other:?}"),
                })
                .collect();
            compose_labels(n, &ph).into_iter().map(u64::from).collect()
        }
    }
}

/// The serial baseline the differential suites compare against: one
/// algorithm run alone on `cluster` (the `kimbap run` execution path,
/// minus the CLI), canonicalized with [`merge_job_outputs`]. Uses the
/// same per-host partitions the server holds resident, so
/// partition-dependent outputs (Louvain's merge order) are comparable.
pub fn serial_reference(n: usize, parts: &[DistGraph], cluster: &Cluster, algo: Algo) -> Vec<u64> {
    let outs = cluster.run(|ctx| {
        ctx.run_recovering(|ctx| exec_algo(algo, &parts[ctx.host()], ctx, &NpmBuilder::default(), 0))
    });
    merge_job_outputs(algo, n, outs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(params: u64) -> CacheKey {
        CacheKey {
            epoch: 0,
            algo: Algo::CcLp,
            params,
        }
    }

    fn out(v: u64) -> JobOutput {
        JobOutput::Masters(vec![(0, v)])
    }

    #[test]
    fn cache_is_lru_and_bounded() {
        let mut c = ResultCache::new(2);
        assert_eq!(c.insert(key(1), out(1)), 0);
        assert_eq!(c.insert(key(2), out(2)), 0);
        // Touch 1 so 2 becomes the eviction victim.
        assert_eq!(c.get(&key(1)), Some(out(1)));
        assert_eq!(c.insert(key(3), out(3)), 1);
        assert_eq!(c.get(&key(2)), None, "LRU victim must be gone");
        assert_eq!(c.get(&key(1)), Some(out(1)));
        assert_eq!(c.get(&key(3)), Some(out(3)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn cache_purges_stale_epochs() {
        let mut c = ResultCache::new(8);
        c.insert(key(1), out(1));
        c.insert(
            CacheKey {
                epoch: 1,
                algo: Algo::CcLp,
                params: 1,
            },
            out(9),
        );
        assert_eq!(c.purge_epochs_before(1), 1);
        assert_eq!(c.get(&key(1)), None, "epoch-0 entry must be purged");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn job_wire_roundtrip() {
        let jobs = vec![
            JobSpec {
                algo: Algo::Louvain,
                params: 7,
                priority: 3,
                deadline: Some(Duration::from_millis(250)),
            },
            JobSpec::new(Algo::CcSv),
            JobSpec {
                algo: Algo::Msf,
                params: u64::MAX,
                priority: 255,
                deadline: None,
            },
        ];
        assert_eq!(decode_jobs(&encode_jobs(&jobs)), jobs);
        assert_eq!(decode_jobs(&[]), vec![]);
    }

    #[test]
    fn algo_ids_roundtrip() {
        for algo in [
            Algo::CcSv,
            Algo::CcLp,
            Algo::CcSclp,
            Algo::Mis,
            Algo::Msf,
            Algo::Louvain,
            Algo::Leiden,
        ] {
            assert_eq!(Algo::from_id(algo.id()), Some(algo));
            assert_eq!(Algo::parse(algo.name()), Some(algo));
        }
        assert_eq!(Algo::from_id(7), None);
        assert_eq!(Algo::parse("bogus"), None);
    }

    #[test]
    fn schedule_order_is_priority_deadline_then_provenance() {
        // Single host: agreement degenerates to the canonical sort.
        let jobs = vec![
            JobSpec::new(Algo::CcLp),
            JobSpec {
                algo: Algo::Mis,
                params: 0,
                priority: 2,
                deadline: Some(Duration::from_millis(500)),
            },
            JobSpec {
                algo: Algo::Msf,
                params: 0,
                priority: 2,
                deadline: Some(Duration::from_millis(100)),
            },
            JobSpec {
                algo: Algo::Louvain,
                params: 0,
                priority: 2,
                deadline: None,
            },
        ];
        let orders = Cluster::new(1).run(|ctx| agree_schedule(ctx, &jobs));
        let algos: Vec<Algo> = orders[0].iter().map(|j| j.spec.algo).collect();
        // Priority 2 first — tightest deadline leading, deadline-less
        // last — then the priority-0 submission.
        assert_eq!(algos, vec![Algo::Msf, Algo::Mis, Algo::Louvain, Algo::CcLp]);
        assert!(orders[0].iter().all(|j| j.submitter == 0));
        assert_eq!(orders[0][0].seq, 2);
    }

    #[test]
    fn schedules_agree_across_hosts() {
        // Three hosts with different local queues must compute identical
        // schedules, interleaved by priority before provenance.
        let queues = vec![
            vec![JobSpec::new(Algo::CcLp)],
            vec![JobSpec {
                algo: Algo::Mis,
                params: 4,
                priority: 9,
                deadline: None,
            }],
            vec![JobSpec::new(Algo::CcSv), JobSpec::new(Algo::Louvain)],
        ];
        let q = &queues;
        let schedules = Cluster::new(3).run(|ctx| agree_schedule(ctx, &q[ctx.host()]));
        assert_eq!(schedules[0], schedules[1]);
        assert_eq!(schedules[1], schedules[2]);
        assert_eq!(schedules[0].len(), 4);
        assert_eq!(schedules[0][0].spec.algo, Algo::Mis, "priority 9 first");
        assert_eq!(schedules[0][0].submitter, 1);
    }
}
