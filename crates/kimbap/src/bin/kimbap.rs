//! The `kimbap` command-line tool: generate graphs, inspect them, run the
//! distributed algorithms on a simulated cluster, and compile vertex
//! programs.
//!
//! ```text
//! kimbap gen --kind rmat --scale 12 --ef 8 --out g.kg
//! kimbap stats g.kg
//! kimbap run cc-sv g.kg --hosts 4 --threads 2
//! kimbap run louvain g.kg --hosts 4
//! kimbap compile program.kv [--no-opt]
//! ```

use kimbap::prelude::*;
use kimbap_algos::{
    cc, compose_labels, leiden, louvain, merge_master_values, mis, msf, LouvainConfig, NpmBuilder,
};
use kimbap_compiler::{classify_program, compile, frontend, OptLevel};
use kimbap_graph::io;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("compile") => cmd_compile(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  kimbap gen --kind <rmat|grid|er> [--scale N] [--ef N] [--rows N] [--cols N]
             [--nodes N] [--edges N] [--seed N] [--weights MAX] --out FILE
  kimbap stats FILE
  kimbap run <cc-sv|cc-lp|cc-sclp|mis|msf|louvain|leiden> FILE
             [--hosts N] [--threads N]
  kimbap compile FILE.kv [--no-opt]

graphs are stored in the kimbap binary format (.kg) or may be text edge
lists; vertex programs (.kv) use the surface syntax of kimbap-compiler's
frontend.";

type CliResult = Result<(), String>;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for {name}: {v}")),
    }
}

fn load_graph(path: &str) -> Result<Graph, String> {
    let f = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut r = BufReader::new(f);
    if path.ends_with(".kg") {
        io::read_binary(&mut r).map_err(|e| format!("read {path}: {e}"))
    } else {
        io::read_edge_list(r).map_err(|e| format!("read {path}: {e}"))
    }
}

fn cmd_gen(args: &[String]) -> CliResult {
    let kind = flag(args, "--kind").ok_or("missing --kind")?;
    let seed = flag_num(args, "--seed", 42u64)?;
    let out = flag(args, "--out").ok_or("missing --out")?;
    let mut g = match kind.as_str() {
        "rmat" => gen::rmat(
            flag_num(args, "--scale", 12u32)?,
            flag_num(args, "--ef", 8usize)?,
            seed,
        ),
        "grid" => gen::grid_road(
            flag_num(args, "--rows", 100usize)?,
            flag_num(args, "--cols", 100usize)?,
            seed,
        ),
        "er" => gen::erdos_renyi(
            flag_num(args, "--nodes", 10_000usize)?,
            flag_num(args, "--edges", 50_000usize)?,
            seed,
        ),
        other => return Err(format!("unknown kind '{other}'")),
    };
    if let Some(maxw) = flag(args, "--weights") {
        let maxw: u64 = maxw.parse().map_err(|_| "bad --weights")?;
        g = gen::with_random_weights(&g, maxw, seed ^ WEIGHT_SEED_SALT);
    }
    let f = File::create(&out).map_err(|e| format!("create {out}: {e}"))?;
    io::write_binary(&g, BufWriter::new(f)).map_err(|e| e.to_string())?;
    println!("wrote {} ({})", out, GraphStats::of(&g));
    Ok(())
}

/// Salt mixed into derived weight seeds.
const WEIGHT_SEED_SALT: u64 = 0x5eed;

fn cmd_stats(args: &[String]) -> CliResult {
    let path = args.first().ok_or("missing FILE")?;
    let g = load_graph(path)?;
    println!("{}", GraphStats::of(&g));
    println!("symmetric: {}", g.is_symmetric());
    Ok(())
}

fn cmd_run(args: &[String]) -> CliResult {
    let algo = args.first().ok_or("missing algorithm")?.clone();
    let path = args.get(1).ok_or("missing FILE")?.clone();
    let hosts: usize = flag_num(args, "--hosts", 2)?;
    let threads: usize = flag_num(args, "--threads", 2)?;
    let g = load_graph(&path)?;
    println!("input: {}", GraphStats::of(&g));

    let policy = match algo.as_str() {
        "louvain" | "leiden" => Policy::EdgeCutBlocked,
        _ => Policy::CartesianVertexCut,
    };
    let parts = partition(&g, policy, hosts);
    let b = NpmBuilder::default();
    let cluster = Cluster::with_threads(hosts, threads);
    let t = Instant::now();
    match algo.as_str() {
        "cc-sv" | "cc-lp" | "cc-sclp" => {
            let per_host = cluster.run(|ctx| {
                let dg = &parts[ctx.host()];
                match algo.as_str() {
                    "cc-sv" => cc::cc_sv(dg, ctx, &b),
                    "cc-lp" => cc::cc_lp(dg, ctx, &b),
                    _ => cc::cc_sclp(dg, ctx, &b),
                }
            });
            let labels = merge_master_values(g.num_nodes(), per_host);
            let mut comps = labels.clone();
            comps.sort_unstable();
            comps.dedup();
            println!("{} components in {:.2?}", comps.len(), t.elapsed());
        }
        "mis" => {
            let per_host = cluster.run(|ctx| mis(&parts[ctx.host()], ctx, &b));
            let set = merge_master_values(g.num_nodes(), per_host);
            println!(
                "independent set of {} nodes in {:.2?}",
                set.iter().filter(|&&x| x).count(),
                t.elapsed()
            );
        }
        "msf" => {
            let per_host = cluster.run(|ctx| msf(&parts[ctx.host()], ctx, &b));
            let (edges, total) = kimbap_algos::msf::merge_forest(per_host);
            println!(
                "forest: {} edges, weight {total}, in {:.2?}",
                edges.len(),
                t.elapsed()
            );
        }
        "louvain" | "leiden" => {
            let cfg = LouvainConfig::default();
            let results = cluster.run(|ctx| {
                let dg = &parts[ctx.host()];
                if algo == "louvain" {
                    louvain(dg, ctx, &b, &cfg)
                } else {
                    leiden(dg, ctx, &b, &cfg)
                }
            });
            let labels = compose_labels(g.num_nodes(), &results);
            let mut comms = labels.clone();
            comms.sort_unstable();
            comms.dedup();
            println!(
                "q={:.4}, {} communities, {} levels, in {:.2?}",
                results[0].modularity,
                comms.len(),
                results[0].levels,
                t.elapsed()
            );
        }
        other => return Err(format!("unknown algorithm '{other}'")),
    }
    Ok(())
}

fn cmd_compile(args: &[String]) -> CliResult {
    let path = args.first().ok_or("missing FILE")?;
    let opt = if args.iter().any(|a| a == "--no-opt") {
        OptLevel::None
    } else {
        OptLevel::Full
    };
    let src = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let prog = frontend::parse(&src).map_err(|e| e.to_string())?;
    let class = classify_program(&prog);
    println!(
        "program {}: {} operators, adjacent={}, trans={}",
        prog.name, class.num_operators, class.uses_adjacent, class.uses_trans
    );
    let plan = compile(&prog, opt);
    println!("compiled at {opt:?}: {} top-level steps", plan.body.len());
    for (i, top) in plan.body.iter().enumerate() {
        println!("  [{i}] {}", describe(top));
    }
    Ok(())
}

fn describe(top: &kimbap_compiler::transform::CompiledTop) -> String {
    use kimbap_compiler::transform::CompiledTop as T;
    match top {
        T::InitMap { map, .. } => format!("init map {map}"),
        T::ResetMap { map } => format!("reset map {map}"),
        T::SetScalar { reducer, value } => format!("set reducer {reducer} = {value}"),
        T::Loop(l) => format!(
            "while-updated loop: {:?}, {} request phase(s), pin {:?}, broadcast {:?}",
            l.iterator,
            l.request_phases.len(),
            l.pinned_maps,
            l.broadcast_maps
        ),
        T::Once(l) => format!(
            "parfor: {:?}, {} request phase(s), pin {:?}",
            l.iterator,
            l.request_phases.len(),
            l.pinned_maps
        ),
        T::DoWhileScalar { body, reducer } => {
            format!("do {{ {} steps }} while reducer {reducer}", body.len())
        }
    }
}
