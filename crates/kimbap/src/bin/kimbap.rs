//! The `kimbap` command-line tool: generate graphs, inspect them, run the
//! distributed algorithms on a simulated cluster, and compile vertex
//! programs.
//!
//! ```text
//! kimbap gen --kind rmat --scale 12 --ef 8 --out g.kg
//! kimbap stats g.kg
//! kimbap run cc-sv g.kg --hosts 4 --threads 2
//! kimbap run cc-lp g.kg --hosts 3 --transport tcp --faults drop --seed 1
//! kimbap run louvain g.kg --hosts 4
//! kimbap compile program.kv [--no-opt]
//! ```
//!
//! `--transport tcp` runs each host as its own OS process connected over
//! TCP loopback: the launcher re-executes this binary with the hidden
//! `_worker` subcommand once per host, each worker binds
//! `127.0.0.1:port_base+host`, and the launcher merges the per-host master
//! values after all workers exit. The same seeded `--faults` plans run on
//! either transport and must produce identical labels.

use kimbap::elastic::{join_plan_elastic, run_plan_elastic};
use kimbap::engine::EngineConfig;
use kimbap::prelude::*;
use kimbap::serve::{self, Algo, HostServer, JobReport, JobSpec, JobStatus};
use kimbap::simfuzz;
use kimbap_algos::{
    cc, compose_labels, leiden, louvain, merge_master_values, mis, msf, refcheck, LouvainConfig,
    NpmBuilder,
};
use kimbap_comm::{
    new_trace_sink, run_transport_host, Deadline, HostError, TcpTransport, TransportConfig,
};
use kimbap_compiler::{classify_program, compile, frontend, programs, OptLevel};
use kimbap_dist::{partition_cfg, PartitionCfg};
use kimbap_graph::io;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("sim") => cmd_sim(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("serve-sim") => cmd_serve_sim(&args[1..]),
        Some("_worker") => cmd_worker(&args[1..]),
        Some("compile") => cmd_compile(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  kimbap gen --kind <rmat|grid|er> [--scale N] [--ef N] [--rows N] [--cols N]
             [--nodes N] [--edges N] [--seed N] [--weights MAX]
             [--unit-weights] --out FILE
  kimbap stats FILE
  kimbap run <cc-sv|cc-lp|cc-sclp|mis|msf|louvain|leiden> FILE
             [--hosts N] [--threads N] [--transport inproc|tcp]
             [--faults none|drop|corrupt|crash|kill|join] [--seed N]
             [--allow-shrink] [--allow-grow] [--no-pipeline]
             [--port-base N] [--out FILE] [--raw] [--hub-threshold N]
  kimbap sim [--algo <cc-sv|cc-lp|cc-sclp|mis|msf|louvain|leiden>]
             [--seed N] [--seeds N] [--hosts N] [--threads N]
             [--scale N] [--ef N] [--allow-shrink] [--allow-grow]
             [--no-pipeline] [--trace FILE] [--out FILE] [--raw]
             [--hub-threshold N]
  kimbap serve FILE [--hosts N] [--threads N] [--jobs FILE] [--job SPEC]...
               [--cache-capacity N] [--out-dir DIR] [--raw]
               [--hub-threshold N]
  kimbap submit --jobs FILE SPEC
  kimbap serve-sim [--seed N] [--seeds N] [--hosts N] [--threads N]
                   [--scale N] [--ef N] [--raw] [--hub-threshold N]
  kimbap compile FILE.kv [--no-opt]

graphs are stored in the kimbap binary format (.kg) or may be text edge
lists; vertex programs (.kv) use the surface syntax of kimbap-compiler's
frontend. --transport tcp spawns one worker process per host over TCP
loopback; --faults (connected-components algorithms only) injects a
seeded fault plan; --out (cc-* and louvain/leiden) writes one label per
node for diffing across transports and storage tiers.

kimbap sim replays a fully deterministic multi-host schedule on the
discrete-event simulation backend: the seed fixes the R-MAT input graph,
a randomized fault plan (drops, dups, corruption, delays, crashes,
stalls), and every scheduling decision, so the same seed reproduces the
same run byte for byte. Each seed must either converge to the fault-free
reference labels or surface a communication failure — anything else (and
any divergence) fails with the exact command that replays it. --seeds N
fuzzes N consecutive seeds; --trace dumps the event schedule as JSONL.

reduce-sync rounds pipeline by default: hosts hand outgoing buffers to
the wire as they are serialized and overlap local reduction with
delivery. --no-pipeline falls back to the plain blocking collectives;
both modes produce byte-identical outputs for the same seed, which the
CI smoke diffs.

--allow-shrink survives permanent host loss: the survivors agree the dead
host out of the membership, re-partition over the shrunk cluster, and
re-converge. With --faults kill (or the kill-bearing seeds of the sim
fuzz plans) the victim exits mid-run and the remaining hosts must still
produce the fault-free output.

--allow-grow (cc-lp only) runs the compiled elastic engine and accepts a
live host join mid-run: the members stop at a round boundary, admit the
newcomer, re-shard the master maps over the expanded ownership, and
resume. --faults join declares one spare host that knocks ~50 ms in; on
--transport tcp it is a real worker process spawned late. kimbap sim
--allow-grow draws seeded churn plans (joins, kills, both) and checks
every interleaving converges to the fault-free labels.

runs are read-only over the graph, so each host stores its local CSR on
the compressed tier (delta+varint neighbor blocks) by default; --raw
keeps the uncompressed arrays. --hub-threshold N splits the edge lists
of nodes with degree > N across hosts on hub-splitting policies. Both
knobs change only memory/traffic, never outputs: the CI smoke diffs
compressed against raw labels.

kimbap serve keeps one partitioned graph resident and runs a whole batch
of analytics jobs over it. A job SPEC is
algo[,prio=N][,deadline-ms=N][,params=N][,host=N] — for example
'louvain,prio=3,deadline-ms=500'; params is an opaque query tag (equal
(algo,params) pairs share one cached result) and host picks the
admission queue the job enters (round-robin by default). kimbap submit
appends a validated SPEC to a jobs file that serve later drains via
--jobs. Jobs run in an agreed order (priority desc, tightest deadline
first, then submission provenance) identical on every host; repeated
queries are answered from a per-host result cache keyed by (graph
epoch, algorithm, params), and a job that exceeds its deadline is
marked missed by agreement instead of wedging the batch.

kimbap serve-sim fuzzes the scheduler the way kimbap sim fuzzes one
algorithm: the seed fixes the graph, a 3-8 job mix (random priorities,
deadlines, duplicate submissions, submitting hosts), and a fault plan
that can land one crash or stall inside a specific job's round band.
Every completed job must match the same job run serially on a fault-
free cluster, byte for byte; anything else fails with the exact
serve-sim command that replays it.";

type CliResult = Result<(), String>;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for {name}: {v}")),
    }
}

/// Graph-storage knobs shared by `run`, `sim`, and the TCP workers:
/// compressed local CSRs (the default — every run is read-only over the
/// graph) and degree-aware hub splitting.
#[derive(Clone, Copy)]
struct StoreOpts {
    compressed: bool,
    hub_threshold: Option<usize>,
}

impl StoreOpts {
    fn parse(args: &[String]) -> Result<Self, String> {
        Ok(StoreOpts {
            compressed: !args.iter().any(|a| a == "--raw"),
            hub_threshold: match flag(args, "--hub-threshold") {
                None => None,
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| format!("bad value for --hub-threshold: {v}"))?,
                ),
            },
        })
    }

    fn cfg(self, policy: Policy, hosts: usize) -> PartitionCfg {
        PartitionCfg {
            policy,
            hosts,
            compressed: self.compressed,
            hub_degree_threshold: self.hub_threshold,
        }
    }
}

fn load_graph(path: &str) -> Result<Graph, String> {
    let f = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut r = BufReader::new(f);
    if path.ends_with(".kg") {
        io::read_binary(&mut r).map_err(|e| format!("read {path}: {e}"))
    } else {
        io::read_edge_list(r).map_err(|e| format!("read {path}: {e}"))
    }
}

fn cmd_gen(args: &[String]) -> CliResult {
    let kind = flag(args, "--kind").ok_or("missing --kind")?;
    let seed = flag_num(args, "--seed", 42u64)?;
    let out = flag(args, "--out").ok_or("missing --out")?;
    let mut g = match kind.as_str() {
        "rmat" => gen::rmat(
            flag_num(args, "--scale", 12u32)?,
            flag_num(args, "--ef", 8usize)?,
            seed,
        ),
        "grid" => gen::grid_road(
            flag_num(args, "--rows", 100usize)?,
            flag_num(args, "--cols", 100usize)?,
            seed,
        ),
        "er" => gen::erdos_renyi(
            flag_num(args, "--nodes", 10_000usize)?,
            flag_num(args, "--edges", 50_000usize)?,
            seed,
        ),
        other => return Err(format!("unknown kind '{other}'")),
    };
    if let Some(maxw) = flag(args, "--weights") {
        let maxw: u64 = maxw.parse().map_err(|_| "bad --weights")?;
        g = gen::with_random_weights(&g, maxw, seed ^ WEIGHT_SEED_SALT);
    }
    // Generators merge parallel edges by summing weights, so even "plain"
    // R-MAT graphs carry weights > 1; this forces every weight back to 1
    // (the compressed tier then stores no weight bytes at all).
    if args.iter().any(|a| a == "--unit-weights") {
        g = gen::with_unit_weights(&g);
    }
    let f = File::create(&out).map_err(|e| format!("create {out}: {e}"))?;
    io::write_binary(&g, BufWriter::new(f)).map_err(|e| e.to_string())?;
    println!("wrote {} ({})", out, GraphStats::of(&g));
    Ok(())
}

/// Salt mixed into derived weight seeds.
const WEIGHT_SEED_SALT: u64 = 0x5eed;

fn cmd_stats(args: &[String]) -> CliResult {
    let path = args.first().ok_or("missing FILE")?;
    let g = load_graph(path)?;
    println!("{}", GraphStats::of(&g));
    println!("symmetric: {}", g.is_symmetric());
    if !g.is_compressed() {
        let c = GraphStats::of(&g.compress());
        println!(
            "compressed: {} bytes ({:.2} B/edge, {:.2}x smaller)",
            c.size_bytes,
            c.bytes_per_edge(),
            GraphStats::of(&g).size_bytes as f64 / c.size_bytes as f64
        );
    }
    Ok(())
}

/// Builds one of the named, seeded fault plans shared by `--faults` on
/// both transports; the names match the fixed plans of the in-proc fault
/// matrix so CLI runs can be diffed against the test suite's expectations.
fn fault_plan(name: &str, seed: u64, hosts: usize) -> Result<FaultPlan, String> {
    if hosts < 2 && name != "none" {
        return Err("--faults needs at least 2 hosts".into());
    }
    Ok(match name {
        "none" => FaultPlan::new(),
        "drop" => FaultPlan::new()
            .drop_frame(0, 1, 1)
            .with_seed(seed)
            .drop_rate(0.02),
        "corrupt" => FaultPlan::new()
            .corrupt_frame(1, (hosts - 1).min(2), 1, 55)
            .with_seed(seed)
            .corrupt_rate(0.02),
        "crash" => FaultPlan::new().crash_host(1, 2),
        // Permanent loss: host 1 dies at round 2 and never comes back —
        // in process mode the worker exits with KILLED_EXIT_CODE. Only
        // recoverable under --allow-shrink.
        "kill" => FaultPlan::new().kill_host(1, 2),
        // Live join: the highest capacity slot starts latent and knocks
        // 50 ms into the run. Only admittable under --allow-grow, where
        // the launcher sizes the cluster one past --hosts for it.
        "join" => FaultPlan::new().join_host(hosts - 1, 50),
        other => return Err(format!("unknown fault plan '{other}'")),
    })
}

/// Runs the compiled cc-lp program on the elastic engine from one host's
/// context — the `--allow-grow` path shared by the in-proc, TCP-worker,
/// and sim launchers. Members enter through [`run_plan_elastic`] with
/// join detection armed; a latent host sleeps out its declared delay and
/// knocks through [`join_plan_elastic`]. A joiner that gives up (the
/// members finished first) contributes no masters, which is benign: the
/// members' outputs still cover every node.
fn run_grow_cc(g: &Graph, ctx: &HostCtx) -> Vec<(NodeId, u64)> {
    let prog = compile(&programs::cc_lp(), OptLevel::Full);
    let config = EngineConfig {
        allow_grow: true,
        ..EngineConfig::default()
    };
    let out = if ctx.is_member() {
        Some(run_plan_elastic(
            g,
            Policy::EdgeCutBlocked,
            &prog,
            config,
            ctx,
        ))
    } else {
        join_plan_elastic(
            g,
            Policy::EdgeCutBlocked,
            &prog,
            config,
            ctx,
            &Deadline::after("join", Duration::from_secs(10)),
        )
    };
    match out {
        Some(o) => o.map_values.into_iter().next().unwrap_or_default(),
        None => {
            println!("joiner gave up: the members finished before admission");
            Vec::new()
        }
    }
}

/// Runs one cc-family algorithm SPMD on the calling host's context.
fn run_cc(algo: &str, dg: &kimbap_dist::DistGraph, ctx: &HostCtx) -> Vec<(NodeId, u64)> {
    let b = NpmBuilder::default();
    match algo {
        "cc-sv" => cc::cc_sv(dg, ctx, &b),
        "cc-lp" => cc::cc_lp(dg, ctx, &b),
        _ => cc::cc_sclp(dg, ctx, &b),
    }
}

/// Launches `hosts` worker processes of this same binary connected over
/// TCP loopback, waits for all of them, and collects their per-host
/// master labels. Workers write `node label` lines to per-host files in
/// a temp directory; any worker exiting non-zero fails the whole run —
/// except, under `allow_shrink`, a worker dying with
/// [`kimbap_comm::KILLED_EXIT_CODE`]: that is the injected permanent
/// loss, and the survivors' re-sharded outputs cover every node.
#[allow(clippy::too_many_arguments)]
fn run_tcp_cc(
    algo: &str,
    path: &str,
    hosts: usize,
    threads: usize,
    port_base: u16,
    faults: &str,
    seed: u64,
    allow_shrink: bool,
    allow_grow: bool,
    pipelined: bool,
    store: StoreOpts,
) -> Result<Vec<Vec<(NodeId, u64)>>, String> {
    let exe = std::env::current_exe().map_err(|e| format!("locate own binary: {e}"))?;
    let dir = std::env::temp_dir().join(format!("kimbap-tcp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let mut children = Vec::with_capacity(hosts);
    for h in 0..hosts {
        // The join plan's latent slot is a genuinely late process: the
        // members' workers are already running their first rounds when
        // the joiner is spawned and knocks on the live cluster.
        if faults == "join" && h == hosts - 1 {
            std::thread::sleep(Duration::from_millis(50));
        }
        let part = dir.join(format!("host{h}.txt"));
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("_worker")
            .arg(algo)
            .arg(path)
            .args(["--hosts", &hosts.to_string()])
            .args(["--host", &h.to_string()])
            .args(["--threads", &threads.to_string()])
            .args(["--port-base", &port_base.to_string()])
            .args(["--faults", faults])
            .args(["--seed", &seed.to_string()])
            .args(["--out", part.to_str().ok_or("non-UTF-8 temp dir")?]);
        if allow_shrink {
            cmd.arg("--allow-shrink");
        }
        if allow_grow {
            cmd.arg("--allow-grow");
        }
        if !pipelined {
            cmd.arg("--no-pipeline");
        }
        if !store.compressed {
            cmd.arg("--raw");
        }
        if let Some(t) = store.hub_threshold {
            cmd.args(["--hub-threshold", &t.to_string()]);
        }
        let child = cmd.spawn().map_err(|e| format!("spawn worker {h}: {e}"))?;
        children.push((h, child));
    }
    let mut failed = Vec::new();
    let mut killed = vec![false; hosts];
    for (h, mut child) in children {
        let status = child.wait().map_err(|e| format!("wait worker {h}: {e}"))?;
        if allow_shrink && status.code() == Some(kimbap_comm::KILLED_EXIT_CODE) {
            killed[h] = true;
            println!("worker {h} was killed; survivors shrank past it");
        } else if !status.success() {
            failed.push(format!("worker {h} exited with {status}"));
        }
    }
    if !failed.is_empty() {
        return Err(failed.join("; "));
    }
    let mut per_host = Vec::with_capacity(hosts);
    for (h, &was_killed) in killed.iter().enumerate() {
        if was_killed {
            continue;
        }
        let part = dir.join(format!("host{h}.txt"));
        let body = std::fs::read_to_string(&part)
            .map_err(|e| format!("read {}: {e}", part.display()))?;
        let mut vals = Vec::new();
        for line in body.lines() {
            let (node, label) = line
                .split_once(' ')
                .ok_or_else(|| format!("worker {h}: malformed line '{line}'"))?;
            let node: NodeId = node.parse().map_err(|_| format!("worker {h}: bad node"))?;
            let label: u64 = label.parse().map_err(|_| format!("worker {h}: bad label"))?;
            vals.push((node, label));
        }
        per_host.push(vals);
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(per_host)
}

/// Hidden subcommand: one TCP host process spawned by [`run_tcp_cc`].
fn cmd_worker(args: &[String]) -> CliResult {
    let algo = args.first().ok_or("missing algorithm")?.clone();
    let path = args.get(1).ok_or("missing FILE")?.clone();
    let hosts: usize = flag_num(args, "--hosts", 2)?;
    let host: usize = flag_num(args, "--host", 0)?;
    let threads: usize = flag_num(args, "--threads", 2)?;
    let port_base: u16 = flag_num(args, "--port-base", 46000)?;
    let faults = flag(args, "--faults").unwrap_or_else(|| "none".into());
    let seed: u64 = flag_num(args, "--seed", 1)?;
    let out = flag(args, "--out").ok_or("missing --out")?;
    let allow_shrink = args.iter().any(|a| a == "--allow-shrink");
    let allow_grow = args.iter().any(|a| a == "--allow-grow");
    let pipelined = !args.iter().any(|a| a == "--no-pipeline");
    let store = StoreOpts::parse(args)?;
    let g = load_graph(&path)?;
    let parts = partition_cfg(&g, &store.cfg(Policy::CartesianVertexCut, hosts));
    let plan = fault_plan(&faults, seed, hosts)?;
    let latent = plan.latent_hosts();
    let transport = match TcpTransport::bind_with_latent(
        host,
        hosts,
        port_base,
        TransportConfig::default(),
        &latent,
    ) {
        Ok(t) => t,
        // A late-spawned joiner that cannot reach any member (they
        // finished and closed their listeners first) gives up benignly:
        // the members' outputs already cover every node.
        Err(e) if latent.contains(&host) => {
            println!("joiner could not reach the cluster ({e}); giving up");
            File::create(&out).map_err(|e| format!("create {out}: {e}"))?;
            return Ok(());
        }
        Err(e) => return Err(format!("host {host}: bind tcp transport: {e}")),
    };
    let vals = run_transport_host(&transport, threads, plan, |ctx| {
        ctx.set_pipelined(pipelined);
        if allow_grow {
            // The compiled elastic engine recovers, shrinks, and grows
            // on its own checkpoints — no closure-level retry wrapper.
            run_grow_cc(&g, ctx)
        } else if allow_shrink {
            // Elastic: re-partition from the live membership on every
            // attempt, so after a shrink the survivors cover all nodes.
            ctx.run_elastic(|ctx| {
                let parts =
                    partition_cfg(&g, &store.cfg(Policy::CartesianVertexCut, ctx.num_hosts()));
                run_cc(&algo, &parts[ctx.host()], ctx)
            })
        } else {
            ctx.run_recovering(|ctx| run_cc(&algo, &parts[ctx.host()], ctx))
        }
    })
    .map_err(|e| format!("host {host}: {e}"))?;
    let f = File::create(&out).map_err(|e| format!("create {out}: {e}"))?;
    let mut w = BufWriter::new(f);
    for (node, label) in vals {
        writeln!(w, "{node} {label}").map_err(|e| format!("write {out}: {e}"))?;
    }
    Ok(())
}

/// Per-host values from a faulted run: either every host finished, or at
/// least one aborted with a *communication-rooted* error. Faults must
/// surface as timeouts / failed peers — a non-communication panic is a
/// bug and fails the run.
enum HostValues<R> {
    /// Every host returned a value.
    All(Vec<R>),
    /// A host aborted cleanly on a communication failure (its message).
    Aborted(String),
}

fn host_values<R>(res: Vec<Result<R, HostError>>, elastic: bool) -> Result<HostValues<R>, String> {
    let mut vals = Vec::with_capacity(res.len());
    let mut aborted = None;
    for r in res {
        match r {
            Ok(v) => vals.push(v),
            // Under --allow-shrink the killed host is an *expected*
            // casualty: it aborts with its own permanent-loss error while
            // the survivors shrink past it, so its result is skipped
            // rather than treated as the run's outcome.
            Err(e) if elastic && e.message.starts_with("permanent host loss") => {}
            Err(e)
                if e.message.starts_with("communication failed")
                    || e.message.starts_with("injected crash")
                    || e.message.starts_with("permanent host loss")
                    || e.message.contains("membership lost") =>
            {
                aborted = Some(e.to_string());
            }
            Err(e) => return Err(format!("non-communication host panic: {e}")),
        }
    }
    match aborted {
        Some(m) => Ok(HostValues::Aborted(m)),
        None if vals.is_empty() => Ok(HostValues::Aborted("every host was killed".into())),
        None => Ok(HostValues::All(vals)),
    }
}

/// Runs `f` once per host under `plan`. In elastic mode each attempt
/// re-partitions from the live membership (inside [`HostCtx::run_elastic`])
/// so a shrink re-converges on the survivors; otherwise the partition is
/// fixed up front and transient faults recover in place.
#[allow(clippy::too_many_arguments)]
fn run_hosts<R: Send>(
    elastic: bool,
    pipelined: bool,
    g: &Graph,
    policy: Policy,
    store: StoreOpts,
    cluster: &Cluster,
    plan: FaultPlan,
    f: impl Fn(&kimbap_dist::DistGraph, &HostCtx) -> R + Sync,
) -> Vec<Result<R, HostError>> {
    if elastic {
        cluster.try_run_with_faults(plan, |ctx| {
            ctx.set_pipelined(pipelined);
            ctx.run_elastic(|ctx| {
                let parts = partition_cfg(g, &store.cfg(policy, ctx.num_hosts()));
                f(&parts[ctx.host()], ctx)
            })
        })
    } else {
        let parts = partition_cfg(g, &store.cfg(policy, cluster.num_hosts()));
        cluster.try_run_with_faults(plan, |ctx| {
            ctx.set_pipelined(pipelined);
            ctx.run_recovering(|ctx| f(&parts[ctx.host()], ctx))
        })
    }
}

/// What one simulated run produced.
enum SimOutcome {
    /// Converged: a canonical `u64` fingerprint of the merged output
    /// (labels for cc/louvain, membership for MIS, the sorted forest and
    /// total weight for MSF).
    Labels(Vec<u64>),
    /// Surfaced a communication failure instead of converging.
    Aborted(String),
}

/// Runs `algo` on `cluster` under `plan` and canonicalizes the output.
/// Structural validity (MIS independence/maximality, community labels)
/// is checked against the single-threaded reference right here; exact
/// output equality is the caller's job.
#[allow(clippy::too_many_arguments)]
fn sim_outcome(
    algo: &str,
    g: &Graph,
    cluster: &Cluster,
    plan: FaultPlan,
    elastic: bool,
    pipelined: bool,
    store: StoreOpts,
) -> Result<SimOutcome, String> {
    let policy = match algo {
        "louvain" | "leiden" => Policy::EdgeCutBlocked,
        _ => Policy::CartesianVertexCut,
    };
    let b = NpmBuilder::default();
    let n = g.num_nodes();
    Ok(match algo {
        "cc-sv" | "cc-lp" | "cc-sclp" => {
            match host_values(
                run_hosts(elastic, pipelined, g, policy, store, cluster, plan, |dg, ctx| {
                    run_cc(algo, dg, ctx)
                }),
                elastic,
            )? {
                HostValues::Aborted(m) => SimOutcome::Aborted(m),
                HostValues::All(ph) => SimOutcome::Labels(merge_master_values(n, ph)),
            }
        }
        "mis" => {
            match host_values(
                run_hosts(elastic, pipelined, g, policy, store, cluster, plan, |dg, ctx| {
                    mis(dg, ctx, &b)
                }),
                elastic,
            )? {
                HostValues::Aborted(m) => SimOutcome::Aborted(m),
                HostValues::All(ph) => {
                    let set = merge_master_values(n, ph);
                    refcheck::check_mis(g, &set).map_err(|e| format!("invalid MIS: {e}"))?;
                    SimOutcome::Labels(set.into_iter().map(u64::from).collect())
                }
            }
        }
        "msf" => {
            match host_values(
                run_hosts(elastic, pipelined, g, policy, store, cluster, plan, |dg, ctx| {
                    msf(dg, ctx, &b)
                }),
                elastic,
            )? {
                HostValues::Aborted(m) => SimOutcome::Aborted(m),
                HostValues::All(ph) => {
                    let (mut edges, total) = kimbap_algos::msf::merge_forest(ph);
                    edges.sort_unstable();
                    let mut fp = vec![total, edges.len() as u64];
                    for (u, v, w) in edges {
                        fp.extend([u as u64, v as u64, w]);
                    }
                    SimOutcome::Labels(fp)
                }
            }
        }
        "louvain" | "leiden" => {
            let cfg = LouvainConfig::default();
            match host_values(
                run_hosts(elastic, pipelined, g, policy, store, cluster, plan, |dg, ctx| {
                    if algo == "louvain" {
                        louvain(dg, ctx, &b, &cfg)
                    } else {
                        leiden(dg, ctx, &b, &cfg)
                    }
                }),
                elastic,
            )? {
                HostValues::Aborted(m) => SimOutcome::Aborted(m),
                HostValues::All(ph) => {
                    let labels = compose_labels(n, &ph);
                    refcheck::check_communities(g, &labels)
                        .map_err(|e| format!("invalid communities: {e}"))?;
                    SimOutcome::Labels(labels.into_iter().map(u64::from).collect())
                }
            }
        }
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

/// Runs one seed end-to-end: generate the graph, compute the fault-free
/// reference, replay the seeded faulty schedule on the sim backend, dump
/// the trace (before verdicts, so a failing seed leaves its schedule on
/// disk), and check convergence. Returns the outcome plus the trace
/// length.
#[allow(clippy::too_many_arguments)]
fn run_sim_seed(
    algo: &str,
    seed: u64,
    hosts: usize,
    threads: usize,
    scale: u32,
    ef: usize,
    allow_shrink: bool,
    allow_grow: bool,
    pipelined: bool,
    store: StoreOpts,
    trace_path: Option<&str>,
    out: Option<&str>,
) -> Result<(SimOutcome, usize), String> {
    if allow_grow && algo != "cc-lp" {
        return Err("--allow-grow runs the compiled elastic engine: cc-lp only".into());
    }
    let mut g = gen::rmat(scale, ef, seed);
    if algo == "msf" {
        g = gen::with_random_weights(&g, 1 << 16, seed ^ WEIGHT_SEED_SALT);
    }
    // Fault-free reference on the in-proc backend (a standing one-seed
    // conformance check between the two local backends).
    let baseline = match sim_outcome(
        algo,
        &g,
        &Cluster::with_threads(hosts, threads),
        FaultPlan::new(),
        false,
        pipelined,
        store,
    )? {
        SimOutcome::Labels(l) => l,
        SimOutcome::Aborted(m) => return Err(format!("fault-free baseline aborted: {m}")),
    };
    if matches!(algo, "cc-sv" | "cc-lp" | "cc-sclp")
        && baseline != refcheck::connected_components(&g)
    {
        return Err("in-proc labels diverge from the single-threaded reference".into());
    }
    // A fired kill makes the survivors finish on the shrunk membership.
    // Algorithms whose output depends on the partition (louvain/leiden)
    // then legitimately converge to the fault-free output of a cluster
    // one host smaller, so that baseline is accepted too.
    let shrunk_baseline = if allow_shrink && simfuzz::kill_victim(seed, hosts).is_some() {
        match sim_outcome(
            algo,
            &g,
            &Cluster::with_threads(hosts - 1, threads),
            FaultPlan::new(),
            false,
            pipelined,
            store,
        )? {
            SimOutcome::Labels(l) => Some(l),
            SimOutcome::Aborted(m) => {
                return Err(format!("fault-free shrunk baseline aborted: {m}"))
            }
        }
    } else {
        None
    };
    let plan = if allow_grow {
        simfuzz::random_churn_plan(seed, hosts)
    } else if allow_shrink {
        simfuzz::random_kill_plan(seed, hosts)
    } else {
        simfuzz::random_fault_plan(seed, hosts)
    };
    // A churn plan's joiner occupies one spare capacity slot past the
    // member count; seeds without a join run at plain capacity.
    let capacity = hosts + plan.latent_hosts().len();
    let sink = new_trace_sink();
    let cluster = Cluster::with_threads(capacity, threads)
        .sim(seed)
        .with_transport_config(simfuzz::sim_transport_config())
        .with_trace_sink(sink.clone());
    let outcome = if allow_grow {
        match host_values(
            cluster.try_run_with_faults(plan, |ctx| {
                ctx.set_pipelined(pipelined);
                run_grow_cc(&g, ctx)
            }),
            true,
        )? {
            HostValues::Aborted(m) => SimOutcome::Aborted(m),
            HostValues::All(ph) => SimOutcome::Labels(merge_master_values(g.num_nodes(), ph)),
        }
    } else {
        sim_outcome(algo, &g, &cluster, plan, allow_shrink, pipelined, store)?
    };
    let trace = std::mem::take(&mut *sink.lock());
    if let Some(path) = trace_path {
        let f = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        let mut w = BufWriter::new(f);
        for ev in &trace {
            writeln!(w, "{}", ev.to_json()).map_err(|e| format!("write {path}: {e}"))?;
        }
    }
    if let SimOutcome::Labels(labels) = &outcome {
        if *labels != baseline && shrunk_baseline.as_deref() != Some(labels.as_slice()) {
            return Err("labels diverge from the fault-free baseline".into());
        }
        if let Some(path) = out {
            let f = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
            let mut w = BufWriter::new(f);
            for label in labels {
                writeln!(w, "{label}").map_err(|e| format!("write {path}: {e}"))?;
            }
        }
    }
    Ok((outcome, trace.len()))
}

fn cmd_sim(args: &[String]) -> CliResult {
    let algo = flag(args, "--algo").unwrap_or_else(|| "cc-lp".into());
    let hosts: usize = flag_num(args, "--hosts", 3)?;
    // One worker thread per host by default: intra-host pools are real
    // threads even under simulation, and single-threaded hosts keep the
    // whole run (not just the schedule) bit-reproducible.
    let threads: usize = flag_num(args, "--threads", 1)?;
    let scale: u32 = flag_num(args, "--scale", 6)?;
    let ef: usize = flag_num(args, "--ef", 4)?;
    let seed: u64 = flag_num(args, "--seed", 1)?;
    let nseeds: u64 = flag_num(args, "--seeds", 1)?;
    let allow_shrink = args.iter().any(|a| a == "--allow-shrink");
    let allow_grow = args.iter().any(|a| a == "--allow-grow");
    let pipelined = !args.iter().any(|a| a == "--no-pipeline");
    let store = StoreOpts::parse(args)?;
    let trace_path = flag(args, "--trace");
    let out = flag(args, "--out");
    let t = Instant::now();
    let (mut converged, mut aborted) = (0u64, 0u64);
    for s in seed..seed.saturating_add(nseeds) {
        let replay = format!(
            "replay: {}",
            simfuzz::replay_command(&algo, s, hosts, threads, scale, ef, allow_shrink, allow_grow)
        );
        let (outcome, events) = run_sim_seed(
            &algo,
            s,
            hosts,
            threads,
            scale,
            ef,
            allow_shrink,
            allow_grow,
            pipelined,
            store,
            trace_path.as_deref(),
            out.as_deref(),
        )
        .map_err(|e| format!("seed {s}: {e}\n{replay}"))?;
        match outcome {
            SimOutcome::Labels(_) => {
                converged += 1;
                println!("seed {s}: converged ({events} events)");
            }
            SimOutcome::Aborted(m) => {
                aborted += 1;
                println!("seed {s}: surfaced failure ({events} events): {m}");
            }
        }
    }
    println!(
        "{nseeds} seed(s) in {:.2?}: {converged} converged, {aborted} surfaced failures, 0 diverged",
        t.elapsed()
    );
    Ok(())
}

/// Every occurrence of a repeated flag, in order (`--job` may be given
/// many times).
fn flag_all(args: &[String], name: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

/// Parses one job SPEC: `algo[,prio=N][,deadline-ms=N][,params=N][,host=N]`.
/// Returns the explicit admission host, if any, alongside the spec.
fn parse_job_spec(s: &str) -> Result<(Option<usize>, JobSpec), String> {
    let mut fields = s.split(',');
    let algo_name = fields.next().ok_or_else(|| format!("empty job spec '{s}'"))?;
    let algo =
        Algo::parse(algo_name).ok_or_else(|| format!("unknown algorithm '{algo_name}' in '{s}'"))?;
    let mut spec = JobSpec::new(algo);
    let mut host = None;
    for field in fields {
        let (key, val) = field
            .split_once('=')
            .ok_or_else(|| format!("malformed field '{field}' in '{s}'"))?;
        let num: u64 = val
            .parse()
            .map_err(|_| format!("bad value '{val}' for {key} in '{s}'"))?;
        match key {
            "prio" => spec.priority = num.min(255) as u8,
            "deadline-ms" => spec.deadline = Some(Duration::from_millis(num)),
            "params" => spec.params = num,
            "host" => host = Some(num as usize),
            other => return Err(format!("unknown field '{other}' in '{s}'")),
        }
    }
    Ok((host, spec))
}

/// Collects the batch's job specs from `--jobs FILE` lines (blank lines
/// and `#` comments skipped) followed by repeated `--job SPEC` flags.
fn collect_jobs(args: &[String]) -> Result<Vec<(Option<usize>, JobSpec)>, String> {
    let mut jobs = Vec::new();
    if let Some(path) = flag(args, "--jobs") {
        let body =
            std::fs::read_to_string(&path).map_err(|e| format!("read jobs file {path}: {e}"))?;
        for line in body.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            jobs.push(parse_job_spec(line)?);
        }
    }
    for spec in flag_all(args, "--job") {
        jobs.push(parse_job_spec(&spec)?);
    }
    Ok(jobs)
}

/// Distributes collected jobs onto per-host admission queues: an explicit
/// `host=N` field pins the job, everything else round-robins.
fn admission_queues(
    jobs: Vec<(Option<usize>, JobSpec)>,
    hosts: usize,
) -> Result<Vec<Vec<JobSpec>>, String> {
    let mut queues = vec![Vec::new(); hosts];
    let mut rr = 0;
    for (pin, spec) in jobs {
        let h = match pin {
            Some(h) if h >= hosts => {
                return Err(format!("job pinned to host {h}, but only {hosts} host(s)"))
            }
            Some(h) => h,
            None => {
                let h = rr;
                rr = (rr + 1) % hosts;
                h
            }
        };
        queues[h].push(spec);
    }
    Ok(queues)
}

/// One line summarizing a merged job output, in the algorithm's terms.
fn describe_output(algo: Algo, merged: &[u64]) -> String {
    match algo {
        Algo::Msf => format!(
            "forest: {} edges, weight {}",
            merged.get(1).copied().unwrap_or(0),
            merged.first().copied().unwrap_or(0)
        ),
        Algo::Mis => format!(
            "independent set of {} nodes",
            merged.iter().filter(|&&x| x == 1).count()
        ),
        _ => {
            let mut comps = merged.to_vec();
            comps.sort_unstable();
            comps.dedup();
            format!("{} components", comps.len())
        }
    }
}

/// One agreed job with its cross-host-merged canonical fingerprint
/// (`None` for deadline-missed jobs).
type MergedReport = (JobReport, Option<Vec<u64>>);

/// Checks every host returned the same agreed schedule and statuses, then
/// merges each completed job's per-host outputs into its canonical
/// fingerprint.
fn merge_reports(n: usize, per_host: Vec<Vec<JobReport>>) -> Result<Vec<MergedReport>, String> {
    let first = per_host.first().ok_or("no host produced reports")?;
    for (h, reports) in per_host.iter().enumerate() {
        if reports.len() != first.len() {
            return Err(format!(
                "host {h} scheduled {} job(s), host 0 scheduled {}",
                reports.len(),
                first.len()
            ));
        }
        for (k, (r, r0)) in reports.iter().zip(first).enumerate() {
            if r.job != r0.job || r.status != r0.status {
                return Err(format!("hosts disagree on job {k}: {r:?} vs {r0:?}"));
            }
        }
    }
    let jobs = first.len();
    let mut merged = Vec::with_capacity(jobs);
    for k in 0..jobs {
        let report = per_host[0][k].clone();
        let fp = if report.output.is_some() {
            let outs = per_host
                .iter()
                .map(|r| r[k].output.clone().expect("statuses agree"))
                .collect();
            Some(serve::merge_job_outputs(report.job.spec.algo, n, outs))
        } else {
            None
        };
        merged.push((report, fp));
    }
    Ok(merged)
}

/// Default result-cache capacity for `serve` sessions: comfortably more
/// than one batch's distinct queries, small enough that long sessions see
/// evictions.
const SERVE_CACHE_CAPACITY: usize = 32;

fn cmd_serve(args: &[String]) -> CliResult {
    let path = args.first().ok_or("missing FILE")?.clone();
    let hosts: usize = flag_num(args, "--hosts", 2)?;
    let threads: usize = flag_num(args, "--threads", 2)?;
    let capacity: usize = flag_num(args, "--cache-capacity", SERVE_CACHE_CAPACITY)?;
    let out_dir = flag(args, "--out-dir");
    let store = StoreOpts::parse(args)?;
    let jobs = collect_jobs(args)?;
    if jobs.is_empty() {
        return Err("no jobs: give --jobs FILE and/or --job SPEC".into());
    }
    let queues = admission_queues(jobs, hosts)?;
    let g = load_graph(&path)?;
    let n = g.num_nodes();
    println!("input: {}", GraphStats::of(&g));
    // One resident partition serves every algorithm, so the policy must
    // be one they all accept: edge-cut with blocked ownership.
    let parts = partition_cfg(&g, &store.cfg(Policy::EdgeCutBlocked, hosts));
    println!(
        "resident: {} local bytes over {hosts} host(s), cache capacity {capacity}",
        parts.iter().map(|p| p.size_bytes()).sum::<usize>()
    );
    let t = Instant::now();
    let cluster = Cluster::with_threads(hosts, threads);
    let q = &queues;
    let p = &parts;
    let results = cluster.run(|ctx| {
        let mut server = HostServer::new(capacity);
        let reports = server.serve_batch(ctx, &p[ctx.host()], &q[ctx.host()]);
        (reports, ctx.stats())
    });
    let elapsed = t.elapsed();
    let (reports, stats): (Vec<_>, Vec<HostStats>) = results.into_iter().unzip();
    let merged = merge_reports(n, reports)?;
    let total = merged.len();
    for (k, (report, fp)) in merged.iter().enumerate() {
        let spec = report.job.spec;
        let what = match (&report.status, fp) {
            (JobStatus::DeadlineMissed, _) => "deadline missed".to_string(),
            (JobStatus::Completed { cached }, Some(fp)) => format!(
                "{}{}",
                describe_output(spec.algo, fp),
                if *cached { " (cached)" } else { "" }
            ),
            (JobStatus::Completed { .. }, None) => unreachable!("completed jobs carry output"),
        };
        println!(
            "job {k}: {} prio={} params={} from host {}: {what}",
            spec.algo.name(),
            spec.priority,
            spec.params,
            report.job.submitter
        );
        if let (Some(dir), Some(fp)) = (&out_dir, fp) {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {dir}: {e}"))?;
            write_lines(&format!("{dir}/job{k}-{}.txt", spec.algo.name()), fp)?;
        }
    }
    let mut agg = HostStats::default();
    for s in &stats {
        agg.merge(s);
    }
    println!(
        "{total} job(s) in {elapsed:.2?}: cache {} hit(s), {} miss(es), {} eviction(s)",
        agg.cache_hits, agg.cache_misses, agg.cache_evictions
    );
    Ok(())
}

fn cmd_submit(args: &[String]) -> CliResult {
    let jobs = flag(args, "--jobs").ok_or("missing --jobs FILE")?;
    // The SPEC is the one positional argument left after removing the
    // --jobs flag and its value.
    let jobs_at = args.iter().position(|a| a == "--jobs").unwrap();
    let spec = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| i != jobs_at && i != jobs_at + 1 && !a.starts_with("--"))
        .map(|(_, a)| a.clone())
        .next()
        .ok_or("missing SPEC")?;
    // Validate before appending so a bad spec never poisons the queue
    // file a later serve drains.
    parse_job_spec(&spec)?;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&jobs)
        .map_err(|e| format!("open {jobs}: {e}"))?;
    writeln!(f, "{spec}").map_err(|e| format!("write {jobs}: {e}"))?;
    println!("queued '{spec}' in {jobs}");
    Ok(())
}

/// What one simulated serve seed produced.
enum ServeSimOutcome {
    /// Converged: per-job verdicts all checked out. Carries
    /// `(computed, cached, missed)` counts.
    Converged(usize, usize, usize),
    /// Surfaced a communication failure instead of converging.
    Aborted(String),
}

/// Runs one serve fuzz seed end-to-end: seed-derived graph, job mix, and
/// fault plan; serial fault-free baselines per distinct query; then the
/// faulted scheduled run on the sim backend, diffing every completed
/// job's merged output against its baseline.
fn run_serve_seed(
    seed: u64,
    hosts: usize,
    threads: usize,
    scale: u32,
    ef: usize,
    store: StoreOpts,
) -> Result<ServeSimOutcome, String> {
    let g = gen::rmat(scale, ef, seed);
    let n = g.num_nodes();
    let parts = partition_cfg(&g, &store.cfg(Policy::EdgeCutBlocked, hosts));
    let mix = simfuzz::serve_job_mix(seed, hosts);
    let mut queues = vec![Vec::new(); hosts];
    for &(h, spec) in &mix {
        queues[h].push(spec);
    }
    // Serial fault-free baselines, one per distinct algorithm in the mix
    // (params never change execution, so they share a baseline).
    let mut baselines: std::collections::HashMap<Algo, Vec<u64>> = Default::default();
    let serial = Cluster::with_threads(hosts, threads);
    for &(_, spec) in &mix {
        baselines
            .entry(spec.algo)
            .or_insert_with(|| serve::serial_reference(n, &parts, &serial, spec.algo));
    }
    let plan = simfuzz::serve_fault_plan(seed, hosts, mix.len());
    let cluster = Cluster::with_threads(hosts, threads)
        .sim(seed)
        .with_transport_config(simfuzz::sim_transport_config());
    let q = &queues;
    let p = &parts;
    let res = cluster.try_run_with_faults(plan, |ctx| {
        let mut server = HostServer::new(SERVE_CACHE_CAPACITY);
        server.serve_batch(ctx, &p[ctx.host()], &q[ctx.host()])
    });
    match host_values(res, false)? {
        HostValues::Aborted(m) => Ok(ServeSimOutcome::Aborted(m)),
        HostValues::All(per_host) => {
            let merged = merge_reports(n, per_host)?;
            let (mut computed, mut cached, mut missed) = (0, 0, 0);
            for (k, (report, fp)) in merged.iter().enumerate() {
                match (&report.status, fp) {
                    (JobStatus::DeadlineMissed, _) => missed += 1,
                    (JobStatus::Completed { cached: c }, Some(fp)) => {
                        if *c {
                            cached += 1;
                        } else {
                            computed += 1;
                        }
                        let base = &baselines[&report.job.spec.algo];
                        if fp != base {
                            return Err(format!(
                                "job {k} ({}) diverges from its serial baseline",
                                report.job.spec.algo.name()
                            ));
                        }
                    }
                    (JobStatus::Completed { .. }, None) => {
                        return Err(format!("job {k} completed without output"))
                    }
                }
            }
            Ok(ServeSimOutcome::Converged(computed, cached, missed))
        }
    }
}

fn cmd_serve_sim(args: &[String]) -> CliResult {
    let hosts: usize = flag_num(args, "--hosts", 3)?;
    let threads: usize = flag_num(args, "--threads", 1)?;
    let scale: u32 = flag_num(args, "--scale", 6)?;
    let ef: usize = flag_num(args, "--ef", 4)?;
    let seed: u64 = flag_num(args, "--seed", 1)?;
    let nseeds: u64 = flag_num(args, "--seeds", 1)?;
    let store = StoreOpts::parse(args)?;
    let t = Instant::now();
    let (mut converged, mut aborted) = (0u64, 0u64);
    for s in seed..seed.saturating_add(nseeds) {
        let replay = format!(
            "replay: {}",
            simfuzz::serve_replay_command(s, hosts, threads, scale, ef)
        );
        let outcome = run_serve_seed(s, hosts, threads, scale, ef, store)
            .map_err(|e| format!("seed {s}: {e}\n{replay}"))?;
        match outcome {
            ServeSimOutcome::Converged(computed, cached, missed) => {
                converged += 1;
                println!(
                    "seed {s}: converged ({computed} computed, {cached} cached, {missed} missed)"
                );
            }
            ServeSimOutcome::Aborted(m) => {
                aborted += 1;
                println!("seed {s}: surfaced failure: {m}");
            }
        }
    }
    println!(
        "{nseeds} seed(s) in {:.2?}: {converged} converged, {aborted} surfaced failures, 0 diverged",
        t.elapsed()
    );
    Ok(())
}

/// Writes one value per line (the diffable label dump behind `--out`).
fn write_lines<T: std::fmt::Display>(out: &str, vals: &[T]) -> Result<(), String> {
    let f = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    let mut w = BufWriter::new(f);
    for v in vals {
        writeln!(w, "{v}").map_err(|e| format!("write {out}: {e}"))?;
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> CliResult {
    let algo = args.first().ok_or("missing algorithm")?.clone();
    let path = args.get(1).ok_or("missing FILE")?.clone();
    let hosts: usize = flag_num(args, "--hosts", 2)?;
    let threads: usize = flag_num(args, "--threads", 2)?;
    let transport = flag(args, "--transport").unwrap_or_else(|| "inproc".into());
    let faults = flag(args, "--faults").unwrap_or_else(|| "none".into());
    let seed: u64 = flag_num(args, "--seed", 1)?;
    let port_base: u16 = flag_num(args, "--port-base", 46000)?;
    let out = flag(args, "--out");
    let allow_shrink = args.iter().any(|a| a == "--allow-shrink");
    let allow_grow = args.iter().any(|a| a == "--allow-grow");
    let pipelined = !args.iter().any(|a| a == "--no-pipeline");
    let store = StoreOpts::parse(args)?;
    let is_cc = matches!(algo.as_str(), "cc-sv" | "cc-lp" | "cc-sclp");
    if !matches!(transport.as_str(), "inproc" | "tcp") {
        return Err(format!("unknown transport '{transport}'"));
    }
    if (transport == "tcp" || faults != "none" || allow_shrink) && !is_cc {
        return Err(
            "--transport tcp, --faults, and --allow-shrink support cc-* algorithms only".into(),
        );
    }
    if out.is_some() && !is_cc && !matches!(algo.as_str(), "louvain" | "leiden") {
        return Err("--out supports cc-* and louvain/leiden only".into());
    }
    if faults == "kill" && !allow_shrink {
        return Err("--faults kill is only survivable with --allow-shrink".into());
    }
    if allow_grow && algo != "cc-lp" {
        return Err("--allow-grow runs the compiled elastic engine: cc-lp only".into());
    }
    if faults == "join" && !allow_grow {
        return Err("--faults join is only admittable with --allow-grow".into());
    }
    // The join plan's latent host occupies one capacity slot past the
    // requested member count: the cluster starts computing on --hosts
    // members and grows into the spare when the joiner knocks.
    let capacity = if faults == "join" { hosts + 1 } else { hosts };
    let g = load_graph(&path)?;
    println!("input: {}", GraphStats::of(&g));

    let policy = match algo.as_str() {
        "louvain" | "leiden" => Policy::EdgeCutBlocked,
        _ => Policy::CartesianVertexCut,
    };
    let parts = partition_cfg(&g, &store.cfg(policy, hosts));
    println!(
        "storage: {} ({} local bytes over {hosts} host(s))",
        if store.compressed { "compressed" } else { "raw" },
        parts.iter().map(|p| p.size_bytes()).sum::<usize>()
    );
    let b = NpmBuilder::default();
    let cluster = Cluster::with_threads(hosts, threads);
    let t = Instant::now();
    match algo.as_str() {
        "cc-sv" | "cc-lp" | "cc-sclp" => {
            let per_host = if transport == "tcp" {
                run_tcp_cc(
                    &algo, &path, capacity, threads, port_base, &faults, seed, allow_shrink,
                    allow_grow, pipelined, store,
                )?
            } else if allow_grow {
                let plan = fault_plan(&faults, seed, capacity)?;
                let res = Cluster::with_threads(capacity, threads).try_run_with_faults(plan, |ctx| {
                    ctx.set_pipelined(pipelined);
                    run_grow_cc(&g, ctx)
                });
                let mut per_host = Vec::new();
                for (h, r) in res.into_iter().enumerate() {
                    match r {
                        Ok(v) => per_host.push(v),
                        Err(e) if e.message.starts_with("permanent host loss") => {
                            println!("host {h} was killed; survivors shrank past it");
                        }
                        Err(e) => return Err(format!("host {h}: {e}")),
                    }
                }
                per_host
            } else if allow_shrink {
                let plan = fault_plan(&faults, seed, hosts)?;
                let res = cluster.try_run_with_faults(plan, |ctx| {
                    ctx.set_pipelined(pipelined);
                    ctx.run_elastic(|ctx| {
                        let parts = partition_cfg(&g, &store.cfg(policy, ctx.num_hosts()));
                        run_cc(&algo, &parts[ctx.host()], ctx)
                    })
                });
                let mut per_host = Vec::new();
                for (h, r) in res.into_iter().enumerate() {
                    match r {
                        Ok(v) => per_host.push(v),
                        Err(e) if e.message.starts_with("permanent host loss") => {
                            println!("host {h} was killed; survivors shrank past it");
                        }
                        Err(e) => return Err(format!("host {h}: {e}")),
                    }
                }
                per_host
            } else {
                let plan = fault_plan(&faults, seed, hosts)?;
                cluster.run_with_faults(plan, |ctx| {
                    ctx.set_pipelined(pipelined);
                    ctx.run_recovering(|ctx| run_cc(&algo, &parts[ctx.host()], ctx))
                })
            };
            let labels = merge_master_values(g.num_nodes(), per_host);
            if let Some(out) = &out {
                write_lines(out, &labels)?;
            }
            let mut comps = labels;
            comps.sort_unstable();
            comps.dedup();
            println!("{} components in {:.2?}", comps.len(), t.elapsed());
        }
        "mis" => {
            let per_host = cluster.run(|ctx| {
                ctx.set_pipelined(pipelined);
                mis(&parts[ctx.host()], ctx, &b)
            });
            let set = merge_master_values(g.num_nodes(), per_host);
            println!(
                "independent set of {} nodes in {:.2?}",
                set.iter().filter(|&&x| x).count(),
                t.elapsed()
            );
        }
        "msf" => {
            let per_host = cluster.run(|ctx| {
                ctx.set_pipelined(pipelined);
                msf(&parts[ctx.host()], ctx, &b)
            });
            let (edges, total) = kimbap_algos::msf::merge_forest(per_host);
            println!(
                "forest: {} edges, weight {total}, in {:.2?}",
                edges.len(),
                t.elapsed()
            );
        }
        "louvain" | "leiden" => {
            let cfg = LouvainConfig::default();
            let results = cluster.run(|ctx| {
                ctx.set_pipelined(pipelined);
                let dg = &parts[ctx.host()];
                if algo == "louvain" {
                    louvain(dg, ctx, &b, &cfg)
                } else {
                    leiden(dg, ctx, &b, &cfg)
                }
            });
            let labels = compose_labels(g.num_nodes(), &results);
            if let Some(out) = &out {
                write_lines(out, &labels)?;
            }
            let mut comms = labels.clone();
            comms.sort_unstable();
            comms.dedup();
            println!(
                "q={:.4}, {} communities, {} levels, in {:.2?}",
                results[0].modularity,
                comms.len(),
                results[0].levels,
                t.elapsed()
            );
        }
        other => return Err(format!("unknown algorithm '{other}'")),
    }
    Ok(())
}

fn cmd_compile(args: &[String]) -> CliResult {
    let path = args.first().ok_or("missing FILE")?;
    let opt = if args.iter().any(|a| a == "--no-opt") {
        OptLevel::None
    } else {
        OptLevel::Full
    };
    let src = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let prog = frontend::parse(&src).map_err(|e| e.to_string())?;
    let class = classify_program(&prog);
    println!(
        "program {}: {} operators, adjacent={}, trans={}",
        prog.name, class.num_operators, class.uses_adjacent, class.uses_trans
    );
    let plan = compile(&prog, opt);
    println!("compiled at {opt:?}: {} top-level steps", plan.body.len());
    for (i, top) in plan.body.iter().enumerate() {
        println!("  [{i}] {}", describe(top));
    }
    Ok(())
}

fn describe(top: &kimbap_compiler::transform::CompiledTop) -> String {
    use kimbap_compiler::transform::CompiledTop as T;
    match top {
        T::InitMap { map, .. } => format!("init map {map}"),
        T::ResetMap { map } => format!("reset map {map}"),
        T::SetScalar { reducer, value } => format!("set reducer {reducer} = {value}"),
        T::Loop(l) => format!(
            "while-updated loop: {:?}, {} request phase(s), pin {:?}, broadcast {:?}",
            l.iterator,
            l.request_phases.len(),
            l.pinned_maps,
            l.broadcast_maps
        ),
        T::Once(l) => format!(
            "parfor: {:?}, {} request phase(s), pin {:?}",
            l.iterator,
            l.request_phases.len(),
            l.pinned_maps
        ),
        T::DoWhileScalar { body, reducer } => {
            format!("do {{ {} steps }} while reducer {reducer}", body.len())
        }
    }
}
