//! Elastic plan execution: survive permanent host loss.
//!
//! [`run_plan_elastic`] wraps the [`Engine`] in a membership-shrink loop.
//! While the cluster is whole it behaves exactly like `Engine::run`; when
//! a host is lost for good, the engine's recovery path raises a
//! [`ShrinkSignal`] carrying the last checkpoint in partition-independent
//! form, and this driver:
//!
//! 1. agrees the shrink with the other survivors
//!    ([`HostCtx::recover_shrink`]), which compacts logical ranks onto the
//!    surviving hosts and bumps the membership generation;
//! 2. recomputes the graph partition over the reduced host set;
//! 3. re-shards the durable state — each survivor contributes its own
//!    checkpoint shard plus, when its ring predecessor is among the
//!    departed, the predecessor's replicated shard — routing every master
//!    pair to its new owner through one exchange;
//! 4. rebuilds the engine on the new partition, installs the adopted
//!    state, and resumes the program from the loop that was executing.
//!
//! When the replicas cannot reconstruct the full checkpoint (adjacent
//! departures, a loss before the first replication, a non-resumable
//! program point, or a non-partition-aware variant), every survivor
//! agrees — all inputs to the verdict are all-reduced — to restart the
//! program from scratch on the shrunk membership instead. Either way the
//! output is the one a fault-free run on the surviving hosts produces.
//!
//! The same driver also grows: with [`EngineConfig::allow_grow`] the
//! engine raises a [`GrowSignal`] at the round boundary where the members
//! vote that a latent host is knocking. The driver then:
//!
//! 1. agrees the grow with the other members ([`HostCtx::recover_grow`]),
//!    admitting the knockers and bumping the membership generation, while
//!    the joiner sits in [`join_plan_elastic`] / [`HostCtx::join_cluster`];
//! 2. recomputes the partition over the expanded host set (hub splitting
//!    and all — the policy sees only the new host count);
//! 3. re-shards the members' checkpoint shards onto the new ownership in
//!    one routed exchange ([`grow_reshard`] — the joiner contributes
//!    nothing and adopts whatever now lands on its shard);
//! 4. resumes from the last checkpoint on the grown membership. Mirrors
//!    re-materialize through the replayed round's request phase, and the
//!    checkpoint replication ring — successor by logical rank — includes
//!    the newcomer from the first post-grow checkpoint on.

use crate::engine::{
    AdoptedState, DurableState, Engine, EngineConfig, EngineOutput, GrowSignal, ShrinkSignal,
};
use kimbap_comm::{clock, Deadline, GrowOutcome, HostCtx, ShrinkOutcome};
use kimbap_compiler::transform::CompiledProgram;
use kimbap_dist::{partition, Policy};
use kimbap_graph::{Graph, NodeId};
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Membership shrinks tolerated per program before giving up.
const MAX_SHRINKS: u32 = 8;

/// Membership grows tolerated per program before giving up (bounds the
/// pathological case of a knocker that retracts and re-knocks forever).
const MAX_GROWS: u32 = 8;

/// Re-sharded state plus the program point to resume from.
struct ResumePoint {
    top_idx: usize,
    state: AdoptedState,
}

/// Runs `plan` to completion on the current membership, surviving
/// permanent host loss by shrinking onto the survivors (see the module
/// docs). Collective; call from every live host.
///
/// The partition is computed *inside* the attempt from `ctx.num_hosts()`,
/// so each retry re-partitions over the membership that is actually
/// alive.
pub fn run_plan_elastic(
    g: &Graph,
    policy: Policy,
    plan: &CompiledProgram,
    config: EngineConfig,
    ctx: &HostCtx,
) -> EngineOutput {
    let config = EngineConfig {
        allow_shrink: true,
        ..config
    };
    run_plan_elastic_from(g, policy, plan, config, ctx, None)
}

/// The shared elastic loop: run (or resume) the program, catching shrink
/// and grow signals until it completes. `config` must already have
/// `allow_shrink` set; [`run_plan_elastic`] enters with no resume point,
/// [`join_plan_elastic`] with the state the grow re-shard handed the
/// newcomer.
fn run_plan_elastic_from(
    g: &Graph,
    policy: Policy,
    plan: &CompiledProgram,
    config: EngineConfig,
    ctx: &HostCtx,
    mut resume: Option<ResumePoint>,
) -> EngineOutput {
    let mut shrinks = 0u32;
    let mut grows = 0u32;
    loop {
        let parts = partition(g, policy, ctx.num_hosts());
        let dg = &parts[ctx.host()];
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            let mut engine = Engine::with_config(dg, ctx, plan, config);
            match resume.take() {
                Some(rp) => {
                    engine.adopt(&rp.state);
                    engine.run_from(ctx, rp.top_idx)
                }
                None => engine.run(ctx),
            }
        }));
        match attempt {
            Ok(out) => return out,
            Err(payload) => match payload.downcast::<ShrinkSignal>() {
                Ok(sig) => {
                    shrinks += 1;
                    if shrinks > MAX_SHRINKS {
                        panic!("membership shrank more than {MAX_SHRINKS} times; giving up");
                    }
                    let outcome = match ctx.recover_shrink() {
                        Ok(o) => o,
                        Err(e) => panic!("membership shrink failed: {e}"),
                    };
                    resume = reshard(ctx, g, policy, plan, &config, *sig, &outcome);
                }
                Err(payload) => match payload.downcast::<GrowSignal>() {
                    Ok(sig) => {
                        grows += 1;
                        if grows > MAX_GROWS {
                            panic!("membership grew more than {MAX_GROWS} times; giving up");
                        }
                        let outcome = match ctx.recover_grow() {
                            Ok(o) => o,
                            Err(e) => panic!("membership grow failed: {e}"),
                        };
                        resume = grow_reshard(ctx, g, policy, plan, &config, Some(*sig), &outcome);
                    }
                    Err(payload) => resume_unwind(payload),
                },
            },
        }
    }
}

/// Joins a running elastic computation from a latent host: waits out the
/// fault plan's declared join delay, knocks until admitted (or
/// `join_deadline` expires — the give-up is benign and returns `None`
/// without disturbing the members), takes the grow re-shard's state for
/// its new shard, and runs the rest of the program as a full member.
/// Returns the same [`EngineOutput`] every member produces.
pub fn join_plan_elastic(
    g: &Graph,
    policy: Policy,
    plan: &CompiledProgram,
    config: EngineConfig,
    ctx: &HostCtx,
    join_deadline: &Deadline,
) -> Option<EngineOutput> {
    if let Some(d) = ctx.join_delay() {
        clock::sleep(d);
    }
    let outcome = match ctx.join_cluster(join_deadline) {
        Ok(o) => o,
        // Typed give-up: the members never stopped at a grow gate (the
        // run may have finished, or growth is disabled). The joiner
        // simply reports it has nothing.
        Err(_) => return None,
    };
    let config = EngineConfig {
        allow_shrink: true,
        ..config
    };
    let resume = grow_reshard(ctx, g, policy, plan, &config, None, &outcome);
    Some(run_plan_elastic_from(g, policy, plan, config, ctx, resume))
}

/// Redistributes the union of surviving checkpoint shards and adopted
/// replicas over the new ownership. Returns `None` — identically on every
/// survivor — when the checkpoint cannot be reconstructed and the program
/// must restart from scratch. Collective on the shrunk membership.
fn reshard(
    ctx: &HostCtx,
    g: &Graph,
    policy: Policy,
    plan: &CompiledProgram,
    config: &EngineConfig,
    sig: ShrinkSignal,
    outcome: &ShrinkOutcome,
) -> Option<ResumePoint> {
    let n = g.num_nodes();
    let new_n = ctx.num_hosts();
    let me = ctx.host();
    let nmaps = plan.maps.len();
    ctx.set_deadline(Deadline::none());

    // This host contributes its own shard plus, when its ring predecessor
    // (in old logical ranks — the ranks replication ran under) departed,
    // the predecessor's replicated shard. Non-adjacent multi-departures
    // are each covered by their own successor; adjacent ones lose a shard
    // and fail the coverage check below.
    let pred_old = (outcome.my_old_rank + outcome.old_count - 1) % outcome.old_count;
    let adopter = outcome.departed.contains(&pred_old);
    let replica = if adopter { sig.replica.as_ref() } else { None };

    // Agree on resumability. Every input to the verdict is all-reduced,
    // so all survivors reach the identical decision.
    let locally_fit = sig.top_idx.is_some()
        && config.variant.partition_aware()
        && sig.state.maps.len() == nmaps
        && (!adopter
            || replica.is_some_and(|r| r.rounds == sig.state.rounds && r.maps.len() == nmaps));
    if ctx.all_reduce_u64(locally_fit as u64, |a, b| a.min(b)) == 0 {
        return None;
    }
    // Checkpoints are taken at collective round boundaries, so every
    // surviving shard must be at the same round to replay together.
    let r_min = ctx.all_reduce_u64(sig.state.rounds, |a, b| a.min(b));
    let r_max = ctx.all_reduce_u64(sig.state.rounds, |a, b| a.max(b));
    if r_min != r_max {
        return None;
    }
    // Coverage: surviving shards plus adopted replicas must hold every
    // master of every map exactly once.
    for m in 0..nmaps {
        let mine = sig.state.maps[m].len() + replica.map_or(0, |r| r.maps[m].len());
        if ctx.all_reduce_u64(mine as u64, |a, b| a + b) != n as u64 {
            return None;
        }
    }

    // Route every contributed pair to its owner under the re-partitioned
    // graph. Pairs are `(map, key, value)` triples of little-endian u64s.
    let own = partition(g, policy, new_n)[me].ownership().clone();
    let mut out: Vec<Vec<u8>> = vec![Vec::new(); new_n];
    let encode = |state: &DurableState, out: &mut Vec<Vec<u8>>| {
        for (m, pairs) in state.maps.iter().enumerate() {
            for &(k, v) in pairs {
                let buf = &mut out[own.owner(k)];
                buf.extend_from_slice(&(m as u64).to_le_bytes());
                buf.extend_from_slice(&(k as u64).to_le_bytes());
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
    };
    encode(&sig.state, &mut out);
    if let Some(r) = replica {
        encode(r, &mut out);
    }
    let recv = ctx.exchange(out);

    let mut maps: Vec<HashMap<NodeId, u64>> = vec![HashMap::new(); nmaps];
    let mut moved = 0u64;
    for (from, buf) in recv.iter().enumerate() {
        assert_eq!(buf.len() % 24, 0, "torn re-shard payload");
        for c in buf.chunks_exact(24) {
            let m = u64::from_le_bytes(c[0..8].try_into().unwrap()) as usize;
            let k = u64::from_le_bytes(c[8..16].try_into().unwrap()) as NodeId;
            let v = u64::from_le_bytes(c[16..24].try_into().unwrap());
            if from != me {
                moved += 1;
            }
            maps[m].insert(k, v);
        }
    }
    ctx.add_resharded_keys(moved);

    // Scalar reducers are global sums of per-host locals: survivors keep
    // their own, and the adopter absorbs the departed predecessor's share
    // exactly once.
    let mut reducers = sig.state.reducers.clone();
    if let Some(r) = replica {
        for (acc, &v) in reducers.iter_mut().zip(&r.reducers) {
            *acc = acc.wrapping_add(v);
        }
    }

    Some(ResumePoint {
        top_idx: sig.top_idx.expect("checked by the fitness vote"),
        state: AdoptedState {
            maps,
            reducers,
            rounds: sig.state.rounds,
        },
    })
}

/// Redistributes the members' checkpoint shards over the expanded
/// ownership after a grow. Collective on the grown membership: members
/// pass their [`GrowSignal`]; the newcomer passes `None` (it owned
/// nothing) and contributes neutral identities to every agreement vote.
/// Returns `None` — identically everywhere — when the members' state
/// cannot resume and the program must restart from scratch on the grown
/// membership.
fn grow_reshard(
    ctx: &HostCtx,
    g: &Graph,
    policy: Policy,
    plan: &CompiledProgram,
    config: &EngineConfig,
    sig: Option<GrowSignal>,
    _outcome: &GrowOutcome,
) -> Option<ResumePoint> {
    let n = g.num_nodes();
    let new_n = ctx.num_hosts();
    let me = ctx.host();
    let nmaps = plan.maps.len();
    ctx.set_deadline(Deadline::none());
    let member = sig.as_ref();

    // Agree on resumability. Unlike a shrink nobody's shard is missing,
    // but the members must still be resumable (a directly resumable loop,
    // a partition-aware variant) and checkpointed at one common round.
    // The joiner votes neutrally: fit, round identities, zero coverage.
    let locally_fit = member.is_none_or(|s| {
        s.top_idx.is_some() && config.variant.partition_aware() && s.state.maps.len() == nmaps
    });
    if ctx.all_reduce_u64(locally_fit as u64, |a, b| a.min(b)) == 0 {
        return None;
    }
    let r_min = ctx.all_reduce_u64(member.map_or(u64::MAX, |s| s.state.rounds), |a, b| a.min(b));
    let r_max = ctx.all_reduce_u64(member.map_or(0, |s| s.state.rounds), |a, b| a.max(b));
    if r_min != r_max {
        return None;
    }
    // Coverage: the members' shards must hold every master of every map
    // exactly once (a crash between checkpoint and grow gate cannot lose
    // keys, but the vote proves it rather than assuming it).
    for m in 0..nmaps {
        let mine = member.map_or(0, |s| s.state.maps[m].len());
        if ctx.all_reduce_u64(mine as u64, |a, b| a + b) != n as u64 {
            return None;
        }
    }
    // The newcomer learns the resume point from the members (all carry
    // the same index; min over the joiner's neutral MAX picks it).
    let top = ctx.all_reduce_u64(
        member.map_or(u64::MAX, |s| s.top_idx.expect("checked by the fitness vote") as u64),
        |a, b| a.min(b),
    ) as usize;

    // Route every master pair to its owner under the expanded partition
    // through one exchange — same triple encoding as the shrink re-shard.
    let own = partition(g, policy, new_n)[me].ownership().clone();
    let mut out: Vec<Vec<u8>> = vec![Vec::new(); new_n];
    if let Some(s) = member {
        for (m, pairs) in s.state.maps.iter().enumerate() {
            for &(k, v) in pairs {
                let buf = &mut out[own.owner(k)];
                buf.extend_from_slice(&(m as u64).to_le_bytes());
                buf.extend_from_slice(&(k as u64).to_le_bytes());
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    let recv = ctx.exchange(out);

    let mut maps: Vec<HashMap<NodeId, u64>> = vec![HashMap::new(); nmaps];
    let mut moved = 0u64;
    for (from, buf) in recv.iter().enumerate() {
        assert_eq!(buf.len() % 24, 0, "torn re-shard payload");
        for c in buf.chunks_exact(24) {
            let m = u64::from_le_bytes(c[0..8].try_into().unwrap()) as usize;
            let k = u64::from_le_bytes(c[8..16].try_into().unwrap()) as NodeId;
            let v = u64::from_le_bytes(c[16..24].try_into().unwrap());
            if from != me {
                moved += 1;
            }
            maps[m].insert(k, v);
        }
    }
    ctx.add_grow_resharded_keys(moved);

    // Scalar reducers are global sums of per-host locals: members keep
    // their own, the newcomer starts from zero.
    let reducers = member.map_or_else(
        || vec![0; plan.num_reducers],
        |s| s.state.reducers.clone(),
    );

    Some(ResumePoint {
        top_idx: top,
        state: AdoptedState {
            maps,
            reducers,
            rounds: r_min,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kimbap_comm::{Cluster, FaultPlan};
    use kimbap_compiler::{compile, programs, OptLevel};
    use kimbap_graph::gen;

    fn merged_map0(n: usize, outs: &[&EngineOutput]) -> Vec<u64> {
        let mut out = vec![0; n];
        for o in outs {
            for &(g, v) in &o.map_values[0] {
                out[g as usize] = v;
            }
        }
        out
    }

    #[test]
    fn killed_host_resumes_from_replicated_checkpoint() {
        let g = gen::grid_road(7, 7, 3);
        let plan = compile(&programs::cc_lp(), OptLevel::Full);
        let expected = kimbap_algos_free_baseline(&g);

        // The sim backend pins the schedule to the seed: every survivor
        // catches the loss at the same checkpoint round, so the run
        // deterministically takes the re-shard path (on the in-proc
        // backend load can skew the catch rounds, and the agreed
        // full-restart fallback — correct but reshard-free — may fire).
        let faults = FaultPlan::new().kill_host(1, 3);
        let res = Cluster::with_threads(4, 1).sim(11).try_run_with_faults(faults, |ctx| {
            let out = run_plan_elastic(
                &g,
                Policy::EdgeCutBlocked,
                &plan,
                EngineConfig::default(),
                ctx,
            );
            (out, ctx.stats())
        });

        assert!(res[1].is_err(), "the killed host must not return a result");
        let survivors: Vec<_> = [0usize, 2, 3]
            .iter()
            .map(|&h| res[h].as_ref().unwrap_or_else(|e| panic!("host {h}: {e}")))
            .collect();
        let outs: Vec<&EngineOutput> = survivors.iter().map(|(o, _)| o).collect();
        assert_eq!(
            merged_map0(g.num_nodes(), &outs),
            expected,
            "degraded output diverged from the fault-free labels"
        );
        for (_, stats) in &survivors {
            assert_eq!(stats.membership_changes, 1);
            assert!(stats.degraded_rounds >= 1, "no degraded rounds counted");
        }
        // The re-shard exchange moved the departed host's keys (and the
        // repartition's) across the wire on at least one survivor.
        assert!(
            survivors.iter().any(|(_, s)| s.resharded_keys > 0),
            "no keys were re-sharded"
        );
    }

    #[test]
    fn joined_host_adopts_resharded_state() {
        let g = gen::grid_road(7, 7, 3);
        let plan = compile(&programs::cc_lp(), OptLevel::Full);
        let expected = kimbap_algos_free_baseline(&g);

        // Capacity 4, host 3 latent: the cluster computes on {0,1,2}
        // until host 3 knocks, grows to {0,1,2,3}, re-shards the master
        // maps over the expanded ownership, and finishes four-wide. The
        // labels are the algorithm's fixed point either way, so the
        // merged output must match the static fault-free baseline.
        let faults = FaultPlan::new().join_host(3, 0);
        let res = Cluster::with_threads(4, 1).sim(11).try_run_with_faults(faults, |ctx| {
            let config = EngineConfig {
                allow_grow: true,
                ..EngineConfig::default()
            };
            let out = if ctx.is_member() {
                run_plan_elastic(&g, Policy::EdgeCutBlocked, &plan, config, ctx)
            } else {
                join_plan_elastic(
                    &g,
                    Policy::EdgeCutBlocked,
                    &plan,
                    config,
                    ctx,
                    &Deadline::after("join", std::time::Duration::from_secs(60)),
                )
                .expect("joiner gave up before admission")
            };
            (out, ctx.stats())
        });

        let hosts: Vec<_> = (0..4)
            .map(|h| res[h].as_ref().unwrap_or_else(|e| panic!("host {h}: {e}")))
            .collect();
        let outs: Vec<&EngineOutput> = hosts.iter().map(|(o, _)| o).collect();
        assert_eq!(
            merged_map0(g.num_nodes(), &outs),
            expected,
            "grown output diverged from the fault-free labels"
        );
        for (h, (_, stats)) in hosts.iter().enumerate() {
            assert_eq!(stats.joins, 1, "host {h} counted the wrong join total");
            assert_eq!(stats.membership_changes, 1);
            assert_eq!(
                stats.degraded_rounds, 0,
                "a grow from the declared-latent baseline is not degradation"
            );
        }
        // Expanding ownership 3 -> 4 moves masters onto the newcomer (and
        // between survivors) through the grow re-shard exchange.
        assert!(
            hosts.iter().any(|(_, s)| s.grow_resharded_keys > 0),
            "no keys were re-sharded to the joined host"
        );
    }

    /// The reference labels a fault-free run would produce.
    fn kimbap_algos_free_baseline(g: &Graph) -> Vec<u64> {
        let plan = compile(&programs::cc_lp(), OptLevel::Full);
        let parts = partition(g, Policy::EdgeCutBlocked, 4);
        let outs = Cluster::new(4)
            .run(|ctx| Engine::new(&parts[ctx.host()], ctx, &plan).run(ctx));
        merged_map0(g.num_nodes(), &outs.iter().collect::<Vec<_>>())
    }
}
