//! Execution engine for compiler-generated BSP plans.
//!
//! The paper's compiler emits C++; this reproduction's compiler emits a
//! [`CompiledProgram`] that this engine interprets against the real
//! node-property map runtime — every `Request`, `RequestSync`,
//! `ReduceSync`, `BroadcastSync`, and `PinMirrors` in the plan turns into
//! the corresponding [`NodePropMap`] call, so compiled programs exercise
//! exactly the same distributed machinery as the hand-written algorithms
//! in `kimbap-algos` (whose outputs they are tested to match).

use kimbap_comm::{clock, CrashSignal, Deadline, HostCtx, SyncPhase};
use kimbap_compiler::ir::{BinOp, Expr, NodeIterator, Stmt};
use kimbap_compiler::transform::{CompiledLoop, CompiledProgram, CompiledTop};
use kimbap_compiler::ReadDep;
use kimbap_dist::{DistGraph, LocalId};
use kimbap_graph::NodeId;
use kimbap_npm::{
    ChangedKeys, DynReduceOp, MapLayout, MapSnapshot, NodePropMap, Npm, SumReducer, Variant,
};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Crash recoveries per compiled loop before the failure is propagated.
const MAX_RECOVERIES: u32 = 8;

/// Execution options for [`Engine`], orthogonal to the compiled plan.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Runtime variant backing every program map.
    pub variant: Variant,
    /// Allow sparse (active-set) rounds for loops the compiler certified
    /// with a [`kimbap_compiler::SparsePlan`]. When false every round runs
    /// dense, regardless of the plan.
    pub sparse: bool,
    /// Deadline applied to every sync phase of every round: a host that
    /// does not complete the phase's collectives within this budget aborts
    /// with [`kimbap_comm::CommError::Timeout`] and recovers via
    /// checkpoint replay, instead of wedging the round forever behind a
    /// hung peer. `None` (the default) waits indefinitely.
    pub phase_timeout: Option<Duration>,
    /// Survive permanent host loss: replicate every checkpoint to the ring
    /// successor and, when recovery alignment reports permanently departed
    /// hosts, raise a [`ShrinkSignal`] (caught by
    /// [`crate::elastic::run_plan_elastic`]) carrying the durable state
    /// instead of propagating a terminal error.
    pub allow_shrink: bool,
    /// Admit latent hosts mid-run: every round the members vote (one
    /// all-reduce) on whether any latent host is knocking to join, and a
    /// positive vote raises a [`GrowSignal`] (caught by
    /// [`crate::elastic::run_plan_elastic`]) at that round boundary so
    /// every member stops at the grow gate together.
    pub allow_grow: bool,
    /// Overlap reduce-sync serialization and wire I/O with compute via
    /// split-phase chunked exchanges (on by default; `--no-pipeline` turns
    /// it off). Pin rounds — the first round and post-recovery replays —
    /// and checkpoint-replication exchanges always run non-pipelined, so
    /// recovery replays the simplest possible schedule. Results are
    /// byte-identical either way.
    pub pipelined: bool,
    /// Offset added to every round the engine publishes via
    /// [`kimbap_comm::HostCtx::set_round`]. A serving layer sets this to
    /// `job_index * JOB_ROUND_STRIDE` so round-targeted faults and traces
    /// address "round `r` of job `k`" even when many engine runs share one
    /// `HostCtx`. Zero (the default) preserves the single-job numbering.
    pub round_base: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            variant: Variant::SgrCfGar,
            sparse: true,
            phase_timeout: None,
            allow_shrink: false,
            allow_grow: false,
            pipelined: true,
            round_base: 0,
        }
    }
}

/// What one BSP round's reduce-compute `ParFor` actually executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundActivity {
    /// Global round number (1-based, shared across the program's loops).
    pub round: u64,
    /// Nodes the operator body ran on.
    pub active: u64,
    /// Dense extent of the loop's iterator on this host.
    pub total: u64,
    /// Whether the round iterated a sparse active set.
    pub sparse: bool,
    /// Wall-clock time of the reduce-compute phase.
    pub reduce_compute_nanos: u64,
}

/// The nodes a sparse round executes — Ligra's two frontier shapes.
enum ActiveSet {
    /// Sorted local ids; chosen when the frontier is far enough below the
    /// extent that per-node dispatch beats scanning a bitmap.
    List(Vec<LocalId>),
    /// Bitmap over the iterator extent, scanned word by word.
    Bits { words: Vec<u64>, count: usize },
}

/// A round-level checkpoint: everything needed to replay a BSP loop from
/// its last completed round after a host failure.
///
/// Taken on every host at each reduce-sync boundary (end of a round, after
/// the quiescence check). Master properties and scalar reducers are the
/// whole durable state: remote caches are re-materialized by the replayed
/// round's request phase, and pinned mirrors by re-pinning.
#[derive(Debug, Clone)]
struct Checkpoint {
    maps: Vec<MapSnapshot<u64>>,
    reducers: Vec<u64>,
    rounds: u64,
    /// Activity records accumulated at checkpoint time; a restore
    /// truncates back to here so replayed rounds are not double-counted.
    activity_len: usize,
}

/// A checkpoint in partition-independent form: explicit master pairs per
/// map, scalar-reducer locals, and the round counter. This is what one
/// host ships to its replication ring successor at every checkpoint, and
/// what a survivor re-shards onto the new ownership after a membership
/// shrink.
#[derive(Debug, Clone)]
pub struct DurableState {
    /// Per map: `(global id, value)` for every master of the originating
    /// host's shard, in deterministic (ascending id) order.
    pub maps: Vec<Vec<(NodeId, u64)>>,
    /// Per scalar reducer: the originating host's local contribution.
    pub reducers: Vec<u64>,
    /// Round counter at the checkpoint.
    pub rounds: u64,
}

/// Re-sharded state a survivor installs before resuming on the shrunk
/// membership: the union of surviving shards and adopted replicas, routed
/// to this host's new masters.
#[derive(Debug, Clone)]
pub struct AdoptedState {
    /// Per map: value for every master this host owns under the new
    /// partition.
    pub maps: Vec<std::collections::HashMap<NodeId, u64>>,
    /// This host's scalar-reducer locals (the adopter's include the
    /// departed predecessor's share).
    pub reducers: Vec<u64>,
    /// Round counter to resume from.
    pub rounds: u64,
}

/// Panic payload raised instead of a terminal error when (with
/// [`EngineConfig::allow_shrink`]) recovery alignment reports permanently
/// departed hosts. Carries everything the elastic driver needs to shrink
/// the membership and resume from the last checkpoint.
pub struct ShrinkSignal {
    /// Index of the top-level program item that was executing, when it was
    /// a directly resumable loop; `None` (nested in a `DoWhileScalar`, or
    /// outside any loop) forces a full restart on the survivors.
    pub top_idx: Option<usize>,
    /// This host's own durable state at the last checkpoint.
    pub state: DurableState,
    /// The ring predecessor's durable state from the last replication
    /// exchange, if one completed.
    pub replica: Option<DurableState>,
}

/// Panic payload raised at a round boundary when (with
/// [`EngineConfig::allow_grow`]) the members' per-round vote observes a
/// latent host knocking to join. Carries everything the elastic driver
/// needs to agree the grow and re-shard the masters onto the expanded
/// membership. No replica rides along: nobody died, every member
/// re-shards its own live state.
pub struct GrowSignal {
    /// Index of the top-level program item that was executing, when it was
    /// a directly resumable loop; `None` forces a full restart on the
    /// grown membership.
    pub top_idx: Option<usize>,
    /// This host's own durable state at the last checkpoint.
    pub state: DurableState,
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn take_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let b = buf.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_le_bytes(b.try_into().unwrap()))
}

fn encode_state(s: &DurableState) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, s.rounds);
    put_u64(&mut buf, s.reducers.len() as u64);
    for &r in &s.reducers {
        put_u64(&mut buf, r);
    }
    put_u64(&mut buf, s.maps.len() as u64);
    for m in &s.maps {
        put_u64(&mut buf, m.len() as u64);
        for &(k, v) in m {
            put_u64(&mut buf, k as u64);
            put_u64(&mut buf, v);
        }
    }
    buf
}

fn decode_state(buf: &[u8]) -> Option<DurableState> {
    let mut pos = 0;
    let rounds = take_u64(buf, &mut pos)?;
    let nred = take_u64(buf, &mut pos)? as usize;
    let mut reducers = Vec::with_capacity(nred.min(1 << 16));
    for _ in 0..nred {
        reducers.push(take_u64(buf, &mut pos)?);
    }
    let nmaps = take_u64(buf, &mut pos)? as usize;
    let mut maps = Vec::with_capacity(nmaps.min(1 << 16));
    for _ in 0..nmaps {
        let len = take_u64(buf, &mut pos)? as usize;
        let mut pairs = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            let k = take_u64(buf, &mut pos)? as NodeId;
            let v = take_u64(buf, &mut pos)?;
            pairs.push((k, v));
        }
        maps.push(pairs);
    }
    (pos == buf.len()).then_some(DurableState {
        maps,
        reducers,
        rounds,
    })
}

/// Per-host output of a program run.
#[derive(Debug, Clone, Default)]
pub struct EngineOutput {
    /// For every map: `(global id, value)` of this host's masters.
    pub map_values: Vec<Vec<(NodeId, u64)>>,
    /// Total BSP rounds executed across all loops.
    pub rounds: u64,
    /// Per-round execution record, in round order.
    pub activity: Vec<RoundActivity>,
}

/// Evaluation context for one statement application.
#[derive(Debug, Clone, Copy)]
struct EvalCtx {
    /// Active node's global id.
    node: u64,
    /// Current edge `(destination global id, weight)`, inside `ForEdges`.
    edge: Option<(u64, u64)>,
}

fn eval(e: &Expr, c: EvalCtx, env: &[u64]) -> u64 {
    match e {
        Expr::Const(x) => *x,
        Expr::Var(v) => env[*v],
        Expr::Node => c.node,
        Expr::EdgeDst => c.edge.expect("EdgeDst outside ForEdges").0,
        Expr::EdgeWeight => c.edge.expect("EdgeWeight outside ForEdges").1,
        Expr::Bin(op, a, b) => {
            let (a, b) = (eval(a, c, env), eval(b, c, env));
            match op {
                BinOp::Lt => (a < b) as u64,
                BinOp::Gt => (a > b) as u64,
                BinOp::Ne => (a != b) as u64,
                BinOp::Eq => (a == b) as u64,
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Min => a.min(b),
            }
        }
    }
}

/// The plan interpreter: owns one node-property map per program map and
/// one scalar reducer per program reducer.
pub struct Engine<'g> {
    dg: &'g DistGraph,
    plan: &'g CompiledProgram,
    maps: Vec<Npm<'g, u64, DynReduceOp>>,
    reducers: Vec<SumReducer>,
    rounds: u64,
    config: EngineConfig,
    activity: Vec<RoundActivity>,
    /// The ring predecessor's durable state from the last replication
    /// exchange (with [`EngineConfig::allow_shrink`]).
    replica: Option<DurableState>,
    /// Index of the top-level program item currently executing, when it is
    /// directly under the program body (nested bodies clear it): the
    /// resume point a [`ShrinkSignal`] reports.
    top_cursor: Option<usize>,
}

impl<'g> Engine<'g> {
    /// Creates an engine for `plan` on this host's partition with the
    /// default configuration (GAR runtime, sparse rounds on). Collective.
    pub fn new(dg: &'g DistGraph, ctx: &HostCtx, plan: &'g CompiledProgram) -> Self {
        Self::with_config(dg, ctx, plan, EngineConfig::default())
    }

    /// Creates an engine with an explicit [`EngineConfig`]. Collective.
    pub fn with_config(
        dg: &'g DistGraph,
        ctx: &HostCtx,
        plan: &'g CompiledProgram,
        config: EngineConfig,
    ) -> Self {
        // Back each map with the tightest storage layout its certified
        // value domain allows (n is only known here): node-id labels pack
        // to u32, tiny constant domains bitpack, everything else stays
        // native. Only the GAR variant has dense tables to pack.
        let n = dg.num_global_nodes();
        let maps = plan
            .maps
            .iter()
            .zip(&plan.value_domains)
            .map(|(d, dom)| {
                let layout = if config.variant.partition_aware() {
                    MapLayout::for_bound(dom.bound(n))
                } else {
                    MapLayout::Native
                };
                Npm::with_layout(dg, ctx, d.op, config.variant, layout)
            })
            .collect();
        Engine {
            dg,
            plan,
            maps,
            reducers: (0..plan.num_reducers).map(|_| SumReducer::new()).collect(),
            rounds: 0,
            config,
            activity: Vec::new(),
            replica: None,
            top_cursor: None,
        }
    }

    /// Runs the program to completion and returns the master values of
    /// every map. Collective.
    pub fn run(self, ctx: &HostCtx) -> EngineOutput {
        self.run_from(ctx, 0)
    }

    /// The storage layout chosen for each map (certified-domain packing).
    pub fn map_layouts(&self) -> Vec<MapLayout> {
        self.maps.iter().map(|m| m.layout()).collect()
    }

    /// Heap bytes of every map's dense master/mirror value tables on this
    /// host — the memory the compact layouts shrink.
    pub fn map_table_bytes(&self) -> usize {
        self.maps.iter().map(|m| m.table_bytes()).sum()
    }

    /// Runs the program starting at top-level item `start`: 0 for a fresh
    /// run; the [`ShrinkSignal`]'s resume point after [`Engine::adopt`]
    /// installed re-sharded state on a shrunk membership. Collective.
    pub fn run_from(mut self, ctx: &HostCtx, start: usize) -> EngineOutput {
        let body = self.plan.body.clone();
        for (i, t) in body.iter().enumerate().skip(start) {
            self.top_cursor = Some(i);
            self.exec_top(ctx, t);
        }
        self.top_cursor = None;
        let map_values = self
            .maps
            .iter()
            .map(|m| {
                self.dg
                    .master_nodes()
                    .map(|l| {
                        let g = self.dg.local_to_global(l);
                        (g, m.read(g))
                    })
                    .collect()
            })
            .collect();
        EngineOutput {
            map_values,
            rounds: self.rounds,
            activity: self.activity,
        }
    }

    fn exec_tops(&mut self, ctx: &HostCtx, tops: &[CompiledTop]) {
        // Nested bodies (`DoWhileScalar`) are not resumable mid-iteration:
        // clear the cursor so a shrink inside one forces a full restart.
        self.top_cursor = None;
        for t in tops {
            self.exec_top(ctx, t);
        }
    }

    fn exec_top(&mut self, ctx: &HostCtx, t: &CompiledTop) {
        {
            match t {
                CompiledTop::InitMap { map, value } => {
                    let value = value.clone();
                    self.maps[*map].init_masters(&move |g| {
                        eval(
                            &value,
                            EvalCtx {
                                node: g as u64,
                                edge: None,
                            },
                            &[],
                        )
                    });
                }
                CompiledTop::ResetMap { map } => self.maps[*map].reset_values(ctx),
                CompiledTop::SetScalar { reducer, value } => self.reducers[*reducer].set(*value),
                CompiledTop::Loop(l) => self.exec_loop(ctx, l, true),
                CompiledTop::Once(l) => self.exec_loop(ctx, l, false),
                CompiledTop::DoWhileScalar { body, reducer } => loop {
                    self.exec_tops(ctx, body);
                    if self.reducers[*reducer].read(ctx) == 0 {
                        break;
                    }
                    // Reset for the next iteration happens via the body's
                    // leading SetScalar, as in the source program.
                },
            }
        }
    }

    /// Captures the engine's durable state at a round boundary.
    fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            maps: self.maps.iter().map(|m| m.snapshot()).collect(),
            reducers: self.reducers.iter().map(|r| r.local()).collect(),
            rounds: self.rounds,
            activity_len: self.activity.len(),
        }
    }

    /// Converts `cp` to its partition-independent form (explicit master
    /// pairs instead of shard-relative offsets).
    fn globalize(&self, cp: &Checkpoint) -> DurableState {
        DurableState {
            maps: self
                .maps
                .iter()
                .zip(&cp.maps)
                .map(|(m, s)| m.globalize_snapshot(s))
                .collect(),
            reducers: cp.reducers.clone(),
            rounds: cp.rounds,
        }
    }

    /// Ships this host's checkpoint (globalized) to its ring successor and
    /// installs the predecessor's as the local replica. Collective; runs
    /// inside the loop's recovery scope, so a crash mid-exchange rewinds
    /// and re-replicates like any failed round.
    fn replicate(&mut self, ctx: &HostCtx, cp: &Checkpoint) {
        let k = ctx.num_hosts();
        if k < 2 {
            return;
        }
        ctx.set_deadline(Deadline::maybe("replicate", self.config.phase_timeout));
        // Checkpoint traffic is durable state: keep it on the plain
        // blocking schedule regardless of the pipelining config.
        ctx.set_pipelined(false);
        let me = ctx.host();
        let mut out = vec![Vec::new(); k];
        out[(me + 1) % k] = encode_state(&self.globalize(cp));
        let recv = ctx.exchange(out);
        self.replica = decode_state(&recv[(me + k - 1) % k]);
        ctx.set_deadline(Deadline::none());
    }

    /// Installs re-sharded durable state: every map's masters from the
    /// routed tables, the scalar-reducer locals, and the round counter.
    /// The next executed loop pins mirrors and replays from this state
    /// exactly as from a checkpoint restore.
    ///
    /// # Panics
    ///
    /// Panics if the re-shard left one of this host's masters without a
    /// value (the elastic driver's coverage check prevents this).
    pub fn adopt(&mut self, state: &AdoptedState) {
        assert_eq!(
            state.maps.len(),
            self.maps.len(),
            "adopted state from a different program"
        );
        for (m, table) in self.maps.iter_mut().zip(&state.maps) {
            m.init_masters(&|g| {
                *table
                    .get(&g)
                    .unwrap_or_else(|| panic!("re-shard left master {g} without a value"))
            });
        }
        for (r, &v) in self.reducers.iter().zip(&state.reducers) {
            r.set(v);
        }
        self.rounds = state.rounds;
    }

    /// Rewinds the engine to `cp` (after [`HostCtx::recover_align`] has
    /// healed the fabric).
    fn restore(&mut self, cp: &Checkpoint) {
        for (m, s) in self.maps.iter_mut().zip(&cp.maps) {
            m.restore(s);
        }
        for (r, &v) in self.reducers.iter().zip(&cp.reducers) {
            r.set(v);
        }
        self.rounds = cp.rounds;
        self.activity.truncate(cp.activity_len);
    }

    fn exec_loop(&mut self, ctx: &HostCtx, l: &CompiledLoop, repeat: bool) {
        let mut cp = self.checkpoint();
        let mut need_pin = true;
        // Replication runs at the top of the protected step, so a crash
        // anywhere inside rewinds both the round and the replica exchange
        // together; after a restore it re-ships the restored checkpoint so
        // the successor's replica matches what survivors would replay.
        let mut replicate_due = self.config.allow_shrink;
        let mut recoveries = 0u32;
        loop {
            let step = catch_unwind(AssertUnwindSafe(|| {
                if self.config.allow_grow {
                    // Synchronized join detection: one host acting on its
                    // local view of a knock would desync the collectives,
                    // so every member votes and all stop at the same round
                    // boundary.
                    let knocking = u64::from(!ctx.pending_joins().is_empty());
                    if ctx.all_reduce_u64(knocking, |a, b| a.max(b)) != 0 {
                        // resume_unwind, not panic_any: this is control
                        // flow, and the panic hook must not print it.
                        resume_unwind(Box::new(GrowSignal {
                            top_idx: self.top_cursor,
                            state: self.globalize(&cp),
                        }));
                    }
                }
                if replicate_due {
                    self.replicate(ctx, &cp);
                }
                self.loop_step(ctx, l, repeat, need_pin)
            }));
            match step {
                Ok(done) => {
                    need_pin = false;
                    replicate_due = self.config.allow_shrink;
                    cp = self.checkpoint();
                    if done {
                        break;
                    }
                }
                Err(payload) => {
                    // Only recoverable host failures are handled; real bugs
                    // (assertion failures etc.) propagate unchanged, as does
                    // anything beyond the recovery budget.
                    if recoveries >= MAX_RECOVERIES || !payload.is::<CrashSignal>() {
                        resume_unwind(payload);
                    }
                    // A killed host must depart, not recover.
                    if matches!(
                        payload.downcast_ref::<CrashSignal>(),
                        Some(CrashSignal::Killed { .. })
                    ) {
                        resume_unwind(payload);
                    }
                    recoveries += 1;
                    if ctx.recover_align().is_err() {
                        if self.config.allow_shrink && !ctx.pending_departures().is_empty() {
                            // Permanent loss: hand the elastic driver this
                            // host's durable state (plus the predecessor's
                            // replica) to re-shard onto the survivors.
                            resume_unwind(Box::new(ShrinkSignal {
                                top_idx: self.top_cursor,
                                state: self.globalize(&cp),
                                replica: self.replica.take(),
                            }));
                        }
                        resume_unwind(payload);
                    }
                    self.restore(&cp);
                    need_pin = true;
                    replicate_due = self.config.allow_shrink;
                }
            }
        }
        for m in &l.pinned_maps {
            self.maps[*m].unpin_mirrors();
        }
    }

    /// Executes one BSP round of `l` (pinning mirrors first on the initial
    /// round and after a recovery); returns `true` when the loop is done.
    fn loop_step(&mut self, ctx: &HostCtx, l: &CompiledLoop, repeat: bool, pin: bool) -> bool {
        let timeout = self.config.phase_timeout;
        // Pin rounds (first round and post-recovery replays) run
        // non-pipelined: recovery replays the simplest schedule while the
        // fabric is freshly healed. Steady-state rounds follow the config.
        ctx.set_pipelined(self.config.pipelined && !pin);
        if pin {
            ctx.set_deadline(Deadline::maybe("pin_mirrors", timeout));
            for m in &l.pinned_maps {
                self.maps[*m].pin_mirrors(ctx);
            }
        }
        self.rounds += 1;
        ctx.set_round(self.config.round_base + self.rounds);

        // Consume the previous round's changed-key delta into a frontier
        // *before* opening the next tracking window. Pin rounds (first
        // round and post-recovery replays) and one-shot loops always run
        // dense: every node must execute at least once for the inductive
        // skip argument to hold.
        let frontier = if repeat && !pin {
            self.build_active_set(l)
        } else {
            None
        };
        self.maps[l.quiesce_map].reset_updated();
        if let Some(plan) = &l.sparse {
            // Open a fresh delta window on every read map so the next
            // round's frontier reflects exactly this round's changes.
            for &(m, _) in &plan.read_deps {
                if m != l.quiesce_map {
                    self.maps[m].reset_updated();
                }
            }
        }

        // Each segment of the round reports its wall-clock time to the
        // per-phase counters (Fig. 6 attribution); pinning and the
        // quiescence check sit outside the four phases.
        for phase in &l.request_phases {
            let t = clock::now_nanos();
            self.exec_parfor(ctx, l.iterator, &phase.body, None);
            ctx.add_phase_nanos(SyncPhase::RequestCompute, clock::now_nanos().saturating_sub(t));
            let t = clock::now_nanos();
            ctx.set_deadline(Deadline::maybe("request_sync", timeout));
            for m in &phase.sync_maps {
                self.maps[*m].request_sync(ctx);
            }
            ctx.add_phase_nanos(SyncPhase::RequestSync, clock::now_nanos().saturating_sub(t));
        }

        let t = clock::now_nanos();
        let (active, total) = self.exec_parfor(ctx, l.iterator, &l.body, frontier.as_ref());
        let reduce_compute_nanos = clock::now_nanos().saturating_sub(t);
        ctx.add_phase_nanos(SyncPhase::ReduceCompute, reduce_compute_nanos);
        ctx.add_parfor_activity(active, total, frontier.is_some());
        self.activity.push(RoundActivity {
            round: self.rounds,
            active,
            total,
            sparse: frontier.is_some(),
            reduce_compute_nanos,
        });

        let t = clock::now_nanos();
        ctx.set_deadline(Deadline::maybe("reduce_sync", timeout));
        for m in &l.reduce_maps {
            self.maps[*m].reduce_sync(ctx);
        }
        for m in &l.broadcast_maps {
            self.maps[*m].broadcast_sync(ctx);
        }
        ctx.add_phase_nanos(SyncPhase::ReduceSync, clock::now_nanos().saturating_sub(t));

        ctx.set_deadline(Deadline::maybe("quiesce", timeout));
        let done = !repeat || !self.maps[l.quiesce_map].is_updated(ctx);
        // The loop may be followed by non-engine collectives (stats
        // gathers, result merges) that should not inherit a stale bound.
        ctx.set_deadline(Deadline::none());
        done
    }

    /// Builds the active set for one round of `l` from the changed-key
    /// deltas of the maps its body reads, or `None` when the round must
    /// run dense: no certified [`kimbap_compiler::SparsePlan`], sparse
    /// execution disabled, or a read map's delta window was invalidated
    /// by an untracked mutation.
    fn build_active_set(&self, l: &CompiledLoop) -> Option<ActiveSet> {
        let plan = l.sparse.as_ref()?;
        if !self.config.sparse {
            return None;
        }
        let n = match l.iterator {
            NodeIterator::AllNodes => self.dg.num_local_nodes(),
            NodeIterator::Masters => self.dg.num_masters(),
        };
        let num_masters = self.dg.num_masters();

        fn activate(words: &mut [u64], count: &mut usize, n: usize, lid: usize) {
            if lid < n && words[lid / 64] & (1u64 << (lid % 64)) == 0 {
                words[lid / 64] |= 1u64 << (lid % 64);
                *count += 1;
            }
        }

        let mut words = vec![0u64; n.div_ceil(64)];
        let mut count = 0usize;
        for &(m, dep) in &plan.read_deps {
            let ChangedKeys::Tracked { masters, remote } = self.maps[m].changed_keys() else {
                return None;
            };
            // Under GAR a master's bit offset *is* its local id — both
            // are the rank of the global id among this host's owned
            // nodes — and a changed remote key `g` is the mirror proxy
            // `num_masters + slot(g)`. A changed key re-activates its own
            // reader; an adjacent-keyed read additionally re-activates
            // the in-neighbors whose edge reads observe it.
            for off in masters.iter_set() {
                activate(&mut words, &mut count, n, off);
                if dep == ReadDep::Adjacent {
                    for &src in self.dg.in_neighbors(off as LocalId) {
                        activate(&mut words, &mut count, n, src as usize);
                    }
                }
            }
            for &g in remote {
                let Some(slot) = self.dg.mirror_slot(g) else {
                    continue;
                };
                let lid = num_masters + slot as usize;
                activate(&mut words, &mut count, n, lid);
                if dep == ReadDep::Adjacent {
                    for &src in self.dg.in_neighbors(lid as LocalId) {
                        activate(&mut words, &mut count, n, src as usize);
                    }
                }
            }
        }

        // Ligra-style shape switch: materialize a list only well below
        // the break-even where per-node dispatch beats scanning the
        // bitmap (1/20th of the extent, mirroring Ligra's threshold).
        Some(if count * 20 < n {
            let mut list = Vec::with_capacity(count);
            for (w, &word) in words.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    list.push((w * 64 + bits.trailing_zeros() as usize) as LocalId);
                    bits &= bits - 1;
                }
            }
            ActiveSet::List(list)
        } else {
            ActiveSet::Bits { words, count }
        })
    }

    /// Runs `body` over the iterator's extent — dense, or restricted to
    /// `active` — and returns `(nodes executed, dense extent)`.
    fn exec_parfor(
        &self,
        ctx: &HostCtx,
        iterator: NodeIterator,
        body: &[Stmt],
        active: Option<&ActiveSet>,
    ) -> (u64, u64) {
        let n = match iterator {
            NodeIterator::AllNodes => self.dg.num_local_nodes(),
            NodeIterator::Masters => self.dg.num_masters(),
        };
        let num_vars = self.plan.num_vars;
        let run_one = |lid: LocalId, tid: usize, env: &mut Vec<u64>| {
            let c = EvalCtx {
                node: self.dg.local_to_global(lid) as u64,
                edge: None,
            };
            self.exec_stmts(body, lid, tid, c, env);
        };
        match active {
            None => {
                ctx.par_for(0..n, |tid, range| {
                    let mut env = vec![0u64; num_vars];
                    for l in range {
                        run_one(l as LocalId, tid, &mut env);
                    }
                });
                (n as u64, n as u64)
            }
            Some(ActiveSet::List(list)) => {
                ctx.par_for(0..list.len(), |tid, range| {
                    let mut env = vec![0u64; num_vars];
                    for i in range {
                        run_one(list[i], tid, &mut env);
                    }
                });
                (list.len() as u64, n as u64)
            }
            Some(ActiveSet::Bits { words, count }) => {
                ctx.par_for(0..words.len(), |tid, wrange| {
                    let mut env = vec![0u64; num_vars];
                    for w in wrange {
                        let mut bits = words[w];
                        while bits != 0 {
                            let lid = (w * 64 + bits.trailing_zeros() as usize) as LocalId;
                            bits &= bits - 1;
                            run_one(lid, tid, &mut env);
                        }
                    }
                });
                (*count as u64, n as u64)
            }
        }
    }

    fn exec_stmts(&self, stmts: &[Stmt], lid: LocalId, tid: usize, c: EvalCtx, env: &mut [u64]) {
        for s in stmts {
            match s {
                Stmt::Let { dst, value } => env[*dst] = eval(value, c, env),
                Stmt::Read { dst, map, key } => {
                    env[*dst] = self.maps[*map].read(eval(key, c, env) as NodeId);
                }
                Stmt::Reduce { map, key, value } => {
                    self.maps[*map].reduce(tid, eval(key, c, env) as NodeId, eval(value, c, env));
                }
                Stmt::Request { map, key } => {
                    self.maps[*map].request(eval(key, c, env) as NodeId);
                }
                Stmt::ReduceScalar { reducer, value } => {
                    self.reducers[*reducer].reduce(eval(value, c, env));
                }
                Stmt::If { cond, then } => {
                    if eval(cond, c, env) != 0 {
                        self.exec_stmts(then, lid, tid, c, env);
                    }
                }
                Stmt::ForEdges { body } => {
                    for (dst, w) in self.dg.edges(lid) {
                        let ec = EvalCtx {
                            node: c.node,
                            edge: Some((self.dg.local_to_global(dst) as u64, w)),
                        };
                        self.exec_stmts(body, lid, tid, ec, env);
                    }
                }
            }
        }
    }
}

/// One displayable line of a loop's execution profile: the plan's static
/// shape (request phases per round) joined with what a round actually ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundSummary {
    /// Request phases the loop executes each round.
    pub request_phases: usize,
    /// Nodes the round's reduce-compute phase ran the operator on.
    pub active: u64,
    /// Dense extent of the loop's iterator.
    pub total: u64,
    /// Whether the round iterated a sparse active set.
    pub sparse: bool,
}

impl RoundSummary {
    /// Summarizes one recorded round of `l`.
    pub fn new(l: &CompiledLoop, a: &RoundActivity) -> Self {
        RoundSummary {
            request_phases: l.request_phases.len(),
            active: a.active,
            total: a.total,
            sparse: a.sparse,
        }
    }
}

impl std::fmt::Display for RoundSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} request phase(s), {}/{} nodes ({})",
            self.request_phases,
            self.active,
            self.total,
            if self.sparse { "sparse" } else { "dense" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kimbap_comm::Cluster;
    use kimbap_compiler::{compile, programs, OptLevel};
    use kimbap_dist::{partition, Policy};
    use kimbap_graph::gen;

    fn run_plan(
        prog: &kimbap_compiler::ir::Program,
        opt: OptLevel,
        g: &kimbap_graph::Graph,
        hosts: usize,
        threads: usize,
        policy: Policy,
    ) -> Vec<EngineOutput> {
        let plan = compile(prog, opt);
        let parts = partition(g, policy, hosts);
        Cluster::with_threads(hosts, threads)
            .run(|ctx| Engine::new(&parts[ctx.host()], ctx, &plan).run(ctx))
    }

    fn merged_map0(n: usize, outs: &[EngineOutput]) -> Vec<u64> {
        let mut out = vec![0; n];
        for o in outs {
            for &(g, v) in &o.map_values[0] {
                out[g as usize] = v;
            }
        }
        out
    }

    #[test]
    fn cc_sv_plan_matches_reference() {
        let g = gen::rmat(7, 4, 31);
        let expected = kimbap_algos::refcheck::connected_components(&g);
        for opt in [OptLevel::Full, OptLevel::None] {
            let outs = run_plan(&programs::cc_sv(), opt, &g, 3, 2, Policy::EdgeCutBlocked);
            assert_eq!(
                merged_map0(g.num_nodes(), &outs),
                expected,
                "cc-sv diverged at {opt:?}"
            );
        }
    }

    #[test]
    fn cc_lp_plan_matches_reference() {
        let g = gen::grid_road(7, 7, 3);
        let expected = kimbap_algos::refcheck::connected_components(&g);
        for opt in [OptLevel::Full, OptLevel::None] {
            let outs = run_plan(&programs::cc_lp(), opt, &g, 2, 2, Policy::EdgeCutBlocked);
            assert_eq!(
                merged_map0(g.num_nodes(), &outs),
                expected,
                "cc-lp diverged at {opt:?}"
            );
        }
    }

    #[test]
    fn cc_sclp_plan_matches_reference() {
        let g = gen::rmat(6, 3, 17);
        let expected = kimbap_algos::refcheck::connected_components(&g);
        let outs = run_plan(
            &programs::cc_sclp(),
            OptLevel::Full,
            &g,
            3,
            1,
            Policy::EdgeCutBlocked,
        );
        assert_eq!(merged_map0(g.num_nodes(), &outs), expected);
    }

    #[test]
    fn mis_plan_is_valid_and_matches_native() {
        let g = gen::rmat(7, 3, 5);
        let outs = run_plan(
            &programs::mis(),
            OptLevel::Full,
            &g,
            2,
            2,
            Policy::CartesianVertexCut,
        );
        // Map 1 is `state`: 1 = in set. Isolated nodes stay 0 but belong in
        // any MIS.
        let mut in_set = vec![false; g.num_nodes()];
        for o in &outs {
            for &(gid, v) in &o.map_values[1] {
                in_set[gid as usize] = v == 1 || g.degree(gid) == 0;
            }
        }
        kimbap_algos::refcheck::check_mis(&g, &in_set).unwrap();

        // Exactly the same set the native implementation picks (priorities
        // are identical).
        let parts = partition(&g, Policy::CartesianVertexCut, 2);
        let b = kimbap_algos::NpmBuilder::default();
        let native = Cluster::with_threads(2, 2)
            .run(|ctx| kimbap_algos::mis(&parts[ctx.host()], ctx, &b));
        let native_set =
            kimbap_algos::merge_master_values(g.num_nodes(), native);
        assert_eq!(in_set, native_set);
    }

    #[test]
    fn opt_and_noopt_agree_on_mis() {
        let g = gen::grid_road(6, 6, 9);
        let a = run_plan(&programs::mis(), OptLevel::Full, &g, 2, 1, Policy::EdgeCutBlocked);
        let b = run_plan(&programs::mis(), OptLevel::None, &g, 2, 1, Policy::EdgeCutBlocked);
        let get = |outs: &[EngineOutput]| {
            let mut v = vec![0; g.num_nodes()];
            for o in outs {
                for &(gid, s) in &o.map_values[1] {
                    v[gid as usize] = s;
                }
            }
            v
        };
        assert_eq!(get(&a), get(&b));
    }

    #[test]
    fn certified_domains_pack_cc_labels() {
        let g = gen::rmat(7, 4, 31);
        let expected = kimbap_algos::refcheck::connected_components(&g);
        let plan = compile(&programs::cc_lp(), OptLevel::Full);
        let parts = partition(&g, Policy::EdgeCutBlocked, 2);
        let outs = Cluster::with_threads(2, 2).run(|ctx| {
            let dg = &parts[ctx.host()];
            let eng = Engine::new(dg, ctx, &plan);
            // 128 node-id labels fit in 8 bits (255 is the sentinel).
            assert_eq!(eng.map_layouts(), vec![MapLayout::Bits(8)]);
            let native: Npm<u64, DynReduceOp> = Npm::with_layout(
                dg,
                ctx,
                plan.maps[0].op,
                EngineConfig::default().variant,
                MapLayout::Native,
            );
            assert!(
                eng.map_table_bytes() * 4 <= native.table_bytes(),
                "packed tables ({}B) not 4x under native ({}B)",
                eng.map_table_bytes(),
                native.table_bytes()
            );
            eng.run(ctx)
        });
        // Results through the packed tables match the reference.
        assert_eq!(merged_map0(g.num_nodes(), &outs), expected);
    }

    #[test]
    fn mis_packs_only_the_state_map() {
        let plan = compile(&programs::mis(), OptLevel::Full);
        let parts = partition(&gen::rmat(6, 3, 5), Policy::EdgeCutBlocked, 2);
        Cluster::with_threads(2, 1).run(|ctx| {
            let eng = Engine::new(&parts[ctx.host()], ctx, &plan);
            // degree (Sum) and best (arithmetic priorities) stay native;
            // state ∈ {0, 1, 2} bitpacks.
            assert_eq!(
                eng.map_layouts(),
                vec![MapLayout::Native, MapLayout::Bits(2), MapLayout::Native]
            );
            eng.run(ctx)
        });
    }

    #[test]
    fn engine_populates_phase_counters() {
        let g = gen::rmat(7, 4, 31);
        let plan = compile(&programs::cc_sv(), OptLevel::Full);
        let parts = partition(&g, Policy::EdgeCutBlocked, 2);
        let stats = Cluster::with_threads(2, 2).run(|ctx| {
            ctx.reset_stats();
            Engine::new(&parts[ctx.host()], ctx, &plan).run(ctx);
            ctx.stats()
        });
        for (h, s) in stats.iter().enumerate() {
            // CC-SV's plan has request phases and reduce syncs every round,
            // so all four phases must have accumulated time on every host.
            assert!(s.request_compute_nanos > 0, "host {h}: no request-compute time");
            assert!(s.request_sync_nanos > 0, "host {h}: no request-sync time");
            assert!(s.reduce_compute_nanos > 0, "host {h}: no reduce-compute time");
            assert!(s.reduce_sync_nanos > 0, "host {h}: no reduce-sync time");
        }
        // merge() takes the max across hosts for phase times.
        let mut total = kimbap_comm::HostStats::default();
        for s in &stats {
            total.merge(s);
        }
        let max_rc = stats.iter().map(|s| s.reduce_compute_nanos).max().unwrap();
        assert_eq!(total.reduce_compute_nanos, max_rc);
    }

    #[test]
    fn cc_lp_runs_sparse_tail_rounds_and_matches_dense() {
        let g = gen::rmat(8, 6, 11);
        let plan = compile(&programs::cc_lp(), OptLevel::Full);
        let parts = partition(&g, Policy::EdgeCutBlocked, 2);
        let run_cfg = |sparse: bool| {
            Cluster::with_threads(2, 2).run(|ctx| {
                let cfg = EngineConfig {
                    sparse,
                    ..EngineConfig::default()
                };
                Engine::with_config(&parts[ctx.host()], ctx, &plan, cfg).run(ctx)
            })
        };
        let sparse_outs = run_cfg(true);
        let dense_outs = run_cfg(false);
        // Identical results, round for round.
        assert_eq!(
            merged_map0(g.num_nodes(), &sparse_outs),
            merged_map0(g.num_nodes(), &dense_outs)
        );
        assert_eq!(sparse_outs[0].rounds, dense_outs[0].rounds);
        // The dense run never leaves the dense path…
        assert!(dense_outs.iter().all(|o| o.activity.iter().all(|a| !a.sparse)));
        // …while the sparse run shrinks its tail rounds: everything after
        // the pin round is sparse, and later frontiers are strict subsets.
        for o in &sparse_outs {
            let tail: Vec<_> = o.activity.iter().skip(1).collect();
            assert!(!tail.is_empty(), "label propagation needs multiple rounds");
            assert!(tail.iter().all(|a| a.sparse && a.active <= a.total));
            let last = tail.last().unwrap();
            // The final round observed a quiesced frontier-to-be: nothing
            // changed, so the previous delta had shrunk well below dense.
            assert!(last.active < last.total);
        }
    }

    #[test]
    fn trans_vertex_programs_never_go_sparse() {
        // CC-SV reads parent(parent(n)): the compiler refuses to certify a
        // sparse plan, so every round must report dense even with sparse
        // execution enabled (the default).
        let g = gen::rmat(7, 4, 31);
        let outs = run_plan(&programs::cc_sv(), OptLevel::Full, &g, 2, 2, Policy::EdgeCutBlocked);
        assert!(outs.iter().all(|o| o.activity.iter().all(|a| !a.sparse)));
        assert!(outs.iter().all(|o| o.activity.len() as u64 == o.rounds));
    }

    #[test]
    fn round_summary_reports_active_fraction() {
        let g = gen::grid_road(7, 7, 3);
        let plan = compile(&programs::cc_lp(), OptLevel::Full);
        let l = plan
            .body
            .iter()
            .find_map(|t| match t {
                CompiledTop::Loop(l) => Some(l),
                _ => None,
            })
            .expect("cc-lp has a propagation loop");
        let parts = partition(&g, Policy::EdgeCutBlocked, 2);
        let outs = Cluster::with_threads(2, 1)
            .run(|ctx| Engine::new(&parts[ctx.host()], ctx, &plan).run(ctx));
        let a = outs[0].activity.last().unwrap();
        let s = RoundSummary::new(l, a);
        assert_eq!(s.request_phases, 0);
        assert_eq!(
            s.to_string(),
            format!(
                "0 request phase(s), {}/{} nodes ({})",
                a.active,
                a.total,
                if a.sparse { "sparse" } else { "dense" }
            )
        );
    }

    #[test]
    fn noopt_does_more_communication() {
        // The Fig. 12 premise: the unoptimized plan moves more data. Use a
        // power-law graph — requests grow with edge count, broadcasts only
        // with the mirror set.
        let g = gen::rmat(8, 8, 2);
        let parts = partition(&g, Policy::EdgeCutBlocked, 3);
        let traffic = |opt: OptLevel| -> u64 {
            let plan = compile(&programs::cc_lp(), opt);
            let stats = Cluster::new(3).run(|ctx| {
                Engine::new(&parts[ctx.host()], ctx, &plan).run(ctx);
                ctx.stats().bytes
            });
            stats.iter().sum()
        };
        let opt = traffic(OptLevel::Full);
        let noopt = traffic(OptLevel::None);
        // At paper scale (hundreds of rounds, billions of edges) the gap is
        // orders of magnitude; at unit-test scale the reduce traffic common
        // to both dominates, so just require a clear margin.
        assert!(
            noopt as f64 > 1.2 * opt as f64,
            "expected request-heavy NO-OPT ({noopt}B) > OPT ({opt}B)"
        );
    }
}
