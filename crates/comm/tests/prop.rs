//! Property-based tests for the simulated cluster's collectives.

use kimbap_comm::wire::{decode_slice, encode_slice, frame_payload, parse_frame};
use kimbap_comm::{Cluster, FaultPlan, CHUNK_PAYLOAD};
use proptest::prelude::*;

/// Deterministic per-link payload: a function of (from, to, len, fill) so
/// every backend and both collective flavours can be checked against the
/// same expected bytes without sharing state.
fn link_payload(from: usize, to: usize, len: usize, fill: u8) -> Vec<u8> {
    (0..len)
        .map(|i| fill.wrapping_add((from * 31 + to * 7 + i) as u8))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every payload arrives exactly once, at the right host, from the
    /// right source, across multiple rounds.
    #[test]
    fn exchange_is_a_permutation(
        hosts in 1usize..5,
        rounds in 1usize..4,
        payload in prop::collection::vec(0u64..1000, 0..20),
    ) {
        let ok = Cluster::new(hosts).run(|ctx| {
            for round in 0..rounds as u64 {
                // Host h sends [h, to, round, payload...] to each host.
                let outgoing = (0..hosts)
                    .map(|to| {
                        let mut msg = vec![ctx.host() as u64, to as u64, round];
                        msg.extend_from_slice(&payload);
                        encode_slice(&msg)
                    })
                    .collect();
                let received = ctx.exchange(outgoing);
                for (from, buf) in received.iter().enumerate() {
                    let msg = decode_slice::<u64>(buf);
                    if msg[0] != from as u64
                        || msg[1] != ctx.host() as u64
                        || msg[2] != round
                        || msg[3..] != payload[..]
                    {
                        return false;
                    }
                }
            }
            true
        });
        prop_assert!(ok.iter().all(|&b| b));
    }

    /// All-reduce is position-independent for commutative+associative ops
    /// and every host sees the same result.
    #[test]
    fn all_reduce_consistent(
        values in prop::collection::vec(0u64..10_000, 1..5),
    ) {
        let hosts = values.len();
        let vals = &values;
        let sums = Cluster::new(hosts).run(|ctx| {
            ctx.all_reduce_u64(vals[ctx.host()], |a, b| a.wrapping_add(b))
        });
        let expected: u64 = values.iter().sum();
        prop_assert!(sums.iter().all(|&s| s == expected));

        let mins = Cluster::new(hosts).run(|ctx| {
            ctx.all_reduce_u64(vals[ctx.host()], |a, b| a.min(b))
        });
        let expected_min = *values.iter().min().unwrap();
        prop_assert!(mins.iter().all(|&m| m == expected_min));
    }

    /// All-gather returns host-ordered values everywhere.
    #[test]
    fn all_gather_ordered(values in prop::collection::vec(0u64..1000, 1..5)) {
        let hosts = values.len();
        let vals = &values;
        let gathered = Cluster::new(hosts).run(|ctx| ctx.all_gather(vals[ctx.host()]));
        for g in gathered {
            prop_assert_eq!(&g, vals);
        }
    }

    /// Byte accounting: bytes equals the sum of non-empty remote payload
    /// lengths.
    #[test]
    fn traffic_accounting_exact(
        hosts in 2usize..5,
        sizes in prop::collection::vec(0usize..64, 2..5),
    ) {
        let sizes = &sizes;
        let stats = Cluster::new(hosts).run(|ctx| {
            let outgoing: Vec<Vec<u8>> = (0..hosts)
                .map(|to| vec![0u8; sizes[to % sizes.len()]])
                .collect();
            let expected_bytes: u64 = (0..hosts)
                .filter(|&to| to != ctx.host())
                .map(|to| sizes[to % sizes.len()] as u64)
                .sum();
            let expected_msgs = (0..hosts)
                .filter(|&to| to != ctx.host() && sizes[to % sizes.len()] > 0)
                .count() as u64;
            ctx.exchange(outgoing);
            let s = ctx.stats();
            s.bytes == expected_bytes && s.messages == expected_msgs
        });
        prop_assert!(stats.iter().all(|&b| b));
    }

    /// Frame integrity: any single flipped bit anywhere in a framed
    /// message — header or payload — is detected by `parse_frame`
    /// (CRC32 detects every single-bit error; length/magic checks catch
    /// the rest), and an unflipped frame round-trips exactly.
    #[test]
    fn single_bit_corruption_always_detected(
        seq in 0u64..u64::MAX,
        payload in prop::collection::vec(0u8..255, 0..64),
        bit_seed in 0u64..1_000_000,
    ) {
        let frame = frame_payload(seq, &payload);
        let (got_seq, got_payload) = parse_frame(&frame).expect("clean frame parses");
        prop_assert_eq!(got_seq, seq);
        prop_assert_eq!(got_payload, &payload[..]);

        let bit = (bit_seed % (frame.len() as u64 * 8)) as usize;
        let mut corrupted = frame.clone();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            parse_frame(&corrupted).is_err(),
            "flip of bit {} went undetected", bit
        );
    }

    /// Hostile input never panics the frame parser: truncating a valid
    /// frame at any point, xor-ing arbitrary bit-flip masks over it, or
    /// feeding pure garbage bytes all yield a clean `Err`, while the
    /// untouched frame still round-trips. This is the safety contract the
    /// TCP backend relies on when a connection delivers torn or mangled
    /// bytes.
    #[test]
    fn parser_survives_truncation_and_garbage(
        seq in 0u64..u64::MAX,
        payload in prop::collection::vec(0u8..=255, 0..64),
        cut in 0usize..1000,
        flips in prop::collection::vec((0usize..1000, 0u8..=255), 0..8),
        garbage in prop::collection::vec(0u8..=255, 0..96),
    ) {
        let frame = frame_payload(seq, &payload);
        prop_assert!(parse_frame(&frame).is_ok());

        // Truncation at every possible boundary is a parse error, never a
        // panic (the full-length case parses and is checked above).
        let cut = cut % frame.len();
        prop_assert!(parse_frame(&frame[..cut]).is_err());

        // Arbitrary multi-byte mangling either leaves the frame intact
        // (all masks were zero) or is rejected; parse_frame must not
        // panic or mis-accept different bytes.
        let mut mangled = frame.clone();
        for &(pos, mask) in &flips {
            mangled[pos % frame.len()] ^= mask;
        }
        if let Ok((s, p)) = parse_frame(&mangled) {
            prop_assert_eq!(s, seq);
            prop_assert_eq!(p, &payload[..]);
        }

        // Pure garbage (no magic, random lengths) never panics.
        prop_assert!(parse_frame(&garbage).is_err() || garbage == frame);
    }

    /// Differential check for the split-phase collectives: on every
    /// backend (in-proc, TCP loopback, deterministic sim), an
    /// `exchange_start`/`post`/`exchange_finish` sequence returns results
    /// byte-for-byte identical to the blocking `exchange` of the same
    /// payloads — and both match the independently computed expectation.
    /// Payload sizes are drawn from the chunk-boundary set
    /// {0, 1, C−1, C, C+1} (C = [`CHUNK_PAYLOAD`]) so single-chunk,
    /// exact-fit, and straddling streams are all exercised.
    #[test]
    fn split_phase_equals_blocking_on_all_backends(
        hosts in 2usize..4,
        pick in prop::collection::vec(0usize..5, 2..4),
        fill in 0u8..=255,
    ) {
        let boundary = [0, 1, CHUNK_PAYLOAD - 1, CHUNK_PAYLOAD, CHUNK_PAYLOAD + 1];
        let sizes: Vec<usize> = pick.iter().map(|&i| boundary[i]).collect();
        let len_for = |from: usize, to: usize| sizes[(from + to) % sizes.len()];
        let expected: Vec<Vec<Vec<u8>>> = (0..hosts)
            .map(|me| {
                (0..hosts)
                    .map(|from| link_payload(from, me, len_for(from, me), fill))
                    .collect()
            })
            .collect();
        for c in [
            Cluster::new(hosts),
            Cluster::new(hosts).tcp(),
            Cluster::new(hosts).sim(fill as u64 + 1),
        ] {
            let blocking = c.run(|ctx| {
                let me = ctx.host();
                let outgoing = (0..hosts)
                    .map(|to| link_payload(me, to, len_for(me, to), fill))
                    .collect();
                ctx.exchange(outgoing)
            });
            prop_assert_eq!(&blocking, &expected);
            let split = c.run(|ctx| {
                let me = ctx.host();
                let ticket = ctx.exchange_start();
                for to in 0..hosts {
                    ticket.post(to, link_payload(me, to, len_for(me, to), fill));
                }
                ctx.exchange_finish(ticket)
            });
            prop_assert_eq!(&split, &expected);
        }
    }

    /// Exchanges complete with correct contents under seeded random frame
    /// faults, for any seed.
    #[test]
    fn exchange_survives_random_faults(
        seed in 0u64..u64::MAX,
        hosts in 2usize..5,
    ) {
        let plan = FaultPlan::new()
            .with_seed(seed)
            .drop_rate(0.08)
            .duplicate_rate(0.05)
            .corrupt_rate(0.05);
        let ok = Cluster::new(hosts).run_with_faults(plan, |ctx| {
            for round in 0..6u64 {
                let outgoing = (0..hosts)
                    .map(|to| encode_slice(&[ctx.host() as u64, to as u64, round]))
                    .collect();
                let received = ctx.exchange(outgoing);
                for (from, buf) in received.iter().enumerate() {
                    if decode_slice::<u64>(buf)
                        != vec![from as u64, ctx.host() as u64, round]
                    {
                        return false;
                    }
                }
            }
            true
        });
        prop_assert!(ok.iter().all(|&b| b));
    }
}
