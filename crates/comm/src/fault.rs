//! Deterministic fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] describes, ahead of a run, which failures the fabric
//! should inject: targeted single faults (drop/duplicate/delay/corrupt a
//! specific sender→receiver frame in a specific round, or crash a host at
//! a round boundary) and seeded random background fault rates. The fabric
//! consults the plan on every send and at every barrier, so any failure
//! scenario is a reproducible unit test: the same plan against the same
//! program yields the same injected faults.
//!
//! Round numbers come from [`crate::HostCtx::set_round`]; algorithms and
//! the engine publish their BSP round before each round's collectives.
//! Code that never calls `set_round` runs entirely in round 0, so plans
//! targeting round 0 (or `any_round`) still apply.

use std::sync::atomic::{AtomicU32, Ordering};

/// What a single targeted fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The frame is silently discarded.
    DropFrame,
    /// The frame is delivered twice.
    DuplicateFrame,
    /// The frame is held back and delivered during the sender's *next*
    /// exchange (where it arrives stale and is rejected by sequence
    /// number) — modeling reordering/late delivery.
    DelayFrame,
    /// One bit of the frame (header or payload) is flipped in flight.
    CorruptFrame {
        /// Bit index to flip, taken modulo the frame's bit length.
        bit: u32,
    },
    /// The host panics (simulated crash) on entry to its next collective.
    CrashHost,
    /// The host is lost permanently on entry to its next collective: it
    /// never participates in recovery alignment again, so survivors must
    /// either shrink the membership (`--allow-shrink`) or abort with
    /// `CommError::MembershipLost`. In multi-process mode the worker
    /// process exits instead of panicking, modeling a machine death.
    KillHost,
    /// The host goes silent (stops sending, including heartbeats) for the
    /// given duration on entry to its next collective — modeling a hung
    /// (but not crashed) worker. Detected by the heartbeat failure
    /// detector or by phase deadlines, never by the host itself.
    StallHost {
        /// How long the host stays silent, in milliseconds.
        millis: u32,
    },
}

/// One targeted fault: a kind plus a match condition.
#[derive(Debug, Clone)]
pub struct Fault {
    /// What to do.
    pub kind: FaultKind,
    /// Sending host (crashing host for [`FaultKind::CrashHost`]); `None`
    /// matches any. Plans meant for exact replay should pin this: with
    /// `None`, which host claims the firing budget first depends on thread
    /// scheduling.
    pub from: Option<usize>,
    /// Receiving host; `None` matches any. Ignored for crashes.
    pub to: Option<usize>,
    /// BSP round to fire in; `None` matches any round.
    pub round: Option<u64>,
    /// Chunk index within the exchange payload to fire on; `None` matches
    /// any chunk. Lets plans target a specific chunk boundary (e.g. drop
    /// only the k-th chunk of a large payload, or the stream terminator).
    pub chunk: Option<u32>,
    /// How many times the fault fires before it is spent.
    pub times: u32,
}

impl Fault {
    fn matches(&self, from: usize, to: usize, round: u64, chunk: u32) -> bool {
        self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
            && self.round.is_none_or(|r| r == round)
            && self.chunk.is_none_or(|c| c == chunk)
    }
}

/// A deterministic fault schedule for one cluster run.
///
/// Built with the `FaultPlan::drop_frame`-style methods; an empty
/// (default) plan injects nothing and costs one branch per send.
///
/// # Example
///
/// ```
/// use kimbap_comm::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .drop_frame(0, 1, 2)        // drop host 0 -> host 1 in round 2
///     .corrupt_frame(1, 0, 3, 17) // flip bit 17 of a 1 -> 0 frame in round 3
///     .crash_host(2, 4);          // crash host 2 entering round 4
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    pub(crate) faults: Vec<Fault>,
    pub(crate) seed: u64,
    pub(crate) drop_rate: f64,
    pub(crate) duplicate_rate: f64,
    pub(crate) corrupt_rate: f64,
    pub(crate) delay_rate: f64,
    /// Hosts that start latent and knock to join mid-run: `(host,
    /// delay_ms)`. Not a fault per se, but part of the same deterministic
    /// schedule: the cluster reserves the host as capacity and the host
    /// begins knocking after the delay.
    pub(crate) joins: Vec<(usize, u64)>,
}

impl FaultPlan {
    /// An empty plan: no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
            && self.drop_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.delay_rate == 0.0
    }

    /// Adds an arbitrary targeted fault.
    pub fn fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    fn pair_fault(self, kind: FaultKind, from: usize, to: usize, round: u64) -> Self {
        self.fault(Fault {
            kind,
            from: Some(from),
            to: Some(to),
            round: Some(round),
            chunk: None,
            times: 1,
        })
    }

    /// Drops one `from -> to` frame in `round`.
    pub fn drop_frame(self, from: usize, to: usize, round: u64) -> Self {
        self.pair_fault(FaultKind::DropFrame, from, to, round)
    }

    /// Delivers one `from -> to` frame twice in `round`.
    pub fn duplicate_frame(self, from: usize, to: usize, round: u64) -> Self {
        self.pair_fault(FaultKind::DuplicateFrame, from, to, round)
    }

    /// Delays one `from -> to` frame in `round` until the sender's next
    /// exchange.
    pub fn delay_frame(self, from: usize, to: usize, round: u64) -> Self {
        self.pair_fault(FaultKind::DelayFrame, from, to, round)
    }

    /// Flips bit `bit` (mod frame length) of one `from -> to` frame in
    /// `round`.
    pub fn corrupt_frame(self, from: usize, to: usize, round: u64, bit: u32) -> Self {
        self.pair_fault(FaultKind::CorruptFrame { bit }, from, to, round)
    }

    /// Drops the chunk with index `chunk` of one `from -> to` exchange
    /// payload in `round` — targeting a chunk boundary instead of the whole
    /// payload, so partial-payload recovery is exercised.
    pub fn drop_chunk(self, from: usize, to: usize, round: u64, chunk: u32) -> Self {
        self.fault(Fault {
            kind: FaultKind::DropFrame,
            from: Some(from),
            to: Some(to),
            round: Some(round),
            chunk: Some(chunk),
            times: 1,
        })
    }

    /// Crashes `host` when it enters its first collective of `round`.
    pub fn crash_host(self, host: usize, round: u64) -> Self {
        self.fault(Fault {
            kind: FaultKind::CrashHost,
            from: Some(host),
            to: None,
            round: Some(round),
            chunk: None,
            times: 1,
        })
    }

    /// Permanently kills `host` when it enters its first collective of
    /// `round`. Unlike [`FaultPlan::crash_host`], the victim never returns:
    /// recovery alignment cannot complete and the run either shrinks onto
    /// the survivors or surfaces `CommError::MembershipLost`.
    pub fn kill_host(self, host: usize, round: u64) -> Self {
        self.fault(Fault {
            kind: FaultKind::KillHost,
            from: Some(host),
            to: None,
            round: Some(round),
            chunk: None,
            times: 1,
        })
    }

    /// Hangs `host` for `millis` milliseconds when it enters its first
    /// collective of `round`: the host stops responding (and heartbeating)
    /// without crashing, so only the failure detector or a phase deadline
    /// can flag it.
    pub fn stall_host(self, host: usize, round: u64, millis: u32) -> Self {
        self.fault(Fault {
            kind: FaultKind::StallHost { millis },
            from: Some(host),
            to: None,
            round: Some(round),
            chunk: None,
            times: 1,
        })
    }

    /// Declares `host` as a late joiner: the cluster starts with it latent
    /// (reserved capacity, not a member), and the host begins knocking on
    /// the grow gate `delay_ms` after the run starts. Requires the run to
    /// opt into growing (`EngineConfig::allow_grow` / `--allow-grow`);
    /// without it the host knocks forever and times out.
    pub fn join_host(mut self, host: usize, delay_ms: u64) -> Self {
        self.joins.push((host, delay_ms));
        self
    }

    /// The hosts declared latent by [`FaultPlan::join_host`], i.e. the
    /// capacity that starts outside the membership.
    pub fn latent_hosts(&self) -> Vec<usize> {
        self.joins.iter().map(|&(h, _)| h).collect()
    }

    /// How long `host` waits before its first knock, if it is a declared
    /// joiner.
    pub fn join_delay(&self, host: usize) -> Option<std::time::Duration> {
        self.joins
            .iter()
            .find(|&&(h, _)| h == host)
            .map(|&(_, ms)| std::time::Duration::from_millis(ms))
    }

    /// Seeds the random background faults (irrelevant if all rates are 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Drops each frame independently with probability `p`. Retransmits
    /// draw fresh coins, so `p < 1` converges under bounded retry.
    pub fn drop_rate(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "rate must be in [0, 1)");
        self.drop_rate = p;
        self
    }

    /// Duplicates each frame independently with probability `p`.
    pub fn duplicate_rate(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "rate must be in [0, 1)");
        self.duplicate_rate = p;
        self
    }

    /// Flips one pseudorandom bit of each frame independently with
    /// probability `p`.
    pub fn corrupt_rate(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "rate must be in [0, 1)");
        self.corrupt_rate = p;
        self
    }

    /// Delays each frame independently with probability `p` until the
    /// sender's next exchange (seeded jitter — the same seed always delays
    /// the same frames, like the other rate faults).
    pub fn delay_rate(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "rate must be in [0, 1)");
        self.delay_rate = p;
        self
    }
}

/// What the fabric should do with a frame about to be sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SendAction {
    Deliver,
    Drop,
    Duplicate,
    Delay,
    /// Deliver the (already bit-flipped) frame; distinct from `Deliver`
    /// so the send path can trace that corruption happened.
    Corrupt,
}

/// Runtime state of a plan: per-fault firing budgets.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    fired: Vec<AtomicU32>,
}

/// splitmix64 finalizer: decorrelates the (seed, from, to, seq, attempt)
/// coordinates into an independent coin per physical transmission (also
/// the PRNG behind the transport layer's jittered backoff).
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let fired = plan.faults.iter().map(|_| AtomicU32::new(0)).collect();
        FaultState { plan, fired }
    }

    /// The plan's declared join delay for `host` (see
    /// [`FaultPlan::join_delay`]).
    pub(crate) fn join_delay(&self, host: usize) -> Option<std::time::Duration> {
        self.plan.join_delay(host)
    }

    /// Tries to claim one firing of fault `i`; false once the budget is
    /// spent.
    fn claim(&self, i: usize) -> bool {
        let budget = self.plan.faults[i].times;
        self.fired[i]
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < budget).then_some(n + 1)
            })
            .is_ok()
    }

    /// Decides the fate of a chunk frame from `from` to `to` (`chunk` is
    /// its index within the exchange payload), mutating it in place for
    /// corruption faults. Self-sends are never faulted.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_send(
        &self,
        from: usize,
        to: usize,
        round: u64,
        seq: u64,
        chunk: u32,
        attempt: u32,
        frame: &mut [u8],
    ) -> SendAction {
        if from == to || (self.plan.is_empty()) {
            return SendAction::Deliver;
        }
        // Targeted faults first, in plan order.
        for (i, fault) in self.plan.faults.iter().enumerate() {
            if matches!(
                fault.kind,
                FaultKind::CrashHost | FaultKind::KillHost | FaultKind::StallHost { .. }
            ) || !fault.matches(from, to, round, chunk)
            {
                continue;
            }
            if !self.claim(i) {
                continue;
            }
            match fault.kind {
                FaultKind::DropFrame => return SendAction::Drop,
                FaultKind::DuplicateFrame => return SendAction::Duplicate,
                FaultKind::DelayFrame => return SendAction::Delay,
                FaultKind::CorruptFrame { bit } => {
                    flip_bit(frame, bit as u64);
                    return SendAction::Corrupt;
                }
                FaultKind::CrashHost | FaultKind::KillHost | FaultKind::StallHost { .. } => {
                    unreachable!()
                }
            }
        }
        // Random background faults: one coin per physical transmission, so
        // a retransmit (attempt > 0) is not doomed to repeat its fate.
        let p = self.plan.drop_rate
            + self.plan.duplicate_rate
            + self.plan.corrupt_rate
            + self.plan.delay_rate;
        if p > 0.0 {
            let h = mix(
                self.plan
                    .seed
                    .wrapping_add(mix((from as u64) << 40 | (to as u64) << 20 | attempt as u64))
                    .wrapping_add(mix(seq.wrapping_mul(0x2545_F491_4F6C_DD1D)))
                    .wrapping_add(mix(0x6368_756e_6b00_0000 | chunk as u64)),
            );
            let r = unit(h);
            if r < self.plan.drop_rate {
                return SendAction::Drop;
            }
            if r < self.plan.drop_rate + self.plan.duplicate_rate {
                return SendAction::Duplicate;
            }
            if r < self.plan.drop_rate + self.plan.duplicate_rate + self.plan.corrupt_rate {
                flip_bit(frame, mix(h));
                return SendAction::Corrupt;
            }
            if r < p {
                return SendAction::Delay;
            }
        }
        SendAction::Deliver
    }

    /// True exactly once when `host` has a pending crash for `round`.
    pub(crate) fn crash_due(&self, host: usize, round: u64) -> bool {
        for (i, fault) in self.plan.faults.iter().enumerate() {
            if matches!(fault.kind, FaultKind::CrashHost)
                && fault.from.is_none_or(|h| h == host)
                && fault.round.is_none_or(|r| r == round)
                && self.claim(i)
            {
                return true;
            }
        }
        false
    }

    /// True exactly once when `host` has a pending permanent kill for
    /// `round`.
    pub(crate) fn kill_due(&self, host: usize, round: u64) -> bool {
        for (i, fault) in self.plan.faults.iter().enumerate() {
            if matches!(fault.kind, FaultKind::KillHost)
                && fault.from.is_none_or(|h| h == host)
                && fault.round.is_none_or(|r| r == round)
                && self.claim(i)
            {
                return true;
            }
        }
        false
    }

    /// The stall duration, exactly once per budgeted firing, when `host`
    /// has a pending [`FaultKind::StallHost`] for `round`.
    pub(crate) fn stall_due(&self, host: usize, round: u64) -> Option<std::time::Duration> {
        for (i, fault) in self.plan.faults.iter().enumerate() {
            if let FaultKind::StallHost { millis } = fault.kind {
                if fault.from.is_none_or(|h| h == host)
                    && fault.round.is_none_or(|r| r == round)
                    && self.claim(i)
                {
                    return Some(std::time::Duration::from_millis(millis as u64));
                }
            }
        }
        None
    }
}

fn flip_bit(frame: &mut [u8], bit: u64) {
    if frame.is_empty() {
        return;
    }
    let bit = (bit % (frame.len() as u64 * 8)) as usize;
    frame[bit / 8] ^= 1 << (bit % 8);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_always_delivers() {
        let st = FaultState::new(FaultPlan::new());
        let mut frame = vec![0u8; 8];
        for seq in 0..100 {
            assert_eq!(st.on_send(0, 1, 0, seq, 0, 0, &mut frame), SendAction::Deliver);
        }
        assert_eq!(frame, vec![0u8; 8]);
    }

    #[test]
    fn targeted_drop_fires_once() {
        let st = FaultState::new(FaultPlan::new().drop_frame(0, 1, 3));
        let mut f = vec![0u8; 4];
        // Wrong round, wrong pair: deliver.
        assert_eq!(st.on_send(0, 1, 2, 0, 0, 0, &mut f), SendAction::Deliver);
        assert_eq!(st.on_send(1, 0, 3, 0, 0, 0, &mut f), SendAction::Deliver);
        // Match: drop, but only the first time.
        assert_eq!(st.on_send(0, 1, 3, 1, 0, 0, &mut f), SendAction::Drop);
        assert_eq!(st.on_send(0, 1, 3, 2, 0, 1, &mut f), SendAction::Deliver);
    }

    #[test]
    fn corruption_mutates_frame() {
        let st = FaultState::new(FaultPlan::new().corrupt_frame(0, 1, 0, 9));
        let mut f = vec![0u8; 4];
        assert_eq!(st.on_send(0, 1, 0, 0, 0, 0, &mut f), SendAction::Corrupt);
        assert_eq!(f, vec![0, 2, 0, 0]); // bit 9 = byte 1, bit 1
    }

    #[test]
    fn self_sends_never_faulted() {
        let st = FaultState::new(FaultPlan::new().drop_rate(0.999999).with_seed(1));
        let mut f = vec![0u8; 4];
        assert_eq!(st.on_send(2, 2, 0, 0, 0, 0, &mut f), SendAction::Deliver);
    }

    #[test]
    fn chunk_targeted_drop_fires_only_on_that_chunk() {
        let st = FaultState::new(FaultPlan::new().drop_chunk(0, 1, 2, 3));
        let mut f = vec![0u8; 4];
        // Wrong chunk, wrong round: deliver.
        assert_eq!(st.on_send(0, 1, 2, 0, 2, 0, &mut f), SendAction::Deliver);
        assert_eq!(st.on_send(0, 1, 1, 0, 3, 0, &mut f), SendAction::Deliver);
        // Matching chunk: drop, once.
        assert_eq!(st.on_send(0, 1, 2, 0, 3, 0, &mut f), SendAction::Drop);
        assert_eq!(st.on_send(0, 1, 2, 0, 3, 1, &mut f), SendAction::Deliver);
    }

    #[test]
    fn crash_fires_once_at_round() {
        let st = FaultState::new(FaultPlan::new().crash_host(1, 5));
        assert!(!st.crash_due(1, 4));
        assert!(!st.crash_due(0, 5));
        assert!(st.crash_due(1, 5));
        assert!(!st.crash_due(1, 5), "crash budget spent");
    }

    #[test]
    fn kill_fires_once_at_round() {
        let st = FaultState::new(FaultPlan::new().kill_host(2, 3));
        assert!(!st.kill_due(2, 2));
        assert!(!st.kill_due(1, 3));
        assert!(st.kill_due(2, 3));
        assert!(!st.kill_due(2, 3), "kill budget spent");
        // Kills never affect the frame path.
        let mut f = vec![0u8; 4];
        let st = FaultState::new(FaultPlan::new().kill_host(0, 0));
        assert_eq!(st.on_send(0, 1, 0, 0, 0, 0, &mut f), SendAction::Deliver);
    }

    #[test]
    fn delay_rate_schedule_is_seed_deterministic() {
        let plan = FaultPlan::new()
            .drop_rate(0.1)
            .duplicate_rate(0.1)
            .corrupt_rate(0.1)
            .delay_rate(0.2)
            .with_seed(7);
        let a = FaultState::new(plan.clone());
        let b = FaultState::new(plan.clone());
        let mut fa = vec![0u8; 16];
        let mut fb = vec![0u8; 16];
        let fate_a: Vec<_> = (0..256)
            .map(|s| a.on_send(0, 1, 0, s, 0, 0, &mut fa))
            .collect();
        let fate_b: Vec<_> = (0..256)
            .map(|s| b.on_send(0, 1, 0, s, 0, 0, &mut fb))
            .collect();
        assert_eq!(fate_a, fate_b, "identical seeds, identical schedules");
        assert_eq!(fa, fb, "identical corruption under identical seeds");
        assert!(fate_a.contains(&SendAction::Delay));
        assert!(fate_a.contains(&SendAction::Drop));
        assert!(fate_a.contains(&SendAction::Deliver));
        // A different seed yields a different schedule.
        let c = FaultState::new(plan.with_seed(8));
        let mut fc = vec![0u8; 16];
        let fate_c: Vec<_> = (0..256)
            .map(|s| c.on_send(0, 1, 0, s, 0, 0, &mut fc))
            .collect();
        assert_ne!(fate_a, fate_c, "different seeds diverge");
        // delay_rate = 0 leaves the drop/dup/corrupt schedule untouched:
        // delay occupies the tail of the unit interval.
        let base = FaultPlan::new()
            .drop_rate(0.1)
            .duplicate_rate(0.1)
            .corrupt_rate(0.1)
            .with_seed(7);
        let d = FaultState::new(base);
        let mut fd = vec![0u8; 16];
        let fate_d: Vec<_> = (0..256)
            .map(|s| d.on_send(0, 1, 0, s, 0, 0, &mut fd))
            .collect();
        for (x, y) in fate_a.iter().zip(fate_d.iter()) {
            if *x != SendAction::Delay {
                assert_eq!(x, y, "non-delay fates unchanged by delay_rate");
            } else {
                assert_eq!(*y, SendAction::Deliver);
            }
        }
    }

    #[test]
    fn random_rates_are_deterministic_and_attempt_sensitive() {
        let plan = FaultPlan::new().drop_rate(0.3).with_seed(42);
        let a = FaultState::new(plan.clone());
        let b = FaultState::new(plan);
        let mut f = vec![0u8; 4];
        let fate_a: Vec<_> = (0..64).map(|s| a.on_send(0, 1, 0, s, 0, 0, &mut f)).collect();
        let fate_b: Vec<_> = (0..64).map(|s| b.on_send(0, 1, 0, s, 0, 0, &mut f)).collect();
        assert_eq!(fate_a, fate_b, "same plan, same fates");
        assert!(fate_a.contains(&SendAction::Drop));
        assert!(fate_a.contains(&SendAction::Deliver));
        // A dropped frame's retransmit (attempt 1) is a fresh coin: over
        // all dropped seqs, at least one retransmit survives.
        let retries_survive = (0..64)
            .filter(|&s| fate_a[s as usize] == SendAction::Drop)
            .any(|s| a.on_send(0, 1, 0, s, 0, 1, &mut f) == SendAction::Deliver);
        assert!(retries_survive);
    }
}
