//! Simulated distributed-memory cluster.
//!
//! The paper evaluates Kimbap on a CPU cluster of up to 256 hosts connected
//! by 100 Gb/s Omni-Path, with MPI-style bulk-synchronous communication.
//! This crate substitutes a **simulated cluster inside one process**: every
//! host is an OS thread, inter-host messages are serialized byte buffers
//! moved through in-memory mailboxes, and all collective operations
//! (barrier, all-to-all exchange, all-reduce) are implemented on top of
//! those mailboxes. Intra-host parallelism uses a persistent [`WorkerPool`]
//! per host.
//!
//! Because payloads really are serialized and no references cross host
//! boundaries, the algorithmic behaviour (message counts, byte volumes,
//! phase structure, reduction contention) is identical to a wire-connected
//! deployment; only absolute latencies differ. Per-host counters
//! ([`HostStats`]) expose messages, bytes, and time spent inside
//! communication calls, which the benchmark harness uses for the paper's
//! computation/communication breakdowns.
//!
//! # Example
//!
//! ```
//! use kimbap_comm::Cluster;
//!
//! let cluster = Cluster::new(4);
//! let sums = cluster.run(|ctx| {
//!     // Every host contributes its id; all hosts see the global sum.
//!     ctx.all_reduce_u64(ctx.host() as u64, |a, b| a + b)
//! });
//! assert_eq!(sums, vec![6, 6, 6, 6]);
//! ```

pub mod clock;
pub mod cluster;
pub mod fault;
pub mod pool;
pub mod transport;
pub mod wire;

pub use clock::{Clock, RealClock};
pub use cluster::{
    run_transport_host, Backend, Cluster, CommError, CrashSignal, ExchangeTicket, GrowOutcome,
    HostCtx, HostError, HostStats, ShrinkOutcome, SyncPhase, JOB_ROUND_STRIDE, KILLED_EXIT_CODE,
};
pub use fault::{Fault, FaultKind, FaultPlan};
pub use pool::WorkerPool;
pub use transport::sim::{new_trace_sink, SimTransport, TraceEvent, TraceSink};
pub use transport::tcp::TcpTransport;
pub use transport::{
    Backoff, Deadline, GrowVerdict, HeartbeatConfig, RetxRequest, Transport, TransportConfig,
};
pub use wire::{ChunkHeader, FrameError, Wire, CHUNK_PAYLOAD};
