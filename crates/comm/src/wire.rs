//! Fixed-size binary encoding for values that cross host boundaries.
//!
//! Everything a host sends to another host is serialized through [`Wire`],
//! so byte accounting in [`crate::HostStats`] reflects real message sizes.
//! The encoding is little-endian and fixed-width per type, mirroring the
//! packed buffers an MPI implementation would ship.

/// A value with a fixed-size binary encoding.
///
/// # Example
///
/// ```
/// use kimbap_comm::Wire;
///
/// let mut buf = Vec::new();
/// (7u32, 42u64).write(&mut buf);
/// assert_eq!(buf.len(), <(u32, u64)>::SIZE);
/// assert_eq!(<(u32, u64)>::read(&buf), (7, 42));
/// ```
pub trait Wire: Sized + Copy {
    /// Encoded size in bytes.
    const SIZE: usize;

    /// Appends the encoding of `self` to `buf`.
    fn write(&self, buf: &mut Vec<u8>);

    /// Decodes a value from the front of `buf`, rejecting short buffers.
    ///
    /// This is the decoding entry point for bytes that crossed a host
    /// boundary: a truncated or garbage peer payload surfaces as
    /// [`FrameError::Truncated`] instead of a panic.
    fn try_read(buf: &[u8]) -> Result<Self, FrameError>;

    /// Decodes a value from the front of `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`Wire::SIZE`]. Use
    /// [`Wire::try_read`] for untrusted input.
    fn read(buf: &[u8]) -> Self {
        Self::try_read(buf).expect("buffer shorter than Wire::SIZE")
    }
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            const SIZE: usize = std::mem::size_of::<$t>();

            fn write(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }

            fn try_read(buf: &[u8]) -> Result<Self, FrameError> {
                match buf.get(..Self::SIZE) {
                    Some(bytes) => Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized slice"))),
                    None => Err(FrameError::Truncated),
                }
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64, i64, f64);

impl Wire for bool {
    const SIZE: usize = 1;

    fn write(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }

    fn try_read(buf: &[u8]) -> Result<Self, FrameError> {
        match buf.first() {
            Some(&b) => Ok(b != 0),
            None => Err(FrameError::Truncated),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    const SIZE: usize = A::SIZE + B::SIZE;

    fn write(&self, buf: &mut Vec<u8>) {
        self.0.write(buf);
        self.1.write(buf);
    }

    fn try_read(buf: &[u8]) -> Result<Self, FrameError> {
        if buf.len() < Self::SIZE {
            return Err(FrameError::Truncated);
        }
        Ok((A::try_read(buf)?, B::try_read(&buf[A::SIZE..])?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    const SIZE: usize = A::SIZE + B::SIZE + C::SIZE;

    fn write(&self, buf: &mut Vec<u8>) {
        self.0.write(buf);
        self.1.write(buf);
        self.2.write(buf);
    }

    fn try_read(buf: &[u8]) -> Result<Self, FrameError> {
        if buf.len() < Self::SIZE {
            return Err(FrameError::Truncated);
        }
        Ok((
            A::try_read(buf)?,
            B::try_read(&buf[A::SIZE..])?,
            C::try_read(&buf[A::SIZE + B::SIZE..])?,
        ))
    }
}

/// Encodes a slice of wire values into a fresh byte buffer.
pub fn encode_slice<T: Wire>(items: &[T]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(items.len() * T::SIZE);
    for it in items {
        it.write(&mut buf);
    }
    buf
}

/// Decodes a byte buffer produced by [`encode_slice`], rejecting buffers
/// whose length is not a multiple of the element size.
///
/// This is the decoding entry point for peer payloads: a truncated or
/// garbage buffer surfaces as [`FrameError::LengthMismatch`] instead of a
/// panic.
pub fn try_decode_slice<T: Wire>(buf: &[u8]) -> Result<Vec<T>, FrameError> {
    if !buf.len().is_multiple_of(T::SIZE) {
        return Err(FrameError::LengthMismatch);
    }
    buf.chunks_exact(T::SIZE).map(T::try_read).collect()
}

/// Decodes a byte buffer produced by [`encode_slice`].
///
/// # Panics
///
/// Panics if `buf.len()` is not a multiple of `T::SIZE`. Use
/// [`try_decode_slice`] for untrusted input.
pub fn decode_slice<T: Wire>(buf: &[u8]) -> Vec<T> {
    assert_eq!(
        buf.len() % T::SIZE,
        0,
        "buffer length {} is not a multiple of element size {}",
        buf.len(),
        T::SIZE
    );
    buf.chunks_exact(T::SIZE).map(T::read).collect()
}

/// Iterates decoded values without allocating an output vector.
///
/// # Panics
///
/// Panics if `buf.len()` is not a multiple of `T::SIZE`.
pub fn iter_decoded<'a, T: Wire + 'a>(buf: &'a [u8]) -> impl Iterator<Item = T> + 'a {
    assert_eq!(buf.len() % T::SIZE, 0, "misaligned wire buffer");
    buf.chunks_exact(T::SIZE).map(T::read)
}

// ---------------------------------------------------------------------------
// Frame layer: length + checksum validation for host-to-host messages.
// ---------------------------------------------------------------------------

/// First two bytes of every frame ("KF", Kimbap Frame).
pub const FRAME_MAGIC: u16 = 0x4B46;

/// Frame format version.
pub const FRAME_VERSION: u16 = 1;

/// Header size: magic(2) + version(2) + seq(8) + len(4) + crc(4).
pub const FRAME_HEADER: usize = 20;

/// Why a received frame was rejected.
///
/// Any rejection is treated as frame loss by the collectives, which
/// re-request the frame from the sender's retained outbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than a frame header.
    Truncated,
    /// Magic or version bytes wrong — not one of our frames.
    BadMagic,
    /// The header's payload length disagrees with the bytes on the wire.
    LengthMismatch,
    /// CRC32 over header + payload failed — the frame was corrupted.
    ChecksumMismatch,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self {
            FrameError::Truncated => "frame truncated",
            FrameError::BadMagic => "bad frame magic/version",
            FrameError::LengthMismatch => "frame length mismatch",
            FrameError::ChecksumMismatch => "frame checksum mismatch",
        };
        f.write_str(what)
    }
}

impl std::error::Error for FrameError {}

// CRC32 (IEEE 802.3, reflected 0xEDB88320). CRC32 detects *every*
// single-bit error (and every burst up to 32 bits), which is the guarantee
// the corruption-detection property test asserts; a simpler additive or
// FNV checksum would not give it.
//
// Computed slice-by-8: eight lookup tables let the inner loop consume
// eight input bytes per step instead of one, with byte-at-a-time kept only
// for the unaligned tail. Same polynomial, same frame layout — every CRC
// this produces is bit-identical to the classic one-table loop's.
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

fn crc32_update(mut c: u32, data: &[u8]) -> u32 {
    let t = &CRC32_TABLES;
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_update(!0, data)
}

/// Wraps `payload` in a validated frame: magic, version, sequence number,
/// payload length, and a CRC32 over everything except the CRC field.
pub fn frame_payload(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(FRAME_HEADER + payload.len());
    FRAME_MAGIC.write(&mut buf);
    FRAME_VERSION.write(&mut buf);
    seq.write(&mut buf);
    (payload.len() as u32).write(&mut buf);
    let crc = !crc32_update(crc32_update(!0, &buf), payload);
    crc.write(&mut buf);
    buf.extend_from_slice(payload);
    buf
}

// ---------------------------------------------------------------------------
// Chunk frames (format version 2): bounded slices of one logical payload.
// ---------------------------------------------------------------------------

/// Chunk-frame format version.
pub const CHUNK_VERSION: u16 = 2;

/// Chunk header: magic(2) + version(2) + seq(8) + chunk(4) + flags(4) +
/// len(4) + crc(4).
pub const CHUNK_HEADER: usize = 28;

/// Maximum payload bytes carried by one chunk frame.
///
/// Large exchange payloads are cut into chunks of at most this many bytes,
/// so a lost or corrupted frame costs one chunk retransmit instead of the
/// whole payload, and receivers can start combining before the last byte
/// arrives.
pub const CHUNK_PAYLOAD: usize = 16 * 1024;

/// Flag bit marking the final chunk of a logical payload.
pub const CHUNK_FLAG_LAST: u32 = 1;

/// A parsed chunk frame: which exchange it belongs to (`seq`), its index
/// within that exchange's stream to one destination, and whether it is the
/// stream terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkHeader {
    /// Exchange sequence number (shared by every chunk of one exchange).
    pub seq: u64,
    /// Zero-based chunk index within the per-destination stream.
    pub chunk: u32,
    /// True for the stream-terminating chunk (highest index).
    pub last: bool,
}

/// Wraps one payload slice in a validated chunk frame: magic, version 2,
/// exchange sequence number, chunk index, flags, payload length, and a
/// CRC32 over everything except the CRC field.
pub fn frame_chunk(seq: u64, chunk: u32, last: bool, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(CHUNK_HEADER + payload.len());
    FRAME_MAGIC.write(&mut buf);
    CHUNK_VERSION.write(&mut buf);
    seq.write(&mut buf);
    chunk.write(&mut buf);
    (if last { CHUNK_FLAG_LAST } else { 0 }).write(&mut buf);
    (payload.len() as u32).write(&mut buf);
    let crc = !crc32_update(crc32_update(!0, &buf), payload);
    crc.write(&mut buf);
    buf.extend_from_slice(payload);
    buf
}

/// Validates a frame produced by [`frame_chunk`], returning its header and
/// payload.
pub fn parse_chunk(frame: &[u8]) -> Result<(ChunkHeader, &[u8]), FrameError> {
    if frame.len() < CHUNK_HEADER {
        return Err(FrameError::Truncated);
    }
    if u16::read(frame) != FRAME_MAGIC || u16::read(&frame[2..]) != CHUNK_VERSION {
        return Err(FrameError::BadMagic);
    }
    let seq = u64::read(&frame[4..]);
    let chunk = u32::read(&frame[12..]);
    let flags = u32::read(&frame[16..]);
    let len = u32::read(&frame[20..]) as usize;
    if frame.len().checked_sub(CHUNK_HEADER) != Some(len) {
        return Err(FrameError::LengthMismatch);
    }
    let stored = u32::read(&frame[24..]);
    let computed = !crc32_update(
        crc32_update(!0, &frame[..24]),
        &frame[CHUNK_HEADER..],
    );
    if stored != computed {
        return Err(FrameError::ChecksumMismatch);
    }
    Ok((
        ChunkHeader {
            seq,
            chunk,
            last: flags & CHUNK_FLAG_LAST != 0,
        },
        &frame[CHUNK_HEADER..],
    ))
}

/// Validates a frame produced by [`frame_payload`], returning its sequence
/// number and payload.
pub fn parse_frame(frame: &[u8]) -> Result<(u64, &[u8]), FrameError> {
    if frame.len() < FRAME_HEADER {
        return Err(FrameError::Truncated);
    }
    if u16::read(frame) != FRAME_MAGIC || u16::read(&frame[2..]) != FRAME_VERSION {
        return Err(FrameError::BadMagic);
    }
    let seq = u64::read(&frame[4..]);
    let len = u32::read(&frame[12..]) as usize;
    // Checked subtraction: `FRAME_HEADER + len` could overflow on 32-bit
    // targets for a hostile length field.
    if frame.len().checked_sub(FRAME_HEADER) != Some(len) {
        return Err(FrameError::LengthMismatch);
    }
    let stored = u32::read(&frame[16..]);
    let computed = !crc32_update(
        crc32_update(!0, &frame[..16]),
        &frame[FRAME_HEADER..],
    );
    if stored != computed {
        return Err(FrameError::ChecksumMismatch);
    }
    Ok((seq, &frame[FRAME_HEADER..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut buf = Vec::new();
        0xdead_beefu32.write(&mut buf);
        3.5f64.write(&mut buf);
        true.write(&mut buf);
        assert_eq!(u32::read(&buf), 0xdead_beef);
        assert_eq!(f64::read(&buf[4..]), 3.5);
        assert!(bool::read(&buf[12..]));
    }

    #[test]
    fn roundtrip_tuples() {
        let v = (1u32, (2u64, 3u64));
        let mut buf = Vec::new();
        v.write(&mut buf);
        assert_eq!(<(u32, (u64, u64))>::read(&buf), v);
        assert_eq!(buf.len(), <(u32, (u64, u64))>::SIZE);
    }

    #[test]
    fn slice_roundtrip() {
        let items: Vec<(u32, u64)> = (0..100).map(|i| (i, i as u64 * 7)).collect();
        let buf = encode_slice(&items);
        assert_eq!(buf.len(), 100 * <(u32, u64)>::SIZE);
        assert_eq!(decode_slice::<(u32, u64)>(&buf), items);
        assert_eq!(iter_decoded::<(u32, u64)>(&buf).count(), 100);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_decode_panics() {
        decode_slice::<u64>(&[0u8; 7]);
    }

    #[test]
    fn frame_roundtrip() {
        let payload = b"hello kimbap".to_vec();
        let frame = frame_payload(42, &payload);
        assert_eq!(frame.len(), FRAME_HEADER + payload.len());
        let (seq, got) = parse_frame(&frame).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(got, &payload[..]);
    }

    #[test]
    fn empty_payload_frames() {
        let frame = frame_payload(0, &[]);
        assert_eq!(frame.len(), FRAME_HEADER);
        assert_eq!(parse_frame(&frame).unwrap(), (0, &[][..]));
    }

    #[test]
    fn truncated_and_wrong_magic_rejected() {
        let frame = frame_payload(1, b"xy");
        assert_eq!(parse_frame(&frame[..10]), Err(FrameError::Truncated));
        let mut bad = frame.clone();
        bad[0] ^= 0xFF;
        assert_eq!(parse_frame(&bad), Err(FrameError::BadMagic));
        let mut short = frame;
        short.pop();
        assert_eq!(parse_frame(&short), Err(FrameError::LengthMismatch));
    }

    #[test]
    fn every_single_bit_flip_detected_small() {
        // Exhaustive check on a small frame; the proptest in tests/prop.rs
        // covers random payloads the same way.
        let frame = frame_payload(7, b"abc");
        for bit in 0..frame.len() * 8 {
            let mut f = frame.clone();
            f[bit / 8] ^= 1 << (bit % 8);
            assert!(parse_frame(&f).is_err(), "undetected flip at bit {bit}");
        }
    }

    #[test]
    fn chunk_roundtrip_and_flags() {
        let frame = frame_chunk(9, 3, false, b"mid chunk");
        assert_eq!(frame.len(), CHUNK_HEADER + 9);
        let (h, body) = parse_chunk(&frame).unwrap();
        assert_eq!(h, ChunkHeader { seq: 9, chunk: 3, last: false });
        assert_eq!(body, b"mid chunk");

        let term = frame_chunk(9, 4, true, &[]);
        assert_eq!(term.len(), CHUNK_HEADER);
        let (h, body) = parse_chunk(&term).unwrap();
        assert_eq!(h, ChunkHeader { seq: 9, chunk: 4, last: true });
        assert!(body.is_empty());
    }

    #[test]
    fn chunk_and_v1_frames_reject_each_other() {
        // A v1 frame long enough to carry a full chunk header still fails
        // the version check; a short one fails the length check first.
        let v1 = frame_payload(5, &[7u8; 64]);
        assert_eq!(parse_chunk(&v1), Err(FrameError::BadMagic));
        let short_v1 = frame_payload(5, b"abc");
        assert!(parse_chunk(&short_v1).is_err());
        let v2 = frame_chunk(5, 0, true, b"abc");
        assert_eq!(parse_frame(&v2), Err(FrameError::BadMagic));
    }

    #[test]
    fn every_single_bit_flip_detected_chunk() {
        let frame = frame_chunk(7, 1, true, b"abc");
        for bit in 0..frame.len() * 8 {
            let mut f = frame.clone();
            f[bit / 8] ^= 1 << (bit % 8);
            assert!(parse_chunk(&f).is_err(), "undetected flip at bit {bit}");
        }
    }

    #[test]
    fn chunk_parser_survives_truncation_and_garbage() {
        let frame = frame_chunk(3, 2, false, b"abcdef");
        assert_eq!(parse_chunk(&frame[..10]), Err(FrameError::Truncated));
        let mut short = frame.clone();
        short.pop();
        assert_eq!(parse_chunk(&short), Err(FrameError::LengthMismatch));
        for n in 0..64usize {
            let junk: Vec<u8> = (0..n).map(|i| (i * 53 + n) as u8).collect();
            assert!(parse_chunk(&junk).is_err());
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn try_read_rejects_short_buffers() {
        assert_eq!(u64::try_read(&[0u8; 7]), Err(FrameError::Truncated));
        assert_eq!(bool::try_read(&[]), Err(FrameError::Truncated));
        assert_eq!(
            <(u32, u64)>::try_read(&[0u8; 11]),
            Err(FrameError::Truncated)
        );
        assert_eq!(u32::try_read(&[1, 0, 0, 0, 9]), Ok(1));
    }

    #[test]
    fn try_decode_slice_rejects_misaligned() {
        assert_eq!(
            try_decode_slice::<u64>(&[0u8; 7]),
            Err(FrameError::LengthMismatch)
        );
        let buf = encode_slice(&[3u64, 4]);
        assert_eq!(try_decode_slice::<u64>(&buf), Ok(vec![3, 4]));
    }

    #[test]
    fn parse_frame_rejects_garbage_without_panicking() {
        // Arbitrary byte soups, including ones that look header-shaped.
        for n in 0..64usize {
            let junk: Vec<u8> = (0..n).map(|i| (i * 37 + n) as u8).collect();
            assert!(parse_frame(&junk).is_err());
        }
        // A frame whose header claims more payload than arrived.
        let mut frame = frame_payload(3, b"abcdef");
        frame.truncate(FRAME_HEADER + 2);
        assert!(parse_frame(&frame).is_err());
    }
}
