//! Fixed-size binary encoding for values that cross host boundaries.
//!
//! Everything a host sends to another host is serialized through [`Wire`],
//! so byte accounting in [`crate::HostStats`] reflects real message sizes.
//! The encoding is little-endian and fixed-width per type, mirroring the
//! packed buffers an MPI implementation would ship.

/// A value with a fixed-size binary encoding.
///
/// # Example
///
/// ```
/// use kimbap_comm::Wire;
///
/// let mut buf = Vec::new();
/// (7u32, 42u64).write(&mut buf);
/// assert_eq!(buf.len(), <(u32, u64)>::SIZE);
/// assert_eq!(<(u32, u64)>::read(&buf), (7, 42));
/// ```
pub trait Wire: Sized + Copy {
    /// Encoded size in bytes.
    const SIZE: usize;

    /// Appends the encoding of `self` to `buf`.
    fn write(&self, buf: &mut Vec<u8>);

    /// Decodes a value from the front of `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`Wire::SIZE`].
    fn read(buf: &[u8]) -> Self;
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            const SIZE: usize = std::mem::size_of::<$t>();

            fn write(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }

            fn read(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf[..Self::SIZE].try_into().unwrap())
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64, i64, f64);

impl Wire for bool {
    const SIZE: usize = 1;

    fn write(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }

    fn read(buf: &[u8]) -> Self {
        buf[0] != 0
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    const SIZE: usize = A::SIZE + B::SIZE;

    fn write(&self, buf: &mut Vec<u8>) {
        self.0.write(buf);
        self.1.write(buf);
    }

    fn read(buf: &[u8]) -> Self {
        (A::read(buf), B::read(&buf[A::SIZE..]))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    const SIZE: usize = A::SIZE + B::SIZE + C::SIZE;

    fn write(&self, buf: &mut Vec<u8>) {
        self.0.write(buf);
        self.1.write(buf);
        self.2.write(buf);
    }

    fn read(buf: &[u8]) -> Self {
        (
            A::read(buf),
            B::read(&buf[A::SIZE..]),
            C::read(&buf[A::SIZE + B::SIZE..]),
        )
    }
}

/// Encodes a slice of wire values into a fresh byte buffer.
pub fn encode_slice<T: Wire>(items: &[T]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(items.len() * T::SIZE);
    for it in items {
        it.write(&mut buf);
    }
    buf
}

/// Decodes a byte buffer produced by [`encode_slice`].
///
/// # Panics
///
/// Panics if `buf.len()` is not a multiple of `T::SIZE`.
pub fn decode_slice<T: Wire>(buf: &[u8]) -> Vec<T> {
    assert_eq!(
        buf.len() % T::SIZE,
        0,
        "buffer length {} is not a multiple of element size {}",
        buf.len(),
        T::SIZE
    );
    buf.chunks_exact(T::SIZE).map(T::read).collect()
}

/// Iterates decoded values without allocating an output vector.
///
/// # Panics
///
/// Panics if `buf.len()` is not a multiple of `T::SIZE`.
pub fn iter_decoded<'a, T: Wire + 'a>(buf: &'a [u8]) -> impl Iterator<Item = T> + 'a {
    assert_eq!(buf.len() % T::SIZE, 0, "misaligned wire buffer");
    buf.chunks_exact(T::SIZE).map(T::read)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut buf = Vec::new();
        0xdead_beefu32.write(&mut buf);
        3.5f64.write(&mut buf);
        true.write(&mut buf);
        assert_eq!(u32::read(&buf), 0xdead_beef);
        assert_eq!(f64::read(&buf[4..]), 3.5);
        assert!(bool::read(&buf[12..]));
    }

    #[test]
    fn roundtrip_tuples() {
        let v = (1u32, (2u64, 3u64));
        let mut buf = Vec::new();
        v.write(&mut buf);
        assert_eq!(<(u32, (u64, u64))>::read(&buf), v);
        assert_eq!(buf.len(), <(u32, (u64, u64))>::SIZE);
    }

    #[test]
    fn slice_roundtrip() {
        let items: Vec<(u32, u64)> = (0..100).map(|i| (i, i as u64 * 7)).collect();
        let buf = encode_slice(&items);
        assert_eq!(buf.len(), 100 * <(u32, u64)>::SIZE);
        assert_eq!(decode_slice::<(u32, u64)>(&buf), items);
        assert_eq!(iter_decoded::<(u32, u64)>(&buf).count(), 100);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_decode_panics() {
        decode_slice::<u64>(&[0u8; 7]);
    }
}
