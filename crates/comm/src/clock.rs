//! Time as a pluggable service: the [`Clock`] trait and its ambient
//! (thread-local) installation.
//!
//! Everything in the runtime that needs "now" or "wait a bit" — phase
//! [`Deadline`](crate::Deadline)s, [`Backoff`](crate::Backoff) sleeps,
//! heartbeat ledgers, injected stalls, the engine's phase timers — goes
//! through the free functions [`now_nanos`] and [`sleep`] instead of
//! `Instant::now()` / `thread::sleep`. On a normal run they resolve to
//! [`RealClock`] (wall time against a process-global epoch); on the
//! deterministic simulation backend each host thread installs a virtual
//! [`Clock`] whose time only advances when the discrete-event scheduler
//! says so, which makes heartbeat and timeout paths fire in microseconds
//! of wall time and — more importantly — makes them replayable.
//!
//! The clock is ambient rather than threaded through every call because
//! `Deadline` values are created deep inside the engine and evaluated deep
//! inside transports; both ends always execute on the host's own thread,
//! so a thread-local is exactly the right scope.

use std::cell::RefCell;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A source of monotonic time and blocking waits.
///
/// `now_nanos` must be monotone non-decreasing; the absolute epoch is
/// arbitrary but fixed for the clock's lifetime. `sleep` blocks the
/// calling host for (at least) `d` *in this clock's timeline* — wall time
/// for [`RealClock`], virtual time for the simulation clock.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's epoch.
    fn now_nanos(&self) -> u64;
    /// Blocks the caller for `d` of this clock's time.
    fn sleep(&self, d: Duration);
}

/// Wall-clock time against a process-global epoch (the first use).
///
/// A shared epoch — rather than one per fabric — lets `u64` nanotimes
/// from different components compare meaningfully within one process.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealClock;

fn real_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

impl Clock for RealClock {
    fn now_nanos(&self) -> u64 {
        real_epoch().elapsed().as_nanos() as u64
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

thread_local! {
    static AMBIENT: RefCell<Option<Arc<dyn Clock>>> = const { RefCell::new(None) };
}

/// Restores the previous ambient clock even if `f` unwinds.
struct Restore(Option<Arc<dyn Clock>>);

impl Drop for Restore {
    fn drop(&mut self) {
        let prev = self.0.take();
        AMBIENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Runs `f` with `clock` installed as this thread's ambient clock.
///
/// The previous ambient clock (if any) is restored when `f` returns or
/// unwinds. The simulation backend wraps each host closure in this so the
/// whole stack beneath it — deadlines, backoff, stalls, phase timers —
/// runs on virtual time.
pub fn with_clock<R>(clock: Arc<dyn Clock>, f: impl FnOnce() -> R) -> R {
    let prev = AMBIENT.with(|c| c.borrow_mut().replace(clock));
    let _restore = Restore(prev);
    f()
}

/// Nanoseconds since the ambient clock's epoch ([`RealClock`] if none is
/// installed).
pub fn now_nanos() -> u64 {
    AMBIENT.with(|c| match &*c.borrow() {
        Some(clock) => clock.now_nanos(),
        None => RealClock.now_nanos(),
    })
}

/// Sleeps on the ambient clock ([`RealClock`] if none is installed).
pub fn sleep(d: Duration) {
    // Clone the Arc out rather than sleeping under the RefCell borrow: a
    // virtual clock's sleep can run arbitrary scheduler code on this
    // thread, and nested `now_nanos` calls must not re-borrow a held cell.
    let ambient = AMBIENT.with(|c| c.borrow().clone());
    match ambient {
        Some(clock) => clock.sleep(d),
        None => RealClock.sleep(d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct FixedClock(AtomicU64);

    impl Clock for FixedClock {
        fn now_nanos(&self) -> u64 {
            self.0.load(Ordering::Relaxed)
        }
        fn sleep(&self, d: Duration) {
            self.0.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        }
    }

    #[test]
    fn real_clock_is_monotone() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn ambient_clock_overrides_and_restores() {
        let fixed = Arc::new(FixedClock(AtomicU64::new(42)));
        let inside = with_clock(fixed.clone(), || {
            sleep(Duration::from_nanos(8));
            now_nanos()
        });
        assert_eq!(inside, 50, "ambient clock governs now/sleep");
        // Outside the scope the real clock is back (and far past 50 only
        // if the process has run a while — just check it's not the fixed
        // clock by advancing the fixed one and seeing no effect).
        fixed.0.store(7, Ordering::Relaxed);
        let outside = now_nanos();
        assert_ne!(outside, 7);
    }

    #[test]
    fn nested_ambient_clocks_unwind_in_order() {
        let a = Arc::new(FixedClock(AtomicU64::new(1)));
        let b = Arc::new(FixedClock(AtomicU64::new(2)));
        with_clock(a, || {
            assert_eq!(now_nanos(), 1);
            with_clock(b, || assert_eq!(now_nanos(), 2));
            assert_eq!(now_nanos(), 1);
        });
    }
}
