//! Persistent per-host worker pool for intra-host parallel loops.
//!
//! Each simulated host owns one [`WorkerPool`] with a fixed number of worker
//! threads (the paper's 48-threads-per-host, scaled down). The pool exists
//! for the lifetime of the host so that every `ParFor` in a BSP round reuses
//! the same threads — thread identity is what makes the node-property map's
//! conflict-free thread-local reductions possible.

use crossbeam::channel::{bounded, Receiver, Sender};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Arc<dyn Fn(usize) + Send + Sync>;

/// Smallest sub-chunk a worker claims from a `par_for` cursor, and the
/// largest range served inline by the calling thread instead of fanning
/// out to the pool.
const MIN_GRAIN: usize = 256;

enum Msg {
    Run(Job),
    Shutdown,
}

/// A fixed set of worker threads executing broadcast jobs.
///
/// [`WorkerPool::run`] hands the same closure to every worker (identified by
/// a dense thread id `0..threads`) and blocks until all of them finish —
/// the building block for OpenMP-style parallel-for loops.
///
/// A pool of size 1 executes jobs inline on the calling thread with thread
/// id 0, avoiding any cross-thread traffic.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use kimbap_comm::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let sum = AtomicUsize::new(0);
/// pool.par_for(0..1000, |_tid, range| {
///     sum.fetch_add(range.len(), Ordering::Relaxed);
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), 1000);
/// ```
pub struct WorkerPool {
    senders: Vec<Sender<Msg>>,
    done: Receiver<bool>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Spawns a pool with `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a pool needs at least one thread");
        if threads == 1 {
            let (_, done) = bounded::<bool>(0);
            return WorkerPool {
                senders: Vec::new(),
                done,
                handles: Vec::new(),
                threads: 1,
            };
        }
        let (done_tx, done_rx) = bounded::<bool>(threads);
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for tid in 0..threads {
            let (tx, rx) = bounded::<Msg>(1);
            let done = done_tx.clone();
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("kimbap-worker-{tid}"))
                    .spawn(move || {
                        while let Ok(Msg::Run(job)) = rx.recv() {
                            // A panicking job must not silently kill the
                            // worker: the pool would deadlock waiting for
                            // its ack. Catch, ack with the failure flag,
                            // and let run() re-panic on the caller.
                            let panicked = std::panic::catch_unwind(
                                std::panic::AssertUnwindSafe(|| job(tid)),
                            )
                            .is_err();
                            let _ = done.send(panicked);
                        }
                    })
                    .expect("failed to spawn worker thread"),
            );
        }
        WorkerPool {
            senders,
            done: done_rx,
            handles,
            threads,
        }
    }

    /// Number of worker threads.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(tid)` on every worker and waits for all of them.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread has panicked and disconnected.
    #[inline]
    pub fn run<F>(&self, job: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        if self.threads == 1 {
            job(0);
            return;
        }
        self.run_broadcast(job);
    }

    /// The cold fan-out path of [`WorkerPool::run`]: ships the job to every
    /// worker and blocks on their acks. Split out so the hot single-thread
    /// and small-range paths in the `#[inline]` trampolines above/below
    /// stay tiny at the call site.
    fn run_broadcast<F>(&self, job: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        // SAFETY-free trick: we erase the closure's lifetime by boxing a
        // wrapper that we fully wait out before returning, so the borrow
        // cannot escape this call.
        let job: Arc<dyn Fn(usize) + Send + Sync + '_> = Arc::new(job);
        // SAFETY: workers only hold the job between the sends below and the
        // matching completion acks we block on; the borrow cannot outlive
        // this call.
        let job: Job = unsafe {
            std::mem::transmute::<Arc<dyn Fn(usize) + Send + Sync + '_>, Job>(job)
        };
        for tx in &self.senders {
            tx.send(Msg::Run(job.clone())).expect("worker disconnected");
        }
        let mut any_panicked = false;
        for _ in 0..self.threads {
            any_panicked |= self.done.recv().expect("worker disconnected");
        }
        assert!(!any_panicked, "a worker thread panicked during the job");
    }

    /// Runs `f(tid)` on every worker and collects the per-thread results,
    /// indexed by thread id — the fork-join building block for parallel
    /// bucketing passes that each produce a partial result.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread has panicked and disconnected.
    #[inline]
    pub fn run_map<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Send + Sync,
    {
        if self.threads == 1 {
            return vec![f(0)];
        }
        let slots: Vec<parking_lot::Mutex<Option<R>>> =
            (0..self.threads).map(|_| parking_lot::Mutex::new(None)).collect();
        self.run(|tid| {
            *slots[tid].lock() = Some(f(tid));
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("worker produced no result"))
            .collect()
    }

    /// Splits `range` into dynamically scheduled chunks and runs `f(tid,
    /// chunk)` across the pool. Dynamic scheduling balances skewed work
    /// (power-law graphs make static splits pathological).
    ///
    /// The inline fast-path threshold is decided ONCE per call, before any
    /// fan-out; per-sub-chunk iterations only pay the cursor claim.
    #[inline]
    pub fn par_for<F>(&self, range: Range<usize>, f: F)
    where
        F: Fn(usize, Range<usize>) + Send + Sync,
    {
        let start = range.start;
        let n = range.end.saturating_sub(range.start);
        if n == 0 {
            return;
        }
        // A range no larger than one chunk would be claimed whole by the
        // first worker anyway; run it inline and skip the fan-out/ack
        // round-trip entirely. Tiny sparse frontiers hit this constantly.
        // (`run`/`run_map` must NOT take this shortcut: their contract is
        // that every thread id participates — e.g. request-sync bucketing
        // scans a word chunk per tid.)
        if self.threads == 1 || n <= MIN_GRAIN {
            f(0, start..start + n);
            return;
        }
        let grain = (n / (self.threads * 8)).max(MIN_GRAIN);
        let cursor = AtomicUsize::new(0);
        self.run_broadcast(|tid| loop {
            let lo = cursor.fetch_add(grain, Ordering::Relaxed);
            if lo >= n {
                break;
            }
            let hi = (lo + grain).min(n);
            f(tid, start + lo..start + hi);
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Msg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn single_thread_runs_inline() {
        let pool = WorkerPool::new(1);
        let mut seen = false;
        // Inline execution lets us mutate captured state through a cell-free
        // reference only because run() is synchronous; use atomics anyway.
        let flag = AtomicUsize::new(0);
        pool.run(|tid| {
            assert_eq!(tid, 0);
            flag.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            seen = true;
        }
        assert!(seen);
    }

    #[test]
    fn all_threads_participate() {
        let pool = WorkerPool::new(4);
        let mask = AtomicUsize::new(0);
        pool.run(|tid| {
            mask.fetch_or(1 << tid, Ordering::Relaxed);
        });
        assert_eq!(mask.load(Ordering::Relaxed), 0b1111);
    }

    #[test]
    fn par_for_covers_range_exactly_once() {
        let pool = WorkerPool::new(3);
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.par_for(0..n, |_tid, r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_small_range_runs_inline() {
        let pool = WorkerPool::new(3);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let tid_seen = AtomicUsize::new(usize::MAX);
        pool.par_for(0..100, |tid, r| {
            tid_seen.store(tid, Ordering::Relaxed);
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        // A sub-chunk range is served by the calling thread as tid 0.
        assert_eq!(tid_seen.load(Ordering::Relaxed), 0);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_empty_range() {
        let pool = WorkerPool::new(2);
        pool.par_for(5..5, |_, _| panic!("must not run"));
    }

    #[test]
    fn par_for_offset_range() {
        let pool = WorkerPool::new(2);
        let sum = AtomicU64::new(0);
        pool.par_for(100..200, |_, r| {
            sum.fetch_add(r.map(|i| i as u64).sum(), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (100..200u64).sum());
    }

    #[test]
    fn pool_reusable_across_many_jobs() {
        let pool = WorkerPool::new(4);
        let count = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed), 400);
    }
}
