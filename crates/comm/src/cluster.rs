//! The cluster runtime: hosts, transports, and failure-aware collectives.
//!
//! Every inter-host payload travels as a stream of bounded, checksummed
//! chunk frames ([`crate::wire::frame_chunk`]); receivers validate length
//! and CRC per chunk, reassemble by chunk index, and re-request exactly
//! the damaged or missing chunks ([`RetxRequest`]) from the sender's
//! retained outbox, so a [`crate::FaultPlan`] dropping, duplicating,
//! delaying, or corrupting frames is survived transparently (visible only
//! in [`HostStats::retransmits`]). Exchanges are split-phase: payloads can
//! be posted chunk-by-chunk while compute continues
//! ([`HostCtx::exchange_start`] / [`ExchangeTicket::post`] /
//! [`HostCtx::exchange_finish`]), overlapping serialization and wire I/O
//! with the round body. Host crashes are survived too: a panicking
//! host marks itself failed so sibling hosts observe
//! [`CommError::HostFailure`] instead of deadlocking, and
//! [`HostCtx::run_recovering`] restarts all hosts from a consistent state.
//!
//! The bytes themselves move through a pluggable
//! [`Transport`](crate::transport::Transport): the default in-proc fabric
//! (shared memory, deterministic, zero configuration) or a TCP mesh
//! ([`Backend::TcpLoopback`] in-process, or true multi-process via
//! `kimbap run --transport tcp`). The exchange protocol — sequencing,
//! CRC validation, fault injection, retransmission, the collective retry
//! verdict — lives here, above the trait, so both backends share it
//! verbatim. Robustness is layered the same way: phase
//! [`Deadline`]s turn hung peers into [`CommError::Timeout`], the optional
//! heartbeat detector turns silent peers into [`CommError::PeerDown`], and
//! retries back off with seeded decorrelated jitter
//! ([`crate::transport::Backoff`]).

use crate::clock;
use crate::fault::{FaultPlan, FaultState, SendAction};
use crate::pool::WorkerPool;
use crate::transport::inproc::{InProcFabric, InProcTransport};
use crate::transport::sim::{SimFabric, SimTransport, TraceSink};
use crate::transport::tcp::TcpTransport;
use crate::transport::{Backoff, Deadline, RetxRequest, Transport, TransportConfig};
use crate::wire::{encode_slice, frame_chunk, parse_chunk, Wire, CHUNK_PAYLOAD};
use parking_lot::Mutex;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Retransmission attempts per exchange before the collective fails with
/// [`CommError::FrameLoss`].
const MAX_ATTEMPTS: u32 = 4;

/// Crash recoveries per [`HostCtx::run_recovering`] call before the panic
/// is propagated unchanged.
const MAX_RECOVERIES: u32 = 8;

/// Per-host communication counters.
///
/// `comm_nanos` covers time spent inside collective calls (serialization,
/// mailbox traffic, and waiting at the implied barriers); everything else a
/// host does is computation. Bytes and messages count only *inter*-host
/// traffic — a host delivering to itself models a local memcpy, which the
/// paper's communication-volume numbers also exclude. Retransmissions
/// triggered by injected faults count only in `retransmits`, keeping
/// `messages`/`bytes` equal to the fault-free logical volume.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Messages sent to other hosts.
    pub messages: u64,
    /// Payload bytes sent to other hosts.
    pub bytes: u64,
    /// Nanoseconds spent inside communication calls.
    pub comm_nanos: u64,
    /// Frames re-sent after a receiver reported loss or corruption.
    pub retransmits: u64,
    /// Received frames rejected by length/CRC validation.
    pub crc_rejects: u64,
    /// Collectives this host aborted because the heartbeat detector
    /// flagged a silent peer ([`CommError::PeerDown`]).
    pub heartbeat_suspicions: u64,
    /// Collectives this host aborted on a phase deadline
    /// ([`CommError::Timeout`]).
    pub timeout_aborts: u64,
    /// Nanoseconds spent in the request-compute phase (engines report
    /// these via [`HostCtx::add_phase_nanos`]; zero if never reported).
    pub request_compute_nanos: u64,
    /// Nanoseconds spent in request-sync collectives.
    pub request_sync_nanos: u64,
    /// Nanoseconds spent in the reduce-compute (operator body) phase.
    pub reduce_compute_nanos: u64,
    /// Nanoseconds spent in reduce-sync/broadcast-sync collectives.
    pub reduce_sync_nanos: u64,
    /// Nodes actually executed by reduce-compute `ParFor`s (engines report
    /// these via [`HostCtx::add_parfor_activity`]; zero if never reported).
    pub active_nodes: u64,
    /// Nodes the same `ParFor`s would have executed densely — the
    /// denominator of the frontier density `active_nodes / parfor_nodes`.
    pub parfor_nodes: u64,
    /// Rounds that iterated a sparse frontier instead of all nodes.
    pub sparse_rounds: u64,
    /// Membership shrinks this host agreed to at the shrink gate (one per
    /// generation bump; see [`HostCtx::recover_shrink`]).
    pub membership_changes: u64,
    /// BSP rounds executed on a degraded (shrunk) membership.
    pub degraded_rounds: u64,
    /// Master keys this host adopted or redistributed while re-sharding a
    /// departed host's state (engines report these via
    /// [`HostCtx::add_resharded_keys`]).
    pub resharded_keys: u64,
    /// Hosts admitted by grow agreements this host took part in (one per
    /// admitted host; see [`HostCtx::recover_grow`]).
    pub joins: u64,
    /// Master keys this host sent or received while re-sharding onto a
    /// grown membership (engines report these via
    /// [`HostCtx::add_grow_resharded_keys`]).
    pub grow_resharded_keys: u64,
    /// Physical chunk frames sent to other hosts (data chunks plus one
    /// stream terminator per destination per exchange; first transmissions
    /// only — re-sends count in `chunk_retransmits`).
    pub chunks_sent: u64,
    /// Chunk frames re-sent after a receiver reported loss or corruption.
    pub chunk_retransmits: u64,
    /// Nanoseconds a split-phase exchange had chunks on the wire while the
    /// host kept computing (from the first [`ExchangeTicket::post`] to the
    /// matching [`HostCtx::exchange_finish`]); zero for blocking
    /// [`HostCtx::exchange`] calls.
    pub overlap_nanos: u64,
    /// Serve-layer result-cache lookups answered from the cache (schedulers
    /// report these via [`HostCtx::add_cache_events`]; zero if no serving
    /// layer runs).
    pub cache_hits: u64,
    /// Serve-layer result-cache lookups that missed and forced a fresh
    /// computation.
    pub cache_misses: u64,
    /// Serve-layer result-cache entries evicted (capacity pressure or a
    /// graph-epoch bump).
    pub cache_evictions: u64,
}

/// The four phases of one NPM BSP round (Fig. 6 of the paper), used to
/// attribute wall-clock time via [`HostCtx::add_phase_nanos`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPhase {
    /// Scanning edges and marking remote properties to fetch.
    RequestCompute,
    /// Exchanging request keys and fetched values (`request_sync`).
    RequestSync,
    /// Running the operator body and folding partials (`reduce`).
    ReduceCompute,
    /// Combining partials and exchanging them (`reduce_sync` and any
    /// trailing `broadcast_sync`).
    ReduceSync,
}

impl HostStats {
    /// Adds another host's counters into this one (for cluster-wide totals).
    pub fn merge(&mut self, other: &HostStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.comm_nanos = self.comm_nanos.max(other.comm_nanos);
        self.retransmits += other.retransmits;
        self.crc_rejects += other.crc_rejects;
        self.heartbeat_suspicions += other.heartbeat_suspicions;
        self.timeout_aborts += other.timeout_aborts;
        // Phase times, like comm_nanos, answer "how long did the cluster
        // spend here" — the slowest host gates the barrier, so max.
        self.request_compute_nanos = self.request_compute_nanos.max(other.request_compute_nanos);
        self.request_sync_nanos = self.request_sync_nanos.max(other.request_sync_nanos);
        self.reduce_compute_nanos = self.reduce_compute_nanos.max(other.reduce_compute_nanos);
        self.reduce_sync_nanos = self.reduce_sync_nanos.max(other.reduce_sync_nanos);
        // Work counts are cluster-wide totals, like traffic: sum. Sparse
        // rounds happen per host at the same round cadence, so max keeps
        // the count in units of rounds.
        self.active_nodes += other.active_nodes;
        self.parfor_nodes += other.parfor_nodes;
        self.sparse_rounds = self.sparse_rounds.max(other.sparse_rounds);
        // Shrinks are cluster-wide events every survivor counts once, and
        // degraded rounds run at the same cadence everywhere: max keeps
        // both in units of events/rounds. Resharded keys are per-host
        // adoption work, so they sum like traffic.
        self.membership_changes = self.membership_changes.max(other.membership_changes);
        self.degraded_rounds = self.degraded_rounds.max(other.degraded_rounds);
        self.resharded_keys += other.resharded_keys;
        // Joins, like shrinks, are cluster-wide events every member counts
        // once: max. Grow re-shard keys are per-host transfer work: sum.
        self.joins = self.joins.max(other.joins);
        self.grow_resharded_keys += other.grow_resharded_keys;
        // Chunk frames are traffic: sum. Overlap, like the phase times,
        // answers "how long did the cluster hide wire I/O behind compute"
        // — the slowest host gates the round, so max.
        self.chunks_sent += other.chunks_sent;
        self.chunk_retransmits += other.chunk_retransmits;
        self.overlap_nanos = self.overlap_nanos.max(other.overlap_nanos);
        // Cache events are per-host work, like traffic: sum.
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
    }
}

/// A communication failure observed by a collective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// One or more hosts failed (panicked) while this host was inside a
    /// collective; the listed hosts are the known casualties.
    HostFailure {
        /// Hosts that have failed.
        hosts: Vec<usize>,
    },
    /// The heartbeat failure detector flagged silent peers: they stopped
    /// announcing liveness for longer than the configured suspect
    /// threshold, without reporting a crash.
    PeerDown {
        /// The suspected-silent hosts.
        hosts: Vec<usize>,
    },
    /// A collective did not complete within its phase [`Deadline`].
    Timeout {
        /// The phase label carried by the deadline.
        phase: &'static str,
        /// Hosts that had not arrived when the deadline passed.
        hosts: Vec<usize>,
    },
    /// A frame could not be delivered within the retry budget. Every host
    /// in the exchange returns this same error — the collective fails as a
    /// unit, never leaving hosts disagreeing about whether it completed.
    FrameLoss {
        /// Hosts that were still missing a frame when the budget ran out.
        hosts: Vec<usize>,
        /// Retransmission attempts performed.
        attempts: u32,
    },
    /// The caller violated the collective's contract (wrong buffer count
    /// or a malformed peer payload).
    Protocol {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// One or more hosts departed permanently: recovery within the current
    /// membership is impossible. Callers may shrink onto the survivors
    /// ([`HostCtx::recover_shrink`] / [`HostCtx::run_elastic`]) or abort.
    MembershipLost {
        /// The permanently departed hosts (physical ids).
        departed: Vec<usize>,
        /// The membership generation in which the loss was observed.
        generation: u64,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::HostFailure { hosts } => write!(f, "host failure: hosts {hosts:?} down"),
            CommError::PeerDown { hosts } => {
                write!(f, "peer down: hosts {hosts:?} silent past the heartbeat threshold")
            }
            CommError::Timeout { phase, hosts } => {
                write!(f, "timeout: phase {phase} missing hosts {hosts:?} at deadline")
            }
            CommError::FrameLoss { hosts, attempts } => write!(
                f,
                "frame loss: hosts {hosts:?} missing frames after {attempts} retransmits"
            ),
            CommError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            CommError::MembershipLost {
                departed,
                generation,
            } => write!(
                f,
                "membership lost: hosts {departed:?} permanently departed (generation {generation})"
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// The panic payload used for recoverable host failures.
///
/// [`HostCtx::run_recovering`] catches exactly this type: injected crashes
/// and communication failures escalated by the infallible collective
/// wrappers. Any other panic (a real bug) propagates unchanged.
#[derive(Debug, Clone)]
pub enum CrashSignal {
    /// A [`crate::FaultKind::CrashHost`] fault fired on this host.
    Injected {
        /// The crashed host.
        host: usize,
        /// The round it was entering.
        round: u64,
    },
    /// A [`crate::FaultKind::KillHost`] fault fired on this host: the loss
    /// is permanent, so no recovery path may restart this host. Survivors
    /// observe it as [`CommError::MembershipLost`] once their recovery
    /// alignment fails.
    Killed {
        /// The killed host (physical id).
        host: usize,
        /// The round it was entering.
        round: u64,
    },
    /// An infallible collective wrapper observed a communication error.
    Comm(CommError),
}

impl std::fmt::Display for CrashSignal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashSignal::Injected { host, round } => {
                write!(f, "injected crash of host {host} at round {round}")
            }
            CrashSignal::Killed { host, round } => {
                write!(f, "permanent host loss: host {host} killed at round {round}")
            }
            CrashSignal::Comm(e) => write!(f, "communication failed: {e}"),
        }
    }
}

/// A host closure's failure, as reported by [`Cluster::try_run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostError {
    /// The failed host.
    pub host: usize,
    /// The panic message (or [`CrashSignal`] description).
    pub message: String,
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "host {}: {}", self.host, self.message)
    }
}

impl std::error::Error for HostError {}

/// The agreed outcome of a membership shrink
/// ([`HostCtx::recover_shrink`]): who departed and where this host stood
/// in the old membership, in **old logical ranks** so state-adoption code
/// (checkpoint replicas keyed by old ownership) can relocate every
/// departed shard deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrinkOutcome {
    /// Old logical ranks of the hosts that permanently departed.
    pub departed: Vec<usize>,
    /// This host's logical rank in the old membership.
    pub my_old_rank: usize,
    /// The old membership size.
    pub old_count: usize,
    /// The new membership generation (bumped by this shrink).
    pub generation: u64,
}

/// The agreed outcome of a membership grow ([`HostCtx::recover_grow`] /
/// [`HostCtx::join_cluster`]): who was admitted and where this host stood
/// in the pre-grow membership, so re-shard code can route master keys to
/// the expanded owner set deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrowOutcome {
    /// Physical host ids admitted by this grow (empty when the gate fired
    /// after every knocker retracted or died).
    pub joined: Vec<usize>,
    /// This host's logical rank in the pre-grow membership, or
    /// `old_count` for a host that joined in this very grow (it owned
    /// nothing before).
    pub my_old_rank: usize,
    /// The pre-grow membership size.
    pub old_count: usize,
    /// The new membership generation (bumped by this grow).
    pub generation: u64,
}

/// The full membership mask for an `n`-host cluster (saturated past 64
/// hosts, where shrinking is unsupported).
fn full_mask(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Whether physical host `h` is in `mask` (hosts past bit 63 are always
/// members — clusters that large never shrink).
fn in_mask(mask: u64, h: usize) -> bool {
    h >= 64 || mask & (1u64 << h) != 0
}

/// Set when the current process hosts exactly one member of a
/// multi-process mesh (`run_transport_host`): a permanent kill fault then
/// exits the process instead of unwinding, so peers observe a real dead
/// worker (EOF on every connection) rather than an in-process panic.
static PROCESS_PER_HOST: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// The exit code a killed multi-process worker dies with (see
/// [`crate::FaultKind::KillHost`]); launchers treat it as an injected
/// permanent loss rather than a harness bug.
pub const KILLED_EXIT_CODE: i32 = 86;

/// Round-band stride a serving layer uses to tag collectives with the job
/// they belong to: job `k` publishes rounds in `[k * JOB_ROUND_STRIDE,
/// (k + 1) * JOB_ROUND_STRIDE)` via [`HostCtx::set_round`], so
/// round-targeted faults and traces can address "round `r` of job `k`"
/// without ambiguity across a multi-job schedule. Algorithms that advance
/// rounds relatively (`set_round(current_round() + 1)`) compose with the
/// band for free.
pub const JOB_ROUND_STRIDE: u64 = 1 << 32;

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(sig) = payload.downcast_ref::<CrashSignal>() {
        sig.to_string()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "host closure panicked".to_string()
    }
}

/// Which transport backend a [`Cluster`] runs its hosts over.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Backend {
    /// Shared-memory fabric within the process (the default).
    #[default]
    InProc,
    /// A real TCP mesh over `127.0.0.1`, still one thread per host in this
    /// process — the bridge between the simulator and `kimbap run
    /// --transport tcp` multi-process mode, and the backend the
    /// cross-backend determinism tests exercise.
    TcpLoopback,
    /// The deterministic simulation fabric: hosts run cooperatively under
    /// a seeded discrete-event scheduler with a virtual clock, so the
    /// whole run — delivery order, faults, heartbeats, timeouts — is a
    /// pure function of the seed and replays exactly.
    Sim {
        /// Seed driving the scheduler's host interleaving.
        seed: u64,
    },
}

/// A cluster of `num_hosts` hosts, each with its own worker pool of
/// `threads_per_host` threads.
///
/// [`Cluster::run`] spawns one OS thread per host, hands each a
/// [`HostCtx`], and joins them, returning the per-host results in host
/// order. The closure runs once on every host — exactly like an
/// `mpirun`-launched SPMD program. By default hosts talk over the in-proc
/// fabric; [`Cluster::tcp`] switches them to a loopback TCP mesh.
#[derive(Debug)]
pub struct Cluster {
    num_hosts: usize,
    threads_per_host: usize,
    backend: Backend,
    transport_cfg: TransportConfig,
    trace_sink: Option<TraceSink>,
}

impl Cluster {
    /// Creates a cluster of `num_hosts` hosts with one compute thread each.
    ///
    /// # Panics
    ///
    /// Panics if `num_hosts == 0`.
    pub fn new(num_hosts: usize) -> Self {
        Self::with_threads(num_hosts, 1)
    }

    /// Creates a cluster with `threads_per_host` compute threads per host.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn with_threads(num_hosts: usize, threads_per_host: usize) -> Self {
        assert!(num_hosts > 0, "cluster needs at least one host");
        assert!(threads_per_host > 0, "hosts need at least one thread");
        Cluster {
            num_hosts,
            threads_per_host,
            backend: Backend::InProc,
            transport_cfg: TransportConfig::default(),
            trace_sink: None,
        }
    }

    /// Switches the hosts onto a loopback TCP mesh
    /// ([`Backend::TcpLoopback`]).
    pub fn tcp(mut self) -> Self {
        self.backend = Backend::TcpLoopback;
        self
    }

    /// Switches the hosts onto the deterministic simulation fabric
    /// ([`Backend::Sim`]) scheduled by `seed`.
    pub fn sim(mut self, seed: u64) -> Self {
        self.backend = Backend::Sim { seed };
        self
    }

    /// Collects the simulation backend's linearized event trace into
    /// `sink` after each run (replacing its previous contents). Ignored by
    /// the other backends.
    pub fn with_trace_sink(mut self, sink: TraceSink) -> Self {
        self.trace_sink = Some(sink);
        self
    }

    /// Sets transport options (e.g. the heartbeat failure detector) for
    /// whichever backend is selected.
    pub fn with_transport_config(mut self, cfg: TransportConfig) -> Self {
        self.transport_cfg = cfg;
        self
    }

    /// The selected transport backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.num_hosts
    }

    /// Compute threads per host.
    pub fn threads_per_host(&self) -> usize {
        self.threads_per_host
    }

    /// Runs `f` once per host, in parallel, and returns the results in host
    /// order.
    ///
    /// # Panics
    ///
    /// Panics (after all hosts have been joined) if any host's closure
    /// panicked.
    pub fn run<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(&HostCtx) -> R + Sync,
        R: Send,
    {
        self.run_with_faults(FaultPlan::default(), f)
    }

    /// Like [`Cluster::run`], with a [`FaultPlan`] injected into the
    /// transport boundary.
    ///
    /// # Panics
    ///
    /// Panics (after all hosts have been joined) if any host's closure
    /// panicked — including unrecovered injected crashes.
    pub fn run_with_faults<F, R>(&self, plan: FaultPlan, f: F) -> Vec<R>
    where
        F: Fn(&HostCtx) -> R + Sync,
        R: Send,
    {
        let mut failures = Vec::new();
        let mut out = Vec::with_capacity(self.num_hosts);
        for r in self.try_run_with_faults(plan, f) {
            match r {
                Ok(v) => out.push(v),
                Err(e) => failures.push(e.to_string()),
            }
        }
        if !failures.is_empty() {
            panic!("host thread panicked: {}", failures.join("; "));
        }
        out
    }

    /// Runs `f` once per host, catching per-host panics: each host yields
    /// `Ok(result)` or `Err` describing its failure. Sibling hosts of a
    /// failed host observe [`CommError::HostFailure`] from any collective
    /// they are in instead of deadlocking.
    pub fn try_run<F, R>(&self, f: F) -> Vec<Result<R, HostError>>
    where
        F: Fn(&HostCtx) -> R + Sync,
        R: Send,
    {
        self.try_run_with_faults(FaultPlan::default(), f)
    }

    /// Like [`Cluster::try_run`], with a [`FaultPlan`] injected into the
    /// transport boundary.
    pub fn try_run_with_faults<F, R>(&self, plan: FaultPlan, f: F) -> Vec<Result<R, HostError>>
    where
        F: Fn(&HostCtx) -> R + Sync,
        R: Send,
    {
        // One FaultState shared by every host, whichever backend carries
        // the bytes: the same seeded plan fires the same schedule over the
        // in-proc fabric and the TCP loopback mesh.
        let latent = plan.latent_hosts();
        let faults = Arc::new(FaultState::new(plan));
        match self.backend {
            Backend::InProc => {
                let fabric = Arc::new(InProcFabric::new_with_latent(
                    self.num_hosts,
                    self.transport_cfg.clone(),
                    &latent,
                ));
                std::thread::scope(|scope| {
                    let mut handles = Vec::with_capacity(self.num_hosts);
                    for host in 0..self.num_hosts {
                        let fabric = fabric.clone();
                        let faults = faults.clone();
                        let f = &f;
                        let threads = self.threads_per_host;
                        handles.push(
                            std::thread::Builder::new()
                                .name(format!("kimbap-host-{host}"))
                                .spawn_scoped(scope, move || {
                                    let transport = InProcTransport::new(fabric, host);
                                    run_host(&transport, threads, faults, |ctx| f(ctx))
                                })
                                .expect("failed to spawn host thread"),
                        );
                    }
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("failed to join host thread"))
                        .collect()
                })
            }
            Backend::TcpLoopback => {
                let (listeners, ports) = TcpTransport::loopback_listeners(self.num_hosts)
                    .expect("failed to bind loopback listeners");
                std::thread::scope(|scope| {
                    let mut handles = Vec::with_capacity(self.num_hosts);
                    for (host, listener) in listeners.into_iter().enumerate() {
                        let faults = faults.clone();
                        let ports = ports.clone();
                        let cfg = self.transport_cfg.clone();
                        let f = &f;
                        let threads = self.threads_per_host;
                        let num_hosts = self.num_hosts;
                        let latent = latent.clone();
                        handles.push(
                            std::thread::Builder::new()
                                .name(format!("kimbap-host-{host}"))
                                .spawn_scoped(scope, move || {
                                    let transport = TcpTransport::with_listener_with_latent(
                                        host, num_hosts, listener, &ports, cfg, &latent,
                                    )
                                    .expect("failed to build tcp loopback mesh");
                                    run_host(&transport, threads, faults, |ctx| f(ctx))
                                })
                                .expect("failed to spawn host thread"),
                        );
                    }
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("failed to join host thread"))
                        .collect()
                })
            }
            Backend::Sim { seed } => {
                let fabric = Arc::new(SimFabric::new_with_latent(
                    self.num_hosts,
                    self.transport_cfg.clone(),
                    seed,
                    &latent,
                ));
                let results = std::thread::scope(|scope| {
                    let mut handles = Vec::with_capacity(self.num_hosts);
                    for host in 0..self.num_hosts {
                        let fabric = fabric.clone();
                        let faults = faults.clone();
                        let f = &f;
                        let threads = self.threads_per_host;
                        handles.push(
                            std::thread::Builder::new()
                                .name(format!("kimbap-host-{host}"))
                                .spawn_scoped(scope, move || {
                                    let transport = SimTransport::new(fabric.clone(), host);
                                    // The whole host stack — deadlines,
                                    // backoff, stalls, phase timers — runs
                                    // on this host's virtual clock.
                                    clock::with_clock(transport.clock(), || {
                                        fabric.register(host);
                                        let r = run_host(&transport, threads, faults, |ctx| f(ctx));
                                        fabric.finish(host);
                                        r
                                    })
                                })
                                .expect("failed to spawn host thread"),
                        );
                    }
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("failed to join host thread"))
                        .collect()
                });
                if let Some(sink) = &self.trace_sink {
                    *sink.lock() = fabric.take_trace();
                }
                results
            }
        }
    }
}

/// Runs one host closure over an already-connected transport, with the
/// cluster's crash accounting: a panic marks the host failed (so peers'
/// collectives error out) and departed (so recovery alignment reports it
/// instead of hanging); a clean return marks it departed only.
///
/// This is the per-host harness [`Cluster`] uses internally; the `kimbap`
/// binary's multi-process mode calls [`run_transport_host`] to get the
/// identical harness around a [`TcpTransport`] it built itself.
fn run_host<R, F>(
    transport: &dyn Transport,
    threads: usize,
    faults: Arc<FaultState>,
    f: F,
) -> Result<R, HostError>
where
    F: FnOnce(&HostCtx) -> R,
{
    let host = transport.host();
    let num_hosts = transport.num_hosts();
    // Latent hosts (declared joiners) are capacity, not members: they are
    // masked out of the initial membership and only enter via a grow
    // agreement. `initial_members` is the degradation baseline — a cluster
    // launched with latent capacity is not "degraded" merely because the
    // capacity has not joined yet.
    let latent = transport.latent_hosts();
    let mut init_mask = full_mask(num_hosts);
    for &h in &latent {
        if h < 64 {
            init_mask &= !(1u64 << h);
        }
    }
    let ctx = HostCtx {
        host,
        num_hosts,
        initial_members: num_hosts - latent.len(),
        transport,
        faults,
        pool: WorkerPool::new(threads),
        stats: StatCells::default(),
        outbox: (0..num_hosts).map(|_| Mutex::new(Vec::new())).collect(),
        delayed: (0..num_hosts).map(|_| Mutex::new(Vec::new())).collect(),
        send_seq: (0..num_hosts).map(|_| AtomicU64::new(0)).collect(),
        recv_seq: (0..num_hosts).map(|_| AtomicU64::new(0)).collect(),
        round: AtomicU64::new(0),
        pipelined: std::sync::atomic::AtomicBool::new(true),
        deadline: Mutex::new(Deadline::none()),
        job_deadline: Mutex::new(None),
        member_mask: AtomicU64::new(init_mask),
        generation: AtomicU64::new(0),
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&ctx)));
    match result {
        Ok(v) => {
            // A departed host can never rejoin a recovery alignment; make
            // that a reported failure, not a deadlock.
            transport.mark_departed();
            Ok(v)
        }
        Err(payload) => {
            transport.mark_failed();
            transport.mark_departed();
            Err(HostError {
                host,
                message: panic_message(&*payload),
            })
        }
    }
}

/// Runs one host closure over a caller-built transport with the standard
/// per-host harness (crash accounting, fault injection, [`HostCtx`]
/// plumbing). The `kimbap` binary's `_worker` subcommand uses this to run
/// one host of a multi-process TCP mesh.
pub fn run_transport_host<T, R, F>(
    transport: &T,
    threads: usize,
    plan: FaultPlan,
    f: F,
) -> Result<R, HostError>
where
    T: Transport,
    F: FnOnce(&HostCtx) -> R,
{
    PROCESS_PER_HOST.store(true, Ordering::Relaxed);
    run_host(transport, threads, Arc::new(FaultState::new(plan)), f)
}

/// Per-host execution context: identity, collectives, intra-host
/// parallelism, and counters.
///
/// A `HostCtx` is created by [`Cluster::run`] and borrowed by the host
/// closure; it is not `Sync` across hosts (each host has its own), but its
/// methods may be called freely from the host's main thread. Collectives
/// must be called by **all hosts** in the same order — they contain
/// barriers.
pub struct HostCtx<'a> {
    host: usize,
    num_hosts: usize,
    /// Members at launch (`num_hosts` minus declared latent joiners): the
    /// baseline [`HostCtx::degraded`] compares against.
    initial_members: usize,
    transport: &'a dyn Transport,
    faults: Arc<FaultState>,
    pool: WorkerPool,
    stats: StatCells,
    /// `outbox[to]`: the chunk frames of the last exchange sent to `to`
    /// (indexed by chunk, terminator last), retained for retransmission.
    outbox: Vec<Mutex<Vec<Vec<u8>>>>,
    /// `delayed[to]`: frames a `DelayFrame` fault held back; flushed to the
    /// transport at the start of this host's next exchange, where their
    /// stale sequence numbers get them ignored.
    delayed: Vec<Mutex<Vec<Vec<u8>>>>,
    /// Next sequence number per destination.
    send_seq: Vec<AtomicU64>,
    /// `recv_seq[from]`: the sequence number this host will accept next.
    recv_seq: Vec<AtomicU64>,
    /// This host's published BSP round (for fault matching).
    round: AtomicU64,
    /// Whether engines should overlap reduce-sync with compute (see
    /// [`HostCtx::pipelined`]); advisory — the split-phase collectives
    /// themselves always work.
    pipelined: std::sync::atomic::AtomicBool,
    /// Ambient phase deadline applied by the unsuffixed collectives; the
    /// engine re-stamps it each phase from `EngineConfig::phase_timeout`.
    deadline: Mutex<Deadline>,
    /// Job-scoped deadline a serving layer stamps around one scheduled
    /// job ([`HostCtx::set_job_deadline`]). While set, [`HostCtx::deadline`]
    /// returns the *earlier* of the ambient and job deadlines, so a job's
    /// budget bounds every collective the job runs — including engine
    /// phases that re-stamp their own ambient deadline. Recovery alignment
    /// is immune: those gates pass an explicit unbounded deadline.
    job_deadline: Mutex<Option<Deadline>>,
    /// Bitmask of physical host ids currently in the membership (bit `h`
    /// set ⇔ host `h` is a member). Starts full minus declared latent
    /// joiners; [`HostCtx::recover_shrink`] clears departed hosts' bits
    /// and [`HostCtx::recover_grow`] sets admitted ones. Clusters of more
    /// than 64 hosts run with a saturated mask and cannot change
    /// membership.
    member_mask: AtomicU64,
    /// Membership generation: bumped once per agreed shrink or grow.
    generation: AtomicU64,
}

/// Internal atomic counters backing [`HostStats`].
#[derive(Debug, Default)]
struct StatCells {
    messages: AtomicU64,
    bytes: AtomicU64,
    comm_nanos: AtomicU64,
    retransmits: AtomicU64,
    crc_rejects: AtomicU64,
    heartbeat_suspicions: AtomicU64,
    timeout_aborts: AtomicU64,
    request_compute_nanos: AtomicU64,
    request_sync_nanos: AtomicU64,
    reduce_compute_nanos: AtomicU64,
    reduce_sync_nanos: AtomicU64,
    active_nodes: AtomicU64,
    parfor_nodes: AtomicU64,
    sparse_rounds: AtomicU64,
    membership_changes: AtomicU64,
    degraded_rounds: AtomicU64,
    resharded_keys: AtomicU64,
    joins: AtomicU64,
    grow_resharded_keys: AtomicU64,
    chunks_sent: AtomicU64,
    chunk_retransmits: AtomicU64,
    overlap_nanos: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
}

impl<'a> HostCtx<'a> {
    /// This host's **logical** rank in `0..num_hosts()`.
    ///
    /// Equal to the physical host id until a shrink; afterwards ranks are
    /// compacted over the surviving membership (survivor with the lowest
    /// physical id becomes rank 0, and so on), so SPMD code that
    /// partitions work by `host()/num_hosts()` transparently covers the
    /// whole key space on the shrunk cluster.
    pub fn host(&self) -> usize {
        let mask = self.member_mask.load(Ordering::Relaxed);
        if mask == full_mask(self.num_hosts) {
            return self.host;
        }
        (0..self.host).filter(|&h| in_mask(mask, h)).count()
    }

    /// Number of hosts in the current membership (the cluster size until a
    /// shrink, the survivor count after).
    pub fn num_hosts(&self) -> usize {
        let mask = self.member_mask.load(Ordering::Relaxed);
        if mask == full_mask(self.num_hosts) {
            return self.num_hosts;
        }
        (0..self.num_hosts).filter(|&h| in_mask(mask, h)).count()
    }

    /// This host's fixed physical id in the original `0..cluster_size`
    /// launch (the id transports and fault plans address).
    pub fn physical_host(&self) -> usize {
        self.host
    }

    /// The physical host ids of the current membership, ascending; logical
    /// rank `r` is `members()[r]`.
    pub fn members(&self) -> Vec<usize> {
        let mask = self.member_mask.load(Ordering::Relaxed);
        (0..self.num_hosts).filter(|&h| in_mask(mask, h)).collect()
    }

    /// The current membership generation (0 until the first shrink).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Physical ids of hosts that permanently departed but are not yet
    /// excluded by a shrink verdict. Non-empty exactly when the next
    /// recovery must shrink the membership instead of realigning it.
    pub fn pending_departures(&self) -> Vec<usize> {
        self.transport.departed_hosts()
    }

    /// Whether the membership has shrunk below the launch-time member
    /// count (latent capacity that never joined does not count as
    /// degradation, and a join can lift a shrunk cluster back to health).
    fn degraded(&self) -> bool {
        self.num_hosts() < self.initial_members
    }

    /// Number of intra-host compute threads.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The host's worker pool, for custom parallel patterns.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Runs `f(tid, chunk)` over `range` across the host's worker pool.
    pub fn par_for<F>(&self, range: Range<usize>, f: F)
    where
        F: Fn(usize, Range<usize>) + Send + Sync,
    {
        self.pool.par_for(range, f);
    }

    /// Publishes this host's current BSP round, consumed by round-targeted
    /// faults in the [`FaultPlan`]. Code that never calls this runs in
    /// round 0.
    pub fn set_round(&self, round: u64) {
        if self.degraded() {
            self.stats.degraded_rounds.fetch_add(1, Ordering::Relaxed);
        }
        self.round.store(round, Ordering::Relaxed);
    }

    /// The round last published via [`HostCtx::set_round`].
    pub fn current_round(&self) -> u64 {
        self.round.load(Ordering::Relaxed)
    }

    /// Sets the ambient phase deadline applied by every unsuffixed
    /// collective ([`HostCtx::barrier`], [`HostCtx::exchange`], the
    /// `all_*` family) until re-stamped. [`Deadline::none`] — the initial
    /// value — waits forever.
    pub fn set_deadline(&self, deadline: Deadline) {
        *self.deadline.lock() = deadline;
    }

    /// Stamps (or clears) the job-scoped deadline a serving layer applies
    /// around one scheduled job. While set, [`HostCtx::deadline`] clamps to
    /// the earlier of the ambient and job deadlines — so the job's budget
    /// escalates through the same timeout → [`CommError::Timeout`] →
    /// recovery path as a phase deadline, even inside engines that
    /// re-stamp the ambient deadline per phase.
    pub fn set_job_deadline(&self, deadline: Option<Deadline>) {
        *self.job_deadline.lock() = deadline;
    }

    /// The current effective phase deadline: the ambient deadline, clamped
    /// to the job-scoped deadline when one is stamped (whichever expires
    /// first wins).
    pub fn deadline(&self) -> Deadline {
        let ambient = *self.deadline.lock();
        match *self.job_deadline.lock() {
            None => ambient,
            Some(job) => match (ambient.at_nanos(), job.at_nanos()) {
                (None, _) => job,
                (_, None) => ambient,
                (Some(a), Some(j)) => {
                    if j < a {
                        job
                    } else {
                        ambient
                    }
                }
            },
        }
    }

    /// Test hook: suppresses this host's heartbeats for `d`, as a hung
    /// (but not crashed) host would.
    pub fn silence_for(&self, d: Duration) {
        self.transport.silence(d);
    }

    /// Escalates a communication error into a recoverable host failure:
    /// marks this host failed (so siblings' collectives error out rather
    /// than deadlock) and panics with a [`CrashSignal`], which
    /// [`HostCtx::run_recovering`] knows how to catch.
    fn fail_with(&self, signal: CrashSignal) -> ! {
        self.transport.mark_failed();
        // resume_unwind skips the panic hook: injected crashes and comm
        // failures are expected control flow (recovered or reported as
        // CommError), so they must not spray backtraces on stderr.
        std::panic::resume_unwind(Box::new(signal));
    }

    /// Unwraps a collective result for the infallible wrappers.
    fn unwrap_comm<T>(&self, r: Result<T, CommError>) -> T {
        match r {
            Ok(v) => v,
            Err(e) => self.fail_with(CrashSignal::Comm(e)),
        }
    }

    /// Fires pending injected host faults (stall, then crash) for this
    /// host's current round.
    fn check_faults(&self) {
        let round = self.current_round();
        if let Some(stall) = self.faults.stall_due(self.host, round) {
            // Go completely quiet — no heartbeats, no traffic — for the
            // stall duration, like a host wedged in a GC pause or IO hang.
            // The sleep runs on the ambient clock: virtual (and instant in
            // wall time) under the simulation backend.
            self.transport
                .note("stall", format!("round={round} millis={}", stall.as_millis()));
            self.transport.silence(stall);
            clock::sleep(stall);
        }
        if self.faults.kill_due(self.host, round) {
            self.transport.note("kill", format!("round={round}"));
            if PROCESS_PER_HOST.load(Ordering::Relaxed) {
                // A multi-process worker dies for real: peers see EOF on
                // every connection, exactly like a machine loss.
                std::process::exit(KILLED_EXIT_CODE);
            }
            self.fail_with(CrashSignal::Killed {
                host: self.host,
                round,
            });
        }
        if self.faults.crash_due(self.host, round) {
            self.transport.note("crash", format!("round={round}"));
            self.fail_with(CrashSignal::Injected {
                host: self.host,
                round,
            });
        }
    }

    /// Funnels a collective's error into the robustness counters.
    fn note_err<T>(&self, r: Result<T, CommError>) -> Result<T, CommError> {
        if let Err(e) = &r {
            match e {
                CommError::Timeout { .. } => {
                    self.stats.timeout_aborts.fetch_add(1, Ordering::Relaxed);
                }
                CommError::PeerDown { .. } => {
                    self.stats
                        .heartbeat_suspicions
                        .fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
        }
        r
    }

    /// Sends one chunk frame through the fault injector at the transport
    /// boundary.
    fn transmit(&self, to: usize, round: u64, seq: u64, chunk: u32, attempt: u32, mut frame: Vec<u8>) {
        match self
            .faults
            .on_send(self.host, to, round, seq, chunk, attempt, &mut frame)
        {
            SendAction::Drop => {
                self.transport.note(
                    "fault_drop",
                    format!("to={to} seq={seq} chunk={chunk} attempt={attempt}"),
                );
            }
            SendAction::Duplicate => {
                self.transport.note(
                    "fault_dup",
                    format!("to={to} seq={seq} chunk={chunk} attempt={attempt}"),
                );
                self.transport.send(to, frame.clone());
                self.transport.send(to, frame);
            }
            SendAction::Delay => {
                self.transport.note(
                    "fault_delay",
                    format!("to={to} seq={seq} chunk={chunk} attempt={attempt}"),
                );
                self.delayed[to].lock().push(frame);
            }
            SendAction::Corrupt => {
                self.transport.note(
                    "fault_corrupt",
                    format!("to={to} seq={seq} chunk={chunk} attempt={attempt}"),
                );
                self.transport.send(to, frame);
            }
            SendAction::Deliver => self.transport.send(to, frame),
        }
    }

    /// Waits until all hosts reach this barrier. Counted as communication
    /// time.
    ///
    /// # Panics
    ///
    /// Panics with a recoverable [`CrashSignal`] if a peer host has failed
    /// (see [`HostCtx::try_barrier`] for the non-panicking form).
    pub fn barrier(&self) {
        let r = self.try_barrier();
        self.unwrap_comm(r);
    }

    /// Failure-aware barrier under the ambient deadline: `Err` if a peer
    /// host has failed, been flagged by the failure detector, or the
    /// deadline passed.
    pub fn try_barrier(&self) -> Result<(), CommError> {
        self.try_barrier_by(&self.deadline())
    }

    /// [`HostCtx::try_barrier`] with an explicit [`Deadline`].
    pub fn try_barrier_by(&self, deadline: &Deadline) -> Result<(), CommError> {
        self.check_faults();
        let t = clock::now_nanos();
        let r = self.note_err(self.transport.barrier(deadline));
        self.add_comm_nanos(clock::now_nanos().saturating_sub(t));
        r
    }

    /// All-to-all exchange: `outgoing[h]` is delivered to host `h`; returns
    /// the buffers received from every host (indexed by source), empty
    /// buffers included.
    ///
    /// This is the collective underlying the paper's request-sync and
    /// reduce-sync phases: exactly one message between every pair of hosts.
    /// Empty payloads still travel as (header-only) frames so loss is
    /// detectable, but are not counted in the traffic stats.
    ///
    /// # Panics
    ///
    /// Panics if `outgoing.len() != num_hosts()`, and with a recoverable
    /// [`CrashSignal`] on communication failure (see
    /// [`HostCtx::try_exchange`] for the non-panicking form).
    pub fn exchange(&self, outgoing: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        assert_eq!(outgoing.len(), self.num_hosts(), "one buffer per host");
        let r = self.try_exchange(outgoing);
        self.unwrap_comm(r)
    }

    /// Failure-aware all-to-all exchange under the ambient deadline.
    ///
    /// Each payload travels as bounded chunk frames, every chunk carrying
    /// the exchange's sequence number, its chunk index, a length, and a
    /// CRC32. Receivers accept exactly the next sequence number per sender
    /// — duplicates, stale delayed frames, and corrupted frames are all
    /// rejected — reassemble by chunk index, and re-request exactly the
    /// missing chunks from the sender's retained outbox with jittered
    /// exponential backoff. The retry decision is made collectively (all
    /// hosts read the same missing-flags snapshot), so either every host
    /// completes the exchange or every host returns the same
    /// [`CommError::FrameLoss`].
    pub fn try_exchange(&self, outgoing: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, CommError> {
        self.try_exchange_by(outgoing, &self.deadline())
    }

    /// [`HostCtx::try_exchange`] with an explicit [`Deadline`].
    pub fn try_exchange_by(
        &self,
        outgoing: Vec<Vec<u8>>,
        deadline: &Deadline,
    ) -> Result<Vec<Vec<u8>>, CommError> {
        // The blocking exchange is the degenerate split-phase one: post
        // everything, then finish immediately. The wire streams are
        // identical by construction, which is what the pipelined-vs-serial
        // differential tests pin down.
        let k = self.num_hosts();
        if outgoing.len() != k {
            return Err(CommError::Protocol {
                detail: format!(
                    "exchange needs one buffer per member host ({k}), got {}",
                    outgoing.len()
                ),
            });
        }
        let ticket = self.start_ticket(false)?;
        for (li, payload) in outgoing.into_iter().enumerate() {
            ticket.post(li, payload);
        }
        self.try_exchange_finish_by(ticket, deadline)
    }

    /// Opens a split-phase all-to-all exchange: returns a ticket that
    /// accepts per-destination payloads ([`ExchangeTicket::post`]) while
    /// this host keeps computing, and is completed by
    /// [`HostCtx::exchange_finish`]. Posted payloads are serialized into
    /// chunk frames and handed to the transport immediately, so wire I/O
    /// overlaps whatever runs between `post` and `finish`.
    ///
    /// Every host must pair each `exchange_start` with exactly one
    /// `exchange_finish` (the finish contains barriers), and no other
    /// collective may run between them.
    ///
    /// # Panics
    ///
    /// Panics with a recoverable [`CrashSignal`] on communication failure
    /// (see [`HostCtx::try_exchange_start`] for the non-panicking form).
    pub fn exchange_start(&self) -> ExchangeTicket<'_, 'a> {
        let r = self.try_exchange_start();
        self.unwrap_comm(r)
    }

    /// Failure-aware form of [`HostCtx::exchange_start`].
    pub fn try_exchange_start(&self) -> Result<ExchangeTicket<'_, 'a>, CommError> {
        self.start_ticket(true)
    }

    /// Shared ticket construction; `track_overlap` distinguishes genuinely
    /// split-phase callers from the blocking wrapper so
    /// [`HostStats::overlap_nanos`] measures only real overlap.
    fn start_ticket(&self, track_overlap: bool) -> Result<ExchangeTicket<'_, 'a>, CommError> {
        // Buffers, results, and indices are all **logical**: position `r`
        // talks to the host of logical rank `r` in the current membership.
        // The physical arrays (outbox, sequence numbers, transport sends)
        // keep their launch-time indexing underneath.
        let members = self.members();
        let k = members.len();
        self.check_faults();
        let t = clock::now_nanos();
        let me = self.host;

        // Flush frames a DelayFrame fault held back from an earlier
        // exchange. Their sequence numbers are stale by now, so receivers
        // ignore them — exactly the late-delivery semantics being modeled.
        for &to in &members {
            if to == me {
                continue;
            }
            let mut held = self.delayed[to].lock();
            for frame in held.drain(..) {
                self.transport.send(to, frame);
            }
        }
        self.add_comm_nanos(clock::now_nanos().saturating_sub(t));
        Ok(ExchangeTicket {
            ctx: self,
            members,
            round: self.current_round(),
            track_overlap,
            inner: Mutex::new(TicketInner {
                result: vec![Vec::new(); k],
                posted: vec![false; k],
                data_chunks: vec![0; k],
                first_post_nanos: None,
            }),
        })
    }

    /// Completes a split-phase exchange under the ambient deadline: sends
    /// each destination's stream terminator, then blocks until every
    /// host's chunks have arrived (or the collective fails as a unit).
    /// Returns the buffers received from every member host (indexed by
    /// logical rank), empty buffers included; destinations never posted
    /// send an empty payload.
    ///
    /// # Panics
    ///
    /// Panics if the ticket came from a different [`HostCtx`], and with a
    /// recoverable [`CrashSignal`] on communication failure (see
    /// [`HostCtx::try_exchange_finish`] for the non-panicking form).
    pub fn exchange_finish(&self, ticket: ExchangeTicket<'_, '_>) -> Vec<Vec<u8>> {
        let r = self.try_exchange_finish(ticket);
        self.unwrap_comm(r)
    }

    /// Failure-aware form of [`HostCtx::exchange_finish`].
    pub fn try_exchange_finish(
        &self,
        ticket: ExchangeTicket<'_, '_>,
    ) -> Result<Vec<Vec<u8>>, CommError> {
        self.try_exchange_finish_by(ticket, &self.deadline())
    }

    /// [`HostCtx::try_exchange_finish`] with an explicit [`Deadline`].
    pub fn try_exchange_finish_by(
        &self,
        ticket: ExchangeTicket<'_, '_>,
        deadline: &Deadline,
    ) -> Result<Vec<Vec<u8>>, CommError> {
        assert!(
            std::ptr::eq(ticket.ctx as *const HostCtx, self as *const HostCtx),
            "exchange_finish called with a ticket from a different host context"
        );
        let t = clock::now_nanos();
        let me = self.host;
        let round = ticket.round;
        let members = ticket.members;
        let k = members.len();
        let TicketInner {
            mut result,
            posted,
            data_chunks,
            first_post_nanos,
        } = ticket.inner.into_inner();
        if ticket.track_overlap {
            if let Some(t0) = first_post_nanos {
                self.stats
                    .overlap_nanos
                    .fetch_add(t.saturating_sub(t0), Ordering::Relaxed);
            }
        }

        // Terminators: one empty LAST chunk per remote destination, closing
        // the stream (and implicitly sending an empty payload to any
        // destination never posted). This is also where the per-exchange
        // sequence number is consumed.
        for (li, &to) in members.iter().enumerate() {
            if to == me {
                continue;
            }
            let seq = self.send_seq[to].fetch_add(1, Ordering::Relaxed);
            let term = data_chunks[li];
            let frame = frame_chunk(seq, term, true, &[]);
            {
                let mut ob = self.outbox[to].lock();
                if !posted[li] {
                    // Never posted: drop the previous exchange's retained
                    // chunks so retransmit indices match this stream.
                    ob.clear();
                }
                ob.push(frame.clone());
            }
            self.stats.chunks_sent.fetch_add(1, Ordering::Relaxed);
            self.transmit(to, round, seq, term, 0, frame);
        }

        self.note_err(self.transport.barrier(deadline))?;

        // Reassembly state per source: chunks by index, and the terminator
        // index once seen.
        let mut got: Vec<bool> = members.iter().map(|&from| from == me).collect();
        let mut parts: Vec<Vec<Option<Vec<u8>>>> = vec![Vec::new(); k];
        let mut last_idx: Vec<Option<u32>> = vec![None; k];

        let mut attempt: u32 = 0;
        let mut backoff = Backoff::retransmit(me);
        loop {
            // Drain everything that arrived; accept only chunks of the
            // expected sequence number with a valid checksum.
            for (li, &from) in members.iter().enumerate() {
                if from == me {
                    continue;
                }
                let arrived = self.transport.drain(from);
                if got[li] {
                    continue;
                }
                let want = self.recv_seq[from].load(Ordering::Relaxed);
                for frame in &arrived {
                    match parse_chunk(frame) {
                        Ok((h, payload)) if h.seq == want => {
                            let idx = h.chunk as usize;
                            if parts[li].len() <= idx {
                                parts[li].resize_with(idx + 1, || None);
                            }
                            if parts[li][idx].is_none() {
                                parts[li][idx] = Some(payload.to_vec());
                            }
                            if h.last {
                                last_idx[li] = Some(h.chunk);
                            }
                        }
                        Ok(_) => {} // duplicate or stale: ignore
                        Err(_) => {
                            self.stats.crc_rejects.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                // Complete when the terminator index is known and every
                // chunk up to it is present; concatenate in index order.
                if let Some(last) = last_idx[li] {
                    let last = last as usize;
                    if parts[li].len() > last
                        && parts[li][..=last].iter().all(|c| c.is_some())
                    {
                        let total = parts[li][..=last]
                            .iter()
                            .map(|c| c.as_ref().map_or(0, Vec::len))
                            .sum();
                        let mut buf = Vec::with_capacity(total);
                        for c in parts[li][..=last].iter_mut() {
                            buf.append(c.as_mut().expect("chunk checked present"));
                        }
                        result[li] = buf;
                        got[li] = true;
                    }
                }
                if !got[li] {
                    // Ask for exactly what is missing — everything while
                    // the terminator is unknown, else the index gaps.
                    let req = match last_idx[li] {
                        None => RetxRequest::All,
                        Some(last) => RetxRequest::Chunks(
                            (0..=last)
                                .filter(|&i| {
                                    parts[li]
                                        .get(i as usize)
                                        .is_none_or(|c| c.is_none())
                                })
                                .collect(),
                        ),
                    };
                    self.transport.request_retx(from, req);
                }
            }
            let still_missing = !got.iter().all(|&g| g);
            let flags = self.note_err(self.transport.sync_missing(still_missing, deadline))?;

            // All missing flags are in the snapshot; every host computes
            // the same verdict from the same generation. Flags left behind
            // by hosts outside the membership are ignored.
            let missing_hosts: Vec<usize> =
                members.iter().copied().filter(|&h| flags[h]).collect();
            if missing_hosts.is_empty() {
                break;
            }
            if attempt >= MAX_ATTEMPTS {
                // Identical on every host: the collective fails as a unit.
                return Err(CommError::FrameLoss {
                    hosts: missing_hosts,
                    attempts: attempt,
                });
            }
            attempt += 1;
            backoff.sleep();
            for (requester, req) in self.transport.take_retx_requests() {
                let seq = self.send_seq[requester]
                    .load(Ordering::Relaxed)
                    .wrapping_sub(1);
                let frames: Vec<(u32, Vec<u8>)> = {
                    let ob = self.outbox[requester].lock();
                    match &req {
                        RetxRequest::All => ob
                            .iter()
                            .enumerate()
                            .map(|(i, f)| (i as u32, f.clone()))
                            .collect(),
                        RetxRequest::Chunks(idxs) => idxs
                            .iter()
                            .filter_map(|&i| {
                                ob.get(i as usize).map(|f| (i, f.clone()))
                            })
                            .collect(),
                    }
                };
                self.stats.retransmits.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .chunk_retransmits
                    .fetch_add(frames.len() as u64, Ordering::Relaxed);
                for (idx, frame) in frames {
                    self.transmit(requester, round, seq, idx, attempt, frame);
                }
            }
            // Barrier before re-draining: retransmissions are complete
            // everywhere before any host re-checks its inbox.
            self.note_err(self.transport.barrier(deadline))?;
        }

        for &from in &members {
            if from != me {
                self.recv_seq[from].fetch_add(1, Ordering::Relaxed);
            }
        }
        self.add_comm_nanos(clock::now_nanos().saturating_sub(t));
        Ok(result)
    }

    /// Whether engines should pipeline reduce-sync (overlap serialization
    /// and wire I/O with compute) on this host. Defaults to `true`; the
    /// engine clears it for rounds that must replay bit-identically from a
    /// checkpoint (see `--no-pipeline`).
    pub fn pipelined(&self) -> bool {
        self.pipelined.load(Ordering::Relaxed)
    }

    /// Sets the advisory pipelining flag read by [`HostCtx::pipelined`].
    pub fn set_pipelined(&self, on: bool) {
        self.pipelined.store(on, Ordering::Relaxed);
    }

    /// All-reduce over one wire value per host: every host receives
    /// `combine` folded over all hosts' values (in host order).
    ///
    /// # Panics
    ///
    /// Panics with a recoverable [`CrashSignal`] on communication failure
    /// (see [`HostCtx::try_all_reduce`] for the non-panicking form).
    pub fn all_reduce<T, F>(&self, value: T, combine: F) -> T
    where
        T: Wire,
        F: Fn(T, T) -> T,
    {
        let r = self.try_all_reduce(value, combine);
        self.unwrap_comm(r)
    }

    /// Failure-aware all-reduce (under the ambient deadline).
    pub fn try_all_reduce<T, F>(&self, value: T, combine: F) -> Result<T, CommError>
    where
        T: Wire,
        F: Fn(T, T) -> T,
    {
        let me = self.host();
        let buf = encode_slice(&[value]);
        let outgoing = (0..self.num_hosts())
            .map(|h| if h == me { Vec::new() } else { buf.clone() })
            .collect();
        let received = self.try_exchange(outgoing)?;
        let mut acc = value;
        for (h, buf) in received.iter().enumerate() {
            if h == me {
                continue;
            }
            if buf.len() != T::SIZE {
                return Err(CommError::Protocol {
                    detail: format!(
                        "all_reduce expected {} bytes from host {h}, got {}",
                        T::SIZE,
                        buf.len()
                    ),
                });
            }
            let v = T::read(buf);
            // Fold in host order relative to our own position.
            acc = if h < me { combine(v, acc) } else { combine(acc, v) };
        }
        Ok(acc)
    }

    /// All-reduce specialized to `u64`.
    pub fn all_reduce_u64<F: Fn(u64, u64) -> u64>(&self, v: u64, f: F) -> u64 {
        self.all_reduce(v, f)
    }

    /// Logical-OR all-reduce over booleans — the quiescence check of
    /// `IsUpdated()`.
    pub fn all_reduce_or(&self, v: bool) -> bool {
        self.all_reduce(v, |a, b| a || b)
    }

    /// Gathers one wire value from every host; every host receives the full
    /// host-ordered vector.
    ///
    /// # Panics
    ///
    /// Panics with a recoverable [`CrashSignal`] on communication failure
    /// (see [`HostCtx::try_all_gather`] for the non-panicking form).
    pub fn all_gather<T: Wire>(&self, value: T) -> Vec<T> {
        let r = self.try_all_gather(value);
        self.unwrap_comm(r)
    }

    /// Failure-aware all-gather (under the ambient deadline).
    pub fn try_all_gather<T: Wire>(&self, value: T) -> Result<Vec<T>, CommError> {
        let me = self.host();
        let buf = encode_slice(&[value]);
        let outgoing = (0..self.num_hosts())
            .map(|h| if h == me { Vec::new() } else { buf.clone() })
            .collect();
        let received = self.try_exchange(outgoing)?;
        let mut out = Vec::with_capacity(received.len());
        for (h, buf) in received.iter().enumerate() {
            if h == me {
                out.push(value);
            } else {
                if buf.len() != T::SIZE {
                    return Err(CommError::Protocol {
                        detail: format!(
                            "all_gather expected {} bytes from host {h}, got {}",
                            T::SIZE,
                            buf.len()
                        ),
                    });
                }
                out.push(T::read(buf));
            }
        }
        Ok(out)
    }

    /// Realigns all live hosts after a recoverable failure and heals the
    /// transport: pending frames, delayed frames, retransmission flags, and
    /// sequence numbers are reset, and the failed barrier is restored.
    ///
    /// Must be called by **every** live host (it contains barriers).
    /// [`HostCtx::run_recovering`] calls it automatically.
    pub fn recover_align(&self) -> Result<(), CommError> {
        // The ambient deadline that aborted the failed phase is typically
        // expired by now; recovery itself must not race it.
        self.set_deadline(Deadline::none());
        let unbounded = Deadline::none();
        // Phase 1: every live host stops issuing traffic.
        self.transport.gate_align(&unbounded)?;
        // Phase 2: each host clears its own protocol state and tells the
        // transport to drop everything in flight; no host is sending.
        for h in 0..self.num_hosts {
            self.outbox[h].lock().clear();
            self.delayed[h].lock().clear();
            self.send_seq[h].store(0, Ordering::Relaxed);
            self.recv_seq[h].store(0, Ordering::Relaxed);
        }
        self.round.store(0, Ordering::Relaxed);
        self.transport.recover_reset();
        // Phase 3: wait for every host to finish resetting, then heal the
        // failure state so collectives work again.
        self.transport.gate_heal(&unbounded)
    }

    /// Runs `f`, restarting it after recoverable host failures (injected
    /// crashes, detector- or deadline-triggered aborts, and the
    /// communication failures they cause on sibling hosts).
    ///
    /// All hosts must call this with the same deterministic `f`: after a
    /// failure, every live host realigns via [`HostCtx::recover_align`]
    /// and re-executes `f` from the top, so a deterministic `f` reproduces
    /// the exact fault-free result. (The engine layers round-level
    /// checkpointing on top of this so it resumes mid-computation instead
    /// of from scratch.)
    ///
    /// # Panics
    ///
    /// Propagates non-[`CrashSignal`] panics (real bugs) unchanged, and
    /// gives up after [`MAX_RECOVERIES`] restarts.
    pub fn run_recovering<F, R>(&self, mut f: F) -> R
    where
        F: FnMut(&HostCtx) -> R,
    {
        let mut recoveries = 0;
        loop {
            match catch_unwind(AssertUnwindSafe(|| f(self))) {
                Ok(v) => return v,
                Err(payload) => {
                    if recoveries >= MAX_RECOVERIES || !payload.is::<CrashSignal>() {
                        resume_unwind(payload);
                    }
                    if matches!(
                        payload.downcast_ref::<CrashSignal>(),
                        Some(CrashSignal::Killed { .. })
                    ) {
                        // This host was permanently killed: it must die,
                        // not rejoin the recovery gate.
                        resume_unwind(payload);
                    }
                    recoveries += 1;
                    if self.recover_align().is_err() {
                        let departed = self.transport.departed_hosts();
                        if !departed.is_empty() {
                            // A host departed for good: surface the typed
                            // verdict so callers can shrink
                            // ([`HostCtx::run_elastic`]) or abort, instead
                            // of a generic terminal error.
                            self.fail_with(CrashSignal::Comm(CommError::MembershipLost {
                                departed,
                                generation: self.generation(),
                            }));
                        }
                        resume_unwind(payload);
                    }
                }
            }
        }
    }

    /// Agrees a membership shrink with the other survivors and heals the
    /// transport onto the reduced host set: the departed hosts are excluded
    /// from every future collective, the membership generation is bumped,
    /// and logical ranks ([`HostCtx::host`] / [`HostCtx::num_hosts`]) are
    /// compacted over the survivors.
    ///
    /// Must be called by **every** survivor (it contains barriers),
    /// typically after observing [`CommError::MembershipLost`].
    /// [`HostCtx::run_elastic`] calls it automatically.
    pub fn recover_shrink(&self) -> Result<ShrinkOutcome, CommError> {
        if self.num_hosts > 64 {
            return Err(CommError::Protocol {
                detail: "membership shrink supports at most 64 hosts".to_string(),
            });
        }
        self.set_deadline(Deadline::none());
        let unbounded = Deadline::none();
        let old_members = self.members();
        let my_old_rank = self.host();
        // Phase 1: every survivor stops at the shrink gate and agrees the
        // verdict — the set of permanently departed hosts, excluded from
        // the transport's collectives atomically with the agreement.
        let verdict = self.transport.gate_shrink(&unbounded)?;
        if verdict.is_empty() {
            return Err(CommError::Protocol {
                detail: "shrink gate agreed an empty departure set".to_string(),
            });
        }
        let mut mask = self.member_mask.load(Ordering::Relaxed);
        for &h in &verdict {
            mask &= !(1u64 << h);
        }
        self.member_mask.store(mask, Ordering::Relaxed);
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats.membership_changes.fetch_add(1, Ordering::Relaxed);
        // Phase 2: clear this host's protocol state, like recover_align.
        for h in 0..self.num_hosts {
            self.outbox[h].lock().clear();
            self.delayed[h].lock().clear();
            self.send_seq[h].store(0, Ordering::Relaxed);
            self.recv_seq[h].store(0, Ordering::Relaxed);
        }
        self.round.store(0, Ordering::Relaxed);
        self.transport.recover_reset();
        // Phase 3: heal the failure state over the survivors.
        self.transport.shrink_heal(&unbounded)?;
        let departed = verdict
            .iter()
            .map(|&h| {
                old_members
                    .iter()
                    .position(|&m| m == h)
                    .expect("shrink verdict host was not a member")
            })
            .collect();
        Ok(ShrinkOutcome {
            departed,
            my_old_rank,
            old_count: old_members.len(),
            generation,
        })
    }

    /// Whether this host is currently in the membership. `false` for a
    /// declared latent joiner that has not yet been admitted by
    /// [`HostCtx::join_cluster`] (and for a host excluded by a shrink
    /// verdict it somehow survived, which cannot happen under the normal
    /// harness).
    pub fn is_member(&self) -> bool {
        in_mask(self.member_mask.load(Ordering::Relaxed), self.host)
    }

    /// The fault plan's declared join delay for this host, if it launches
    /// latent ([`crate::FaultPlan::join_host`]).
    pub fn join_delay(&self) -> Option<std::time::Duration> {
        self.faults.join_delay(self.host)
    }

    /// Physical ids of latent hosts currently knocking to join. Members
    /// poll this (cheap, lock-only) once per round to decide when to stop
    /// at a grow gate.
    pub fn pending_joins(&self) -> Vec<usize> {
        self.transport.pending_joiners()
    }

    /// Applies an agreed grow verdict to this host's membership view and
    /// heals the transport onto the expanded host set. Shared tail of
    /// [`HostCtx::recover_grow`] and [`HostCtx::join_cluster`].
    fn apply_grow_verdict(
        &self,
        verdict: crate::transport::GrowVerdict,
        my_old_rank: usize,
        old_count: usize,
    ) -> Result<GrowOutcome, CommError> {
        self.member_mask.store(verdict.members, Ordering::Relaxed);
        // Every participant (member or joiner) lands on the same
        // generation: one past the highest generation any participant
        // carried into the gate.
        let generation = verdict.generation + 1;
        self.generation.store(generation, Ordering::Relaxed);
        self.stats.membership_changes.fetch_add(1, Ordering::Relaxed);
        self.stats
            .joins
            .fetch_add(verdict.joined.len() as u64, Ordering::Relaxed);
        // Clear protocol state exactly like a shrink: sequence numbers and
        // retained outboxes restart from zero on the new membership.
        for h in 0..self.num_hosts {
            self.outbox[h].lock().clear();
            self.delayed[h].lock().clear();
            self.send_seq[h].store(0, Ordering::Relaxed);
            self.recv_seq[h].store(0, Ordering::Relaxed);
        }
        self.round.store(0, Ordering::Relaxed);
        self.transport.recover_reset();
        self.transport.grow_heal(&Deadline::none())?;
        Ok(GrowOutcome {
            joined: verdict.joined,
            my_old_rank,
            old_count,
            generation,
        })
    }

    /// Agrees a membership grow with the other members, admitting every
    /// latent host currently knocking ([`HostCtx::pending_joins`]), and
    /// heals the transport onto the expanded host set. The mirror of
    /// [`HostCtx::recover_shrink`]: the admitted hosts enter every future
    /// collective, the membership generation is bumped, and logical ranks
    /// are re-compacted over the expanded membership.
    ///
    /// Must be called by **every** member at the same point in the round
    /// structure (it contains barriers); the joiners concurrently sit in
    /// [`HostCtx::join_cluster`]. The gate is bounded — a joiner that
    /// crashes mid-knock cannot wedge the members (the verdict may then
    /// admit nobody, which is reported as a normal outcome with an empty
    /// `joined`).
    pub fn recover_grow(&self) -> Result<GrowOutcome, CommError> {
        if self.num_hosts > 64 {
            return Err(CommError::Protocol {
                detail: "membership grow supports at most 64 hosts".to_string(),
            });
        }
        self.set_deadline(Deadline::none());
        let my_old_rank = self.host();
        let old_count = self.num_hosts();
        let deadline = Deadline::after("grow", std::time::Duration::from_secs(30));
        let verdict = self.transport.gate_grow(&deadline, self.generation())?;
        self.apply_grow_verdict(verdict, my_old_rank, old_count)
    }

    /// Joins a running cluster from a latent host: knocks over the
    /// transport, waits for the members to cut a grow verdict at their next
    /// round boundary, and heals onto the agreed membership. Retries with
    /// decorrelated-jitter backoff until `deadline` expires, then gives up
    /// with a typed [`CommError::Timeout`] — a joiner never hangs silently
    /// and its give-up never aborts the members' run (a retracted knock
    /// simply drops out of the next verdict).
    pub fn join_cluster(&self, deadline: &Deadline) -> Result<GrowOutcome, CommError> {
        if self.num_hosts > 64 {
            return Err(CommError::Protocol {
                detail: "membership grow supports at most 64 hosts".to_string(),
            });
        }
        self.set_deadline(Deadline::none());
        let mut backoff = Backoff::reconnect(self.host);
        loop {
            // Knock with a bounded per-attempt window so a stalled cluster
            // (e.g. mid-recovery) is retried rather than waited on forever.
            let window = std::time::Duration::from_secs(2);
            let attempt = match deadline.remaining() {
                Some(rem) if rem.is_zero() => {
                    return Err(CommError::Timeout {
                        phase: "join",
                        hosts: vec![],
                    })
                }
                Some(rem) => Deadline::after("join", window.min(rem)),
                None => Deadline::after("join", window),
            };
            match self.transport.gate_grow(&attempt, 0) {
                Ok(verdict) => {
                    // The joiner owned nothing before: its "old rank" is
                    // one past the old membership, which had
                    // `members - joined` hosts.
                    let old_count = (0..self.num_hosts)
                        .filter(|&h| in_mask(verdict.members, h))
                        .count()
                        - verdict.joined.len();
                    return self.apply_grow_verdict(verdict, old_count, old_count);
                }
                Err(err) => {
                    if deadline.expired() {
                        return Err(CommError::Timeout {
                            phase: "join",
                            hosts: match err {
                                CommError::Timeout { hosts, .. } => hosts,
                                _ => vec![],
                            },
                        });
                    }
                    crate::clock::sleep(backoff.next_delay());
                }
            }
        }
    }

    /// Runs `f` like [`HostCtx::run_recovering`], additionally surviving
    /// **permanent** host loss: when recovery within the current membership
    /// is impossible ([`CommError::MembershipLost`]), the survivors agree a
    /// shrink via [`HostCtx::recover_shrink`] and re-execute `f` on the
    /// reduced membership.
    ///
    /// `f` must partition its work by [`HostCtx::host`] /
    /// [`HostCtx::num_hosts`] *inside* the closure (they change across a
    /// shrink) and be deterministic given any membership, so the survivors
    /// reproduce the fault-free result. Killed hosts propagate their own
    /// [`CrashSignal::Killed`] unchanged.
    pub fn run_elastic<F, R>(&self, mut f: F) -> R
    where
        F: FnMut(&HostCtx) -> R,
    {
        let mut shrinks = 0;
        loop {
            match catch_unwind(AssertUnwindSafe(|| self.run_recovering(&mut f))) {
                Ok(v) => return v,
                Err(payload) => {
                    let lost = matches!(
                        payload.downcast_ref::<CrashSignal>(),
                        Some(CrashSignal::Comm(CommError::MembershipLost { .. }))
                    );
                    if shrinks >= MAX_RECOVERIES || !lost {
                        resume_unwind(payload);
                    }
                    shrinks += 1;
                    if self.recover_shrink().is_err() {
                        resume_unwind(payload);
                    }
                }
            }
        }
    }

    /// Snapshot of this host's communication counters.
    pub fn stats(&self) -> HostStats {
        HostStats {
            messages: self.stats.messages.load(Ordering::Relaxed),
            bytes: self.stats.bytes.load(Ordering::Relaxed),
            comm_nanos: self.stats.comm_nanos.load(Ordering::Relaxed),
            retransmits: self.stats.retransmits.load(Ordering::Relaxed),
            crc_rejects: self.stats.crc_rejects.load(Ordering::Relaxed),
            heartbeat_suspicions: self.stats.heartbeat_suspicions.load(Ordering::Relaxed),
            timeout_aborts: self.stats.timeout_aborts.load(Ordering::Relaxed),
            request_compute_nanos: self.stats.request_compute_nanos.load(Ordering::Relaxed),
            request_sync_nanos: self.stats.request_sync_nanos.load(Ordering::Relaxed),
            reduce_compute_nanos: self.stats.reduce_compute_nanos.load(Ordering::Relaxed),
            reduce_sync_nanos: self.stats.reduce_sync_nanos.load(Ordering::Relaxed),
            active_nodes: self.stats.active_nodes.load(Ordering::Relaxed),
            parfor_nodes: self.stats.parfor_nodes.load(Ordering::Relaxed),
            sparse_rounds: self.stats.sparse_rounds.load(Ordering::Relaxed),
            membership_changes: self.stats.membership_changes.load(Ordering::Relaxed),
            degraded_rounds: self.stats.degraded_rounds.load(Ordering::Relaxed),
            resharded_keys: self.stats.resharded_keys.load(Ordering::Relaxed),
            joins: self.stats.joins.load(Ordering::Relaxed),
            grow_resharded_keys: self.stats.grow_resharded_keys.load(Ordering::Relaxed),
            chunks_sent: self.stats.chunks_sent.load(Ordering::Relaxed),
            chunk_retransmits: self.stats.chunk_retransmits.load(Ordering::Relaxed),
            overlap_nanos: self.stats.overlap_nanos.load(Ordering::Relaxed),
            cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.stats.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.stats.cache_evictions.load(Ordering::Relaxed),
        }
    }

    /// Resets the communication counters (benchmarks call this after
    /// warm-up/partitioning, which the paper excludes from timing).
    pub fn reset_stats(&self) {
        self.stats.messages.store(0, Ordering::Relaxed);
        self.stats.bytes.store(0, Ordering::Relaxed);
        self.stats.comm_nanos.store(0, Ordering::Relaxed);
        self.stats.retransmits.store(0, Ordering::Relaxed);
        self.stats.crc_rejects.store(0, Ordering::Relaxed);
        self.stats.heartbeat_suspicions.store(0, Ordering::Relaxed);
        self.stats.timeout_aborts.store(0, Ordering::Relaxed);
        self.stats.request_compute_nanos.store(0, Ordering::Relaxed);
        self.stats.request_sync_nanos.store(0, Ordering::Relaxed);
        self.stats.reduce_compute_nanos.store(0, Ordering::Relaxed);
        self.stats.reduce_sync_nanos.store(0, Ordering::Relaxed);
        self.stats.active_nodes.store(0, Ordering::Relaxed);
        self.stats.parfor_nodes.store(0, Ordering::Relaxed);
        self.stats.sparse_rounds.store(0, Ordering::Relaxed);
        self.stats.membership_changes.store(0, Ordering::Relaxed);
        self.stats.degraded_rounds.store(0, Ordering::Relaxed);
        self.stats.resharded_keys.store(0, Ordering::Relaxed);
        self.stats.joins.store(0, Ordering::Relaxed);
        self.stats.grow_resharded_keys.store(0, Ordering::Relaxed);
        self.stats.chunks_sent.store(0, Ordering::Relaxed);
        self.stats.chunk_retransmits.store(0, Ordering::Relaxed);
        self.stats.overlap_nanos.store(0, Ordering::Relaxed);
        self.stats.cache_hits.store(0, Ordering::Relaxed);
        self.stats.cache_misses.store(0, Ordering::Relaxed);
        self.stats.cache_evictions.store(0, Ordering::Relaxed);
    }

    /// Attributes `nanos` of wall-clock time to one NPM round phase. Called
    /// by engines that drive the BSP loop; the cluster itself never guesses
    /// phase boundaries.
    pub fn add_phase_nanos(&self, phase: SyncPhase, nanos: u64) {
        let cell = match phase {
            SyncPhase::RequestCompute => &self.stats.request_compute_nanos,
            SyncPhase::RequestSync => &self.stats.request_sync_nanos,
            SyncPhase::ReduceCompute => &self.stats.reduce_compute_nanos,
            SyncPhase::ReduceSync => &self.stats.reduce_sync_nanos,
        };
        cell.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Records one reduce-compute `ParFor`'s activity: `active` nodes ran
    /// out of a dense extent of `total`, via a sparse frontier or not.
    /// Engines report this per round alongside the phase times.
    pub fn add_parfor_activity(&self, active: u64, total: u64, sparse: bool) {
        self.stats.active_nodes.fetch_add(active, Ordering::Relaxed);
        self.stats.parfor_nodes.fetch_add(total, Ordering::Relaxed);
        if sparse {
            self.stats.sparse_rounds.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds externally measured communication time (used by subsystems that
    /// implement their own wire protocols, e.g. the memcached baseline).
    pub fn add_comm_nanos(&self, nanos: u64) {
        self.stats.comm_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Adds externally counted message/byte traffic (for subsystems modeling
    /// per-operation messages outside [`HostCtx::exchange`]).
    pub fn add_traffic(&self, messages: u64, bytes: u64) {
        self.stats.messages.fetch_add(messages, Ordering::Relaxed);
        self.stats.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records master keys sent or received while re-sharding onto a grown
    /// membership (engines report these after a join).
    pub fn add_grow_resharded_keys(&self, keys: u64) {
        self.stats.grow_resharded_keys.fetch_add(keys, Ordering::Relaxed);
    }

    /// Records master keys adopted or redistributed while re-sharding a
    /// departed host's state (engines report these after a shrink).
    pub fn add_resharded_keys(&self, keys: u64) {
        self.stats.resharded_keys.fetch_add(keys, Ordering::Relaxed);
    }

    /// Records serve-layer result-cache events (a scheduler reports one
    /// hit or miss per job lookup, and any evictions its inserts caused).
    pub fn add_cache_events(&self, hits: u64, misses: u64, evictions: u64) {
        self.stats.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.stats.cache_misses.fetch_add(misses, Ordering::Relaxed);
        self.stats.cache_evictions.fetch_add(evictions, Ordering::Relaxed);
    }
}

/// A split-phase all-to-all exchange in flight.
///
/// Created by [`HostCtx::exchange_start`], fed by
/// [`ExchangeTicket::post`] — callable from worker-pool threads, so
/// per-destination serialization itself runs in parallel — and completed
/// by [`HostCtx::exchange_finish`]. Between `post` and `finish` the posted
/// chunks are on the wire while the host computes; that window is
/// [`HostStats::overlap_nanos`].
pub struct ExchangeTicket<'c, 'h> {
    ctx: &'c HostCtx<'h>,
    /// Physical ids of the membership this exchange runs over (snapshot
    /// from start, so a logical rank means the same host in post/finish).
    members: Vec<usize>,
    /// The BSP round published when the exchange started (for fault
    /// matching; the whole stream belongs to one round).
    round: u64,
    /// False for the blocking [`HostCtx::exchange`] wrapper, whose
    /// post-to-finish window is not real overlap.
    track_overlap: bool,
    inner: Mutex<TicketInner>,
}

/// Mutable ticket state, behind one mutex so `post` is callable
/// concurrently from pool workers.
struct TicketInner {
    /// Self-delivered payloads by logical rank (remote slots are filled by
    /// finish).
    result: Vec<Vec<u8>>,
    /// Which logical ranks have been posted (each at most once).
    posted: Vec<bool>,
    /// Data chunks posted per logical rank — the terminator's index.
    data_chunks: Vec<u32>,
    /// When the first remote chunk hit the wire, for overlap accounting.
    first_post_nanos: Option<u64>,
}

impl ExchangeTicket<'_, '_> {
    /// Number of member hosts this exchange spans (one post slot each).
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// Posts the payload destined for logical rank `to`: serializes it
    /// into bounded chunk frames and hands them to the transport
    /// immediately, so the bytes travel while the caller keeps computing.
    /// Destinations not posted before finish send an empty payload.
    /// Callable from worker-pool threads.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range or was already posted.
    pub fn post(&self, to: usize, payload: Vec<u8>) {
        let t = clock::now_nanos();
        let ctx = self.ctx;
        assert!(
            to < self.members.len(),
            "post: rank {to} out of range for {} members",
            self.members.len()
        );
        let dest = self.members[to];
        {
            let mut inner = self.inner.lock();
            assert!(!inner.posted[to], "post: rank {to} posted twice");
            inner.posted[to] = true;
            if dest == ctx.host {
                // Self-delivery is a local memcpy: no frames, no stats.
                inner.result[to] = payload;
                return;
            }
        }
        // Traffic stats count the logical payload once, not its chunks, so
        // the fault-free volume stays comparable across chunk sizes.
        if !payload.is_empty() {
            ctx.stats.messages.fetch_add(1, Ordering::Relaxed);
            ctx.stats
                .bytes
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
        }
        let seq = ctx.send_seq[dest].load(Ordering::Relaxed);
        let n_chunks = payload.len().div_ceil(CHUNK_PAYLOAD) as u32;
        let mut frames = Vec::with_capacity(n_chunks as usize);
        for idx in 0..n_chunks {
            let lo = idx as usize * CHUNK_PAYLOAD;
            let hi = (lo + CHUNK_PAYLOAD).min(payload.len());
            frames.push(frame_chunk(seq, idx, false, &payload[lo..hi]));
        }
        {
            // Retain for retransmission; the terminator is appended by
            // finish.
            let mut ob = ctx.outbox[dest].lock();
            ob.clear();
            ob.extend(frames.iter().cloned());
        }
        ctx.stats
            .chunks_sent
            .fetch_add(n_chunks as u64, Ordering::Relaxed);
        for (idx, frame) in frames.into_iter().enumerate() {
            ctx.transmit(dest, self.round, seq, idx as u32, 0, frame);
        }
        {
            let mut inner = self.inner.lock();
            inner.data_chunks[to] = n_chunks;
            if n_chunks > 0 && inner.first_post_nanos.is_none() {
                inner.first_post_nanos = Some(t);
            }
        }
        ctx.add_comm_nanos(clock::now_nanos().saturating_sub(t));
    }
}

impl std::fmt::Debug for ExchangeTicket<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExchangeTicket")
            .field("members", &self.members)
            .field("round", &self.round)
            .finish()
    }
}

impl std::fmt::Debug for HostCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostCtx")
            .field("host", &self.host)
            .field("num_hosts", &self.num_hosts)
            .field("threads", &self.pool.threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultKind};
    use crate::transport::sim::TraceEvent;
    use crate::wire::decode_slice;

    #[test]
    fn run_returns_results_in_host_order() {
        let c = Cluster::new(5);
        let ids = c.run(|ctx| ctx.host());
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn exchange_delivers_point_to_point() {
        let c = Cluster::new(4);
        let ok = c.run(|ctx| {
            // Host h sends "h*10 + to" to every host `to`.
            let outgoing = (0..ctx.num_hosts())
                .map(|to| encode_slice(&[(ctx.host() * 10 + to) as u64]))
                .collect();
            let received = ctx.exchange(outgoing);
            (0..ctx.num_hosts()).all(|from| {
                decode_slice::<u64>(&received[from]) == vec![(from * 10 + ctx.host()) as u64]
            })
        });
        assert!(ok.iter().all(|&b| b));
    }

    #[test]
    fn exchange_repeated_rounds_do_not_leak() {
        let c = Cluster::new(3);
        let ok = c.run(|ctx| {
            for round in 0..10u64 {
                let outgoing = (0..ctx.num_hosts())
                    .map(|_| encode_slice(&[round]))
                    .collect();
                let received = ctx.exchange(outgoing);
                for buf in &received {
                    if decode_slice::<u64>(buf) != vec![round] {
                        return false;
                    }
                }
            }
            true
        });
        assert!(ok.iter().all(|&b| b));
    }

    #[test]
    fn all_reduce_sum_and_or() {
        let c = Cluster::new(4);
        let res = c.run(|ctx| {
            let sum = ctx.all_reduce_u64(ctx.host() as u64 + 1, |a, b| a + b);
            let any = ctx.all_reduce_or(ctx.host() == 2);
            let none = ctx.all_reduce_or(false);
            (sum, any, none)
        });
        assert!(res.iter().all(|&(s, a, n)| s == 10 && a && !n));
    }

    #[test]
    fn all_gather_orders_by_host() {
        let c = Cluster::new(3);
        let res = c.run(|ctx| ctx.all_gather((ctx.host() as u32, 100 - ctx.host() as u64)));
        for r in res {
            assert_eq!(r, vec![(0, 100), (1, 99), (2, 98)]);
        }
    }

    #[test]
    fn stats_count_only_remote_traffic() {
        let c = Cluster::new(2);
        let stats = c.run(|ctx| {
            let outgoing = (0..2).map(|_| vec![0u8; 16]).collect();
            ctx.exchange(outgoing);
            ctx.stats()
        });
        for s in stats {
            assert_eq!(s.messages, 1); // self-send not counted
            assert_eq!(s.bytes, 16);
            assert_eq!(s.retransmits, 0);
            assert!(s.comm_nanos > 0);
        }
    }

    #[test]
    fn empty_payloads_not_counted() {
        let c = Cluster::new(3);
        let stats = c.run(|ctx| {
            ctx.exchange((0..3).map(|_| Vec::new()).collect());
            ctx.stats()
        });
        for s in stats {
            assert_eq!(s.messages, 0);
            assert_eq!(s.bytes, 0);
        }
    }

    #[test]
    fn single_host_cluster_collectives() {
        let c = Cluster::new(1);
        let res = c.run(|ctx| {
            let v = ctx.all_reduce_u64(7, |a, b| a + b);
            let g = ctx.all_gather(9u32);
            (v, g)
        });
        assert_eq!(res[0], (7, vec![9]));
    }

    #[test]
    fn hosts_run_with_pools() {
        let c = Cluster::with_threads(2, 3);
        let sums = c.run(|ctx| {
            use std::sync::atomic::{AtomicU64, Ordering};
            let acc = AtomicU64::new(0);
            ctx.par_for(0..1000, |_tid, r| {
                acc.fetch_add(r.len() as u64, Ordering::Relaxed);
            });
            acc.load(Ordering::Relaxed)
        });
        assert_eq!(sums, vec![1000, 1000]);
    }

    // ----- split-phase exchange -------------------------------------------

    /// One split-phase exchange per host with per-destination payloads of
    /// `sizes` bytes, finished after "compute"; returns what each host
    /// received, flattened to (host, from, len, first_byte).
    fn split_phase_roundtrip(c: &Cluster, sizes: &[usize]) -> Vec<Vec<Vec<u8>>> {
        let sizes = sizes.to_vec();
        c.run(move |ctx| {
            let ticket = ctx.exchange_start();
            for to in 0..ctx.num_hosts() {
                let len = sizes[to % sizes.len()];
                ticket.post(to, vec![(ctx.host() * 16 + to) as u8; len]);
            }
            // Simulated overlapped compute between post and finish.
            std::hint::black_box((0..1000u64).sum::<u64>());
            ctx.exchange_finish(ticket)
        })
    }

    #[test]
    fn split_phase_matches_blocking_exchange() {
        // Payloads straddling every chunk boundary: empty, tiny, one byte
        // short of a chunk, exactly one chunk, one byte over.
        let sizes = [
            0,
            1,
            crate::wire::CHUNK_PAYLOAD - 1,
            crate::wire::CHUNK_PAYLOAD,
            crate::wire::CHUNK_PAYLOAD + 1,
            3 * crate::wire::CHUNK_PAYLOAD + 17,
        ];
        let blocking = Cluster::new(3).run(|ctx| {
            let outgoing = (0..ctx.num_hosts())
                .map(|to| vec![(ctx.host() * 16 + to) as u8; sizes[to % sizes.len()]])
                .collect();
            ctx.exchange(outgoing)
        });
        for c in [Cluster::new(3), Cluster::new(3).tcp(), Cluster::new(3).sim(3)] {
            let split = split_phase_roundtrip(&c, &sizes);
            assert_eq!(split, blocking, "split-phase diverged on {:?}", c.backend());
        }
    }

    #[test]
    fn split_phase_overlap_is_counted_only_for_split_calls() {
        let stats = Cluster::new(2).run(|ctx| {
            // Blocking exchange: no overlap window.
            ctx.exchange((0..2).map(|_| vec![1u8; 64]).collect());
            let before = ctx.stats().overlap_nanos;
            let ticket = ctx.exchange_start();
            for to in 0..2 {
                ticket.post(to, vec![2u8; 64]);
            }
            ctx.exchange_finish(ticket);
            (before, ctx.stats())
        });
        for (before, s) in stats {
            assert_eq!(before, 0, "blocking exchange must not count overlap");
            assert!(s.overlap_nanos > 0, "split-phase exchange must count overlap");
            // 2 exchanges x 1 remote dest x (1 data chunk + terminator).
            assert_eq!(s.chunks_sent, 4);
            assert_eq!(s.chunk_retransmits, 0);
        }
    }

    #[test]
    fn multi_chunk_payloads_survive_chunk_targeted_drops() {
        // Drop the k-th chunk of a 3-chunk payload (plus its terminator on
        // another link) and make sure reassembly re-requests exactly them.
        let len = 2 * crate::wire::CHUNK_PAYLOAD + 100; // chunks 0,1,2 + term 3
        let plan = FaultPlan::new().drop_chunk(0, 1, 0, 1).drop_chunk(1, 2, 0, 3);
        let res = Cluster::new(3).run_with_faults(plan, move |ctx| {
            let outgoing = (0..3)
                .map(|to| vec![(ctx.host() * 16 + to) as u8; len])
                .collect();
            let received = ctx.exchange(outgoing);
            let ok = (0..3).all(|from| {
                received[from] == vec![(from * 16 + ctx.host()) as u8; len]
            });
            (ok, ctx.stats())
        });
        assert!(res.iter().all(|r| r.0));
        let retx: u64 = res.iter().map(|r| r.1.chunk_retransmits).sum();
        assert!(retx >= 2, "both dropped chunks should be re-sent, got {retx}");
        // The re-requests are chunk-precise: far fewer frames re-sent than
        // the 4-frame streams they repair.
        assert!(retx <= 6, "retransmission should not resend whole streams");
    }

    // ----- fault tolerance ------------------------------------------------

    /// The exchange every fault test runs: host h sends h*10+to to host to.
    fn tagged_exchange(ctx: &HostCtx) -> bool {
        let outgoing = (0..ctx.num_hosts())
            .map(|to| encode_slice(&[(ctx.host() * 10 + to) as u64]))
            .collect();
        let received = ctx.exchange(outgoing);
        (0..ctx.num_hosts())
            .all(|from| decode_slice::<u64>(&received[from]) == vec![(from * 10 + ctx.host()) as u64])
    }

    #[test]
    fn panicking_host_does_not_deadlock_siblings() {
        // Regression test for the barrier-poisoning hazard: with a plain
        // std barrier, a panicking host left siblings blocked forever.
        let c = Cluster::new(3);
        let res = c.try_run(|ctx| {
            if ctx.host() == 1 {
                panic!("boom-host-1");
            }
            ctx.try_barrier()
        });
        for survivor in [0, 2] {
            match &res[survivor] {
                Ok(Err(CommError::HostFailure { hosts })) => assert!(hosts.contains(&1)),
                other => panic!("survivor {survivor} got {other:?}"),
            }
        }
        let err = res[1].as_ref().unwrap_err();
        assert_eq!(err.host, 1);
        assert!(err.message.contains("boom-host-1"));
    }

    #[test]
    #[should_panic(expected = "host thread panicked")]
    fn run_panics_on_host_failure() {
        Cluster::new(2).run(|ctx| {
            if ctx.host() == 0 {
                panic!("kaboom");
            }
            let _ = ctx.try_barrier();
        });
    }

    #[test]
    fn dropped_frame_is_retransmitted() {
        let plan = FaultPlan::new().drop_frame(0, 1, 0);
        let res = Cluster::new(3).run_with_faults(plan, |ctx| {
            (tagged_exchange(ctx), ctx.stats().retransmits)
        });
        assert!(res.iter().all(|r| r.0));
        assert!(res[0].1 >= 1, "host 0 should have retransmitted to host 1");
    }

    #[test]
    fn duplicate_delay_and_corrupt_are_survived() {
        let plan = FaultPlan::new()
            .duplicate_frame(2, 0, 0)
            .delay_frame(1, 2, 0)
            .corrupt_frame(0, 2, 0, 77);
        let res = Cluster::new(3).run_with_faults(plan, |ctx| {
            // Two exchanges: the delayed frame from the first arrives
            // stale during the second and must be ignored.
            tagged_exchange(ctx) && tagged_exchange(ctx)
        });
        assert!(res.iter().all(|&ok| ok));
    }

    #[test]
    fn random_fault_soup_is_survived() {
        let plan = FaultPlan::new()
            .with_seed(7)
            .drop_rate(0.05)
            .duplicate_rate(0.05)
            .corrupt_rate(0.05);
        let res = Cluster::new(4).run_with_faults(plan, |ctx| {
            (0..20).all(|_| tagged_exchange(ctx))
        });
        assert!(res.iter().all(|&ok| ok));
    }

    #[test]
    fn persistent_loss_fails_identically_on_all_hosts() {
        // A link that drops every frame (and every retransmit) exhausts the
        // retry budget; the collective must fail with the same error
        // everywhere instead of leaving hosts disagreeing.
        let plan = FaultPlan::new().fault(Fault {
            kind: FaultKind::DropFrame,
            from: Some(0),
            to: Some(1),
            round: None,
            chunk: None,
            times: u32::MAX,
        });
        let res = Cluster::new(2).try_run_with_faults(plan, |ctx| {
            let outgoing = (0..2).map(|_| vec![9u8; 8]).collect();
            ctx.try_exchange(outgoing)
        });
        let expected = CommError::FrameLoss {
            hosts: vec![1],
            attempts: MAX_ATTEMPTS,
        };
        for r in res {
            assert_eq!(r.unwrap().unwrap_err(), expected);
        }
    }

    #[test]
    fn injected_crash_recovers_bit_identically() {
        let work = |ctx: &HostCtx| {
            let mut acc = 0u64;
            for round in 1..=3u64 {
                ctx.set_round(round);
                acc = acc * 31 + ctx.all_reduce_u64(ctx.host() as u64 + round, |a, b| a + b);
            }
            acc
        };
        let baseline = Cluster::new(3).run(work);
        let plan = FaultPlan::new().crash_host(1, 2);
        let recovered = Cluster::new(3)
            .run_with_faults(plan, |ctx| ctx.run_recovering(work));
        assert_eq!(recovered, baseline);
    }

    #[test]
    #[should_panic(expected = "host thread panicked")]
    fn unrecovered_crash_fails_the_run() {
        let plan = FaultPlan::new().crash_host(0, 0);
        // No run_recovering: the injected crash surfaces like any panic.
        Cluster::new(2).run_with_faults(plan, |ctx| ctx.all_reduce_u64(1, |a, b| a + b));
    }

    #[test]
    fn set_round_is_per_host() {
        let c = Cluster::new(2);
        let rounds = c.run(|ctx| {
            assert_eq!(ctx.current_round(), 0);
            ctx.set_round(ctx.host() as u64 + 5);
            ctx.current_round()
        });
        assert_eq!(rounds, vec![5, 6]);
    }

    // ----- transport backends ---------------------------------------------

    #[test]
    fn tcp_loopback_runs_the_same_collectives() {
        let c = Cluster::new(3).tcp();
        let res = c.run(|ctx| {
            let sum = ctx.all_reduce_u64(ctx.host() as u64 + 1, |a, b| a + b);
            let gathered = ctx.all_gather(ctx.host() as u32);
            ctx.barrier();
            (sum, gathered, tagged_exchange(ctx))
        });
        for (sum, gathered, ok) in res {
            assert_eq!(sum, 6);
            assert_eq!(gathered, vec![0, 1, 2]);
            assert!(ok);
        }
    }

    #[test]
    fn tcp_loopback_survives_targeted_faults() {
        let plan = FaultPlan::new()
            .drop_frame(0, 1, 0)
            .duplicate_frame(2, 0, 0)
            .corrupt_frame(1, 2, 0, 33);
        let res = Cluster::new(3).tcp().run_with_faults(plan, |ctx| {
            (tagged_exchange(ctx), ctx.stats().retransmits)
        });
        assert!(res.iter().all(|r| r.0));
        assert!(res.iter().map(|r| r.1).sum::<u64>() >= 1);
    }

    #[test]
    fn tcp_loopback_recovers_injected_crash() {
        let work = |ctx: &HostCtx| {
            let mut acc = 0u64;
            for round in 1..=3u64 {
                ctx.set_round(round);
                acc = acc * 31 + ctx.all_reduce_u64(ctx.host() as u64 + round, |a, b| a + b);
            }
            acc
        };
        let baseline = Cluster::new(3).run(work);
        let plan = FaultPlan::new().crash_host(1, 2);
        let recovered = Cluster::new(3)
            .tcp()
            .run_with_faults(plan, |ctx| ctx.run_recovering(work));
        assert_eq!(recovered, baseline);
    }

    #[test]
    fn barrier_timeout_reports_phase_and_laggards() {
        let c = Cluster::new(2);
        let res = c.try_run(|ctx| {
            if ctx.host() == 0 {
                let d = Deadline::after("probe", Duration::from_millis(50));
                let r = ctx.try_barrier_by(&d);
                // Complete the generation so host 1 is not stranded.
                let _ = ctx.try_barrier();
                (r, ctx.stats().timeout_aborts)
            } else {
                std::thread::sleep(Duration::from_millis(250));
                (ctx.try_barrier(), 0)
            }
        });
        let (r0, aborts) = res[0].as_ref().unwrap();
        match r0 {
            Err(CommError::Timeout { phase, hosts }) => {
                assert_eq!(*phase, "probe");
                assert_eq!(hosts, &vec![1]);
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(*aborts, 1);
        assert!(res[1].as_ref().unwrap().0.is_ok());
    }

    #[test]
    fn ambient_deadline_applies_to_unsuffixed_collectives() {
        let c = Cluster::new(2);
        let res = c.try_run(|ctx| {
            if ctx.host() == 0 {
                ctx.set_deadline(Deadline::after("ambient", Duration::from_millis(50)));
                let r = ctx.try_barrier();
                ctx.set_deadline(Deadline::none());
                let _ = ctx.try_barrier();
                r
            } else {
                std::thread::sleep(Duration::from_millis(250));
                ctx.try_barrier()
            }
        });
        match res[0].as_ref().unwrap() {
            Err(CommError::Timeout { phase, .. }) => assert_eq!(*phase, "ambient"),
            other => panic!("expected ambient timeout, got {other:?}"),
        }
    }

    #[test]
    fn stalled_host_is_flagged_by_heartbeat_and_recovery_completes() {
        use crate::transport::{HeartbeatConfig, TransportConfig};
        let work = |ctx: &HostCtx| {
            let mut acc = 0u64;
            for round in 1..=3u64 {
                ctx.set_round(round);
                acc = acc * 31 + ctx.all_reduce_u64(ctx.host() as u64 + round, |a, b| a + b);
            }
            acc
        };
        let baseline = Cluster::new(3).run(work);
        let plan = FaultPlan::new().stall_host(1, 2, 400);
        let cfg = TransportConfig::with_heartbeat(HeartbeatConfig {
            interval: Duration::from_millis(10),
            suspect_after: Duration::from_millis(80),
        });
        let res = Cluster::new(3)
            .with_transport_config(cfg)
            .run_with_faults(plan, |ctx| {
                (ctx.run_recovering(work), ctx.stats().heartbeat_suspicions)
            });
        let values: Vec<u64> = res.iter().map(|r| r.0).collect();
        assert_eq!(values, baseline);
        let suspicions: u64 = res.iter().map(|r| r.1).sum();
        assert!(suspicions >= 1, "some host should have aborted on PeerDown");
    }

    #[test]
    fn stalled_host_is_flagged_by_deadline_and_recovery_completes() {
        let work = |ctx: &HostCtx| {
            ctx.set_deadline(Deadline::maybe("round", Some(Duration::from_millis(150))));
            let mut acc = 0u64;
            for round in 1..=3u64 {
                ctx.set_round(round);
                ctx.set_deadline(Deadline::after("round", Duration::from_millis(150)));
                acc = acc * 31 + ctx.all_reduce_u64(ctx.host() as u64 + round, |a, b| a + b);
            }
            acc
        };
        let baseline = Cluster::new(3).run(work);
        let plan = FaultPlan::new().stall_host(0, 2, 400);
        let res = Cluster::new(3).run_with_faults(plan, |ctx| {
            (ctx.run_recovering(work), ctx.stats().timeout_aborts)
        });
        let values: Vec<u64> = res.iter().map(|r| r.0).collect();
        assert_eq!(values, baseline);
        let aborts: u64 = res.iter().map(|r| r.1).sum();
        assert!(aborts >= 1, "some host should have aborted on deadline");
    }

    // ----- simulation backend ---------------------------------------------

    #[test]
    fn sim_backend_runs_collectives() {
        let res = Cluster::new(3).sim(7).run(|ctx| {
            let ok = tagged_exchange(ctx);
            let sum = ctx.all_reduce_u64(ctx.host() as u64, |a, b| a + b);
            (ok, sum)
        });
        for (ok, sum) in res {
            assert!(ok);
            assert_eq!(sum, 3);
        }
    }

    #[test]
    fn sim_backend_same_seed_identical_trace() {
        let run = |seed: u64| {
            let sink: TraceSink = Arc::new(parking_lot::Mutex::new(Vec::new()));
            let plan = FaultPlan::new().with_seed(5).drop_rate(0.05);
            let res = Cluster::new(3)
                .sim(seed)
                .with_trace_sink(sink.clone())
                .run_with_faults(plan, |ctx| {
                    let mut acc = 0u64;
                    for round in 1..=3u64 {
                        ctx.set_round(round);
                        acc =
                            acc * 31 + ctx.all_reduce_u64(ctx.host() as u64 + round, |a, b| a + b);
                    }
                    (acc, ctx.stats().retransmits)
                });
            let trace = std::mem::take(&mut *sink.lock());
            (res, trace)
        };
        let (r1, t1) = run(11);
        let (r2, t2) = run(11);
        assert!(!t1.is_empty(), "trace sink should be filled");
        assert_eq!(r1, r2, "same seed must produce identical results");
        assert_eq!(t1, t2, "same seed must replay the same schedule");
        let j1: Vec<String> = t1.iter().map(TraceEvent::to_json).collect();
        let j2: Vec<String> = t2.iter().map(TraceEvent::to_json).collect();
        assert_eq!(j1, j2, "JSONL serialization must be byte-identical");
        let (_, t3) = run(12);
        assert_ne!(t1, t3, "a different seed should change the schedule");
    }

    #[test]
    fn sim_backend_resolves_heartbeat_stall_in_virtual_time() {
        use crate::transport::{HeartbeatConfig, TransportConfig};
        let work = |ctx: &HostCtx| {
            let mut acc = 0u64;
            for round in 1..=3u64 {
                ctx.set_round(round);
                acc = acc * 31 + ctx.all_reduce_u64(ctx.host() as u64 + round, |a, b| a + b);
            }
            acc
        };
        let baseline = Cluster::new(3).run(work);
        let wall = std::time::Instant::now();
        let plan = FaultPlan::new().stall_host(1, 2, 400);
        let cfg = TransportConfig::with_heartbeat(HeartbeatConfig {
            interval: Duration::from_millis(10),
            suspect_after: Duration::from_millis(80),
        });
        let res = Cluster::new(3)
            .sim(21)
            .with_transport_config(cfg)
            .run_with_faults(plan, |ctx| {
                (ctx.run_recovering(work), ctx.stats().heartbeat_suspicions)
            });
        let values: Vec<u64> = res.iter().map(|r| r.0).collect();
        assert_eq!(values, baseline);
        let suspicions: u64 = res.iter().map(|r| r.1).sum();
        assert!(suspicions >= 1, "the stall should be flagged by heartbeat");
        // The 400ms stall and 80ms suspicion threshold elapse on the
        // virtual clock; wall time stays far below the injected delays.
        assert!(
            wall.elapsed() < Duration::from_millis(350),
            "virtual time leaked into wall time: {:?}",
            wall.elapsed()
        );
    }

    #[test]
    fn sim_backend_resolves_deadline_stall_in_virtual_time() {
        let work = |ctx: &HostCtx| {
            let mut acc = 0u64;
            for round in 1..=3u64 {
                ctx.set_round(round);
                ctx.set_deadline(Deadline::after("round", Duration::from_millis(150)));
                acc = acc * 31 + ctx.all_reduce_u64(ctx.host() as u64 + round, |a, b| a + b);
            }
            acc
        };
        let baseline = Cluster::new(3).run(work);
        let plan = FaultPlan::new().stall_host(0, 2, 400);
        let res = Cluster::new(3).sim(33).run_with_faults(plan, |ctx| {
            (ctx.run_recovering(work), ctx.stats().timeout_aborts)
        });
        let values: Vec<u64> = res.iter().map(|r| r.0).collect();
        assert_eq!(values, baseline);
        let aborts: u64 = res.iter().map(|r| r.1).sum();
        assert!(aborts >= 1, "the stall should trip the phase deadline");
    }

    #[test]
    fn sim_backend_survives_injected_crash() {
        let work = |ctx: &HostCtx| {
            let mut acc = 0u64;
            for round in 1..=3u64 {
                ctx.set_round(round);
                acc = acc * 31 + ctx.all_reduce_u64(ctx.host() as u64 + round, |a, b| a + b);
            }
            acc
        };
        let baseline = Cluster::new(3).run(work);
        let plan = FaultPlan::new().crash_host(1, 2);
        let res = Cluster::new(3)
            .sim(55)
            .run_with_faults(plan, |ctx| ctx.run_recovering(work));
        assert_eq!(res, baseline);
    }

    // ----- permanent host loss / membership shrink ------------------------

    /// Membership-independent SPMD work: each host sums the keys it owns
    /// under `key % num_hosts() == host()`, so the all-reduced total is the
    /// same whatever the membership — the shrunk survivors must reproduce
    /// the fault-free value exactly.
    fn partitioned_sum(ctx: &HostCtx) -> u64 {
        let mut acc = 0u64;
        for round in 1..=4u64 {
            ctx.set_round(round);
            let k = ctx.num_hosts();
            let me = ctx.host();
            let local: u64 = (0..1000u64)
                .filter(|v| (*v as usize) % k == me)
                .map(|v| v.wrapping_mul(round))
                .sum();
            acc = acc.wrapping_mul(31).wrapping_add(
                ctx.all_reduce_u64(local, |a, b| a.wrapping_add(b)),
            );
        }
        acc
    }

    fn assert_shrink_survives(cluster: Cluster) {
        let baseline = Cluster::new(4).run(partitioned_sum);
        let plan = FaultPlan::new().kill_host(1, 2);
        let res = cluster.try_run_with_faults(plan, |ctx| {
            let v = ctx.run_elastic(partitioned_sum);
            (v, ctx.stats(), ctx.members(), ctx.generation())
        });
        for h in [0usize, 2, 3] {
            let (v, stats, members, generation) =
                res[h].as_ref().unwrap_or_else(|e| panic!("host {h}: {e}"));
            assert_eq!(*v, baseline[0], "survivor {h} diverged");
            assert_eq!(members, &vec![0, 2, 3]);
            assert_eq!(*generation, 1);
            assert_eq!(stats.membership_changes, 1);
            assert!(stats.degraded_rounds >= 1, "no degraded rounds counted");
        }
        let err = res[1].as_ref().unwrap_err();
        assert!(
            err.message.contains("permanent host loss"),
            "victim reported: {}",
            err.message
        );
    }

    #[test]
    fn killed_host_shrinks_inproc() {
        assert_shrink_survives(Cluster::new(4));
    }

    #[test]
    fn killed_host_shrinks_sim() {
        assert_shrink_survives(Cluster::new(4).sim(77));
    }

    #[test]
    fn killed_host_shrinks_tcp_loopback() {
        assert_shrink_survives(Cluster::new(4).tcp());
    }

    #[test]
    fn killed_host_shrink_is_seed_reproducible() {
        let run = || {
            Cluster::new(4)
                .sim(99)
                .try_run_with_faults(FaultPlan::new().kill_host(2, 3), |ctx| {
                    ctx.run_elastic(partitioned_sum)
                })
                .into_iter()
                .map(|r| r.map_err(|e| e.message))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    // ----- live host join / membership grow -------------------------------

    /// One BSP round of the membership-independent partitioned sum, folded
    /// into `acc` (the body of `partitioned_sum`, factored so grow tests
    /// can run different round ranges before and after a join).
    fn sum_rounds(ctx: &HostCtx, rounds: std::ops::RangeInclusive<u64>, acc: &mut u64) {
        for round in rounds {
            ctx.set_round(round);
            let k = ctx.num_hosts();
            let me = ctx.host();
            let local: u64 = (0..1000u64)
                .filter(|v| (*v as usize) % k == me)
                .map(|v| v.wrapping_mul(round))
                .sum();
            *acc = acc.wrapping_mul(31).wrapping_add(
                ctx.all_reduce_u64(local, |a, b| a.wrapping_add(b)),
            );
        }
    }

    /// Per-round all-reduced total of the partitioned sum (membership
    /// independent: every key is owned by exactly one member).
    fn round_total(round: u64) -> u64 {
        (0..1000u64).map(|v| v.wrapping_mul(round)).sum()
    }

    fn assert_grow_admits(cluster: Cluster) {
        // A 4-host static baseline: because each round's all-reduce total
        // is membership independent, members that live through the grow
        // must still fold the exact same four totals.
        let baseline = Cluster::new(4).run(partitioned_sum);
        let plan = FaultPlan::new().join_host(3, 50);
        let res = cluster.try_run_with_faults(plan, |ctx| {
            let mut acc = 0u64;
            if ctx.is_member() {
                sum_rounds(ctx, 1..=2, &mut acc);
                // Stop at the grow gate once the newcomer knocks.
                while ctx.pending_joins().is_empty() {
                    clock::sleep(Duration::from_millis(5));
                }
                let outcome = ctx.recover_grow().expect("grow agreement failed");
                assert_eq!(outcome.joined, vec![3]);
                assert_eq!(outcome.old_count, 3);
                sum_rounds(ctx, 3..=4, &mut acc);
            } else {
                if let Some(d) = ctx.join_delay() {
                    clock::sleep(d);
                }
                let outcome = ctx
                    .join_cluster(&Deadline::after("join", Duration::from_secs(60)))
                    .expect("join failed");
                assert!(outcome.joined.contains(&ctx.physical_host()));
                assert_eq!(outcome.old_count, 3);
                sum_rounds(ctx, 3..=4, &mut acc);
            }
            (acc, ctx.stats(), ctx.members(), ctx.generation())
        });
        for (h, r) in res.iter().enumerate().take(3) {
            let (v, stats, members, generation) =
                r.as_ref().unwrap_or_else(|e| panic!("member {h}: {e}"));
            assert_eq!(*v, baseline[0], "member {h} diverged after grow");
            assert_eq!(members, &vec![0, 1, 2, 3]);
            assert_eq!(*generation, 1);
            assert_eq!(stats.membership_changes, 1);
            assert_eq!(stats.joins, 1);
            assert_eq!(stats.degraded_rounds, 0, "latent capacity is not degradation");
        }
        let (v, stats, members, generation) =
            res[3].as_ref().unwrap_or_else(|e| panic!("joiner: {e}"));
        assert_eq!(*v, round_total(3).wrapping_mul(31).wrapping_add(round_total(4)));
        assert_eq!(members, &vec![0, 1, 2, 3]);
        assert_eq!(*generation, 1);
        assert_eq!(stats.membership_changes, 1);
        assert_eq!(stats.joins, 1);
    }

    #[test]
    fn latent_host_joins_inproc() {
        assert_grow_admits(Cluster::new(4));
    }

    #[test]
    fn latent_host_joins_sim() {
        assert_grow_admits(Cluster::new(4).sim(123));
    }

    #[test]
    fn latent_host_joins_tcp_loopback() {
        assert_grow_admits(Cluster::new(4).tcp());
    }

    #[test]
    fn latent_host_join_is_seed_reproducible() {
        let run = || {
            Cluster::new(4)
                .sim(131)
                .try_run_with_faults(FaultPlan::new().join_host(3, 40), |ctx| {
                    let mut acc = 0u64;
                    if ctx.is_member() {
                        sum_rounds(ctx, 1..=2, &mut acc);
                        while ctx.pending_joins().is_empty() {
                            clock::sleep(Duration::from_millis(5));
                        }
                        ctx.recover_grow().expect("grow agreement failed");
                    } else {
                        if let Some(d) = ctx.join_delay() {
                            clock::sleep(d);
                        }
                        ctx.join_cluster(&Deadline::after("join", Duration::from_secs(60)))
                            .expect("join failed");
                    }
                    sum_rounds(ctx, 3..=4, &mut acc);
                    (acc, ctx.members(), ctx.generation())
                })
                .into_iter()
                .map(|r| r.map_err(|e| e.message))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn joiner_gives_up_with_typed_timeout() {
        // Nobody ever stops at a grow gate: the joiner must give up with a
        // typed timeout instead of hanging, and the members must finish
        // their run untouched.
        let plan = FaultPlan::new().join_host(2, 1);
        let res = Cluster::new(3).sim(17).try_run_with_faults(plan, |ctx| {
            if ctx.is_member() {
                Ok(partitioned_sum(ctx))
            } else {
                Err(ctx
                    .join_cluster(&Deadline::after("join", Duration::from_millis(400)))
                    .expect_err("join against deaf members must time out"))
            }
        });
        let baseline = Cluster::new(3).run(partitioned_sum);
        for (h, r) in res.iter().enumerate().take(2) {
            let v = r.as_ref().unwrap().as_ref().unwrap();
            assert_eq!(*v, baseline[0], "member {h} was disturbed by the knock");
        }
        match res[2].as_ref().unwrap() {
            Err(CommError::Timeout { phase, .. }) => assert_eq!(*phase, "join"),
            other => panic!("expected typed join timeout, got {other:?}"),
        }
    }

    #[test]
    fn membership_lost_without_shrink_is_typed() {
        // Without run_elastic, survivors surface the typed verdict instead
        // of a generic terminal error.
        let plan = FaultPlan::new().kill_host(1, 2);
        let res = Cluster::new(3).try_run_with_faults(plan, |ctx| {
            ctx.run_recovering(partitioned_sum)
        });
        // The victim is host 1; survivors may additionally list each other
        // (whichever survivor aborts first departs too, cascading).
        for h in [0usize, 2] {
            let err = res[h].as_ref().unwrap_err();
            assert!(
                err.message.contains("membership lost") && err.message.contains('1'),
                "survivor {h} reported: {}",
                err.message
            );
        }
    }
}
