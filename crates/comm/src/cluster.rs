//! The simulated cluster: hosts, mailboxes, and collectives.

use crate::pool::WorkerPool;
use crate::wire::{decode_slice, encode_slice, Wire};
use parking_lot::Mutex;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// Per-host communication counters.
///
/// `comm_nanos` covers time spent inside collective calls (serialization,
/// mailbox traffic, and waiting at the implied barriers); everything else a
/// host does is computation. Bytes and messages count only *inter*-host
/// traffic — a host delivering to itself models a local memcpy, which the
/// paper's communication-volume numbers also exclude.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Messages sent to other hosts.
    pub messages: u64,
    /// Payload bytes sent to other hosts.
    pub bytes: u64,
    /// Nanoseconds spent inside communication calls.
    pub comm_nanos: u64,
}

impl HostStats {
    /// Adds another host's counters into this one (for cluster-wide totals).
    pub fn merge(&mut self, other: &HostStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.comm_nanos = self.comm_nanos.max(other.comm_nanos);
    }
}

/// Shared state between hosts: one mailbox per (destination, source) pair
/// plus a reusable barrier.
struct Fabric {
    /// `mailboxes[to][from]` holds messages in flight from `from` to `to`.
    mailboxes: Vec<Vec<Mutex<Vec<Vec<u8>>>>>,
    barrier: Barrier,
}

impl Fabric {
    fn new(hosts: usize) -> Self {
        Fabric {
            mailboxes: (0..hosts)
                .map(|_| (0..hosts).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
            barrier: Barrier::new(hosts),
        }
    }
}

/// A simulated cluster of `num_hosts` hosts, each with its own worker pool
/// of `threads_per_host` threads.
///
/// [`Cluster::run`] spawns one OS thread per host, hands each a
/// [`HostCtx`], and joins them, returning the per-host results in host
/// order. The closure runs once on every host — exactly like an
/// `mpirun`-launched SPMD program.
#[derive(Debug)]
pub struct Cluster {
    num_hosts: usize,
    threads_per_host: usize,
}

impl Cluster {
    /// Creates a cluster of `num_hosts` hosts with one compute thread each.
    ///
    /// # Panics
    ///
    /// Panics if `num_hosts == 0`.
    pub fn new(num_hosts: usize) -> Self {
        Self::with_threads(num_hosts, 1)
    }

    /// Creates a cluster with `threads_per_host` compute threads per host.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn with_threads(num_hosts: usize, threads_per_host: usize) -> Self {
        assert!(num_hosts > 0, "cluster needs at least one host");
        assert!(threads_per_host > 0, "hosts need at least one thread");
        Cluster {
            num_hosts,
            threads_per_host,
        }
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.num_hosts
    }

    /// Compute threads per host.
    pub fn threads_per_host(&self) -> usize {
        self.threads_per_host
    }

    /// Runs `f` once per host, in parallel, and returns the results in host
    /// order.
    ///
    /// # Panics
    ///
    /// Panics (after all hosts have been joined) if any host's closure
    /// panicked.
    pub fn run<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(&HostCtx) -> R + Sync,
        R: Send,
    {
        let fabric = Fabric::new(self.num_hosts);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.num_hosts);
            for host in 0..self.num_hosts {
                let fabric = &fabric;
                let f = &f;
                let threads = self.threads_per_host;
                let num_hosts = self.num_hosts;
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("kimbap-host-{host}"))
                        .spawn_scoped(scope, move || {
                            let ctx = HostCtx {
                                host,
                                num_hosts,
                                fabric,
                                pool: WorkerPool::new(threads),
                                stats: StatCells::default(),
                            };
                            f(&ctx)
                        })
                        .expect("failed to spawn host thread"),
                );
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("host thread panicked"))
                .collect()
        })
    }
}

/// Per-host execution context: identity, collectives, intra-host
/// parallelism, and counters.
///
/// A `HostCtx` is created by [`Cluster::run`] and borrowed by the host
/// closure; it is not `Sync` across hosts (each host has its own), but its
/// methods may be called freely from the host's main thread. Collectives
/// must be called by **all hosts** in the same order — they contain
/// barriers.
pub struct HostCtx<'a> {
    host: usize,
    num_hosts: usize,
    fabric: &'a Fabric,
    pool: WorkerPool,
    stats: StatCells,
}

/// Internal atomic counters backing [`HostStats`].
#[derive(Debug, Default)]
struct StatCells {
    messages: AtomicU64,
    bytes: AtomicU64,
    comm_nanos: AtomicU64,
}

impl<'a> HostCtx<'a> {
    /// This host's id in `0..num_hosts`.
    pub fn host(&self) -> usize {
        self.host
    }

    /// Number of hosts in the cluster.
    pub fn num_hosts(&self) -> usize {
        self.num_hosts
    }

    /// Number of intra-host compute threads.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The host's worker pool, for custom parallel patterns.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Runs `f(tid, chunk)` over `range` across the host's worker pool.
    pub fn par_for<F>(&self, range: Range<usize>, f: F)
    where
        F: Fn(usize, Range<usize>) + Send + Sync,
    {
        self.pool.par_for(range, f);
    }

    /// Waits until all hosts reach this barrier. Counted as communication
    /// time.
    pub fn barrier(&self) {
        let t = Instant::now();
        self.fabric.barrier.wait();
        self.add_comm_nanos(t.elapsed().as_nanos() as u64);
    }

    /// All-to-all exchange: `outgoing[h]` is delivered to host `h`; returns
    /// the buffers received from every host (indexed by source), empty
    /// buffers included.
    ///
    /// This is the collective underlying the paper's request-sync and
    /// reduce-sync phases: exactly one message between every pair of hosts.
    /// Empty payloads are not sent (and not counted).
    ///
    /// # Panics
    ///
    /// Panics if `outgoing.len() != num_hosts()`.
    pub fn exchange(&self, outgoing: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        assert_eq!(outgoing.len(), self.num_hosts, "one buffer per host");
        let t = Instant::now();
        for (to, payload) in outgoing.into_iter().enumerate() {
            if payload.is_empty() {
                continue;
            }
            if to != self.host {
                self.stats.messages.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
            }
            self.fabric.mailboxes[to][self.host].lock().push(payload);
        }
        self.fabric.barrier.wait();
        let received = self.fabric.mailboxes[self.host]
            .iter()
            .map(|mb| {
                let mut msgs = mb.lock();
                // At most one message per pair per exchange; concatenate
                // defensively if a sender pushed multiple.
                match msgs.len() {
                    0 => Vec::new(),
                    1 => msgs.pop().unwrap(),
                    _ => msgs.drain(..).flatten().collect(),
                }
            })
            .collect();
        // Second barrier: nobody starts the next exchange while others are
        // still draining this one.
        self.fabric.barrier.wait();
        self.add_comm_nanos(t.elapsed().as_nanos() as u64);
        received
    }

    /// All-reduce over one wire value per host: every host receives
    /// `combine` folded over all hosts' values (in host order).
    pub fn all_reduce<T, F>(&self, value: T, combine: F) -> T
    where
        T: Wire,
        F: Fn(T, T) -> T,
    {
        let buf = encode_slice(&[value]);
        let outgoing = (0..self.num_hosts)
            .map(|h| if h == self.host { Vec::new() } else { buf.clone() })
            .collect();
        let received = self.exchange(outgoing);
        let mut acc = value;
        for (h, buf) in received.iter().enumerate() {
            if h == self.host {
                continue;
            }
            let vals = decode_slice::<T>(buf);
            assert_eq!(vals.len(), 1, "all_reduce expects one value per host");
            // Fold in host order relative to our own position.
            acc = if h < self.host {
                combine(vals[0], acc)
            } else {
                combine(acc, vals[0])
            };
        }
        acc
    }

    /// All-reduce specialized to `u64`.
    pub fn all_reduce_u64<F: Fn(u64, u64) -> u64>(&self, v: u64, f: F) -> u64 {
        self.all_reduce(v, f)
    }

    /// Logical-OR all-reduce over booleans — the quiescence check of
    /// `IsUpdated()`.
    pub fn all_reduce_or(&self, v: bool) -> bool {
        self.all_reduce(v, |a, b| a || b)
    }

    /// Gathers one wire value from every host; every host receives the full
    /// host-ordered vector.
    pub fn all_gather<T: Wire>(&self, value: T) -> Vec<T> {
        let buf = encode_slice(&[value]);
        let outgoing = (0..self.num_hosts)
            .map(|h| if h == self.host { Vec::new() } else { buf.clone() })
            .collect();
        let received = self.exchange(outgoing);
        (0..self.num_hosts)
            .map(|h| {
                if h == self.host {
                    value
                } else {
                    let vals = decode_slice::<T>(&received[h]);
                    assert_eq!(vals.len(), 1, "all_gather expects one value per host");
                    vals[0]
                }
            })
            .collect()
    }

    /// Snapshot of this host's communication counters.
    pub fn stats(&self) -> HostStats {
        HostStats {
            messages: self.stats.messages.load(Ordering::Relaxed),
            bytes: self.stats.bytes.load(Ordering::Relaxed),
            comm_nanos: self.stats.comm_nanos.load(Ordering::Relaxed),
        }
    }

    /// Resets the communication counters (benchmarks call this after
    /// warm-up/partitioning, which the paper excludes from timing).
    pub fn reset_stats(&self) {
        self.stats.messages.store(0, Ordering::Relaxed);
        self.stats.bytes.store(0, Ordering::Relaxed);
        self.stats.comm_nanos.store(0, Ordering::Relaxed);
    }

    /// Adds externally measured communication time (used by subsystems that
    /// implement their own wire protocols, e.g. the memcached baseline).
    pub fn add_comm_nanos(&self, nanos: u64) {
        self.stats.comm_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Adds externally counted message/byte traffic (for subsystems modeling
    /// per-operation messages outside [`HostCtx::exchange`]).
    pub fn add_traffic(&self, messages: u64, bytes: u64) {
        self.stats.messages.fetch_add(messages, Ordering::Relaxed);
        self.stats.bytes.fetch_add(bytes, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for HostCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostCtx")
            .field("host", &self.host)
            .field("num_hosts", &self.num_hosts)
            .field("threads", &self.pool.threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_results_in_host_order() {
        let c = Cluster::new(5);
        let ids = c.run(|ctx| ctx.host());
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn exchange_delivers_point_to_point() {
        let c = Cluster::new(4);
        let ok = c.run(|ctx| {
            // Host h sends "h*10 + to" to every host `to`.
            let outgoing = (0..ctx.num_hosts())
                .map(|to| encode_slice(&[(ctx.host() * 10 + to) as u64]))
                .collect();
            let received = ctx.exchange(outgoing);
            (0..ctx.num_hosts()).all(|from| {
                decode_slice::<u64>(&received[from]) == vec![(from * 10 + ctx.host()) as u64]
            })
        });
        assert!(ok.iter().all(|&b| b));
    }

    #[test]
    fn exchange_repeated_rounds_do_not_leak() {
        let c = Cluster::new(3);
        let ok = c.run(|ctx| {
            for round in 0..10u64 {
                let outgoing = (0..ctx.num_hosts())
                    .map(|_| encode_slice(&[round]))
                    .collect();
                let received = ctx.exchange(outgoing);
                for buf in &received {
                    if decode_slice::<u64>(buf) != vec![round] {
                        return false;
                    }
                }
            }
            true
        });
        assert!(ok.iter().all(|&b| b));
    }

    #[test]
    fn all_reduce_sum_and_or() {
        let c = Cluster::new(4);
        let res = c.run(|ctx| {
            let sum = ctx.all_reduce_u64(ctx.host() as u64 + 1, |a, b| a + b);
            let any = ctx.all_reduce_or(ctx.host() == 2);
            let none = ctx.all_reduce_or(false);
            (sum, any, none)
        });
        assert!(res.iter().all(|&(s, a, n)| s == 10 && a && !n));
    }

    #[test]
    fn all_gather_orders_by_host() {
        let c = Cluster::new(3);
        let res = c.run(|ctx| ctx.all_gather((ctx.host() as u32, 100 - ctx.host() as u64)));
        for r in res {
            assert_eq!(r, vec![(0, 100), (1, 99), (2, 98)]);
        }
    }

    #[test]
    fn stats_count_only_remote_traffic() {
        let c = Cluster::new(2);
        let stats = c.run(|ctx| {
            let outgoing = (0..2).map(|_| vec![0u8; 16]).collect();
            ctx.exchange(outgoing);
            ctx.stats()
        });
        for s in stats {
            assert_eq!(s.messages, 1); // self-send not counted
            assert_eq!(s.bytes, 16);
            assert!(s.comm_nanos > 0);
        }
    }

    #[test]
    fn empty_payloads_not_counted() {
        let c = Cluster::new(3);
        let stats = c.run(|ctx| {
            ctx.exchange((0..3).map(|_| Vec::new()).collect());
            ctx.stats()
        });
        for s in stats {
            assert_eq!(s.messages, 0);
            assert_eq!(s.bytes, 0);
        }
    }

    #[test]
    fn single_host_cluster_collectives() {
        let c = Cluster::new(1);
        let res = c.run(|ctx| {
            let v = ctx.all_reduce_u64(7, |a, b| a + b);
            let g = ctx.all_gather(9u32);
            (v, g)
        });
        assert_eq!(res[0], (7, vec![9]));
    }

    #[test]
    fn hosts_run_with_pools() {
        let c = Cluster::with_threads(2, 3);
        let sums = c.run(|ctx| {
            use std::sync::atomic::{AtomicU64, Ordering};
            let acc = AtomicU64::new(0);
            ctx.par_for(0..1000, |_tid, r| {
                acc.fetch_add(r.len() as u64, Ordering::Relaxed);
            });
            acc.load(Ordering::Relaxed)
        });
        assert_eq!(sums, vec![1000, 1000]);
    }
}
