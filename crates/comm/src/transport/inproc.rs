//! The in-process transport: shared-memory mailboxes, a failure-aware
//! barrier, and a recovery gate — the original simulated fabric, now
//! behind the [`Transport`] trait.
//!
//! With the default [`TransportConfig`] this backend behaves exactly like
//! the pre-transport cluster: no extra threads, unbounded waits, identical
//! synchronization structure. Deadlines and the heartbeat detector are
//! opt-in layers on the same primitives.

use super::{Deadline, GrowVerdict, RetxRequest, Transport, TransportConfig};
use crate::clock;
use crate::cluster::CommError;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Duration;

/// How a blocking fabric wait ended early.
pub(crate) enum WaitBreak {
    /// Hosts have failed; `suspected` is the subset flagged only by the
    /// heartbeat detector.
    Failed {
        failed: Vec<usize>,
        suspected: Vec<usize>,
    },
    /// The deadline passed; `laggards` had not arrived.
    TimedOut { laggards: Vec<usize> },
    /// Hosts departed for good (recovery gate only).
    Departed { departed: Vec<usize> },
}

impl WaitBreak {
    pub(crate) fn into_comm_error(self, deadline: &Deadline) -> CommError {
        match self {
            WaitBreak::Failed { failed, suspected } => {
                if !suspected.is_empty() && suspected.len() == failed.len() {
                    CommError::PeerDown { hosts: suspected }
                } else {
                    CommError::HostFailure { hosts: failed }
                }
            }
            WaitBreak::TimedOut { laggards } => CommError::Timeout {
                phase: deadline.phase(),
                hosts: laggards,
            },
            WaitBreak::Departed { departed } => CommError::HostFailure { hosts: departed },
        }
    }
}

/// A barrier that reports peer failures instead of deadlocking.
///
/// Semantically a generation-counted barrier over the *live* hosts: when
/// [`FtBarrier::mark_failed`] records a casualty, every current and future
/// waiter gets `Err` with the casualty list until [`FtBarrier::heal`]
/// resets the barrier (which recovery does once all live hosts are
/// realigned and no waiter can exist). Waits additionally honor a
/// [`Deadline`]: a timed-out waiter withdraws its arrival and reports the
/// hosts that never showed up.
struct FtBarrier {
    state: StdMutex<BarrierState>,
    cv: Condvar,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    live: usize,
    failed: Vec<bool>,
    suspected: Vec<bool>,
    here: Vec<bool>,
    /// Hosts excluded by a membership shrink: no longer counted as
    /// participants and never reported as casualties again.
    excluded: Vec<bool>,
    nexcluded: usize,
}

impl BarrierState {
    fn failure(&self) -> WaitBreak {
        WaitBreak::Failed {
            failed: (0..self.failed.len())
                .filter(|&h| self.failed[h] && !self.excluded[h])
                .collect(),
            suspected: (0..self.suspected.len())
                .filter(|&h| self.suspected[h] && !self.excluded[h])
                .collect(),
        }
    }

    /// Hosts still participating after exclusions.
    fn expected(&self) -> usize {
        self.failed.len() - self.nexcluded
    }

    fn any_failed(&self) -> bool {
        self.live < self.expected()
    }
}

impl FtBarrier {
    /// Creates the barrier; `latent` hosts start excluded (not counted as
    /// participants) until a grow verdict re-admits them.
    fn new(hosts: usize, latent: &[usize]) -> Self {
        let mut excluded = vec![false; hosts];
        for &h in latent {
            excluded[h] = true;
        }
        FtBarrier {
            state: StdMutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                live: hosts - latent.len(),
                failed: vec![false; hosts],
                suspected: vec![false; hosts],
                here: vec![false; hosts],
                excluded,
                nexcluded: latent.len(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Waits for all live hosts; `Err` if any host has failed (now or
    /// while waiting) or the deadline passes first.
    fn wait(&self, host: usize, deadline: &Deadline) -> Result<(), WaitBreak> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.any_failed() {
            return Err(s.failure());
        }
        s.arrived += 1;
        s.here[host] = true;
        if s.arrived >= s.live {
            s.arrived = 0;
            s.here.iter_mut().for_each(|h| *h = false);
            s.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = s.generation;
        loop {
            s = match deadline.remaining() {
                None => self.cv.wait(s).unwrap_or_else(|e| e.into_inner()),
                Some(rem) if rem.is_zero() => {
                    // Withdraw the arrival so the generation stays sound for
                    // whoever keeps waiting (checks below ran last wake).
                    s.arrived -= 1;
                    s.here[host] = false;
                    let laggards = (0..s.here.len())
                        .filter(|&h| h != host && !s.here[h] && !s.failed[h] && !s.excluded[h])
                        .collect();
                    return Err(WaitBreak::TimedOut { laggards });
                }
                Some(rem) => {
                    self.cv
                        .wait_timeout(s, rem)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
            };
            // Failure check first: a casualty may make `arrived >= live`
            // true without completing the generation.
            if s.any_failed() {
                return Err(s.failure());
            }
            if s.generation != gen {
                return Ok(());
            }
        }
    }

    /// Records that `host` died; wakes all waiters so they observe the
    /// failure. Idempotent; upgrades a suspicion into a hard failure.
    /// Ignored for excluded hosts — they are no longer participants.
    fn mark_failed(&self, host: usize) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.excluded[host] {
            return;
        }
        if s.failed[host] {
            s.suspected[host] = false;
            return;
        }
        s.failed[host] = true;
        s.live -= 1;
        self.cv.notify_all();
    }

    /// Records a heartbeat suspicion of `host`: like a failure, but
    /// reported as [`CommError::PeerDown`]. Idempotent; never downgrades a
    /// hard failure. Ignored for excluded hosts.
    fn suspect(&self, host: usize) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.failed[host] || s.excluded[host] {
            return;
        }
        s.failed[host] = true;
        s.suspected[host] = true;
        s.live -= 1;
        self.cv.notify_all();
    }

    /// Removes `host` from the barrier's membership: it stops counting
    /// toward completion and is cleared from the casualty lists. Called
    /// under the gate lock by the shrink verdict.
    fn exclude(&self, host: usize) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.excluded[host] {
            return;
        }
        s.excluded[host] = true;
        s.nexcluded += 1;
        if s.failed[host] {
            // `live` was already decremented when the failure landed.
            s.failed[host] = false;
            s.suspected[host] = false;
        } else {
            s.live -= 1;
        }
        self.cv.notify_all();
    }

    /// Re-admits an excluded `host` into the barrier's membership — the
    /// inverse of [`FtBarrier::exclude`], called under the gate lock by a
    /// grow verdict. The host starts counting toward completion again.
    fn include(&self, host: usize) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !s.excluded[host] {
            return;
        }
        s.excluded[host] = false;
        s.nexcluded -= 1;
        s.failed[host] = false;
        s.suspected[host] = false;
        s.here[host] = false;
        s.live += 1;
        self.cv.notify_all();
    }

    /// Resets the barrier to all-members-alive (excluded hosts stay out).
    /// Only sound when no host is waiting on it — recovery guarantees this
    /// by healing under the [`Gate`] lock while every live host is parked
    /// at the gate.
    fn heal(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.live = s.expected();
        for f in &mut s.failed {
            *f = false;
        }
        for f in &mut s.suspected {
            *f = false;
        }
        for h in &mut s.here {
            *h = false;
        }
        s.arrived = 0;
    }
}

/// Recovery-alignment barrier, independent of the (possibly failed)
/// [`FtBarrier`].
///
/// Hosts that complete their closure (or die unrecoverably) are marked
/// *departed*; once any host departs, recovery can never realign the full
/// cluster, so gate waits report the departed hosts instead of hanging.
struct Gate {
    state: StdMutex<GateState>,
    cv: Condvar,
}

struct GateState {
    arrived: usize,
    generation: u64,
    departed: Vec<bool>,
    /// Departed hosts not yet excluded by a shrink verdict; once a shrink
    /// absorbs a departure this drops back to zero and gates work again.
    ndeparted: usize,
    here: Vec<bool>,
    /// Hosts removed from the membership by a shrink verdict. Departed
    /// flags stay set (so heartbeats keep skipping them) but they no
    /// longer count as participants or pending departures.
    excluded: Vec<bool>,
    nexcluded: usize,
    /// Shrink-gate arrivals, kept separate from the recovery gate so a
    /// departure observed mid-shrink cannot corrupt ordinary alignment.
    shrink_arrived: usize,
    shrink_here: Vec<bool>,
    shrink_gen: u64,
    /// Verdict of the shrink generation that last completed.
    shrink_verdict: Vec<usize>,
    /// Latent capacity: hosts that are part of the fabric's address space
    /// but not members until a grow admits them. Latent hosts are also
    /// `excluded` (so every existing collective skips them); the flag
    /// distinguishes "waiting to join" from "removed by a shrink".
    latent: Vec<bool>,
    /// Grow-gate arrivals (members and knocking candidates alike), kept
    /// separate from the recovery and shrink gates.
    grow_here: Vec<bool>,
    grow_gen: u64,
    /// Highest membership generation announced by this grow's arrivals.
    grow_max_gen: u64,
    /// Verdict of the grow generation that last completed.
    grow_verdict: GrowVerdict,
}

impl GateState {
    fn departure(&self) -> WaitBreak {
        WaitBreak::Departed {
            departed: (0..self.departed.len())
                .filter(|&h| self.departed[h] && !self.excluded[h])
                .collect(),
        }
    }

    /// Hosts that are full participants: neither departed nor excluded.
    fn survivors(&self) -> usize {
        self.departed.len() - self.nexcluded - self.ndeparted
    }

    /// Member arrivals at the grow gate (latent candidates not counted).
    fn grow_members_here(&self) -> usize {
        (0..self.grow_here.len())
            .filter(|&h| self.grow_here[h] && !self.latent[h])
            .count()
    }

    /// Live candidates knocking at the grow gate.
    fn grow_candidates(&self) -> Vec<usize> {
        (0..self.grow_here.len())
            .filter(|&h| self.grow_here[h] && self.latent[h] && !self.departed[h])
            .collect()
    }
}

impl Gate {
    fn new(hosts: usize, latent: &[usize]) -> Self {
        let mut excluded = vec![false; hosts];
        let mut latent_flags = vec![false; hosts];
        for &h in latent {
            excluded[h] = true;
            latent_flags[h] = true;
        }
        Gate {
            state: StdMutex::new(GateState {
                arrived: 0,
                generation: 0,
                departed: vec![false; hosts],
                ndeparted: 0,
                here: vec![false; hosts],
                excluded,
                nexcluded: latent.len(),
                shrink_arrived: 0,
                shrink_here: vec![false; hosts],
                shrink_gen: 0,
                shrink_verdict: Vec::new(),
                latent: latent_flags,
                grow_here: vec![false; hosts],
                grow_gen: 0,
                grow_max_gen: 0,
                grow_verdict: GrowVerdict {
                    joined: Vec::new(),
                    members: 0,
                    generation: 0,
                },
            }),
            cv: Condvar::new(),
        }
    }

    /// Waits for all non-departed hosts, running `f` under the gate lock
    /// when the last one arrives (before anyone is released).
    fn wait_then<F: FnOnce()>(
        &self,
        host: usize,
        deadline: &Deadline,
        f: F,
    ) -> Result<(), WaitBreak> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.ndeparted > 0 {
            return Err(s.departure());
        }
        s.arrived += 1;
        s.here[host] = true;
        if s.arrived >= s.survivors() {
            f();
            s.arrived = 0;
            s.here.iter_mut().for_each(|h| *h = false);
            s.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = s.generation;
        loop {
            s = match deadline.remaining() {
                None => self.cv.wait(s).unwrap_or_else(|e| e.into_inner()),
                Some(rem) if rem.is_zero() => {
                    s.arrived -= 1;
                    s.here[host] = false;
                    let laggards = (0..s.here.len())
                        .filter(|&h| h != host && !s.here[h] && !s.departed[h] && !s.excluded[h])
                        .collect();
                    return Err(WaitBreak::TimedOut { laggards });
                }
                Some(rem) => {
                    self.cv
                        .wait_timeout(s, rem)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
            };
            if s.generation != gen {
                return Ok(());
            }
            if s.ndeparted > 0 {
                // Withdraw the arrival: a stale count left behind here
                // would let the post-shrink heal gate complete before
                // every survivor has actually reset and re-arrived.
                s.arrived -= 1;
                s.here[host] = false;
                return Err(s.departure());
            }
        }
    }

    /// Records that `host` left the run for good. Idempotent. Departures of
    /// already-excluded hosts change nothing.
    fn mark_departed(&self, host: usize) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.departed[host] {
            return;
        }
        s.departed[host] = true;
        if !s.excluded[host] {
            s.ndeparted += 1;
        }
        self.cv.notify_all();
    }

    fn is_departed(&self, host: usize) -> bool {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).departed[host]
    }

    /// Departed-but-not-excluded hosts: the casualties a shrink would
    /// absorb.
    fn pending_departures(&self) -> Vec<usize> {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        (0..s.departed.len())
            .filter(|&h| s.departed[h] && !s.excluded[h])
            .collect()
    }

    /// The shrink gate: waits until every survivor has arrived, then the
    /// finalizing host computes the verdict — all pending departures —
    /// excludes those hosts (calling `exclude` for each, under the gate
    /// lock, so the barrier shrinks atomically with the gate), and wakes
    /// everyone with the identical sorted verdict.
    ///
    /// A departure that lands *while* survivors are waiting shrinks the
    /// completion target; departure notifications re-run the completion
    /// check, so the gate cannot deadlock on a second casualty.
    fn shrink<F: Fn(usize)>(
        &self,
        host: usize,
        deadline: &Deadline,
        exclude: F,
    ) -> Result<Vec<usize>, WaitBreak> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let gen = s.shrink_gen;
        s.shrink_arrived += 1;
        s.shrink_here[host] = true;
        loop {
            if s.shrink_arrived >= s.survivors() {
                let verdict: Vec<usize> = (0..s.departed.len())
                    .filter(|&h| s.departed[h] && !s.excluded[h])
                    .collect();
                for &h in &verdict {
                    s.excluded[h] = true;
                    exclude(h);
                }
                s.nexcluded += verdict.len();
                s.ndeparted = 0;
                s.shrink_verdict = verdict.clone();
                s.shrink_arrived = 0;
                s.shrink_here.iter_mut().for_each(|h| *h = false);
                s.shrink_gen += 1;
                self.cv.notify_all();
                return Ok(verdict);
            }
            s = match deadline.remaining() {
                None => self.cv.wait(s).unwrap_or_else(|e| e.into_inner()),
                Some(rem) if rem.is_zero() => {
                    s.shrink_arrived -= 1;
                    s.shrink_here[host] = false;
                    let laggards = (0..s.shrink_here.len())
                        .filter(|&h| {
                            h != host && !s.shrink_here[h] && !s.departed[h] && !s.excluded[h]
                        })
                        .collect();
                    return Err(WaitBreak::TimedOut { laggards });
                }
                Some(rem) => {
                    self.cv
                        .wait_timeout(s, rem)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
            };
            if s.shrink_gen != gen {
                return Ok(s.shrink_verdict.clone());
            }
        }
    }

    /// Latent hosts currently knocking at the grow gate.
    fn pending_joiners(&self) -> Vec<usize> {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.grow_candidates()
    }

    /// The grow gate: members arrive with their current membership
    /// generation, latent candidates arrive to knock. Once every member
    /// *and* at least one live candidate are here, the finalizing host
    /// re-admits the candidates (calling `include` for each under the gate
    /// lock, so the barrier grows atomically with the gate) and wakes
    /// everyone with the identical verdict.
    ///
    /// Error paths — deadline expiry, a member departing mid-wait —
    /// withdraw the caller's arrival, so a crash during a join can never
    /// leave a stale arrival that lets a later grow complete early.
    fn grow<F: Fn(usize)>(
        &self,
        host: usize,
        deadline: &Deadline,
        my_generation: u64,
        include: F,
    ) -> Result<GrowVerdict, WaitBreak> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.ndeparted > 0 {
            return Err(s.departure());
        }
        let gen = s.grow_gen;
        s.grow_here[host] = true;
        s.grow_max_gen = s.grow_max_gen.max(my_generation);
        loop {
            let candidates = s.grow_candidates();
            if s.grow_members_here() >= s.survivors() && !candidates.is_empty() {
                for &h in &candidates {
                    s.excluded[h] = false;
                    s.nexcluded -= 1;
                    s.latent[h] = false;
                    include(h);
                }
                let members = (0..s.departed.len())
                    .filter(|&h| !s.excluded[h] && !s.departed[h])
                    .fold(0u64, |m, h| m | (1 << h));
                let verdict = GrowVerdict {
                    joined: candidates,
                    members,
                    generation: s.grow_max_gen,
                };
                s.grow_verdict = verdict.clone();
                s.grow_here.iter_mut().for_each(|h| *h = false);
                s.grow_max_gen = 0;
                s.grow_gen += 1;
                self.cv.notify_all();
                return Ok(verdict);
            }
            s = match deadline.remaining() {
                None => self.cv.wait(s).unwrap_or_else(|e| e.into_inner()),
                Some(rem) if rem.is_zero() => {
                    s.grow_here[host] = false;
                    let laggards = (0..s.grow_here.len())
                        .filter(|&h| {
                            h != host && !s.grow_here[h] && !s.departed[h] && !s.excluded[h]
                        })
                        .collect();
                    return Err(WaitBreak::TimedOut { laggards });
                }
                Some(rem) => {
                    self.cv
                        .wait_timeout(s, rem)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
            };
            if s.grow_gen != gen {
                return Ok(s.grow_verdict.clone());
            }
            if s.ndeparted > 0 {
                s.grow_here[host] = false;
                return Err(s.departure());
            }
        }
    }
}

/// Shared state between the in-process hosts: framed mailboxes,
/// retransmission plumbing, the failure-aware barrier, the recovery gate,
/// and (when enabled) the heartbeat ledger.
pub struct InProcFabric {
    hosts: usize,
    cfg: TransportConfig,
    /// `mailboxes[to][from]` holds frames in flight from `from` to `to`.
    mailboxes: Vec<Vec<Mutex<Vec<Vec<u8>>>>>,
    /// `retx[sender][requester]`: what the requester asks the sender to
    /// re-send (merged across requests until the sender collects them).
    retx: Vec<Vec<Mutex<Option<RetxRequest>>>>,
    /// Per-host "I am still missing a frame" flag, read collectively.
    missing: Vec<AtomicBool>,
    barrier: FtBarrier,
    gate: Gate,
    /// Heartbeat ledger: clock-nanoseconds of each host's last announced
    /// beat.
    last_beat: Vec<AtomicU64>,
    /// Per-host silence deadline (clock-nanoseconds) for the
    /// hang-simulation test hook.
    silence_until: Vec<AtomicU64>,
    /// Hosts configured as latent capacity at construction (immutable —
    /// the *initial* member set is `0..hosts` minus these).
    initial_latent: Vec<usize>,
}

impl InProcFabric {
    /// Creates the shared fabric for `hosts` in-process hosts.
    pub fn new(hosts: usize, cfg: TransportConfig) -> Self {
        Self::new_with_latent(hosts, cfg, &[])
    }

    /// Creates the shared fabric for `hosts` slots of which `latent` start
    /// as non-member capacity: they take part in no collective until a
    /// grow gate admits them.
    pub fn new_with_latent(hosts: usize, cfg: TransportConfig, latent: &[usize]) -> Self {
        // Seed the beat ledger with "now": the clock's epoch is process
        // global, so a zero ledger would read as an ancient silence and
        // trip the detector before the first real beat.
        let now = clock::now_nanos();
        InProcFabric {
            hosts,
            cfg,
            mailboxes: (0..hosts)
                .map(|_| (0..hosts).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
            retx: (0..hosts)
                .map(|_| (0..hosts).map(|_| Mutex::new(None)).collect())
                .collect(),
            missing: (0..hosts).map(|_| AtomicBool::new(false)).collect(),
            barrier: FtBarrier::new(hosts, latent),
            gate: Gate::new(hosts, latent),
            last_beat: (0..hosts).map(|_| AtomicU64::new(now)).collect(),
            silence_until: (0..hosts).map(|_| AtomicU64::new(0)).collect(),
            initial_latent: latent.to_vec(),
        }
    }

    fn now_nanos(&self) -> u64 {
        clock::now_nanos()
    }
}

impl std::fmt::Debug for InProcFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcFabric")
            .field("hosts", &self.hosts)
            .field("cfg", &self.cfg)
            .finish()
    }
}

/// Joins the per-host heartbeat thread on drop.
struct HeartbeatGuard {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for HeartbeatGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// One host's handle to the shared [`InProcFabric`].
pub struct InProcTransport {
    fabric: Arc<InProcFabric>,
    host: usize,
    _heartbeat: Option<HeartbeatGuard>,
}

impl InProcTransport {
    /// Creates host `host`'s transport, spawning its heartbeat thread if
    /// the fabric's config enables the detector.
    pub fn new(fabric: Arc<InProcFabric>, host: usize) -> Self {
        let heartbeat = fabric.cfg.heartbeat.map(|hb| {
            let stop = Arc::new(AtomicBool::new(false));
            let fab = fabric.clone();
            let flag = stop.clone();
            let handle = std::thread::Builder::new()
                .name(format!("kimbap-hb-{host}"))
                .spawn(move || {
                    while !flag.load(Ordering::Relaxed) {
                        let now = fab.now_nanos();
                        // Beat unless silenced (the hang-simulation hook).
                        if fab.silence_until[host].load(Ordering::Relaxed) <= now {
                            fab.last_beat[host].store(now, Ordering::Relaxed);
                        }
                        // Monitor the peers: prolonged silence is suspicion.
                        let limit = hb.suspect_after.as_nanos() as u64;
                        for peer in 0..fab.hosts {
                            if peer == host || fab.gate.is_departed(peer) {
                                continue;
                            }
                            let seen = fab.last_beat[peer].load(Ordering::Relaxed);
                            if now.saturating_sub(seen) > limit {
                                fab.barrier.suspect(peer);
                            }
                        }
                        clock::sleep(hb.interval);
                    }
                })
                .expect("failed to spawn heartbeat thread");
            HeartbeatGuard {
                stop,
                handle: Some(handle),
            }
        });
        InProcTransport {
            fabric,
            host,
            _heartbeat: heartbeat,
        }
    }
}

impl std::fmt::Debug for InProcTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcTransport")
            .field("host", &self.host)
            .field("hosts", &self.fabric.hosts)
            .finish()
    }
}

impl Transport for InProcTransport {
    fn host(&self) -> usize {
        self.host
    }

    fn num_hosts(&self) -> usize {
        self.fabric.hosts
    }

    fn send(&self, to: usize, frame: Vec<u8>) {
        self.fabric.mailboxes[to][self.host].lock().push(frame);
    }

    fn drain(&self, from: usize) -> Vec<Vec<u8>> {
        std::mem::take(&mut *self.fabric.mailboxes[self.host][from].lock())
    }

    fn request_retx(&self, from: usize, req: RetxRequest) {
        let mut cell = self.fabric.retx[from][self.host].lock();
        match &mut *cell {
            Some(cur) => cur.merge(req),
            None => *cell = Some(req),
        }
    }

    fn take_retx_requests(&self) -> Vec<(usize, RetxRequest)> {
        (0..self.fabric.hosts)
            .filter_map(|r| {
                self.fabric.retx[self.host][r]
                    .lock()
                    .take()
                    .map(|req| (r, req))
            })
            .collect()
    }

    fn barrier(&self, deadline: &Deadline) -> Result<(), CommError> {
        self.fabric
            .barrier
            .wait(self.host, deadline)
            .map_err(|b| b.into_comm_error(deadline))
    }

    fn sync_missing(&self, missing: bool, deadline: &Deadline) -> Result<Vec<bool>, CommError> {
        let fab = &self.fabric;
        fab.missing[self.host].store(missing, Ordering::Relaxed);
        self.barrier(deadline)?;
        // All flags are now published; every host reads the same snapshot.
        Ok((0..fab.hosts)
            .map(|h| fab.missing[h].load(Ordering::Relaxed))
            .collect())
    }

    fn mark_failed(&self) {
        self.fabric.barrier.mark_failed(self.host);
    }

    fn mark_departed(&self) {
        self.fabric.gate.mark_departed(self.host);
    }

    fn gate_align(&self, deadline: &Deadline) -> Result<(), CommError> {
        self.fabric
            .gate
            .wait_then(self.host, deadline, || {})
            .map_err(|b| b.into_comm_error(deadline))
    }

    fn recover_reset(&self) {
        let fab = &self.fabric;
        let me = self.host;
        // Each host clears its own rows; the rows are disjoint, and
        // together the hosts cover every cell.
        for h in 0..fab.hosts {
            fab.mailboxes[me][h].lock().clear();
            *fab.retx[me][h].lock() = None;
        }
        fab.missing[me].store(false, Ordering::Relaxed);
        // A recovering host is alive by definition: refresh its beat so a
        // pre-recovery silence is not re-flagged after the heal.
        fab.last_beat[me].store(fab.now_nanos(), Ordering::Relaxed);
    }

    fn gate_heal(&self, deadline: &Deadline) -> Result<(), CommError> {
        let fab = &self.fabric;
        // The last arriver heals the barrier under the gate lock, before
        // any host is released to use it.
        fab.gate
            .wait_then(self.host, deadline, || fab.barrier.heal())
            .map_err(|b| b.into_comm_error(deadline))
    }

    fn gate_shrink(&self, deadline: &Deadline) -> Result<Vec<usize>, CommError> {
        let fab = &self.fabric;
        fab.gate
            .shrink(self.host, deadline, |h| fab.barrier.exclude(h))
            .map_err(|b| b.into_comm_error(deadline))
    }

    fn shrink_heal(&self, deadline: &Deadline) -> Result<(), CommError> {
        // Post-verdict the pending-departure count is zero, so the plain
        // recovery gate (and its barrier heal) realigns the survivors.
        self.gate_heal(deadline)
    }

    fn gate_grow(&self, deadline: &Deadline, my_generation: u64) -> Result<GrowVerdict, CommError> {
        let fab = &self.fabric;
        fab.gate
            .grow(self.host, deadline, my_generation, |h| {
                fab.barrier.include(h)
            })
            .map_err(|b| b.into_comm_error(deadline))
    }

    fn grow_heal(&self, deadline: &Deadline) -> Result<(), CommError> {
        // Post-verdict the joiners count as survivors, so the plain
        // recovery gate (and its barrier heal) aligns the grown set.
        self.gate_heal(deadline)
    }

    fn pending_joiners(&self) -> Vec<usize> {
        self.fabric.gate.pending_joiners()
    }

    fn latent_hosts(&self) -> Vec<usize> {
        self.fabric.initial_latent.clone()
    }

    fn departed_hosts(&self) -> Vec<usize> {
        self.fabric.gate.pending_departures()
    }

    fn silence(&self, d: Duration) {
        let until = self.fabric.now_nanos() + d.as_nanos() as u64;
        self.fabric.silence_until[self.host].store(until, Ordering::Relaxed);
    }
}
