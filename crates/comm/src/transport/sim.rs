//! The deterministic simulation transport: a seeded discrete-event
//! scheduler that runs all hosts cooperatively on a virtual clock.
//!
//! FoundationDB-style simulation testing for the cluster: every host is
//! still an OS thread (so host closures run unmodified), but only **one
//! host runs at a time** — a run token is handed from host to host by the
//! scheduler, and a host gives it up only inside a transport wait
//! (barrier, gate, or a virtual sleep). Hosts interact with each other
//! exclusively through the transport, so serializing those interaction
//! points serializes the whole run: which host runs next is drawn from a
//! seeded RNG, and everything else follows deterministically. The same
//! seed therefore reproduces the same interleaving, the same fault
//! verdicts, the same heartbeat suspicions, the same timeouts — byte for
//! byte.
//!
//! # Virtual time
//!
//! The fabric owns a clock that only advances when no host is runnable:
//! the scheduler pops the earliest pending timer (a sleep expiry, a phase
//! deadline, a heartbeat tick) from its event queue and jumps `now` to
//! it. A 400 ms injected stall or an 80 ms heartbeat suspicion threshold
//! costs microseconds of wall time. Each host thread installs a
//! [`crate::clock::Clock`] view of this virtual clock while it runs, so
//! `Deadline`s, `Backoff` sleeps, and injected stalls all land in the
//! event queue instead of the OS scheduler.
//!
//! # Heartbeats and deadlines without threads
//!
//! The real backends run detector threads; here both are timer events.
//! A heartbeat tick refreshes every live, unsilenced host's beat and
//! suspects peers silent past `suspect_after` — identical semantics to
//! the in-proc detector, minus the races. A phase deadline is registered
//! when a host blocks and fires only if that host is still blocked on the
//! same barrier generation, withdrawing its arrival exactly like the
//! in-proc barrier does.
//!
//! # The trace
//!
//! Every scheduling decision, send, fault verdict, barrier event,
//! suspicion, and timeout is appended to a linearized [`TraceEvent`] log
//! (dumpable as JSONL via [`TraceEvent::to_json`]). Two runs with the
//! same seed produce identical traces; a diff of two traces is a diff of
//! two schedules.

use super::{Deadline, GrowVerdict, RetxRequest, Transport, TransportConfig};
use crate::clock::Clock;
use crate::cluster::CommError;
use crate::fault::mix;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard};
use std::time::Duration;

/// Idle timer fires tolerated without any host becoming runnable before
/// the scheduler declares the run wedged and breaks every wait. With a
/// 10 ms heartbeat this is ~100 virtual seconds of pure ticking.
const MAX_IDLE_FIRES: usize = 10_000;

/// One linearized simulator event. `seq` totally orders the trace; `t` is
/// virtual nanoseconds. Two runs with the same seed and inputs produce
/// element-identical (and therefore byte-identical, via
/// [`TraceEvent::to_json`]) traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time in nanoseconds since the run started.
    pub t: u64,
    /// Position in the trace's total order.
    pub seq: u64,
    /// The acting (or affected, for suspicions) host.
    pub host: usize,
    /// Event kind: `schedule`, `send`, `barrier_arrive`,
    /// `barrier_complete`, `sync_missing`, `sleep`, `timeout`, `suspect`,
    /// `mark_failed`, `departed`, `gate_*`, `heal`, `silence`,
    /// `recover_reset`, `retx_request`, `fault_*`, `crash`, `stall`,
    /// `finish`, `deadlock`.
    pub kind: &'static str,
    /// Kind-specific detail, deterministic for a given schedule.
    pub detail: String,
}

impl TraceEvent {
    /// Serializes the event as one JSON object (one JSONL line).
    pub fn to_json(&self) -> String {
        let mut detail = String::with_capacity(self.detail.len());
        for c in self.detail.chars() {
            match c {
                '"' => detail.push_str("\\\""),
                '\\' => detail.push_str("\\\\"),
                c if (c as u32) < 0x20 => detail.push_str(&format!("\\u{:04x}", c as u32)),
                c => detail.push(c),
            }
        }
        format!(
            "{{\"t\":{},\"seq\":{},\"host\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
            self.t, self.seq, self.host, self.kind, detail
        )
    }
}

/// Shared sink a [`crate::Cluster`] fills with the simulation trace after
/// a run (see `Cluster::with_trace_sink`).
pub type TraceSink = Arc<parking_lot::Mutex<Vec<TraceEvent>>>;

/// Creates an empty [`TraceSink`] for `Cluster::with_trace_sink`, saving
/// callers a direct `parking_lot` dependency.
pub fn new_trace_sink() -> TraceSink {
    Arc::new(parking_lot::Mutex::new(Vec::new()))
}

/// What a blocked host is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocked {
    /// In the failure-aware barrier, generation `gen`.
    Barrier { gen: u64 },
    /// In the recovery gate, generation `gen`.
    Gate { gen: u64 },
    /// In the membership shrink gate, generation `gen`.
    Shrink { gen: u64 },
    /// In the membership grow gate, generation `gen`.
    Grow { gen: u64 },
    /// Virtual sleep `id` (distinguishes stale wake timers).
    Sleep { id: u64 },
}

/// A host's scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Thread not yet at the startup latch.
    Registering,
    /// Runnable, waiting to be handed the token.
    Ready,
    /// Holds the run token.
    Running,
    /// Parked in a transport wait.
    Blocked(Blocked),
    /// Closure finished (or died); never scheduled again.
    Done,
}

/// A pending virtual-time event.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TimerKind {
    /// End of a virtual sleep.
    Wake { host: usize, id: u64 },
    /// Phase deadline for a host blocked in barrier generation `gen`.
    BarrierDeadline {
        host: usize,
        gen: u64,
        phase: &'static str,
    },
    /// Phase deadline for a host blocked in gate generation `gen`.
    GateDeadline {
        host: usize,
        gen: u64,
        phase: &'static str,
    },
    /// Phase deadline for a host blocked in shrink generation `gen`.
    ShrinkDeadline {
        host: usize,
        gen: u64,
        phase: &'static str,
    },
    /// Phase deadline for a host blocked in grow generation `gen`.
    GrowDeadline {
        host: usize,
        gen: u64,
        phase: &'static str,
    },
    /// Global heartbeat tick: refresh beats, suspect the silent.
    HeartbeatTick,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Timer {
    at: u64,
    /// Insertion order; ties on `at` resolve deterministically.
    seq: u64,
    kind: TimerKind,
}

impl Ord for Timer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct SimState {
    /// Virtual nanoseconds since the run started.
    now: u64,
    /// Scheduler RNG (splitmix64 walk from the seed).
    rng: u64,
    /// Next timer insertion sequence.
    timer_seq: u64,
    /// Next trace sequence.
    trace_seq: u64,
    /// Next sleep id.
    sleep_seq: u64,
    /// Startup latch: hosts registered so far.
    registered: usize,
    /// The host currently holding the run token.
    running: Option<usize>,
    /// Hosts ready to be scheduled.
    runnable: Vec<usize>,
    status: Vec<Status>,
    /// Result delivered to a woken host (set by `wake`, taken in `block`).
    wake: Vec<Option<Result<(), CommError>>>,
    timers: BinaryHeap<Reverse<Timer>>,
    /// `mailboxes[to][from]`: frames in flight (delivery is instantaneous
    /// in virtual time; ordering and interleaving come from the seeded
    /// scheduler, loss/delay/reordering from the fault plan above).
    mailboxes: Vec<Vec<Vec<Vec<u8>>>>,
    /// `retx[sender][requester]`: merged pending re-send requests.
    retx: Vec<Vec<Option<RetxRequest>>>,
    missing: Vec<bool>,
    // Failure-aware barrier (mirrors the in-proc `FtBarrier`).
    bar_arrived: usize,
    bar_gen: u64,
    live: usize,
    failed: Vec<bool>,
    suspected: Vec<bool>,
    here: Vec<bool>,
    // Recovery gate (mirrors the in-proc `Gate`).
    gate_arrived: usize,
    gate_gen: u64,
    departed: Vec<bool>,
    /// Departed hosts not yet excluded by a shrink.
    ndeparted: usize,
    gate_here: Vec<bool>,
    // Membership shrink gate (mirrors the in-proc `Gate::shrink`).
    /// Hosts excluded by an agreed shrink: they stay departed but no
    /// longer count as participants anywhere.
    excluded: Vec<bool>,
    nexcluded: usize,
    shrink_arrived: usize,
    shrink_here: Vec<bool>,
    shrink_gen: u64,
    shrink_verdict: Vec<usize>,
    // Membership grow gate (mirrors the in-proc `Gate::grow`).
    /// Latent capacity: hosts excluded at construction that become members
    /// only once a grow verdict admits them.
    latent: Vec<bool>,
    grow_here: Vec<bool>,
    grow_gen: u64,
    /// Highest membership generation announced by this grow's arrivals.
    grow_max_gen: u64,
    grow_verdict: GrowVerdict,
    // Heartbeat ledger, in virtual nanoseconds.
    last_beat: Vec<u64>,
    silence_until: Vec<u64>,
    trace: Vec<TraceEvent>,
}

impl SimState {
    /// Barrier participants: launched hosts minus the excluded.
    fn expected(&self) -> usize {
        self.failed.len() - self.nexcluded
    }

    fn any_failed(&self) -> bool {
        self.live < self.expected()
    }

    /// The failure verdict (mirrors the in-proc mapping): all-suspected is
    /// `PeerDown`, anything harder is `HostFailure`.
    fn failure_error(&self) -> CommError {
        let failed: Vec<usize> = (0..self.failed.len()).filter(|&h| self.failed[h]).collect();
        let suspected: Vec<usize> = (0..self.suspected.len())
            .filter(|&h| self.suspected[h])
            .collect();
        if !suspected.is_empty() && suspected.len() == failed.len() {
            CommError::PeerDown { hosts: suspected }
        } else {
            CommError::HostFailure { hosts: failed }
        }
    }

    fn departed_error(&self) -> CommError {
        CommError::HostFailure {
            hosts: (0..self.departed.len())
                .filter(|&h| self.departed[h] && !self.excluded[h])
                .collect(),
        }
    }

    /// Member arrivals at the grow gate (latent candidates not counted).
    fn grow_members_here(&self) -> usize {
        (0..self.grow_here.len())
            .filter(|&h| self.grow_here[h] && !self.latent[h])
            .count()
    }

    /// Live candidates knocking at the grow gate.
    fn grow_candidates(&self) -> Vec<usize> {
        (0..self.grow_here.len())
            .filter(|&h| self.grow_here[h] && self.latent[h] && !self.departed[h])
            .collect()
    }
}

/// The shared discrete-event fabric behind [`SimTransport`]: the virtual
/// clock, the event queue, the run token, the mailboxes, and the trace.
/// Created by `Cluster::sim`; one per run.
pub struct SimFabric {
    hosts: usize,
    cfg: TransportConfig,
    state: StdMutex<SimState>,
    cv: Condvar,
    /// Hosts configured as latent capacity at construction.
    initial_latent: Vec<usize>,
}

impl std::fmt::Debug for SimFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimFabric")
            .field("hosts", &self.hosts)
            .field("cfg", &self.cfg)
            .finish()
    }
}

/// Order-sensitive digest of a frame's bytes, recorded with each traced
/// send so divergent payloads (not just divergent schedules) show up in a
/// trace diff.
fn frame_digest(frame: &[u8]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for &b in frame {
        acc = mix(acc ^ b as u64);
    }
    acc
}

impl SimFabric {
    /// Creates the fabric for `hosts` cooperatively scheduled hosts,
    /// interleaved by `seed`.
    pub fn new(hosts: usize, cfg: TransportConfig, seed: u64) -> Self {
        Self::new_with_latent(hosts, cfg, seed, &[])
    }

    /// Creates the fabric for `hosts` slots of which `latent` start as
    /// non-member capacity: they take part in no collective until a grow
    /// gate admits them. Join timing, like everything else here, is a
    /// pure function of the seed and the hosts' virtual sleeps.
    pub fn new_with_latent(hosts: usize, cfg: TransportConfig, seed: u64, latent: &[usize]) -> Self {
        let mut excluded = vec![false; hosts];
        let mut latent_flags = vec![false; hosts];
        for &h in latent {
            excluded[h] = true;
            latent_flags[h] = true;
        }
        SimFabric {
            hosts,
            cfg,
            initial_latent: latent.to_vec(),
            state: StdMutex::new(SimState {
                now: 0,
                rng: mix(seed ^ 0x73696d_u64),
                timer_seq: 0,
                trace_seq: 0,
                sleep_seq: 0,
                registered: 0,
                running: None,
                runnable: Vec::new(),
                status: vec![Status::Registering; hosts],
                wake: (0..hosts).map(|_| None).collect(),
                timers: BinaryHeap::new(),
                mailboxes: (0..hosts)
                    .map(|_| (0..hosts).map(|_| Vec::new()).collect())
                    .collect(),
                retx: (0..hosts).map(|_| vec![None; hosts]).collect(),
                missing: vec![false; hosts],
                bar_arrived: 0,
                bar_gen: 0,
                live: hosts - latent.len(),
                failed: vec![false; hosts],
                suspected: vec![false; hosts],
                here: vec![false; hosts],
                gate_arrived: 0,
                gate_gen: 0,
                departed: vec![false; hosts],
                ndeparted: 0,
                gate_here: vec![false; hosts],
                excluded,
                nexcluded: latent.len(),
                shrink_arrived: 0,
                shrink_here: vec![false; hosts],
                shrink_gen: 0,
                shrink_verdict: Vec::new(),
                latent: latent_flags,
                grow_here: vec![false; hosts],
                grow_gen: 0,
                grow_max_gen: 0,
                grow_verdict: GrowVerdict {
                    joined: Vec::new(),
                    members: 0,
                    generation: 0,
                },
                last_beat: vec![0; hosts],
                silence_until: vec![0; hosts],
                trace: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SimState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn trace(&self, s: &mut SimState, host: usize, kind: &'static str, detail: String) {
        let ev = TraceEvent {
            t: s.now,
            seq: s.trace_seq,
            host,
            kind,
            detail,
        };
        s.trace_seq += 1;
        s.trace.push(ev);
    }

    fn push_timer(&self, s: &mut SimState, at: u64, kind: TimerKind) {
        let seq = s.timer_seq;
        s.timer_seq += 1;
        s.timers.push(Reverse(Timer { at, seq, kind }));
    }

    /// Moves a blocked host back onto the runnable list with `result`
    /// waiting for it.
    fn wake(&self, s: &mut SimState, host: usize, result: Result<(), CommError>) {
        debug_assert!(matches!(s.status[host], Status::Blocked(_)));
        s.status[host] = Status::Ready;
        s.wake[host] = Some(result);
        s.runnable.push(host);
    }

    /// Errors every host blocked in the barrier with the current failure
    /// verdict (arrivals stay counted — recovery's heal resets them, same
    /// as the in-proc barrier).
    fn break_barrier_waiters(&self, s: &mut SimState) {
        let err = s.failure_error();
        for h in 0..self.hosts {
            if matches!(s.status[h], Status::Blocked(Blocked::Barrier { .. })) {
                self.wake(s, h, Err(err.clone()));
            }
        }
    }

    /// Records a heartbeat suspicion of `peer` (never downgrades a hard
    /// failure) and breaks barrier waits. Excluded hosts are no longer
    /// participants: suspecting one would corrupt the live count forever.
    fn suspect(&self, s: &mut SimState, peer: usize) {
        if s.failed[peer] || s.excluded[peer] {
            return;
        }
        s.failed[peer] = true;
        s.suspected[peer] = true;
        s.live -= 1;
        self.trace(s, peer, "suspect", String::new());
        self.break_barrier_waiters(s);
    }

    /// Hands the run token to a seeded-random runnable host; when none is
    /// runnable, advances virtual time by firing the earliest timers until
    /// one is (or declares the run wedged and breaks every wait).
    fn schedule(&self, s: &mut SimState) {
        debug_assert!(s.running.is_none());
        let mut idle_fires = 0usize;
        loop {
            if !s.runnable.is_empty() {
                s.rng = mix(s.rng);
                let i = (s.rng % s.runnable.len() as u64) as usize;
                let host = s.runnable.swap_remove(i);
                s.running = Some(host);
                s.status[host] = Status::Running;
                self.trace(s, host, "schedule", String::new());
                self.cv.notify_all();
                return;
            }
            if s.status.iter().all(|st| *st == Status::Done) {
                // Run over; drop whatever timers remain (heartbeats).
                s.timers.clear();
                self.cv.notify_all();
                return;
            }
            match s.timers.pop() {
                Some(Reverse(timer)) => {
                    s.now = s.now.max(timer.at);
                    self.fire(s, timer.kind);
                    idle_fires += 1;
                    if idle_fires > MAX_IDLE_FIRES && s.runnable.is_empty() {
                        self.break_deadlock(s, "no progress after repeated timer fires");
                    }
                }
                None => self.break_deadlock(s, "event queue empty with hosts blocked"),
            }
        }
    }

    /// "Never hang": wakes every blocked host — sleepers resume, collective
    /// waiters get a protocol error that surfaces as a reported host
    /// failure instead of a wedged process.
    fn break_deadlock(&self, s: &mut SimState, why: &str) {
        self.trace(s, usize::from(self.hosts == 0), "deadlock", why.to_string());
        let err = CommError::Protocol {
            detail: format!("sim deadlock at t={}ns: {why}", s.now),
        };
        let mut woke = false;
        for h in 0..self.hosts {
            match s.status[h] {
                Status::Blocked(Blocked::Sleep { .. }) => {
                    self.wake(s, h, Ok(()));
                    woke = true;
                }
                Status::Blocked(_) => {
                    self.wake(s, h, Err(err.clone()));
                    woke = true;
                }
                _ => {}
            }
        }
        assert!(
            woke,
            "sim scheduler wedged with no blocked hosts: {why} (status {:?})",
            s.status
        );
    }

    /// Fires one timer event.
    fn fire(&self, s: &mut SimState, kind: TimerKind) {
        match kind {
            TimerKind::Wake { host, id } => {
                if s.status[host] == Status::Blocked(Blocked::Sleep { id }) {
                    self.wake(s, host, Ok(()));
                }
            }
            TimerKind::BarrierDeadline { host, gen, phase } => {
                if s.status[host] == Status::Blocked(Blocked::Barrier { gen }) {
                    // Withdraw the arrival, exactly like the in-proc wait.
                    s.bar_arrived -= 1;
                    s.here[host] = false;
                    let laggards = (0..self.hosts)
                        .filter(|&h| h != host && !s.here[h] && !s.failed[h] && !s.excluded[h])
                        .collect();
                    self.trace(s, host, "timeout", format!("phase={phase}"));
                    self.wake(s, host, Err(CommError::Timeout { phase, hosts: laggards }));
                }
            }
            TimerKind::GateDeadline { host, gen, phase } => {
                if s.status[host] == Status::Blocked(Blocked::Gate { gen }) {
                    s.gate_arrived -= 1;
                    s.gate_here[host] = false;
                    let laggards = (0..self.hosts)
                        .filter(|&h| h != host && !s.gate_here[h] && !s.departed[h])
                        .collect();
                    self.trace(s, host, "timeout", format!("phase={phase} at=gate"));
                    self.wake(s, host, Err(CommError::Timeout { phase, hosts: laggards }));
                }
            }
            TimerKind::ShrinkDeadline { host, gen, phase } => {
                if s.status[host] == Status::Blocked(Blocked::Shrink { gen }) {
                    s.shrink_arrived -= 1;
                    s.shrink_here[host] = false;
                    let laggards = (0..self.hosts)
                        .filter(|&h| {
                            h != host && !s.shrink_here[h] && !s.departed[h] && !s.excluded[h]
                        })
                        .collect();
                    self.trace(s, host, "timeout", format!("phase={phase} at=shrink"));
                    self.wake(s, host, Err(CommError::Timeout { phase, hosts: laggards }));
                }
            }
            TimerKind::GrowDeadline { host, gen, phase } => {
                if s.status[host] == Status::Blocked(Blocked::Grow { gen }) {
                    // Withdraw the arrival: a stale knock (or member
                    // arrival) from a host that gave up must not let a
                    // later grow complete early.
                    s.grow_here[host] = false;
                    let laggards = (0..self.hosts)
                        .filter(|&h| {
                            h != host && !s.grow_here[h] && !s.departed[h] && !s.excluded[h]
                        })
                        .collect();
                    self.trace(s, host, "timeout", format!("phase={phase} at=grow"));
                    self.wake(s, host, Err(CommError::Timeout { phase, hosts: laggards }));
                }
            }
            TimerKind::HeartbeatTick => {
                let Some(hb) = self.cfg.heartbeat else { return };
                // Every live, unsilenced host beats — same as each host's
                // detector thread on the real backends.
                for h in 0..self.hosts {
                    if !s.departed[h] && s.silence_until[h] <= s.now {
                        s.last_beat[h] = s.now;
                    }
                }
                let limit = hb.suspect_after.as_nanos() as u64;
                for peer in 0..self.hosts {
                    if s.departed[peer] || s.failed[peer] {
                        continue;
                    }
                    if s.now.saturating_sub(s.last_beat[peer]) > limit {
                        self.suspect(s, peer);
                    }
                }
                if s.status.iter().any(|st| *st != Status::Done) {
                    let at = s.now.saturating_add(hb.interval.as_nanos() as u64);
                    self.push_timer(s, at, TimerKind::HeartbeatTick);
                }
            }
        }
    }

    /// Startup latch: parks the calling host thread until every host has
    /// registered and the scheduler hands it the token for the first time.
    /// The initial runnable set is `0..hosts` regardless of thread startup
    /// order, so the first pick is already seed-determined.
    pub fn register(&self, host: usize) {
        let mut s = self.lock();
        assert_eq!(s.status[host], Status::Registering, "double register");
        s.status[host] = Status::Ready;
        s.registered += 1;
        if s.registered == self.hosts {
            s.runnable = (0..self.hosts).collect();
            if let Some(hb) = self.cfg.heartbeat {
                let at = s.now + hb.interval.as_nanos() as u64;
                self.push_timer(&mut s, at, TimerKind::HeartbeatTick);
            }
            self.schedule(&mut s);
        }
        while s.running != Some(host) {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Marks the host's closure finished and releases the token for good.
    pub fn finish(&self, host: usize) {
        let mut s = self.lock();
        debug_assert_eq!(s.running, Some(host), "finish without the token");
        s.status[host] = Status::Done;
        s.running = None;
        self.trace(&mut s, host, "finish", String::new());
        self.schedule(&mut s);
    }

    /// Takes the recorded trace (the run must be over).
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.lock().trace)
    }

    /// Parks `host`, hands the token away, and waits to be woken with a
    /// result.
    fn block(
        &self,
        mut s: MutexGuard<'_, SimState>,
        host: usize,
        b: Blocked,
    ) -> Result<(), CommError> {
        debug_assert_eq!(s.running, Some(host), "blocking without the token");
        s.status[host] = Status::Blocked(b);
        s.running = None;
        self.schedule(&mut s);
        while s.running != Some(host) {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.wake[host].take().expect("scheduled without a wake result")
    }

    fn now(&self) -> u64 {
        self.lock().now
    }

    /// Virtual sleep: the host gives up the token until `now + d`.
    fn sleep(&self, host: usize, d: Duration) {
        if d.is_zero() {
            return;
        }
        let mut s = self.lock();
        let id = s.sleep_seq;
        s.sleep_seq += 1;
        let at = s.now.saturating_add(d.as_nanos() as u64);
        self.trace(&mut s, host, "sleep", format!("until={at}"));
        self.push_timer(&mut s, at, TimerKind::Wake { host, id });
        // A deadlock-break resumes the sleeper early with Ok; either way
        // there is nothing to propagate from a sleep.
        let _ = self.block(s, host, Blocked::Sleep { id });
    }

    fn barrier(&self, host: usize, deadline: &Deadline) -> Result<(), CommError> {
        let mut s = self.lock();
        if s.any_failed() {
            return Err(s.failure_error());
        }
        s.bar_arrived += 1;
        s.here[host] = true;
        let arrive_gen = s.bar_gen;
        self.trace(&mut s, host, "barrier_arrive", format!("gen={arrive_gen}"));
        if s.bar_arrived >= s.live {
            s.bar_arrived = 0;
            for h in &mut s.here {
                *h = false;
            }
            s.bar_gen += 1;
            let done_gen = s.bar_gen;
            self.trace(&mut s, host, "barrier_complete", format!("gen={done_gen}"));
            for h in 0..self.hosts {
                if matches!(s.status[h], Status::Blocked(Blocked::Barrier { .. })) {
                    self.wake(&mut s, h, Ok(()));
                }
            }
            return Ok(());
        }
        let gen = s.bar_gen;
        if let Some(at) = deadline.at_nanos() {
            self.push_timer(
                &mut s,
                at,
                TimerKind::BarrierDeadline {
                    host,
                    gen,
                    phase: deadline.phase(),
                },
            );
        }
        self.block(s, host, Blocked::Barrier { gen })
    }

    /// Gate arrival + wait; with `heal`, the last arriver restores the
    /// barrier to all-alive before anyone is released (mirrors the
    /// in-proc `Gate::wait_then(.., || barrier.heal())`).
    fn gate(&self, host: usize, deadline: &Deadline, heal: bool) -> Result<(), CommError> {
        let mut s = self.lock();
        if s.ndeparted > 0 {
            return Err(s.departed_error());
        }
        s.gate_arrived += 1;
        s.gate_here[host] = true;
        let kind = if heal { "gate_heal" } else { "gate_align" };
        let arrive_gen = s.gate_gen;
        self.trace(&mut s, host, kind, format!("gen={arrive_gen}"));
        if s.gate_arrived >= self.hosts - s.nexcluded - s.ndeparted {
            if heal {
                s.live = self.hosts - s.nexcluded;
                for f in &mut s.failed {
                    *f = false;
                }
                for f in &mut s.suspected {
                    *f = false;
                }
                for h in &mut s.here {
                    *h = false;
                }
                s.bar_arrived = 0;
                self.trace(&mut s, host, "heal", String::new());
            }
            s.gate_arrived = 0;
            for h in &mut s.gate_here {
                *h = false;
            }
            s.gate_gen += 1;
            for h in 0..self.hosts {
                if matches!(s.status[h], Status::Blocked(Blocked::Gate { .. })) {
                    self.wake(&mut s, h, Ok(()));
                }
            }
            return Ok(());
        }
        let gen = s.gate_gen;
        if let Some(at) = deadline.at_nanos() {
            self.push_timer(
                &mut s,
                at,
                TimerKind::GateDeadline {
                    host,
                    gen,
                    phase: deadline.phase(),
                },
            );
        }
        self.block(s, host, Blocked::Gate { gen })
    }

    /// Completes the shrink gate if every survivor has arrived: agrees the
    /// verdict (departed-but-not-excluded hosts), excludes them from every
    /// future collective, and releases the waiters. Called on every shrink
    /// arrival *and* on every departure notification, since either event
    /// can satisfy the survivor count.
    fn try_finalize_shrink(&self, s: &mut SimState, actor: usize) -> bool {
        let survivors = self.hosts - s.nexcluded - s.ndeparted;
        if s.shrink_arrived == 0 || s.shrink_arrived < survivors {
            return false;
        }
        let verdict: Vec<usize> = (0..self.hosts)
            .filter(|&h| s.departed[h] && !s.excluded[h])
            .collect();
        for &h in &verdict {
            s.excluded[h] = true;
            s.nexcluded += 1;
            if s.failed[h] {
                // Its failure already decremented `live`; clearing the
                // flags alongside the exclusion keeps live == expected.
                s.failed[h] = false;
                s.suspected[h] = false;
            } else {
                s.live -= 1;
            }
        }
        s.ndeparted = 0;
        s.shrink_verdict = verdict;
        s.shrink_arrived = 0;
        for h in &mut s.shrink_here {
            *h = false;
        }
        s.shrink_gen += 1;
        self.trace(
            s,
            actor,
            "gate_shrink_complete",
            format!("gen={} departed={:?}", s.shrink_gen, s.shrink_verdict),
        );
        for h in 0..self.hosts {
            if matches!(s.status[h], Status::Blocked(Blocked::Shrink { .. })) {
                self.wake(s, h, Ok(()));
            }
        }
        true
    }

    /// Shrink-gate arrival + wait: returns the agreed departure verdict
    /// once every survivor has arrived (see
    /// [`super::Transport::gate_shrink`]).
    fn shrink(&self, host: usize, deadline: &Deadline) -> Result<Vec<usize>, CommError> {
        let mut s = self.lock();
        s.shrink_arrived += 1;
        s.shrink_here[host] = true;
        let gen = s.shrink_gen;
        self.trace(&mut s, host, "gate_shrink", format!("gen={gen}"));
        if self.try_finalize_shrink(&mut s, host) {
            return Ok(s.shrink_verdict.clone());
        }
        if let Some(at) = deadline.at_nanos() {
            self.push_timer(
                &mut s,
                at,
                TimerKind::ShrinkDeadline {
                    host,
                    gen,
                    phase: deadline.phase(),
                },
            );
        }
        self.block(s, host, Blocked::Shrink { gen })?;
        Ok(self.lock().shrink_verdict.clone())
    }

    /// Completes the grow gate if every member has arrived and at least
    /// one live candidate is knocking: admits the candidates into every
    /// collective, records the verdict, and releases the waiters.
    fn try_finalize_grow(&self, s: &mut SimState, actor: usize) -> bool {
        let survivors = self.hosts - s.nexcluded - s.ndeparted;
        let candidates = s.grow_candidates();
        if s.grow_members_here() < survivors || candidates.is_empty() {
            return false;
        }
        for &h in &candidates {
            s.excluded[h] = false;
            s.nexcluded -= 1;
            s.latent[h] = false;
            s.failed[h] = false;
            s.suspected[h] = false;
            s.here[h] = false;
            s.live += 1;
        }
        let members = (0..self.hosts)
            .filter(|&h| !s.excluded[h] && !s.departed[h])
            .fold(0u64, |m, h| m | (1 << h));
        s.grow_verdict = GrowVerdict {
            joined: candidates,
            members,
            generation: s.grow_max_gen,
        };
        for h in &mut s.grow_here {
            *h = false;
        }
        s.grow_max_gen = 0;
        s.grow_gen += 1;
        self.trace(
            s,
            actor,
            "gate_grow_complete",
            format!(
                "gen={} joined={:?} members={:#x}",
                s.grow_gen, s.grow_verdict.joined, members
            ),
        );
        for h in 0..self.hosts {
            if matches!(s.status[h], Status::Blocked(Blocked::Grow { .. })) {
                self.wake(s, h, Ok(()));
            }
        }
        true
    }

    /// Grow-gate arrival + wait: members announce their membership
    /// generation, latent candidates knock; everyone receives the agreed
    /// [`GrowVerdict`] once all members and at least one candidate are
    /// here (see [`super::Transport::gate_grow`]).
    fn grow(&self, host: usize, deadline: &Deadline, my_gen: u64) -> Result<GrowVerdict, CommError> {
        let mut s = self.lock();
        if s.ndeparted > 0 {
            return Err(s.departed_error());
        }
        s.grow_here[host] = true;
        s.grow_max_gen = s.grow_max_gen.max(my_gen);
        let gen = s.grow_gen;
        let kind = if s.latent[host] { "join" } else { "gate_grow" };
        self.trace(&mut s, host, kind, format!("gen={gen} my_gen={my_gen}"));
        if self.try_finalize_grow(&mut s, host) {
            return Ok(s.grow_verdict.clone());
        }
        if let Some(at) = deadline.at_nanos() {
            self.push_timer(
                &mut s,
                at,
                TimerKind::GrowDeadline {
                    host,
                    gen,
                    phase: deadline.phase(),
                },
            );
        }
        self.block(s, host, Blocked::Grow { gen })?;
        Ok(self.lock().grow_verdict.clone())
    }
}

/// One host's handle to the shared [`SimFabric`]. Only valid under
/// `Cluster::sim`'s cooperative runner: methods assume the calling host
/// currently holds the run token.
pub struct SimTransport {
    fabric: Arc<SimFabric>,
    host: usize,
}

impl std::fmt::Debug for SimTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimTransport")
            .field("host", &self.host)
            .field("hosts", &self.fabric.hosts)
            .finish()
    }
}

impl SimTransport {
    /// Creates host `host`'s handle.
    pub fn new(fabric: Arc<SimFabric>, host: usize) -> Self {
        SimTransport { fabric, host }
    }

    /// This host's view of the fabric's virtual clock, for
    /// [`crate::clock::with_clock`].
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::new(SimClock {
            fabric: self.fabric.clone(),
            host: self.host,
        })
    }
}

impl Transport for SimTransport {
    fn host(&self) -> usize {
        self.host
    }

    fn num_hosts(&self) -> usize {
        self.fabric.hosts
    }

    fn send(&self, to: usize, frame: Vec<u8>) {
        let fab = &self.fabric;
        let mut s = fab.lock();
        fab.trace(
            &mut s,
            self.host,
            "send",
            format!("to={to} len={} digest={:016x}", frame.len(), frame_digest(&frame)),
        );
        s.mailboxes[to][self.host].push(frame);
    }

    fn drain(&self, from: usize) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.fabric.lock().mailboxes[self.host][from])
    }

    fn request_retx(&self, from: usize, req: RetxRequest) {
        let fab = &self.fabric;
        let mut s = fab.lock();
        let what = match &req {
            RetxRequest::All => "all".to_string(),
            RetxRequest::Chunks(c) => format!("chunks={c:?}"),
        };
        fab.trace(
            &mut s,
            self.host,
            "retx_request",
            format!("from={from} {what}"),
        );
        match &mut s.retx[from][self.host] {
            Some(cur) => cur.merge(req),
            cell => *cell = Some(req),
        }
    }

    fn take_retx_requests(&self) -> Vec<(usize, RetxRequest)> {
        let mut s = self.fabric.lock();
        (0..self.fabric.hosts)
            .filter_map(|r| s.retx[self.host][r].take().map(|req| (r, req)))
            .collect()
    }

    fn barrier(&self, deadline: &Deadline) -> Result<(), CommError> {
        self.fabric.barrier(self.host, deadline)
    }

    fn sync_missing(&self, missing: bool, deadline: &Deadline) -> Result<Vec<bool>, CommError> {
        let fab = &self.fabric;
        {
            let mut s = fab.lock();
            s.missing[self.host] = missing;
            fab.trace(&mut s, self.host, "sync_missing", format!("missing={missing}"));
        }
        // The barrier below separates this host's publish from every
        // peer's snapshot read; no host can republish before all reads
        // because the next publish is itself preceded by a barrier.
        fab.barrier(self.host, deadline)?;
        let s = fab.lock();
        Ok((0..fab.hosts).map(|h| s.missing[h]).collect())
    }

    fn mark_failed(&self) {
        let fab = &self.fabric;
        let mut s = fab.lock();
        if s.excluded[self.host] {
            return;
        }
        if s.failed[self.host] {
            s.suspected[self.host] = false;
            return;
        }
        s.failed[self.host] = true;
        s.live -= 1;
        fab.trace(&mut s, self.host, "mark_failed", String::new());
        fab.break_barrier_waiters(&mut s);
    }

    fn mark_departed(&self) {
        let fab = &self.fabric;
        let mut s = fab.lock();
        if s.departed[self.host] || s.excluded[self.host] {
            return;
        }
        s.departed[self.host] = true;
        s.ndeparted += 1;
        fab.trace(&mut s, self.host, "departed", String::new());
        let err = s.departed_error();
        for h in 0..fab.hosts {
            if matches!(s.status[h], Status::Blocked(Blocked::Gate { .. })) {
                // Withdraw the waiter's arrival along with the error:
                // a stale count would let the post-shrink heal gate
                // complete before every survivor has re-arrived.
                s.gate_arrived -= 1;
                s.gate_here[h] = false;
                fab.wake(&mut s, h, Err(err.clone()));
            }
        }
        // A departure can be the event that completes a pending shrink
        // gate (the survivors were all waiting on this host's verdict).
        fab.try_finalize_shrink(&mut s, self.host);
        // Grow waiters abort (withdrawing their arrival): the membership
        // must shrink before another grow can be agreed.
        let err = s.departed_error();
        for h in 0..fab.hosts {
            if matches!(s.status[h], Status::Blocked(Blocked::Grow { .. })) {
                s.grow_here[h] = false;
                fab.wake(&mut s, h, Err(err.clone()));
            }
        }
    }

    fn gate_align(&self, deadline: &Deadline) -> Result<(), CommError> {
        self.fabric.gate(self.host, deadline, false)
    }

    fn recover_reset(&self) {
        let fab = &self.fabric;
        let mut s = fab.lock();
        let me = self.host;
        for h in 0..fab.hosts {
            s.mailboxes[me][h].clear();
            s.retx[me][h] = None;
        }
        s.missing[me] = false;
        // A recovering host is alive: refresh its beat so the silence
        // that triggered recovery is not re-flagged after the heal.
        s.last_beat[me] = s.now;
        fab.trace(&mut s, me, "recover_reset", String::new());
    }

    fn gate_heal(&self, deadline: &Deadline) -> Result<(), CommError> {
        self.fabric.gate(self.host, deadline, true)
    }

    fn gate_shrink(&self, deadline: &Deadline) -> Result<Vec<usize>, CommError> {
        self.fabric.shrink(self.host, deadline)
    }

    fn shrink_heal(&self, deadline: &Deadline) -> Result<(), CommError> {
        self.fabric.gate(self.host, deadline, true)
    }

    fn gate_grow(&self, deadline: &Deadline, my_generation: u64) -> Result<GrowVerdict, CommError> {
        self.fabric.grow(self.host, deadline, my_generation)
    }

    fn grow_heal(&self, deadline: &Deadline) -> Result<(), CommError> {
        self.fabric.gate(self.host, deadline, true)
    }

    fn pending_joiners(&self) -> Vec<usize> {
        self.fabric.lock().grow_candidates()
    }

    fn latent_hosts(&self) -> Vec<usize> {
        self.fabric.initial_latent.clone()
    }

    fn departed_hosts(&self) -> Vec<usize> {
        let s = self.fabric.lock();
        (0..self.fabric.hosts)
            .filter(|&h| s.departed[h] && !s.excluded[h])
            .collect()
    }

    fn silence(&self, d: Duration) {
        let fab = &self.fabric;
        let mut s = fab.lock();
        let until = s.now.saturating_add(d.as_nanos() as u64);
        s.silence_until[self.host] = until;
        fab.trace(&mut s, self.host, "silence", format!("until={until}"));
    }

    fn note(&self, kind: &'static str, detail: String) {
        let fab = &self.fabric;
        let mut s = fab.lock();
        fab.trace(&mut s, self.host, kind, detail);
    }
}

/// A host's view of the fabric's virtual clock.
struct SimClock {
    fabric: Arc<SimFabric>,
    host: usize,
}

impl Clock for SimClock {
    fn now_nanos(&self) -> u64 {
        self.fabric.now()
    }

    fn sleep(&self, d: Duration) {
        self.fabric.sleep(self.host, d);
    }
}
