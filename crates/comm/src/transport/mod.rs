//! The pluggable host-to-host transport behind the cluster's collectives.
//!
//! [`crate::HostCtx`]'s exchange protocol — framing, sequencing, CRC
//! validation, fault injection, retransmission from the retained outbox,
//! and the collective retry verdict — is backend-agnostic; everything that
//! actually moves bytes between hosts sits behind the [`Transport`] trait.
//! Two backends implement it:
//!
//! * [`inproc::InProcTransport`] — the original in-memory fabric (shared
//!   mailboxes, a failure-aware barrier, a recovery gate), the default and
//!   the deterministic test backend;
//! * [`tcp::TcpTransport`] — a real TCP mesh (one connection per host
//!   pair) for multi-process runs via `kimbap run --transport tcp`.
//!
//! Robustness is layered on the trait boundary, not per backend: phase
//! [`Deadline`]s bound every blocking wait (a hung peer surfaces as
//! [`crate::CommError::Timeout`] instead of wedging the round), an
//! optional heartbeat failure detector turns silent peers into
//! [`crate::CommError::PeerDown`], and retries use [`Backoff`] with
//! exponential growth and decorrelated jitter.

use crate::cluster::CommError;
use crate::fault::mix;
use std::time::Duration;

pub mod inproc;
pub mod sim;
pub mod tcp;

/// A phase deadline carried into every blocking transport wait.
///
/// `Deadline::none()` (the default) waits forever — exactly the pre-PR
/// behavior. A bounded deadline makes the wait return
/// [`CommError::Timeout`] naming the phase and the laggard hosts.
///
/// Expiry is stored as nanoseconds on the ambient [`crate::clock::Clock`]
/// rather than an `Instant`, so a deadline stamped inside the simulation
/// backend expires in virtual time — microseconds of wall time — while a
/// deadline stamped on a real run behaves exactly as before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Option<u64>,
    phase: &'static str,
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::none()
    }
}

impl Deadline {
    /// An unbounded deadline: waits block until the condition resolves.
    pub const fn none() -> Self {
        Deadline {
            at: None,
            phase: "",
        }
    }

    /// A deadline `timeout` from now (on the ambient clock), attributed to
    /// `phase`.
    pub fn after(phase: &'static str, timeout: Duration) -> Self {
        Deadline {
            at: crate::clock::now_nanos().checked_add(timeout.as_nanos() as u64),
            phase,
        }
    }

    /// [`Deadline::after`] when a timeout is configured, otherwise
    /// [`Deadline::none`].
    pub fn maybe(phase: &'static str, timeout: Option<Duration>) -> Self {
        match timeout {
            Some(t) => Deadline::after(phase, t),
            None => Deadline {
                at: None,
                phase,
            },
        }
    }

    /// The phase label used in [`CommError::Timeout`].
    pub fn phase(&self) -> &'static str {
        if self.phase.is_empty() {
            "collective"
        } else {
            self.phase
        }
    }

    /// Time left before expiry (on the ambient clock); `None` means
    /// unbounded.
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| Duration::from_nanos(at.saturating_sub(crate::clock::now_nanos())))
    }

    /// Absolute expiry in ambient-clock nanoseconds; `None` means
    /// unbounded. The simulation backend uses this to register timer
    /// events instead of polling `remaining`.
    pub fn at_nanos(&self) -> Option<u64> {
        self.at
    }

    /// True once a bounded deadline has passed.
    pub fn expired(&self) -> bool {
        matches!(self.remaining(), Some(d) if d.is_zero())
    }
}

/// Exponential backoff with decorrelated jitter (seeded, hence
/// deterministic): each delay is drawn uniformly from
/// `[base, 3 * previous]` and clamped to `cap`.
///
/// Replaces fixed `20µs << attempt` retry sleeps: jitter decorrelates the
/// retry storms of hosts that failed together, while the seed keeps any
/// single host's schedule reproducible.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    cur: Duration,
    rng: u64,
}

impl Backoff {
    /// A backoff starting at `base` and never exceeding `cap`.
    pub fn new(seed: u64, base: Duration, cap: Duration) -> Self {
        Backoff {
            base,
            cap,
            cur: base,
            rng: mix(seed),
        }
    }

    /// The default retransmission backoff for `host` (tens of microseconds
    /// up to ~2ms — the in-proc exchange retry scale).
    pub fn retransmit(host: usize) -> Self {
        Backoff::new(
            host as u64 ^ 0x7261_6e73_6d69_7473,
            Duration::from_micros(20),
            Duration::from_millis(2),
        )
    }

    /// The default reconnect backoff for `host` (milliseconds up to a
    /// second — TCP connection establishment scale).
    pub fn reconnect(host: usize) -> Self {
        Backoff::new(
            host as u64 ^ 0x7265_636f_6e6e_6563,
            Duration::from_millis(2),
            Duration::from_secs(1),
        )
    }

    /// Draws the next delay.
    pub fn next_delay(&mut self) -> Duration {
        self.rng = mix(self.rng);
        let lo = self.base.as_nanos() as u64;
        let hi = (self.cur.as_nanos() as u64).saturating_mul(3).max(lo + 1);
        let nanos = lo + self.rng % (hi - lo);
        self.cur = Duration::from_nanos(nanos).min(self.cap);
        self.cur
    }

    /// Sleeps for the next delay on the ambient clock (virtual time under
    /// the simulation backend).
    pub fn sleep(&mut self) {
        crate::clock::sleep(self.next_delay());
    }
}

/// Heartbeat failure-detector settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// How often each host announces liveness.
    pub interval: Duration,
    /// Silence longer than this marks the peer suspected
    /// ([`CommError::PeerDown`]).
    pub suspect_after: Duration,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: Duration::from_millis(25),
            suspect_after: Duration::from_millis(250),
        }
    }
}

/// Transport-level options, shared by both backends.
///
/// The default disables the heartbeat detector: no extra threads, no
/// timing sensitivity, bit-identical behavior to the pre-transport
/// cluster. Tests and the multi-process launcher opt in explicitly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransportConfig {
    /// Run the heartbeat failure detector with these settings; `None`
    /// (default) disables it.
    pub heartbeat: Option<HeartbeatConfig>,
}

impl TransportConfig {
    /// A config with the heartbeat detector enabled at `hb`.
    pub fn with_heartbeat(hb: HeartbeatConfig) -> Self {
        TransportConfig {
            heartbeat: Some(hb),
        }
    }
}

/// What a receiver asks a sender to re-send for the current exchange.
///
/// With chunked payloads the retransmit granularity is per chunk: a
/// receiver that knows exactly which chunk indices it is missing asks for
/// just those, and a receiver that has not yet seen the stream terminator
/// (so cannot know the full extent) asks for everything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetxRequest {
    /// Re-send every retained chunk of the current exchange.
    All,
    /// Re-send just these chunk indices (sorted, deduplicated).
    Chunks(Vec<u32>),
}

impl RetxRequest {
    /// Merges another request into this one: `All` absorbs everything;
    /// two chunk lists take their sorted union.
    pub fn merge(&mut self, other: RetxRequest) {
        match (&mut *self, other) {
            (RetxRequest::All, _) => {}
            (_, RetxRequest::All) => *self = RetxRequest::All,
            (RetxRequest::Chunks(mine), RetxRequest::Chunks(theirs)) => {
                mine.extend(theirs);
                mine.sort_unstable();
                mine.dedup();
            }
        }
    }
}

/// The agreed outcome of a membership grow: which latent hosts were
/// admitted, what the post-grow member set is, and the generation the
/// expanded cluster continues from.
///
/// Every participant of the same grow gate — survivors and joiners alike
/// — receives an identical verdict. The member mask is authoritative: a
/// joiner has no way to know which hosts earlier shrinks removed (or
/// earlier grows added), so it adopts the mask instead of deriving one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrowVerdict {
    /// Physical ids of the hosts admitted by this grow, sorted.
    pub joined: Vec<usize>,
    /// Post-grow member mask (bit `h` set ⇔ physical host `h` is a
    /// member), including the newly admitted hosts.
    pub members: u64,
    /// The highest membership generation any participant had completed
    /// before this grow; everyone continues at `generation + 1`.
    pub generation: u64,
}

/// Moves framed bytes between hosts and implements the collective
/// synchronization primitives the exchange protocol is built on.
///
/// One instance exists per host (it knows its own identity). Methods are
/// called from the host's main thread; implementations must be `Sync`
/// because [`crate::HostCtx`] is shared with intra-host worker closures.
///
/// The generic layer in `cluster.rs` owns everything above this trait:
/// sequence numbers, the retained outbox, delayed-frame buffers, CRC
/// validation, fault injection, and the retry loop. Implementations only
/// move bytes and synchronize.
pub trait Transport: Sync {
    /// This host's id in `0..num_hosts`.
    fn host(&self) -> usize;

    /// Number of hosts in the mesh.
    fn num_hosts(&self) -> usize;

    /// Queues one raw frame for delivery to `to`. Best-effort: loss is
    /// detected (and repaired) by the generic retransmission layer, and
    /// dead peers surface from the next collective wait.
    fn send(&self, to: usize, frame: Vec<u8>);

    /// Takes every frame that has arrived from `from`.
    fn drain(&self, from: usize) -> Vec<Vec<u8>>;

    /// Asks `from` to re-send retained chunks of its current exchange
    /// payload for this host. Requests accumulate on the sender side via
    /// [`RetxRequest::merge`] until collected.
    fn request_retx(&self, from: usize, req: RetxRequest);

    /// The peers that asked this host to re-send since the last call,
    /// with their merged requests (clearing the requests).
    fn take_retx_requests(&self) -> Vec<(usize, RetxRequest)>;

    /// Failure-aware barrier over all hosts, bounded by `deadline`.
    fn barrier(&self, deadline: &Deadline) -> Result<(), CommError>;

    /// Collective missing-flag sync: publishes this host's flag, waits for
    /// every host's, and returns the host-indexed snapshot (own flag
    /// included). Doubles as a barrier: every host sees the same snapshot.
    fn sync_missing(&self, missing: bool, deadline: &Deadline) -> Result<Vec<bool>, CommError>;

    /// Marks this host failed, waking every peer's collective waits with
    /// [`CommError::HostFailure`]. Idempotent.
    fn mark_failed(&self);

    /// Marks this host as permanently gone (closure finished or died
    /// unrecoverably); recovery alignment reports it instead of hanging.
    /// Idempotent.
    fn mark_departed(&self);

    /// Recovery alignment, phase 1: waits until every non-departed host
    /// has stopped issuing traffic and entered recovery.
    fn gate_align(&self, deadline: &Deadline) -> Result<(), CommError>;

    /// Recovery alignment, phase 2: discards this host's transport-side
    /// state (undelivered frames, retransmission requests, barrier
    /// progress). Called between [`Transport::gate_align`] and
    /// [`Transport::gate_heal`], when no host is sending.
    fn recover_reset(&self);

    /// Recovery alignment, phase 3: waits for every non-departed host to
    /// finish resetting, then heals the failure state so collectives work
    /// again.
    fn gate_heal(&self, deadline: &Deadline) -> Result<(), CommError>;

    /// Membership shrink, phase 1: waits until every *survivor* — every
    /// host that is neither permanently departed nor already excluded by an
    /// earlier shrink — has entered the shrink gate, then agrees on the
    /// verdict: the set of departed-but-not-yet-excluded hosts. Those hosts
    /// are excluded from every future collective (barriers, gates,
    /// heartbeats) and the sorted verdict is returned identically on every
    /// survivor. Backends that cannot shrink return
    /// [`CommError::Protocol`].
    fn gate_shrink(&self, _deadline: &Deadline) -> Result<Vec<usize>, CommError> {
        Err(CommError::Protocol {
            detail: "transport does not support membership shrink".to_string(),
        })
    }

    /// Membership shrink, phase 2: waits for every survivor to finish
    /// resetting its protocol state, then heals the failure machinery for
    /// the reduced membership. Called after [`Transport::gate_shrink`] and
    /// [`Transport::recover_reset`].
    fn shrink_heal(&self, _deadline: &Deadline) -> Result<(), CommError> {
        Ok(())
    }

    /// Hosts currently known to be permanently departed but not yet
    /// excluded by a shrink verdict — the casualties a
    /// [`CommError::MembershipLost`] should name. Empty when recovery is
    /// still possible within the current membership.
    fn departed_hosts(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Membership grow, phase 1: a generation-stamped agreement admitting
    /// latent hosts. Members call it with their current membership
    /// generation at a round boundary; a latent host calls it (with
    /// generation 0) to knock — the call *is* its admission request. The
    /// gate completes when every member has arrived and at least one
    /// candidate is knocking; the identical [`GrowVerdict`] is returned to
    /// every participant. Error paths (deadline expiry, a member dying
    /// mid-wait) withdraw the caller's gate arrival so a crash during a
    /// join cannot wedge the remaining participants. Backends that cannot
    /// grow return [`CommError::Protocol`].
    fn gate_grow(&self, _deadline: &Deadline, _my_generation: u64) -> Result<GrowVerdict, CommError> {
        Err(CommError::Protocol {
            detail: "transport does not support membership grow".to_string(),
        })
    }

    /// Membership grow, phase 2: waits for every post-grow member (old
    /// members plus the admitted joiners) to finish resetting its protocol
    /// state, then heals the failure machinery for the expanded
    /// membership. Called after [`Transport::gate_grow`] and
    /// [`Transport::recover_reset`].
    fn grow_heal(&self, _deadline: &Deadline) -> Result<(), CommError> {
        Ok(())
    }

    /// Latent hosts currently knocking at the grow gate — what a member's
    /// per-round grow vote observes. Empty on backends without grow
    /// support.
    fn pending_joiners(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Hosts configured as latent capacity: part of the mesh's address
    /// space but not members until a grow admits them. Empty on backends
    /// without grow support.
    fn latent_hosts(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Test hook: suppresses this host's heartbeats for `d`, simulating a
    /// host that has gone silent without crashing.
    fn silence(&self, d: Duration);

    /// Trace hook: the generic layer reports decisions it made above the
    /// transport (fault-injection verdicts, injected crashes and stalls)
    /// so a recording backend can linearize them into its event trace.
    /// Default: ignored — only the simulation backend records.
    fn note(&self, _kind: &'static str, _detail: String) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_deadline_never_expires() {
        let d = Deadline::none();
        assert_eq!(d.remaining(), None);
        assert!(!d.expired());
        assert_eq!(d.phase(), "collective");
        assert_eq!(Deadline::maybe("x", None).remaining(), None);
        assert_eq!(Deadline::maybe("x", None).phase(), "x");
    }

    #[test]
    fn bounded_deadline_expires() {
        let d = Deadline::after("probe", Duration::from_millis(1));
        assert_eq!(d.phase(), "probe");
        assert!(d.remaining().is_some());
        std::thread::sleep(Duration::from_millis(5));
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn retx_requests_merge_to_all_or_sorted_union() {
        let mut r = RetxRequest::Chunks(vec![3, 1]);
        r.merge(RetxRequest::Chunks(vec![2, 3]));
        assert_eq!(r, RetxRequest::Chunks(vec![1, 2, 3]));
        r.merge(RetxRequest::All);
        assert_eq!(r, RetxRequest::All);
        r.merge(RetxRequest::Chunks(vec![9]));
        assert_eq!(r, RetxRequest::All);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_jittered() {
        let mk = || Backoff::new(9, Duration::from_micros(20), Duration::from_millis(2));
        let (mut a, mut b) = (mk(), mk());
        let da: Vec<_> = (0..32).map(|_| a.next_delay()).collect();
        let db: Vec<_> = (0..32).map(|_| b.next_delay()).collect();
        assert_eq!(da, db, "same seed, same schedule");
        assert!(da.iter().all(|d| *d >= Duration::from_micros(20)));
        assert!(da.iter().all(|d| *d <= Duration::from_millis(2)));
        // Jitter: the schedule is not a fixed geometric ladder.
        assert!(da.windows(2).any(|w| w[0] != w[1]));
        // Decorrelated across seeds.
        let mut c = Backoff::new(10, Duration::from_micros(20), Duration::from_millis(2));
        let dc: Vec<_> = (0..32).map(|_| c.next_delay()).collect();
        assert_ne!(da, dc);
    }
}
