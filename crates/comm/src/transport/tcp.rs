//! The TCP transport: a full mesh of host-pair connections carrying the
//! same wire-format frames as the in-proc fabric, for multi-process runs.
//!
//! # Stream protocol
//!
//! Each connection carries tagged messages: `[tag u8][len u32 LE][body]`.
//! `DATA` bodies are untouched `wire.rs` frames (the generic layer still
//! validates their CRC); control tags implement the collective primitives:
//!
//! * `BARRIER(gen u64)` / `GATE(gen u64)` — generation-highwater barriers:
//!   arrival `g` broadcasts the generation, completion waits until every
//!   live peer's announced generation reaches `g`. TCP's per-connection
//!   ordering makes the highwater monotone per peer.
//! * `MISSING(gen u64, flag u8)` — the collective retransmission verdict;
//!   flags are keyed by generation in a per-peer map so a fast host's next
//!   verdict can never overwrite one a slow host has not read yet.
//! * `RETX(kind u8, ...)` — peer asks us to re-send retained chunks of the
//!   current exchange: kind 0 means everything, kind 1 carries an explicit
//!   `count u32` + `u32` chunk-index list.
//! * `FAILED(epoch u64)` — sender crashed; stamped with its failure epoch
//!   so a stale notice cannot re-fail a healed mesh.
//! * `DEPARTED` — sender finished for good (clean exit or unrecoverable
//!   death). EOF without `DEPARTED` is treated as process death.
//! * `HB` — heartbeat; any received message counts as liveness, this one
//!   just guarantees a minimum rate.
//!
//! # Recovery
//!
//! `recover_reset` zeroes the barrier/missing generations along with the
//! inbox: hosts abort a failed round at different collective counts, so
//! the counters must be realigned, and the three-phase recovery gate
//! (align → reset → heal) guarantees no live traffic is in flight while
//! they are. Gate generations are *never* reset — recovery itself
//! synchronizes on them. Healing bumps the failure epoch, which
//! invalidates any `FAILED` notice from before the heal.

use super::{Backoff, Deadline, GrowVerdict, RetxRequest, Transport, TransportConfig};
use crate::clock;
use crate::cluster::CommError;
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard};
use std::time::Duration;

const TAG_DATA: u8 = 1;
const TAG_BARRIER: u8 = 2;
const TAG_MISSING: u8 = 3;
const TAG_RETX: u8 = 4;
const TAG_HB: u8 = 5;
const TAG_FAILED: u8 = 6;
const TAG_DEPARTED: u8 = 7;
const TAG_GATE: u8 = 8;
/// Membership-shrink gate arrival (`gen u64`): the sender is a survivor
/// agreeing to exclude the currently departed hosts. A permanently dead
/// host never announces, so the verdict is observed symmetrically: every
/// survivor completes only once it has seen every non-excluded peer
/// either announce this generation or depart.
const TAG_SHRINK: u8 = 9;
/// Join knock from a latent host (`arrival u64`): the sender asks to be
/// admitted by the next grow gate. `arrival == 0` retracts a pending
/// knock (sent when the joiner's deadline expires), so a joiner that gave
/// up cannot be "admitted" in absentia by a later grow.
const TAG_JOIN: u8 = 10;
/// Membership-grow gate arrival (`gen u64, ctx_gen u64`): a member agrees
/// to admit the currently knocking candidates, announcing its own
/// membership generation so the verdict can carry the maximum. Also used
/// (with `ctx_gen == 0`) as the post-verdict heal round, mirroring the
/// two-round `TAG_SHRINK` scheme: grow generations are announced only
/// from inside the grow path and the heal round has no abort between
/// reset and announcement, so an announcement of `grow_gen + 1` after a
/// verdict proves the peer finished its reset.
const TAG_GROW: u8 = 11;
/// Grow verdict broadcast by the grow leader — the lowest-id member —
/// once every member has arrived and at least one candidate is knocking:
/// `gen u64, joined_mask u64, member_mask u64, max_ctx_gen u64`. A
/// leader-decided verdict keeps a double-join race from splitting the
/// verdict across members.
const TAG_GROW_VERDICT: u8 = 12;

/// Upper bound on a single stream message body; anything larger means a
/// corrupted length header, and the connection is dropped.
const MAX_BODY: usize = 1 << 31;

/// How long mesh construction waits for every peer to show up.
const SETUP_TIMEOUT: Duration = Duration::from_secs(30);

struct State {
    /// Received data frames, per sending peer.
    inbox: Vec<Vec<Vec<u8>>>,
    /// Highest barrier generation announced by each peer.
    barrier_seen: Vec<u64>,
    /// Highest gate generation announced by each peer.
    gate_seen: Vec<u64>,
    /// Missing-flag announcements per peer, keyed by generation.
    missing: Vec<BTreeMap<u64, bool>>,
    /// What each peer asked us to re-send (merged until collected).
    retx: Vec<Option<RetxRequest>>,
    failed: Vec<bool>,
    suspected: Vec<bool>,
    departed: Vec<bool>,
    /// Peers excluded by an agreed membership shrink: permanently gone,
    /// no longer counted by any collective and never written to again.
    excluded: Vec<bool>,
    /// Latent capacity: peers that are part of the mesh's address space
    /// but not members until a grow admits them. Like `excluded` they are
    /// bystanders to every collective, but they can come back.
    latent: Vec<bool>,
    /// Latent peers with an outstanding join knock.
    join_pending: Vec<bool>,
    /// Highest shrink generation announced by each peer.
    shrink_seen: Vec<u64>,
    /// Highest grow generation announced by each peer.
    grow_seen: Vec<u64>,
    /// Highest membership (context) generation announced by each peer's
    /// grow arrivals.
    grow_ctx_gen: Vec<u64>,
    /// The latest grow verdict applied: `(gen, joined_mask, member_mask,
    /// max_ctx_gen)`.
    last_verdict: Option<(u64, u64, u64, u64)>,
    /// Current failure epoch; `FAILED(e)` is honored only if `e >= epoch`.
    epoch: u64,
    /// This host's completed barrier generation.
    bar_gen: u64,
    /// This host's completed gate generation (never reset).
    gate_gen: u64,
    /// This host's completed shrink generation (never reset).
    shrink_gen: u64,
    /// This host's completed grow generation (never reset; advanced by
    /// applied verdicts and heal rounds).
    grow_gen: u64,
    /// This host's completed missing-sync generation.
    miss_gen: u64,
}

impl State {
    fn new(hosts: usize, latent: &[usize]) -> Self {
        let mut latent_flags = vec![false; hosts];
        for &h in latent {
            latent_flags[h] = true;
        }
        State {
            inbox: vec![Vec::new(); hosts],
            barrier_seen: vec![0; hosts],
            gate_seen: vec![0; hosts],
            missing: vec![BTreeMap::new(); hosts],
            retx: vec![None; hosts],
            failed: vec![false; hosts],
            suspected: vec![false; hosts],
            departed: vec![false; hosts],
            excluded: vec![false; hosts],
            latent: latent_flags,
            join_pending: vec![false; hosts],
            shrink_seen: vec![0; hosts],
            grow_seen: vec![0; hosts],
            grow_ctx_gen: vec![0; hosts],
            last_verdict: None,
            epoch: 0,
            bar_gen: 0,
            gate_gen: 0,
            shrink_gen: 0,
            grow_gen: 0,
            miss_gen: 0,
        }
    }

    /// True for peers that take no part in collectives: shrink-excluded
    /// hosts and latent capacity that has not joined yet.
    fn bystander(&self, p: usize) -> bool {
        self.excluded[p] || self.latent[p]
    }

    /// The failure verdict, if any host has failed: all-suspected maps to
    /// `PeerDown`, anything harder to `HostFailure`.
    fn failure(&self) -> Option<CommError> {
        let failed: Vec<usize> = (0..self.failed.len())
            .filter(|&h| self.failed[h] && !self.bystander(h))
            .collect();
        if failed.is_empty() {
            return None;
        }
        let suspected: Vec<usize> = (0..self.suspected.len())
            .filter(|&h| self.suspected[h] && !self.bystander(h))
            .collect();
        Some(if !suspected.is_empty() && suspected.len() == failed.len() {
            CommError::PeerDown { hosts: suspected }
        } else {
            CommError::HostFailure { hosts: failed }
        })
    }

    /// Applies a grow verdict: admits the `joined_mask` hosts into every
    /// future collective and records the verdict for waiters. Idempotent
    /// per generation.
    fn apply_verdict(&mut self, gen: u64, joined_mask: u64, member_mask: u64, max_ctx: u64) {
        if gen <= self.grow_gen {
            return;
        }
        self.grow_gen = gen;
        for p in 0..self.latent.len() {
            if joined_mask & (1 << p) != 0 {
                self.latent[p] = false;
                self.join_pending[p] = false;
                self.failed[p] = false;
                self.suspected[p] = false;
            }
        }
        self.last_verdict = Some((gen, joined_mask, member_mask, max_ctx));
    }
}

/// Outgoing messages for one peer, drained by that peer's writer thread.
struct SendQueue {
    pending: VecDeque<Vec<u8>>,
    /// Teardown: the writer drains what is pending, then exits; new
    /// messages are dropped.
    stop: bool,
    /// The link was declared dead (revive exhausted); messages are dropped
    /// immediately instead of burning the reconnect budget each.
    dead: bool,
}

/// One peer's outgoing side: the connection write half plus the send
/// queue its dedicated writer thread drains.
///
/// Splitting the queue from the socket is what keeps one slow peer from
/// stalling the whole scatter: `send` only appends to `queue` (never
/// touches the socket), and each peer's writer makes progress
/// independently with bounded, readiness-style writes.
struct PeerLink {
    /// Write half of the connection. Taken by the writer thread for the
    /// duration of a write, so the acceptor can install a replacement
    /// without blocking behind a wedged socket.
    conn: StdMutex<Option<TcpStream>>,
    queue: StdMutex<SendQueue>,
    /// Signals the writer thread: new message, new connection, or stop.
    ready: Condvar,
    /// Set once any connection to this peer has been installed (mesh
    /// setup waits on it).
    connected: AtomicBool,
}

impl PeerLink {
    fn new() -> Self {
        PeerLink {
            conn: StdMutex::new(None),
            queue: StdMutex::new(SendQueue {
                pending: VecDeque::new(),
                stop: false,
                dead: false,
            }),
            ready: Condvar::new(),
            connected: AtomicBool::new(false),
        }
    }
}

struct Inner {
    host: usize,
    hosts: usize,
    cfg: TransportConfig,
    ports: Vec<u16>,
    /// Hosts that start latent (join capacity), as passed at construction.
    initial_latent: Vec<usize>,
    state: StdMutex<State>,
    cv: Condvar,
    /// Per-peer outgoing links, locked independently of `state`: a socket
    /// write may block on a full send buffer, and holding the state lock
    /// across it would wedge our readers and deadlock the mesh.
    links: Vec<PeerLink>,
    shutdown: AtomicBool,
    /// Clock-nanoseconds of the last message from each peer.
    last_rx: Vec<AtomicU64>,
    /// Heartbeats are suppressed until this time (hang-simulation hook).
    silence_until: AtomicU64,
    threads: StdMutex<Vec<std::thread::JoinHandle<()>>>,
    /// Writer threads, joined before `shutdown` is set so pending control
    /// notices (DEPARTED) still reach the wire during teardown.
    tx_threads: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Inner {
    fn now_nanos(&self) -> u64 {
        clock::now_nanos()
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Transport over a TCP mesh (one connection per host pair), for
/// multi-process runs and in-process loopback testing.
pub struct TcpTransport {
    inner: Arc<Inner>,
}

fn read_exact(stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<()> {
    stream.read_exact(buf)
}

fn reader_loop(inner: Arc<Inner>, peer: usize, mut stream: TcpStream) {
    let mut hdr = [0u8; 5];
    loop {
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        if read_exact(&mut stream, &mut hdr).is_err() {
            break;
        }
        let tag = hdr[0];
        let len = u32::from_le_bytes([hdr[1], hdr[2], hdr[3], hdr[4]]) as usize;
        if len > MAX_BODY {
            break;
        }
        let mut body = vec![0u8; len];
        if read_exact(&mut stream, &mut body).is_err() {
            break;
        }
        inner.last_rx[peer].store(inner.now_nanos(), Ordering::Relaxed);
        apply(&inner, peer, tag, body);
    }
    if inner.shutdown.load(Ordering::Relaxed) {
        return;
    }
    // EOF without a DEPARTED notice means the peer process died.
    let mut st = inner.lock();
    if !st.departed[peer] && !st.failed[peer] {
        st.failed[peer] = true;
        st.departed[peer] = true;
    }
    drop(st);
    inner.cv.notify_all();
}

fn encode_retx(req: &RetxRequest) -> Vec<u8> {
    match req {
        RetxRequest::All => vec![0],
        RetxRequest::Chunks(chunks) => {
            let mut body = Vec::with_capacity(5 + chunks.len() * 4);
            body.push(1);
            body.extend_from_slice(&(chunks.len() as u32).to_le_bytes());
            for c in chunks {
                body.extend_from_slice(&c.to_le_bytes());
            }
            body
        }
    }
}

fn decode_retx(body: &[u8]) -> Option<RetxRequest> {
    match body.first()? {
        0 => Some(RetxRequest::All),
        1 => {
            let n = u32::from_le_bytes(body.get(1..5)?.try_into().ok()?) as usize;
            let rest = body.get(5..)?;
            if rest.len() != n * 4 {
                return None;
            }
            Some(RetxRequest::Chunks(
                rest.chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("sized chunk")))
                    .collect(),
            ))
        }
        _ => None,
    }
}

fn apply(inner: &Inner, peer: usize, tag: u8, body: Vec<u8>) {
    let u64_at = |b: &[u8]| -> Option<u64> { Some(u64::from_le_bytes(b.get(..8)?.try_into().ok()?)) };
    let mut st = inner.lock();
    match tag {
        TAG_DATA => st.inbox[peer].push(body),
        TAG_BARRIER => {
            if let Some(g) = u64_at(&body) {
                st.barrier_seen[peer] = st.barrier_seen[peer].max(g);
            }
        }
        TAG_GATE => {
            if let Some(g) = u64_at(&body) {
                st.gate_seen[peer] = st.gate_seen[peer].max(g);
            }
        }
        TAG_MISSING => {
            if let (Some(g), Some(&flag)) = (u64_at(&body), body.get(8)) {
                st.missing[peer].insert(g, flag != 0);
            }
        }
        TAG_RETX => {
            // A malformed body is treated as "re-send everything": over-asking
            // is always safe.
            let req = decode_retx(&body).unwrap_or(RetxRequest::All);
            match &mut st.retx[peer] {
                Some(cur) => cur.merge(req),
                cell => *cell = Some(req),
            }
        }
        TAG_HB => {}
        TAG_FAILED => {
            if let Some(e) = u64_at(&body) {
                if e >= st.epoch && !st.excluded[peer] {
                    st.failed[peer] = true;
                    st.suspected[peer] = false;
                }
            }
        }
        TAG_DEPARTED => st.departed[peer] = true,
        TAG_SHRINK => {
            if let Some(g) = u64_at(&body) {
                st.shrink_seen[peer] = st.shrink_seen[peer].max(g);
            }
        }
        TAG_JOIN => {
            if let Some(a) = u64_at(&body) {
                if a == 0 {
                    st.join_pending[peer] = false;
                } else if st.latent[peer] && !st.departed[peer] {
                    st.join_pending[peer] = true;
                }
            }
        }
        TAG_GROW => {
            let ctx = body
                .get(8..16)
                .and_then(|b| b.try_into().ok())
                .map(u64::from_le_bytes);
            if let (Some(g), Some(cg)) = (u64_at(&body), ctx) {
                st.grow_seen[peer] = st.grow_seen[peer].max(g);
                st.grow_ctx_gen[peer] = st.grow_ctx_gen[peer].max(cg);
            }
        }
        TAG_GROW_VERDICT => {
            let field = |i: usize| -> Option<u64> {
                body.get(i * 8..i * 8 + 8)
                    .and_then(|b| b.try_into().ok())
                    .map(u64::from_le_bytes)
            };
            if let (Some(g), Some(jm), Some(mm), Some(mc)) = (field(0), field(1), field(2), field(3))
            {
                st.apply_verdict(g, jm, mm, mc);
            }
        }
        _ => {}
    }
    drop(st);
    inner.cv.notify_all();
}

fn handshake_connect(inner: &Inner, peer: usize) -> io::Result<TcpStream> {
    let addr = SocketAddr::from(([127, 0, 0, 1], inner.ports[peer]));
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    (&stream).write_all(&[inner.host as u8])?;
    Ok(stream)
}

/// Installs `stream` as the connection to `peer`: write half into the
/// link's connection slot (waking the writer thread), read half into a
/// fresh reader thread.
fn install(inner: &Arc<Inner>, peer: usize, stream: TcpStream) {
    let reader = stream.try_clone().expect("tcp stream clone");
    inner.last_rx[peer].store(inner.now_nanos(), Ordering::Relaxed);
    let link = &inner.links[peer];
    *link.conn.lock().unwrap_or_else(|e| e.into_inner()) = Some(stream);
    link.connected.store(true, Ordering::Relaxed);
    link.ready.notify_all();
    let inner2 = inner.clone();
    let handle = std::thread::Builder::new()
        .name(format!("kimbap-tcp-rx-{}-{peer}", inner.host))
        .spawn(move || reader_loop(inner2, peer, reader))
        .expect("failed to spawn tcp reader");
    inner
        .threads
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(handle);
}

fn acceptor_loop(inner: Arc<Inner>, listener: TcpListener) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    while !inner.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // The accepted socket must block for the reader thread.
                if stream.set_nonblocking(false).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                let mut id = [0u8; 1];
                let mut s = stream;
                let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
                if read_exact(&mut s, &mut id).is_err() {
                    continue;
                }
                let _ = s.set_read_timeout(None);
                let peer = id[0] as usize;
                if peer >= inner.hosts || peer == inner.host {
                    continue;
                }
                install(&inner, peer, s);
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn heartbeat_loop(inner: Arc<Inner>, hb: super::HeartbeatConfig) {
    let limit = hb.suspect_after.as_nanos() as u64;
    while !inner.shutdown.load(Ordering::Relaxed) {
        let now = inner.now_nanos();
        if inner.silence_until.load(Ordering::Relaxed) <= now {
            for peer in 0..inner.hosts {
                if peer != inner.host {
                    send_on(&inner, peer, TAG_HB, &[]);
                }
            }
        }
        // Monitor: prolonged silence from a live peer is suspicion.
        let mut st = inner.lock();
        let mut woke = false;
        for peer in 0..inner.hosts {
            if peer == inner.host || st.failed[peer] || st.departed[peer] || st.latent[peer] {
                continue;
            }
            let seen = inner.last_rx[peer].load(Ordering::Relaxed);
            if now.saturating_sub(seen) > limit {
                st.failed[peer] = true;
                st.suspected[peer] = true;
                woke = true;
            }
        }
        drop(st);
        if woke {
            inner.cv.notify_all();
        }
        clock::sleep(hb.interval);
    }
}

/// Enqueues one tagged message for `peer`. Returns immediately: the
/// peer's writer thread moves the bytes, so a slow or wedged peer never
/// stalls the caller (or the scatter to other peers).
fn send_on(inner: &Arc<Inner>, peer: usize, tag: u8, body: &[u8]) {
    {
        // Never write to a gone peer: reviving a permanently dead host's
        // socket burns the whole reconnect budget per message and can
        // re-fail a healed mesh. Latent peers that have not knocked yet
        // are equally unreachable — their process may not even exist.
        let st = inner.lock();
        if st.departed[peer] || st.excluded[peer] || (st.latent[peer] && !st.join_pending[peer]) {
            return;
        }
    }
    let mut buf = Vec::with_capacity(5 + body.len());
    buf.push(tag);
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(body);
    let link = &inner.links[peer];
    let mut q = link.queue.lock().unwrap_or_else(|e| e.into_inner());
    if q.stop || q.dead {
        return;
    }
    q.pending.push_back(buf);
    drop(q);
    link.ready.notify_all();
}

/// How long each bounded socket write waits for readiness before
/// returning `WouldBlock` and letting the writer re-check shutdown.
const WRITE_TICK: Duration = Duration::from_millis(20);

/// Writes all of `buf` with bounded, readiness-style writes: `SO_SNDTIMEO`
/// turns a full send buffer into a `WouldBlock` tick instead of an
/// unbounded block, so the writer thread stays responsive to shutdown and
/// teardown never wedges on a stalled peer.
fn write_all_ready(inner: &Inner, peer: usize, stream: &TcpStream, buf: &[u8]) -> bool {
    let _ = stream.set_write_timeout(Some(WRITE_TICK));
    let mut off = 0;
    let mut stalled_ticks = 0u32;
    while off < buf.len() {
        if inner.shutdown.load(Ordering::Relaxed) {
            return false;
        }
        match { stream }.write(&buf[off..]) {
            Ok(0) => return false,
            Ok(n) => {
                off += n;
                stalled_ticks = 0;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                stalled_ticks += 1;
                // During teardown a peer that stays unwritable for ~5s is
                // abandoned so Drop can finish joining the writer.
                let stopping = inner.links[peer]
                    .queue
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .stop;
                if stopping && stalled_ticks > 250 {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    true
}

/// One attempt to write `buf` on the currently installed connection. The
/// stream is taken out of the slot for the write (so the acceptor can
/// install a replacement concurrently) and put back on success; a failed
/// stream is dropped so the next attempt reconnects fresh.
fn try_write(inner: &Inner, peer: usize, buf: &[u8]) -> bool {
    let taken = inner.links[peer]
        .conn
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take();
    let Some(stream) = taken else {
        return false;
    };
    let ok = write_all_ready(inner, peer, &stream, buf);
    if ok {
        let mut slot = inner.links[peer].conn.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(stream);
        }
    }
    ok
}

/// Writes `buf` to `peer`, re-establishing the connection with
/// exponential backoff and decorrelated jitter on failure. Returns false
/// once the link is considered permanently dead.
fn write_or_revive(inner: &Arc<Inner>, peer: usize, buf: &[u8]) -> bool {
    if try_write(inner, peer, buf) {
        return true;
    }
    let mut backoff = Backoff::reconnect(inner.host);
    for _ in 0..8 {
        if inner.shutdown.load(Ordering::Relaxed) {
            return true;
        }
        {
            let st = inner.lock();
            if st.departed[peer] || st.excluded[peer] {
                return true;
            }
        }
        if peer < inner.host {
            // We are the client for this pair: reconnect and re-handshake.
            if let Ok(stream) = handshake_connect(inner, peer) {
                install(inner, peer, stream);
            }
        }
        // Server side (or post-reconnect): use whatever connection is
        // present — the acceptor installs replacements as the peer redials.
        if try_write(inner, peer, buf) {
            return true;
        }
        backoff.sleep();
    }
    false
}

/// Drains `peer`'s send queue: one writer thread per peer, so per-peer
/// FIFO order is preserved while peers make progress independently. A
/// write failure that survives the revive loop is surfaced to the failure
/// detector immediately (instead of waiting for a heartbeat timeout), and
/// the queue is declared dead so later messages are dropped cheaply.
fn writer_loop(inner: Arc<Inner>, peer: usize) {
    let link = &inner.links[peer];
    loop {
        let buf = {
            let mut q = link.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(buf) = q.pending.pop_front() {
                    break buf;
                }
                if q.stop {
                    return;
                }
                q = link.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        if write_or_revive(&inner, peer, &buf) {
            continue;
        }
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        // The link is dead: tell the failure detector now — collective
        // waits break with HostFailure instead of hanging until the
        // heartbeat monitor notices the silence.
        {
            let mut q = link.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.dead = true;
            q.pending.clear();
        }
        let mut st = inner.lock();
        if !st.failed[peer] {
            st.failed[peer] = true;
        }
        drop(st);
        inner.cv.notify_all();
    }
}

impl TcpTransport {
    /// Builds the transport for `host` from a pre-bound listener and the
    /// full port table (one loopback port per host). Used by the
    /// in-process TCP-loopback cluster mode, where all listeners are bound
    /// on port 0 up front.
    pub fn with_listener(
        host: usize,
        num_hosts: usize,
        listener: TcpListener,
        ports: &[u16],
        cfg: TransportConfig,
    ) -> io::Result<Self> {
        TcpTransport::with_listener_with_latent(host, num_hosts, listener, ports, cfg, &[])
    }

    /// Like [`TcpTransport::with_listener`], but with `latent` hosts that
    /// are addressable capacity rather than members: they take no part in
    /// collectives until a grow admits them. A latent host constructing
    /// its own transport dials every member up front (whatever the id
    /// order — it is always the late side of the pair); members do not
    /// wait for latent peers to show up.
    pub fn with_listener_with_latent(
        host: usize,
        num_hosts: usize,
        listener: TcpListener,
        ports: &[u16],
        cfg: TransportConfig,
        latent: &[usize],
    ) -> io::Result<Self> {
        assert!(num_hosts <= 255, "tcp transport addresses hosts by one byte");
        assert_eq!(ports.len(), num_hosts);
        let is_latent = |p: usize| latent.contains(&p);
        let joiner = is_latent(host);
        let inner = Arc::new(Inner {
            host,
            hosts: num_hosts,
            cfg,
            ports: ports.to_vec(),
            initial_latent: latent.to_vec(),
            state: StdMutex::new(State::new(num_hosts, latent)),
            cv: Condvar::new(),
            links: (0..num_hosts).map(|_| PeerLink::new()).collect(),
            shutdown: AtomicBool::new(false),
            // Seed liveness with "now": the clock epoch is process global,
            // so zero would read as ancient silence to the detector.
            last_rx: (0..num_hosts)
                .map(|_| AtomicU64::new(clock::now_nanos()))
                .collect(),
            silence_until: AtomicU64::new(0),
            threads: StdMutex::new(Vec::new()),
            tx_threads: StdMutex::new(Vec::new()),
        });
        {
            let inner2 = inner.clone();
            let handle = std::thread::Builder::new()
                .name(format!("kimbap-tcp-acc-{host}"))
                .spawn(move || acceptor_loop(inner2, listener))
                .expect("failed to spawn tcp acceptor");
            inner
                .threads
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(handle);
        }
        // One writer thread per peer drains that peer's send queue.
        for peer in (0..num_hosts).filter(|&p| p != host) {
            let inner2 = inner.clone();
            let handle = std::thread::Builder::new()
                .name(format!("kimbap-tcp-tx-{host}-{peer}"))
                .spawn(move || writer_loop(inner2, peer))
                .expect("failed to spawn tcp writer");
            inner
                .tx_threads
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(handle);
        }
        // Client side of each pair: the higher id dials the lower. A
        // joiner is the late side of every pair regardless of id order,
        // so it dials every member; members never dial latent peers (the
        // process may not exist yet).
        let dialees: Vec<usize> = if joiner {
            (0..num_hosts).filter(|&p| !is_latent(p)).collect()
        } else {
            (0..host).filter(|&p| !is_latent(p)).collect()
        };
        for peer in dialees {
            let mut backoff = Backoff::reconnect(host);
            let start = clock::now_nanos();
            loop {
                match handshake_connect(&inner, peer) {
                    Ok(stream) => {
                        install(&inner, peer, stream);
                        break;
                    }
                    Err(e)
                        if clock::now_nanos().saturating_sub(start)
                            > SETUP_TIMEOUT.as_nanos() as u64 =>
                    {
                        return Err(e)
                    }
                    Err(_) => backoff.sleep(),
                }
            }
        }
        // Wait for the server side of each pair (installed by the
        // acceptor); latent peers connect later, at their own join.
        let start = clock::now_nanos();
        loop {
            let connected = (0..num_hosts)
                .filter(|&p| p != host && !is_latent(p))
                .all(|p| inner.links[p].connected.load(Ordering::Relaxed));
            if connected {
                break;
            }
            if clock::now_nanos().saturating_sub(start) > SETUP_TIMEOUT.as_nanos() as u64 {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("host {host}: peers did not connect within {SETUP_TIMEOUT:?}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        if let Some(hb) = inner.cfg.heartbeat {
            let inner2 = inner.clone();
            let handle = std::thread::Builder::new()
                .name(format!("kimbap-tcp-hb-{host}"))
                .spawn(move || heartbeat_loop(inner2, hb))
                .expect("failed to spawn tcp heartbeat");
            inner
                .threads
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(handle);
        }
        Ok(TcpTransport { inner })
    }

    /// Binds `127.0.0.1:port_base + host` (retrying while the port is in
    /// `TIME_WAIT`) and joins the mesh. Used by `kimbap run _worker`
    /// multi-process mode, where every worker derives the same port table
    /// from `port_base`.
    pub fn bind(
        host: usize,
        num_hosts: usize,
        port_base: u16,
        cfg: TransportConfig,
    ) -> io::Result<Self> {
        TcpTransport::bind_with_latent(host, num_hosts, port_base, cfg, &[])
    }

    /// Like [`TcpTransport::bind`], but with `latent` hosts (see
    /// [`TcpTransport::with_listener_with_latent`]). A late-spawned
    /// `_worker` process joining a running cluster binds its own listener
    /// here and dials every member.
    pub fn bind_with_latent(
        host: usize,
        num_hosts: usize,
        port_base: u16,
        cfg: TransportConfig,
        latent: &[usize],
    ) -> io::Result<Self> {
        let ports: Vec<u16> = (0..num_hosts)
            .map(|h| {
                port_base
                    .checked_add(h as u16)
                    .expect("port range overflows u16")
            })
            .collect();
        let addr = SocketAddr::from(([127, 0, 0, 1], ports[host]));
        let start = clock::now_nanos();
        let listener = loop {
            match TcpListener::bind(addr) {
                Ok(l) => break l,
                Err(e)
                    if clock::now_nanos().saturating_sub(start)
                        > Duration::from_secs(5).as_nanos() as u64 =>
                {
                    return Err(e)
                }
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        };
        TcpTransport::with_listener_with_latent(host, num_hosts, listener, &ports, cfg, latent)
    }

    /// Binds one loopback listener per host on ephemeral ports; returns
    /// the listeners and the resolved port table. The cluster's TCP
    /// loopback mode hands one listener (plus the table) to each host
    /// thread.
    pub fn loopback_listeners(num_hosts: usize) -> io::Result<(Vec<TcpListener>, Vec<u16>)> {
        let mut listeners = Vec::with_capacity(num_hosts);
        let mut ports = Vec::with_capacity(num_hosts);
        for _ in 0..num_hosts {
            let l = TcpListener::bind(SocketAddr::from(([127, 0, 0, 1], 0)))?;
            ports.push(l.local_addr()?.port());
            listeners.push(l);
        }
        Ok((listeners, ports))
    }
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("host", &self.inner.host)
            .field("hosts", &self.inner.hosts)
            .field("ports", &self.inner.ports)
            .finish()
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Phase 1: stop the send queues. Writers drain what is already
        // pending (the DEPARTED notice must reach the wire) and exit;
        // `shutdown` stays unset so in-flight writes complete.
        for link in &self.inner.links {
            link.queue.lock().unwrap_or_else(|e| e.into_inner()).stop = true;
            link.ready.notify_all();
        }
        let writers = std::mem::take(
            &mut *self
                .inner
                .tx_threads
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for h in writers {
            let _ = h.join();
        }
        // Phase 2: tear down the sockets and the reader/acceptor/heartbeat
        // threads.
        self.inner.shutdown.store(true, Ordering::Relaxed);
        for link in &self.inner.links {
            if let Some(s) = link.conn.lock().unwrap_or_else(|e| e.into_inner()).take() {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        let handles = std::mem::take(
            &mut *self
                .inner
                .threads
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for h in handles {
            let _ = h.join();
        }
    }
}

impl TcpTransport {
    fn broadcast(&self, tag: u8, body: &[u8]) {
        for peer in 0..self.inner.hosts {
            if peer != self.inner.host {
                send_on(&self.inner, peer, tag, body);
            }
        }
    }

    /// Waits until `done(state)` holds, erroring on failure or deadline.
    fn wait_for<F, G>(&self, deadline: &Deadline, done: F, laggards: G) -> Result<(), CommError>
    where
        F: Fn(&mut State) -> bool,
        G: Fn(&State) -> Vec<usize>,
    {
        let mut st = self.inner.lock();
        loop {
            if let Some(err) = st.failure() {
                return Err(err);
            }
            if done(&mut st) {
                return Ok(());
            }
            st = match deadline.remaining() {
                None => self.inner.cv.wait(st).unwrap_or_else(|e| e.into_inner()),
                Some(rem) if rem.is_zero() => {
                    return Err(CommError::Timeout {
                        phase: deadline.phase(),
                        hosts: laggards(&st),
                    });
                }
                Some(rem) => {
                    self.inner
                        .cv
                        .wait_timeout(st, rem)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
            };
        }
    }
}

impl Transport for TcpTransport {
    fn host(&self) -> usize {
        self.inner.host
    }

    fn num_hosts(&self) -> usize {
        self.inner.hosts
    }

    fn send(&self, to: usize, frame: Vec<u8>) {
        send_on(&self.inner, to, TAG_DATA, &frame);
    }

    fn drain(&self, from: usize) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.inner.lock().inbox[from])
    }

    fn request_retx(&self, from: usize, req: RetxRequest) {
        send_on(&self.inner, from, TAG_RETX, &encode_retx(&req));
    }

    fn take_retx_requests(&self) -> Vec<(usize, RetxRequest)> {
        let mut st = self.inner.lock();
        (0..self.inner.hosts)
            .filter_map(|r| st.retx[r].take().map(|req| (r, req)))
            .collect()
    }

    fn barrier(&self, deadline: &Deadline) -> Result<(), CommError> {
        let me = self.inner.host;
        let arrival = self.inner.lock().bar_gen + 1;
        self.broadcast(TAG_BARRIER, &arrival.to_le_bytes());
        self.wait_for(
            deadline,
            |st| {
                let done = (0..st.barrier_seen.len())
                    .all(|p| p == me || st.bystander(p) || st.barrier_seen[p] >= arrival);
                if done {
                    st.bar_gen = arrival;
                }
                done
            },
            |st| {
                (0..st.barrier_seen.len())
                    .filter(|&p| {
                        p != me && st.barrier_seen[p] < arrival && !st.failed[p] && !st.bystander(p)
                    })
                    .collect()
            },
        )
    }

    fn sync_missing(&self, missing: bool, deadline: &Deadline) -> Result<Vec<bool>, CommError> {
        let me = self.inner.host;
        let gen = self.inner.lock().miss_gen + 1;
        let mut body = gen.to_le_bytes().to_vec();
        body.push(missing as u8);
        self.broadcast(TAG_MISSING, &body);
        self.wait_for(
            deadline,
            |st| {
                (0..st.missing.len())
                    .all(|p| p == me || st.bystander(p) || st.missing[p].contains_key(&gen))
            },
            |st| {
                (0..st.missing.len())
                    .filter(|&p| {
                        p != me
                            && !st.missing[p].contains_key(&gen)
                            && !st.failed[p]
                            && !st.bystander(p)
                    })
                    .collect()
            },
        )?;
        let mut st = self.inner.lock();
        let flags = (0..self.inner.hosts)
            .map(|p| {
                if p == me {
                    missing
                } else if st.bystander(p) {
                    false
                } else {
                    st.missing[p][&gen]
                }
            })
            .collect();
        // Prune consumed generations; later ones (fast peers) are kept.
        for p in 0..self.inner.hosts {
            st.missing[p] = st.missing[p].split_off(&(gen + 1));
        }
        st.miss_gen = gen;
        Ok(flags)
    }

    fn mark_failed(&self) {
        let epoch = self.inner.lock().epoch;
        self.broadcast(TAG_FAILED, &epoch.to_le_bytes());
    }

    fn mark_departed(&self) {
        self.broadcast(TAG_DEPARTED, &[]);
    }

    fn gate_align(&self, deadline: &Deadline) -> Result<(), CommError> {
        self.gate_wait(deadline, false)
    }

    fn recover_reset(&self) {
        let mut st = self.inner.lock();
        for row in &mut st.inbox {
            row.clear();
        }
        for m in &mut st.missing {
            m.clear();
        }
        for r in &mut st.retx {
            *r = None;
        }
        st.barrier_seen.iter_mut().for_each(|g| *g = 0);
        st.bar_gen = 0;
        st.miss_gen = 0;
        drop(st);
        // Recovery means no live traffic is in flight: drop stale queued
        // data-path frames and give dead-declared links a fresh chance —
        // the peer may only have stalled, and the heal is about to
        // re-admit it. Membership agreement frames (shrink/join/grow
        // announcements and the grow verdict) must survive the purge: the
        // grow leader resets its own protocol state immediately after
        // cutting a verdict its peers may not have received yet.
        for link in &self.inner.links {
            let mut q = link.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.pending
                .retain(|f| f.first().is_some_and(|&t| t >= TAG_SHRINK));
            q.dead = false;
        }
        // A recovering host is alive: refresh peer liveness so the stall
        // that triggered recovery is not immediately re-flagged.
        let now = self.inner.now_nanos();
        for rx in &self.inner.last_rx {
            rx.store(now, Ordering::Relaxed);
        }
    }

    fn gate_heal(&self, deadline: &Deadline) -> Result<(), CommError> {
        self.gate_wait(deadline, true)
    }

    fn gate_shrink(&self, deadline: &Deadline) -> Result<Vec<usize>, CommError> {
        let me = self.inner.host;
        let arrival = self.inner.lock().shrink_gen + 1;
        self.broadcast(TAG_SHRINK, &arrival.to_le_bytes());
        let mut st = self.inner.lock();
        loop {
            // A dead host never announces a shrink generation, so
            // completion requires observing its departure locally: with a
            // single casualty every survivor agrees on exactly that host.
            // (Simultaneous casualties may split across verdicts; the
            // stragglers surface as a fresh MembershipLost and shrink in a
            // following round.)
            let done = (0..self.inner.hosts).all(|p| {
                p == me || st.bystander(p) || st.departed[p] || st.shrink_seen[p] >= arrival
            });
            if done {
                let verdict: Vec<usize> = (0..self.inner.hosts)
                    .filter(|&p| st.departed[p] && !st.bystander(p))
                    .collect();
                st.shrink_gen = arrival;
                for &p in &verdict {
                    st.excluded[p] = true;
                    st.failed[p] = false;
                    st.suspected[p] = false;
                }
                return Ok(verdict);
            }
            st = match deadline.remaining() {
                None => self.inner.cv.wait(st).unwrap_or_else(|e| e.into_inner()),
                Some(rem) if rem.is_zero() => {
                    let laggards = (0..self.inner.hosts)
                        .filter(|&p| {
                            p != me
                                && st.shrink_seen[p] < arrival
                                && !st.departed[p]
                                && !st.bystander(p)
                        })
                        .collect();
                    return Err(CommError::Timeout {
                        phase: deadline.phase(),
                        hosts: laggards,
                    });
                }
                Some(rem) => {
                    self.inner
                        .cv
                        .wait_timeout(st, rem)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
            };
        }
    }

    fn shrink_heal(&self, deadline: &Deadline) -> Result<(), CommError> {
        // A second round of the shrink-generation gate, not the recovery
        // gate: every survivor already announced `gate_gen + 1` during the
        // alignment attempt that surfaced the departure (the attempt
        // errored without advancing `gate_gen`), so a gate-based heal
        // would complete instantly off those stale announcements — before
        // peers have reset — and frames sent after it could be wiped by a
        // peer's late `recover_reset`. Shrink generations are announced
        // only from inside `recover_shrink` and have no abort path, so an
        // announcement of `shrink_gen + 1` proves the peer finished its
        // reset and entered the heal.
        let me = self.inner.host;
        let arrival = self.inner.lock().shrink_gen + 1;
        self.broadcast(TAG_SHRINK, &arrival.to_le_bytes());
        let mut st = self.inner.lock();
        loop {
            let done = (0..self.inner.hosts).all(|p| {
                p == me || st.bystander(p) || st.departed[p] || st.shrink_seen[p] >= arrival
            });
            if done {
                st.shrink_gen = arrival;
                st.epoch += 1;
                st.failed.iter_mut().for_each(|f| *f = false);
                st.suspected.iter_mut().for_each(|f| *f = false);
                return Ok(());
            }
            st = match deadline.remaining() {
                None => self.inner.cv.wait(st).unwrap_or_else(|e| e.into_inner()),
                Some(rem) if rem.is_zero() => {
                    let laggards = (0..self.inner.hosts)
                        .filter(|&p| {
                            p != me
                                && st.shrink_seen[p] < arrival
                                && !st.departed[p]
                                && !st.bystander(p)
                        })
                        .collect();
                    return Err(CommError::Timeout {
                        phase: deadline.phase(),
                        hosts: laggards,
                    });
                }
                Some(rem) => {
                    self.inner
                        .cv
                        .wait_timeout(st, rem)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
            };
        }
    }

    fn departed_hosts(&self) -> Vec<usize> {
        let st = self.inner.lock();
        (0..self.inner.hosts)
            .filter(|&p| st.departed[p] && !st.bystander(p))
            .collect()
    }

    fn gate_grow(&self, deadline: &Deadline, my_generation: u64) -> Result<GrowVerdict, CommError> {
        if self.inner.lock().latent[self.inner.host] {
            self.grow_knock(deadline)
        } else {
            self.grow_member(deadline, my_generation)
        }
    }

    fn grow_heal(&self, deadline: &Deadline) -> Result<(), CommError> {
        // A second round of the grow-generation gate, mirroring
        // `shrink_heal`: grow generations are announced only from inside
        // the grow path with no abort between reset and announcement, so
        // an announcement of `grow_gen + 1` proves the peer finished its
        // reset. The recovery gate cannot be reused here — the joiner's
        // gate generation starts at zero while members' have advanced, and
        // stale `TAG_GATE` announcements from the aborted round could
        // complete a gate-based heal before peers have reset.
        let me = self.inner.host;
        let arrival = self.inner.lock().grow_gen + 1;
        let mut body = arrival.to_le_bytes().to_vec();
        body.extend_from_slice(&0u64.to_le_bytes());
        self.broadcast(TAG_GROW, &body);
        let mut st = self.inner.lock();
        loop {
            let done = (0..self.inner.hosts).all(|p| {
                p == me || st.bystander(p) || st.departed[p] || st.grow_seen[p] >= arrival
            });
            if done {
                st.grow_gen = arrival;
                st.epoch += 1;
                st.failed.iter_mut().for_each(|f| *f = false);
                st.suspected.iter_mut().for_each(|f| *f = false);
                return Ok(());
            }
            st = match deadline.remaining() {
                None => self.inner.cv.wait(st).unwrap_or_else(|e| e.into_inner()),
                Some(rem) if rem.is_zero() => {
                    let laggards = (0..self.inner.hosts)
                        .filter(|&p| {
                            p != me
                                && st.grow_seen[p] < arrival
                                && !st.departed[p]
                                && !st.bystander(p)
                        })
                        .collect();
                    return Err(CommError::Timeout {
                        phase: deadline.phase(),
                        hosts: laggards,
                    });
                }
                Some(rem) => {
                    self.inner
                        .cv
                        .wait_timeout(st, rem)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
            };
        }
    }

    fn pending_joiners(&self) -> Vec<usize> {
        let st = self.inner.lock();
        (0..self.inner.hosts)
            .filter(|&p| st.latent[p] && st.join_pending[p] && !st.departed[p])
            .collect()
    }

    fn latent_hosts(&self) -> Vec<usize> {
        self.inner.initial_latent.clone()
    }

    fn silence(&self, d: Duration) {
        let until = self.inner.now_nanos() + d.as_nanos() as u64;
        self.inner.silence_until.store(until, Ordering::Relaxed);
    }
}

impl TcpTransport {
    /// Gate arrival + wait; with `heal`, clears the failure state and bumps
    /// the epoch once every peer has arrived. Unlike the in-proc gate this
    /// heals per-host local state, which is sound because each host resets
    /// *before* announcing its heal-gate arrival: by the time every arrival
    /// is visible here, every reset has happened, and `FAILED` notices from
    /// before the heal carry a stale epoch.
    fn gate_wait(&self, deadline: &Deadline, heal: bool) -> Result<(), CommError> {
        let me = self.inner.host;
        let arrival = self.inner.lock().gate_gen + 1;
        self.broadcast(TAG_GATE, &arrival.to_le_bytes());
        let mut st = self.inner.lock();
        loop {
            let gone: Vec<usize> = (0..self.inner.hosts)
                .filter(|&p| st.departed[p] && !st.bystander(p))
                .collect();
            if !gone.is_empty() {
                return Err(CommError::HostFailure { hosts: gone });
            }
            let done = (0..self.inner.hosts)
                .all(|p| p == me || st.bystander(p) || st.gate_seen[p] >= arrival);
            if done {
                st.gate_gen = arrival;
                if heal {
                    st.epoch += 1;
                    st.failed.iter_mut().for_each(|f| *f = false);
                    st.suspected.iter_mut().for_each(|f| *f = false);
                }
                return Ok(());
            }
            st = match deadline.remaining() {
                None => self.inner.cv.wait(st).unwrap_or_else(|e| e.into_inner()),
                Some(rem) if rem.is_zero() => {
                    let laggards = (0..self.inner.hosts)
                        .filter(|&p| p != me && st.gate_seen[p] < arrival && !st.bystander(p))
                        .collect();
                    return Err(CommError::Timeout {
                        phase: deadline.phase(),
                        hosts: laggards,
                    });
                }
                Some(rem) => {
                    self.inner
                        .cv
                        .wait_timeout(st, rem)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
            };
        }
    }

    /// The joiner's side of the grow gate: knock (`TAG_JOIN`) and wait for
    /// a verdict that admits us. Suspicion accumulated while knocking is
    /// meaningless (we are not a member yet), so the wait ignores failure
    /// flags; on timeout the knock is retracted so a later grow cannot
    /// admit us in absentia.
    fn grow_knock(&self, deadline: &Deadline) -> Result<GrowVerdict, CommError> {
        let me = self.inner.host;
        {
            let mut st = self.inner.lock();
            for p in 0..self.inner.hosts {
                if !st.departed[p] {
                    st.failed[p] = false;
                    st.suspected[p] = false;
                }
            }
        }
        self.broadcast(TAG_JOIN, &1u64.to_le_bytes());
        let mut st = self.inner.lock();
        loop {
            if let Some((_, joined_mask, member_mask, max_ctx)) = st.last_verdict {
                if joined_mask & (1u64 << me) != 0 {
                    let joined = (0..self.inner.hosts)
                        .filter(|&p| joined_mask & (1u64 << p) != 0)
                        .collect();
                    return Ok(GrowVerdict {
                        joined,
                        members: member_mask,
                        generation: max_ctx,
                    });
                }
            }
            // Every member gone means the cluster exited (or died) while
            // we were knocking: no verdict will ever come.
            let gone: Vec<usize> = (0..self.inner.hosts)
                .filter(|&p| p != me && !st.latent[p] && !st.excluded[p] && st.departed[p])
                .collect();
            let members_left = (0..self.inner.hosts)
                .any(|p| p != me && !st.latent[p] && !st.excluded[p] && !st.departed[p]);
            if !members_left {
                return Err(CommError::HostFailure { hosts: gone });
            }
            st = match deadline.remaining() {
                None => self.inner.cv.wait(st).unwrap_or_else(|e| e.into_inner()),
                Some(rem) if rem.is_zero() => {
                    let laggards = (0..self.inner.hosts)
                        .filter(|&p| p != me && !st.bystander(p) && !st.departed[p])
                        .collect();
                    drop(st);
                    self.broadcast(TAG_JOIN, &0u64.to_le_bytes());
                    return Err(CommError::Timeout {
                        phase: deadline.phase(),
                        hosts: laggards,
                    });
                }
                Some(rem) => {
                    self.inner
                        .cv
                        .wait_timeout(st, rem)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
            };
        }
    }

    /// The member's side of the grow gate: announce the round, then wait
    /// for the verdict. The leader — the lowest-id live member — cuts the
    /// verdict once every member has announced this round, admitting every
    /// candidate with an unretracted knock (possibly none, so a candidate
    /// that died or gave up mid-gate cannot wedge the gate), and
    /// broadcasts it so a double-join race cannot split the verdict.
    fn grow_member(
        &self,
        deadline: &Deadline,
        my_generation: u64,
    ) -> Result<GrowVerdict, CommError> {
        let me = self.inner.host;
        let hosts = self.inner.hosts;
        let arrival = self.inner.lock().grow_gen + 1;
        let mut body = arrival.to_le_bytes().to_vec();
        body.extend_from_slice(&my_generation.to_le_bytes());
        self.broadcast(TAG_GROW, &body);
        let mut st = self.inner.lock();
        loop {
            if let Some(err) = st.failure() {
                return Err(err);
            }
            let gone: Vec<usize> = (0..hosts)
                .filter(|&p| st.departed[p] && !st.bystander(p))
                .collect();
            if !gone.is_empty() {
                return Err(CommError::HostFailure { hosts: gone });
            }
            if st.grow_gen >= arrival {
                // The verdict was applied (leader broadcast reached us).
                let (_, joined_mask, member_mask, max_ctx) =
                    st.last_verdict.expect("grow generation without verdict");
                let joined = (0..hosts)
                    .filter(|&p| joined_mask & (1u64 << p) != 0)
                    .collect();
                return Ok(GrowVerdict {
                    joined,
                    members: member_mask,
                    generation: max_ctx.max(my_generation),
                });
            }
            let leader = (0..hosts).find(|&p| !st.bystander(p) && !st.departed[p]);
            if leader == Some(me) {
                let all_in = (0..hosts).all(|p| {
                    p == me || st.bystander(p) || st.departed[p] || st.grow_seen[p] >= arrival
                });
                if all_in {
                    let joined: Vec<usize> = (0..hosts)
                        .filter(|&p| st.latent[p] && st.join_pending[p] && !st.departed[p])
                        .collect();
                    let joined_mask = joined.iter().fold(0u64, |m, &p| m | (1u64 << p));
                    let member_mask = (0..hosts)
                        .filter(|&p| !st.excluded[p] && !st.latent[p] && !st.departed[p])
                        .fold(joined_mask, |m, p| m | (1u64 << p));
                    let max_ctx = (0..hosts)
                        .filter(|&p| p != me && !st.bystander(p) && !st.departed[p])
                        .map(|p| st.grow_ctx_gen[p])
                        .max()
                        .unwrap_or(0)
                        .max(my_generation);
                    st.apply_verdict(arrival, joined_mask, member_mask, max_ctx);
                    drop(st);
                    let mut vb = Vec::with_capacity(32);
                    vb.extend_from_slice(&arrival.to_le_bytes());
                    vb.extend_from_slice(&joined_mask.to_le_bytes());
                    vb.extend_from_slice(&member_mask.to_le_bytes());
                    vb.extend_from_slice(&max_ctx.to_le_bytes());
                    self.broadcast(TAG_GROW_VERDICT, &vb);
                    return Ok(GrowVerdict {
                        joined,
                        members: member_mask,
                        generation: max_ctx,
                    });
                }
            }
            st = match deadline.remaining() {
                None => self.inner.cv.wait(st).unwrap_or_else(|e| e.into_inner()),
                Some(rem) if rem.is_zero() => {
                    let laggards = (0..hosts)
                        .filter(|&p| {
                            p != me
                                && st.grow_seen[p] < arrival
                                && !st.departed[p]
                                && !st.bystander(p)
                        })
                        .collect();
                    return Err(CommError::Timeout {
                        phase: deadline.phase(),
                        hosts: laggards,
                    });
                }
                Some(rem) => {
                    self.inner
                        .cv
                        .wait_timeout(st, rem)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
            };
        }
    }
}
