//! Property-based validation of the dominator analysis: the iterative
//! algorithm must agree with the brute-force definition ("every path from
//! the entry to n passes through m") on randomly generated operators.

use kimbap_compiler::cfg::{Cfg, ENTRY, EXIT};
use kimbap_compiler::dom::DomTree;
use kimbap_compiler::ir::{BinOp, Expr, Stmt};
use proptest::prelude::*;

/// Random structured operator bodies (depth-bounded).
fn stmt_strategy(depth: u32) -> BoxedStrategy<Stmt> {
    let leaf = prop_oneof![
        Just(Stmt::Read {
            dst: 0,
            map: 0,
            key: Expr::Node
        }),
        Just(Stmt::Reduce {
            map: 0,
            key: Expr::Node,
            value: Expr::Const(1)
        }),
        Just(Stmt::Let {
            dst: 1,
            value: Expr::Const(7)
        }),
        Just(Stmt::ReduceScalar {
            reducer: 0,
            value: Expr::Const(1)
        }),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = prop::collection::vec(stmt_strategy(depth - 1), 0..3);
    prop_oneof![
        4 => leaf,
        1 => inner.clone().prop_map(|then| Stmt::If {
            cond: Expr::bin(BinOp::Gt, Expr::Node, Expr::Const(0)),
            then,
        }),
        1 => inner.prop_map(|body| Stmt::ForEdges { body }),
    ]
    .boxed()
}

fn body_strategy() -> impl Strategy<Value = Vec<Stmt>> {
    prop::collection::vec(stmt_strategy(3), 0..6)
}

/// Brute force: does every entry→target path avoid `blocked`? If removing
/// `blocked` makes `target` unreachable, `blocked` dominates `target`.
fn reachable_avoiding(cfg: &Cfg, target: usize, blocked: usize) -> bool {
    if target == blocked {
        return false;
    }
    let mut seen = vec![false; cfg.len()];
    let mut stack = vec![ENTRY];
    if ENTRY == blocked {
        return false;
    }
    seen[ENTRY] = true;
    while let Some(n) = stack.pop() {
        if n == target {
            return true;
        }
        for &s in &cfg.succ[n] {
            if s != blocked && !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dominators_match_path_definition(body in body_strategy()) {
        let cfg = Cfg::build(&body);
        let dom = DomTree::dominators(&cfg);
        for m in 0..cfg.len() {
            for n in 0..cfg.len() {
                let brute = if m == n {
                    true // dominance is reflexive
                } else {
                    // m dominates n iff n is unreachable without m.
                    !reachable_avoiding(&cfg, n, m)
                };
                prop_assert_eq!(
                    dom.dominates(m, n),
                    brute,
                    "dominates({}, {}) mismatch in {:?}",
                    m,
                    n,
                    body
                );
            }
        }
    }

    #[test]
    fn post_dominators_match_reverse_definition(body in body_strategy()) {
        let cfg = Cfg::build(&body);
        let pdom = DomTree::post_dominators(&cfg);
        // Reverse reachability: n post-dominates m iff EXIT is unreachable
        // from m when n is removed.
        let reach_exit_avoiding = |from: usize, blocked: usize| -> bool {
            if from == blocked {
                return false;
            }
            let mut seen = vec![false; cfg.len()];
            let mut stack = vec![from];
            seen[from] = true;
            while let Some(x) = stack.pop() {
                if x == EXIT {
                    return true;
                }
                for &s in &cfg.succ[x] {
                    if s != blocked && !seen[s] {
                        seen[s] = true;
                        stack.push(s);
                    }
                }
            }
            false
        };
        for m in 0..cfg.len() {
            for n in 0..cfg.len() {
                let brute = if m == n {
                    true
                } else {
                    !reach_exit_avoiding(m, n)
                };
                prop_assert_eq!(pdom.dominates(n, m), brute);
            }
        }
    }

    #[test]
    fn entry_dominates_everything(body in body_strategy()) {
        let cfg = Cfg::build(&body);
        let dom = DomTree::dominators(&cfg);
        for n in 0..cfg.len() {
            prop_assert!(dom.dominates(ENTRY, n));
        }
        let pdom = DomTree::post_dominators(&cfg);
        for n in 0..cfg.len() {
            prop_assert!(pdom.dominates(EXIT, n));
        }
    }
}
