//! A textual front-end for vertex programs.
//!
//! The paper's programmers write `KimbapWhile … ParFor` constructs in C++
//! (Fig. 4). This module provides the equivalent surface syntax for this
//! reproduction: a small language parsed into the [`crate::ir`] program
//! form, which then flows through the ordinary compiler pipeline.
//!
//! # Grammar
//!
//! ```text
//! program   := 'program' IDENT '{' decl* top* '}'
//! decl      := 'map' IDENT ':' ('min' | 'max' | 'sum') ';'
//!            | 'reducer' IDENT ';'
//! top       := 'init' IDENT '=' expr ';'
//!            | 'reset' IDENT ';'
//!            | 'set' IDENT '=' NUM ';'
//!            | 'parfor' block
//!            | 'while' 'updated' '(' IDENT ')' block
//!            | 'do' '{' top* '}' 'while' IDENT ';'
//! block     := '{' stmt* '}'
//! stmt      := 'let' IDENT '=' expr ';'
//!            | 'let' IDENT '=' IDENT '[' expr ']' ';'     (map read)
//!            | IDENT '[' expr ']' '<-' expr ';'           (map reduce)
//!            | IDENT '+=' expr ';'                        (scalar reduce)
//!            | 'if' expr block
//!            | 'for' 'edges' block
//! expr      := cmp ( ('<' | '>' | '!=' | '==') cmp )?
//! cmp       := term ( ('+' | '-') term )*
//! term      := atom ( '*' atom )*
//! atom      := NUM | 'node' | 'dst' | 'weight' | IDENT
//!            | '(' expr ')' | 'min' '(' expr ',' expr ')'
//! ```
//!
//! Line comments start with `//`.
//!
//! # Example
//!
//! ```
//! use kimbap_compiler::frontend::parse;
//!
//! let src = r#"
//! program cc_lp {
//!     map label : min;
//!     init label = node;
//!     while updated(label) {
//!         let my = label[node];
//!         for edges {
//!             let other = label[dst];
//!             if my < other {
//!                 label[dst] <- my;
//!             }
//!         }
//!     }
//! }
//! "#;
//! let program = parse(src).unwrap();
//! assert_eq!(program.name, "cc_lp");
//! assert_eq!(program.maps.len(), 1);
//! ```

use crate::ir::{
    BinOp, Expr, KimbapWhile, MapDecl, NodeIterator, Program, Stmt, TopStmt,
};
use kimbap_npm::DynReduceOp;
use std::collections::HashMap;
use std::fmt;

/// A parse error with line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(u64),
    Sym(&'static str),
}

struct Lexer {
    toks: Vec<(Tok, usize, usize)>,
    pos: usize,
}

fn lex(src: &str) -> Result<Lexer, ParseError> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        let (l, co) = (line, col);
        let bump = |ch: char, line: &mut usize, col: &mut usize| {
            if ch == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
        };
        if c.is_whitespace() {
            chars.next();
            bump(c, &mut line, &mut col);
            continue;
        }
        if c == '/' {
            chars.next();
            col += 1;
            if chars.peek() == Some(&'/') {
                for ch in chars.by_ref() {
                    bump(ch, &mut line, &mut col);
                    if ch == '\n' {
                        break;
                    }
                }
                continue;
            }
            return Err(ParseError {
                line: l,
                col: co,
                message: "unexpected '/'".into(),
            });
        }
        if c.is_ascii_digit() {
            let mut n: u64 = 0;
            while let Some(&d) = chars.peek() {
                if let Some(v) = d.to_digit(10) {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(v as u64))
                        .ok_or(ParseError {
                            line: l,
                            col: co,
                            message: "number too large".into(),
                        })?;
                    chars.next();
                    col += 1;
                } else {
                    break;
                }
            }
            toks.push((Tok::Num(n), l, co));
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let mut s = String::new();
            while let Some(&d) = chars.peek() {
                if d.is_ascii_alphanumeric() || d == '_' {
                    s.push(d);
                    chars.next();
                    col += 1;
                } else {
                    break;
                }
            }
            toks.push((Tok::Ident(s), l, co));
            continue;
        }
        // Multi-char symbols.
        let two: String = {
            let mut it = chars.clone();
            let a = it.next().unwrap_or(' ');
            let b = it.next().unwrap_or(' ');
            [a, b].iter().collect()
        };
        let sym2 = ["<-", "+=", "!=", "=="].iter().find(|&&s| s == two);
        if let Some(&s) = sym2 {
            chars.next();
            chars.next();
            col += 2;
            toks.push((Tok::Sym(s), l, co));
            continue;
        }
        let sym1 = ["{", "}", "(", ")", "[", "]", ";", ":", ",", "=", "<", ">", "+", "-", "*"]
            .iter()
            .find(|&&s| s.starts_with(c));
        if let Some(&s) = sym1 {
            chars.next();
            col += 1;
            toks.push((Tok::Sym(s), l, co));
            continue;
        }
        return Err(ParseError {
            line: l,
            col: co,
            message: format!("unexpected character '{c}'"),
        });
    }
    Ok(Lexer { toks, pos: 0 })
}

struct Parser {
    lx: Lexer,
    maps: HashMap<String, usize>,
    map_decls: Vec<MapDecl>,
    reducers: HashMap<String, usize>,
    vars: HashMap<String, usize>,
    num_vars: usize,
    name: String,
}

impl Parser {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let (line, col) = self
            .lx
            .toks
            .get(self.lx.pos.min(self.lx.toks.len().saturating_sub(1)))
            .map(|&(_, l, c)| (l, c))
            .unwrap_or((0, 0));
        Err(ParseError {
            line,
            col,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.lx.toks.get(self.lx.pos).map(|(t, _, _)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.lx.toks.get(self.lx.pos).map(|(t, _, _)| t.clone());
        self.lx.pos += 1;
        t
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Sym(t)) if t == s => Ok(()),
            other => {
                self.lx.pos -= 1;
                let _ = other;
                self.err(format!("expected '{s}'"))
            }
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Ident(t)) if t == kw => Ok(()),
            _ => {
                self.lx.pos -= 1;
                self.err(format!("expected keyword '{kw}'"))
            }
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => {
                self.lx.pos -= 1;
                self.err("expected identifier")
            }
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(t)) if *t == s) {
            self.lx.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(t)) if t == kw) {
            self.lx.pos += 1;
            true
        } else {
            false
        }
    }

    fn map_id(&self, name: &str) -> Result<usize, ParseError> {
        self.maps
            .get(name)
            .copied()
            .ok_or(ParseError {
                line: 0,
                col: 0,
                message: format!("unknown map '{name}'"),
            })
    }

    fn var_id(&mut self, name: &str) -> usize {
        if let Some(&v) = self.vars.get(name) {
            return v;
        }
        // Registers are numbered per operator (each ParFor body starts a
        // fresh scope); `num_vars` records the program-wide maximum.
        let v = self.vars.len();
        self.vars.insert(name.to_string(), v);
        self.num_vars = self.num_vars.max(self.vars.len());
        v
    }

    fn parse_program(&mut self) -> Result<Program, ParseError> {
        self.expect_kw("program")?;
        self.name = self.ident()?;
        self.expect_sym("{")?;
        // Declarations.
        loop {
            if self.eat_kw("map") {
                let name = self.ident()?;
                self.expect_sym(":")?;
                let op = match self.ident()?.as_str() {
                    "min" => DynReduceOp::Min,
                    "max" => DynReduceOp::Max,
                    "sum" => DynReduceOp::Sum,
                    other => return self.err(format!("unknown reduction '{other}'")),
                };
                self.expect_sym(";")?;
                let id = self.map_decls.len();
                self.maps.insert(name.clone(), id);
                self.map_decls.push(MapDecl {
                    op,
                    name: Box::leak(name.into_boxed_str()),
                });
            } else if self.eat_kw("reducer") {
                let name = self.ident()?;
                self.expect_sym(";")?;
                let id = self.reducers.len();
                self.reducers.insert(name, id);
            } else {
                break;
            }
        }
        let mut body = Vec::new();
        while !matches!(self.peek(), Some(Tok::Sym("}"))) {
            body.push(self.parse_top()?);
        }
        self.expect_sym("}")?;
        Ok(Program {
            name: Box::leak(self.name.clone().into_boxed_str()),
            maps: self.map_decls.clone(),
            num_reducers: self.reducers.len(),
            num_vars: self.num_vars,
            body,
        })
    }

    fn parse_top(&mut self) -> Result<TopStmt, ParseError> {
        if self.eat_kw("init") {
            let name = self.ident()?;
            let map = self.map_id(&name)?;
            self.expect_sym("=")?;
            let value = self.parse_expr()?;
            self.expect_sym(";")?;
            return Ok(TopStmt::InitMap { map, value });
        }
        if self.eat_kw("reset") {
            let name = self.ident()?;
            let map = self.map_id(&name)?;
            self.expect_sym(";")?;
            return Ok(TopStmt::ResetMap { map });
        }
        if self.eat_kw("set") {
            let name = self.ident()?;
            let reducer = *self
                .reducers
                .get(&name)
                .ok_or(ParseError {
                    line: 0,
                    col: 0,
                    message: format!("unknown reducer '{name}'"),
                })?;
            self.expect_sym("=")?;
            let value = match self.next() {
                Some(Tok::Num(n)) => n,
                _ => return self.err("expected number"),
            };
            self.expect_sym(";")?;
            return Ok(TopStmt::SetScalar { reducer, value });
        }
        if self.eat_kw("parfor") {
            self.vars.clear();
            let body = self.parse_block()?;
            return Ok(TopStmt::ParForOnce { body });
        }
        if self.eat_kw("while") {
            self.expect_kw("updated")?;
            self.expect_sym("(")?;
            let qname = self.ident()?;
            let quiesce_map = self.map_id(&qname)?;
            self.expect_sym(")")?;
            self.vars.clear();
            let body = self.parse_block()?;
            return Ok(TopStmt::While(KimbapWhile {
                quiesce_map,
                iterator: NodeIterator::AllNodes,
                body,
            }));
        }
        if self.eat_kw("do") {
            self.expect_sym("{")?;
            let mut body = Vec::new();
            while !matches!(self.peek(), Some(Tok::Sym("}"))) {
                body.push(self.parse_top()?);
            }
            self.expect_sym("}")?;
            self.expect_kw("while")?;
            let name = self.ident()?;
            let reducer = *self
                .reducers
                .get(&name)
                .ok_or(ParseError {
                    line: 0,
                    col: 0,
                    message: format!("unknown reducer '{name}'"),
                })?;
            self.expect_sym(";")?;
            return Ok(TopStmt::DoWhileScalar { body, reducer });
        }
        self.err("expected a top-level statement (init/reset/set/parfor/while/do)")
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_sym("{")?;
        let mut out = Vec::new();
        while !matches!(self.peek(), Some(Tok::Sym("}"))) {
            out.push(self.parse_stmt()?);
        }
        self.expect_sym("}")?;
        Ok(out)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw("let") {
            let name = self.ident()?;
            self.expect_sym("=")?;
            // Map read (`m[expr]`) or plain expression.
            if let Some(Tok::Ident(maybe_map)) = self.peek().cloned() {
                if self.maps.contains_key(&maybe_map) {
                    self.lx.pos += 1;
                    if self.eat_sym("[") {
                        let key = self.parse_expr()?;
                        self.expect_sym("]")?;
                        self.expect_sym(";")?;
                        let dst = self.var_id(&name);
                        let map = self.map_id(&maybe_map)?;
                        return Ok(Stmt::Read { dst, map, key });
                    }
                    self.lx.pos -= 1; // plain expression starting with an identifier
                }
            }
            let value = self.parse_expr()?;
            self.expect_sym(";")?;
            let dst = self.var_id(&name);
            return Ok(Stmt::Let { dst, value });
        }
        if self.eat_kw("if") {
            let cond = self.parse_expr()?;
            let then = self.parse_block()?;
            return Ok(Stmt::If { cond, then });
        }
        if self.eat_kw("for") {
            self.expect_kw("edges")?;
            let body = self.parse_block()?;
            return Ok(Stmt::ForEdges { body });
        }
        // `name[key] <- value;` (map reduce) or `name += value;` (scalar).
        let name = self.ident()?;
        if self.eat_sym("[") {
            let map = self.map_id(&name)?;
            let key = self.parse_expr()?;
            self.expect_sym("]")?;
            self.expect_sym("<-")?;
            let value = self.parse_expr()?;
            self.expect_sym(";")?;
            return Ok(Stmt::Reduce { map, key, value });
        }
        if self.eat_sym("+=") {
            let reducer = *self
                .reducers
                .get(&name)
                .ok_or(ParseError {
                    line: 0,
                    col: 0,
                    message: format!("unknown reducer '{name}'"),
                })?;
            let value = self.parse_expr()?;
            self.expect_sym(";")?;
            return Ok(Stmt::ReduceScalar { reducer, value });
        }
        self.err("expected a statement")
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_additive()?;
        for (sym, op) in [("<", BinOp::Lt), (">", BinOp::Gt), ("!=", BinOp::Ne), ("==", BinOp::Eq)]
        {
            if self.eat_sym(sym) {
                let rhs = self.parse_additive()?;
                return Ok(Expr::bin(op, lhs, rhs));
            }
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_term()?;
        loop {
            if self.eat_sym("+") {
                e = Expr::bin(BinOp::Add, e, self.parse_term()?);
            } else if self.eat_sym("-") {
                e = Expr::bin(BinOp::Sub, e, self.parse_term()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_atom()?;
        while self.eat_sym("*") {
            e = Expr::bin(BinOp::Mul, e, self.parse_atom()?);
        }
        Ok(e)
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        if self.eat_sym("(") {
            let e = self.parse_expr()?;
            self.expect_sym(")")?;
            return Ok(e);
        }
        match self.next() {
            Some(Tok::Num(n)) => Ok(Expr::Const(n)),
            Some(Tok::Ident(s)) => match s.as_str() {
                "node" => Ok(Expr::Node),
                "dst" => Ok(Expr::EdgeDst),
                "weight" => Ok(Expr::EdgeWeight),
                "min" => {
                    self.expect_sym("(")?;
                    let a = self.parse_expr()?;
                    self.expect_sym(",")?;
                    let b = self.parse_expr()?;
                    self.expect_sym(")")?;
                    Ok(Expr::bin(BinOp::Min, a, b))
                }
                _ => {
                    if let Some(&v) = self.vars.get(&s) {
                        Ok(Expr::Var(v))
                    } else {
                        self.lx.pos -= 1;
                        self.err(format!("unknown variable '{s}'"))
                    }
                }
            },
            _ => {
                self.lx.pos -= 1;
                self.err("expected an expression")
            }
        }
    }
}

/// Parses vertex-program source text into an IR [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] with position information on malformed input,
/// unknown maps/reducers/variables, or invalid reduction names.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let lx = lex(src)?;
    let mut p = Parser {
        lx,
        maps: HashMap::new(),
        map_decls: Vec::new(),
        reducers: HashMap::new(),
        vars: HashMap::new(),
        num_vars: 0,
        name: String::new(),
    };
    p.parse_program()
}

/// The CC-SV program of the paper's Fig. 4, in surface syntax.
pub const CC_SV_SOURCE: &str = r#"
// Shiloach-Vishkin connected components (paper Fig. 4).
program cc_sv {
    map parent : min;
    reducer work_done;

    init parent = node;
    do {
        set work_done = 0;
        // Hook: min-reduce parent(parent(src)) by parent(dst).
        while updated(parent) {
            let src_parent = parent[node];
            for edges {
                let dst_parent = parent[dst];
                if src_parent > dst_parent {
                    work_done += 1;
                    parent[src_parent] <- dst_parent;
                }
            }
        }
        // Shortcut: parent(n) = parent(parent(n)).
        while updated(parent) {
            let p = parent[node];
            let grand = parent[p];
            if p != grand {
                parent[node] <- grand;
            }
        }
    } while work_done;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    #[test]
    fn parses_cc_sv_to_the_reference_ir() {
        let parsed = parse(CC_SV_SOURCE).unwrap();
        let reference = programs::cc_sv();
        // Same structure modulo the name-interning of vars and maps.
        assert_eq!(parsed.maps.len(), reference.maps.len());
        assert_eq!(parsed.num_reducers, reference.num_reducers);
        assert_eq!(parsed.body, reference.body);
    }

    #[test]
    fn parses_minimal_lp() {
        let src = r#"
        program lp {
            map label : min;
            init label = node;
            while updated(label) {
                let my = label[node];
                for edges {
                    let other = label[dst];
                    if my < other { label[dst] <- my; }
                }
            }
        }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.body, programs::cc_lp().body);
    }

    #[test]
    fn arithmetic_precedence() {
        let src = r#"
        program t {
            map m : sum;
            parfor {
                let a = m[node];
                let b = a + 2 * 3 - 1;
                m[node] <- b;
            }
        }
        "#;
        let p = parse(src).unwrap();
        let TopStmt::ParForOnce { body } = &p.body[0] else {
            panic!()
        };
        let Stmt::Let { value, .. } = &body[1] else {
            panic!()
        };
        // ((a + (2*3)) - 1)
        assert_eq!(
            *value,
            Expr::bin(
                BinOp::Sub,
                Expr::bin(
                    BinOp::Add,
                    Expr::Var(0),
                    Expr::bin(BinOp::Mul, Expr::Const(2), Expr::Const(3))
                ),
                Expr::Const(1)
            )
        );
    }

    #[test]
    fn error_reports_position() {
        let err = parse("program x {\n  map m min;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("expected ':'"), "{err}");
    }

    #[test]
    fn unknown_map_is_an_error() {
        let err = parse(
            "program x { map m : min; while updated(q) { let a = m[node]; } }",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown map"), "{err}");
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let err =
            parse("program x { map m : min; parfor { m[node] <- ghost; } }").unwrap_err();
        assert!(err.message.contains("unknown variable"), "{err}");
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let p = parse("program x { // nothing\n map m : max; // decl\n }").unwrap();
        assert_eq!(p.maps[0].op, kimbap_npm::DynReduceOp::Max);
    }
}

/// Shortcutting label propagation in surface syntax.
pub const CC_SCLP_SOURCE: &str = r#"
program cc_sclp {
    map label : min;
    reducer changed;

    init label = node;
    do {
        set changed = 0;
        // Label propagation sweep (adjacent-vertex).
        while updated(label) {
            let my = label[node];
            for edges {
                let other = label[dst];
                if my < other {
                    changed += 1;
                    label[dst] <- my;
                }
            }
        }
        // Pointer-jumping sweep (trans-vertex).
        while updated(label) {
            let p = label[node];
            let grand = label[p];
            if p != grand {
                changed += 1;
                label[node] <- grand;
            }
        }
    } while changed;
}
"#;

/// Priority-based maximal independent set in surface syntax.
pub const MIS_SOURCE: &str = r#"
program mis {
    map degree : sum;
    map state  : max;
    map best   : max;
    reducer active;

    // Global degrees: one count per local edge, summed at the owner.
    parfor {
        for edges {
            degree[node] <- 1;
        }
    }

    do {
        set active = 0;
        reset best;
        // Phase 1: highest undecided-neighbor priority.
        parfor {
            let s = state[node];
            if s == 0 {
                for edges {
                    let t = state[dst];
                    if t == 0 {
                        let d = degree[dst];
                        let p = (4294967295 - d) * 4294967296 + dst;
                        best[node] <- p;
                    }
                }
            }
        }
        // Phase 2: winners join the set.
        parfor {
            let s = state[node];
            if s == 0 {
                let d = degree[node];
                let my = (4294967295 - d) * 4294967296 + node;
                let top = best[node];
                if my > top {
                    state[node] <- 1;
                }
            }
        }
        // Phase 3: neighbors of winners drop out.
        parfor {
            let s = state[node];
            if s == 1 {
                for edges {
                    let t = state[dst];
                    if t == 0 {
                        state[dst] <- 2;
                    }
                }
            }
        }
        // Quiescence: any undecided node left?
        parfor {
            let s = state[node];
            if s == 0 {
                active += 1;
            }
        }
    } while active;
}
"#;

#[cfg(test)]
mod source_tests {
    use super::*;
    use crate::programs;

    #[test]
    fn sclp_source_matches_reference() {
        let parsed = parse(CC_SCLP_SOURCE).unwrap();
        assert_eq!(parsed.body, programs::cc_sclp().body);
    }

    #[test]
    fn mis_source_matches_reference() {
        let parsed = parse(MIS_SOURCE).unwrap();
        let reference = programs::mis();
        assert_eq!(parsed.maps.len(), reference.maps.len());
        assert_eq!(parsed.body, reference.body);
    }
}
