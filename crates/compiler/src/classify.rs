//! Operator classification: adjacent-vertex vs trans-vertex (Table 2).
//!
//! An operator is **adjacent-vertex** when every property access — read or
//! reduce — is keyed by the active node or one of its edge endpoints; it is
//! **trans-vertex** when any access is keyed by a dynamically computed node
//! id (§1). An application uses both types when some of its operators are
//! purely adjacent and others are not.

use crate::ir::{Program, Stmt, TopStmt};

/// Classification of one operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperatorKind {
    /// All reads and reduces are keyed by the active node or an edge
    /// endpoint.
    AdjacentVertex,
    /// Some access is keyed by a dynamically computed node.
    TransVertex,
}

/// Per-application summary — one Table 2 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppClassification {
    /// The application contains at least one purely adjacent operator.
    pub uses_adjacent: bool,
    /// The application contains at least one trans-vertex operator.
    pub uses_trans: bool,
    /// Number of operators examined.
    pub num_operators: usize,
}

/// Classifies one operator body.
pub fn classify_operator(body: &[Stmt]) -> OperatorKind {
    fn adjacent_only(stmts: &[Stmt]) -> bool {
        stmts.iter().all(|s| match s {
            Stmt::Read { key, .. } => key.is_adjacent_key(),
            Stmt::Reduce { key, .. } => key.is_adjacent_key(),
            Stmt::Request { key, .. } => key.is_adjacent_key(),
            Stmt::If { then, .. } => adjacent_only(then),
            Stmt::ForEdges { body } => adjacent_only(body),
            Stmt::Let { .. } | Stmt::ReduceScalar { .. } => true,
        })
    }
    if adjacent_only(body) {
        OperatorKind::AdjacentVertex
    } else {
        OperatorKind::TransVertex
    }
}

/// Classifies every operator in a program (Table 2 row).
pub fn classify_program(p: &Program) -> AppClassification {
    fn operators<'a>(tops: &'a [TopStmt], out: &mut Vec<&'a [Stmt]>) {
        for t in tops {
            match t {
                TopStmt::While(w) => out.push(&w.body),
                TopStmt::ParForOnce { body } => out.push(body),
                TopStmt::DoWhileScalar { body, .. } => operators(body, out),
                _ => {}
            }
        }
    }
    let mut ops = Vec::new();
    operators(&p.body, &mut ops);
    let kinds: Vec<OperatorKind> = ops.iter().map(|b| classify_operator(b)).collect();
    AppClassification {
        uses_adjacent: kinds.contains(&OperatorKind::AdjacentVertex),
        uses_trans: kinds.contains(&OperatorKind::TransVertex),
        num_operators: kinds.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    /// The expected Table 2 rows: (app, adjacent?, trans?).
    #[test]
    fn table2_matches_paper() {
        let expectations = [
            (programs::louvain_sketch(), true, true), // LV
            (programs::leiden_sketch(), true, true),  // LD
            (programs::msf_sketch(), false, true),    // MSF
            (programs::cc_lp(), true, false),         // CC-LP
            (programs::cc_sclp(), true, true),        // CC-SCLP
            (programs::cc_sv(), false, true),         // CC-SV
            (programs::mis(), true, false),           // MIS
        ];
        for (prog, adj, trans) in expectations {
            let c = classify_program(&prog);
            assert_eq!(
                (c.uses_adjacent, c.uses_trans),
                (adj, trans),
                "{} misclassified: {c:?}",
                prog.name
            );
        }
    }

    #[test]
    fn hook_is_trans_vertex() {
        let p = programs::cc_sv();
        let loops = p.loops();
        // Hook reduces into parent(src_parent): trans.
        assert_eq!(classify_operator(&loops[0].body), OperatorKind::TransVertex);
        // Shortcut reads parent(parent(n)): trans.
        assert_eq!(classify_operator(&loops[1].body), OperatorKind::TransVertex);
    }
}
