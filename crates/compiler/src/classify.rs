//! Operator classification: adjacent-vertex vs trans-vertex (Table 2).
//!
//! An operator is **adjacent-vertex** when every property access — read or
//! reduce — is keyed by the active node or one of its edge endpoints; it is
//! **trans-vertex** when any access is keyed by a dynamically computed node
//! id (§1). An application uses both types when some of its operators are
//! purely adjacent and others are not.

use crate::ir::{Expr, MapId, Program, Stmt, TopStmt};
use std::collections::BTreeMap;

/// Classification of one operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperatorKind {
    /// All reads and reduces are keyed by the active node or an edge
    /// endpoint.
    AdjacentVertex,
    /// Some access is keyed by a dynamically computed node.
    TransVertex,
}

/// Per-application summary — one Table 2 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppClassification {
    /// The application contains at least one purely adjacent operator.
    pub uses_adjacent: bool,
    /// The application contains at least one trans-vertex operator.
    pub uses_trans: bool,
    /// Number of operators examined.
    pub num_operators: usize,
}

/// How an operator body's reads depend on one map's keys — which nodes
/// must re-run when a key of that map changes (the frontier fan-in).
///
/// The variants are ordered from most to least precise; joining two
/// observations of the same map takes the `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReadDep {
    /// Every read of the map is keyed by the active node: a changed key
    /// activates only that node.
    SelfKey,
    /// Reads are keyed by the active node and/or the current edge
    /// destination: a changed key activates the key itself plus its
    /// in-neighbors (the nodes whose out-edges reach it).
    Adjacent,
    /// Some read is keyed by a computed (trans-vertex) expression: the
    /// dependence is not statically bounded, so sparse iteration over a
    /// changed-key frontier is unsound.
    Trans,
}

/// Classifies, per map read by `body`, how the body depends on its keys.
/// Sorted by map id; maps that are only reduced into (never read) do not
/// appear.
pub fn classify_map_reads(body: &[Stmt]) -> Vec<(MapId, ReadDep)> {
    fn walk(stmts: &[Stmt], deps: &mut BTreeMap<MapId, ReadDep>) {
        for s in stmts {
            match s {
                Stmt::Read { map, key, .. } => {
                    let dep = match key {
                        Expr::Node => ReadDep::SelfKey,
                        Expr::EdgeDst => ReadDep::Adjacent,
                        _ => ReadDep::Trans,
                    };
                    let e = deps.entry(*map).or_insert(dep);
                    *e = (*e).max(dep);
                }
                Stmt::If { then, .. } => walk(then, deps),
                Stmt::ForEdges { body } => walk(body, deps),
                _ => {}
            }
        }
    }
    let mut deps = BTreeMap::new();
    walk(body, &mut deps);
    deps.into_iter().collect()
}

/// Classifies one operator body.
pub fn classify_operator(body: &[Stmt]) -> OperatorKind {
    fn adjacent_only(stmts: &[Stmt]) -> bool {
        stmts.iter().all(|s| match s {
            Stmt::Read { key, .. } => key.is_adjacent_key(),
            Stmt::Reduce { key, .. } => key.is_adjacent_key(),
            Stmt::Request { key, .. } => key.is_adjacent_key(),
            Stmt::If { then, .. } => adjacent_only(then),
            Stmt::ForEdges { body } => adjacent_only(body),
            Stmt::Let { .. } | Stmt::ReduceScalar { .. } => true,
        })
    }
    if adjacent_only(body) {
        OperatorKind::AdjacentVertex
    } else {
        OperatorKind::TransVertex
    }
}

/// Classifies every operator in a program (Table 2 row).
pub fn classify_program(p: &Program) -> AppClassification {
    fn operators<'a>(tops: &'a [TopStmt], out: &mut Vec<&'a [Stmt]>) {
        for t in tops {
            match t {
                TopStmt::While(w) => out.push(&w.body),
                TopStmt::ParForOnce { body } => out.push(body),
                TopStmt::DoWhileScalar { body, .. } => operators(body, out),
                _ => {}
            }
        }
    }
    let mut ops = Vec::new();
    operators(&p.body, &mut ops);
    let kinds: Vec<OperatorKind> = ops.iter().map(|b| classify_operator(b)).collect();
    AppClassification {
        uses_adjacent: kinds.contains(&OperatorKind::AdjacentVertex),
        uses_trans: kinds.contains(&OperatorKind::TransVertex),
        num_operators: kinds.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    /// The expected Table 2 rows: (app, adjacent?, trans?).
    #[test]
    fn table2_matches_paper() {
        let expectations = [
            (programs::louvain_sketch(), true, true), // LV
            (programs::leiden_sketch(), true, true),  // LD
            (programs::msf_sketch(), false, true),    // MSF
            (programs::cc_lp(), true, false),         // CC-LP
            (programs::cc_sclp(), true, true),        // CC-SCLP
            (programs::cc_sv(), false, true),         // CC-SV
            (programs::mis(), true, false),           // MIS
        ];
        for (prog, adj, trans) in expectations {
            let c = classify_program(&prog);
            assert_eq!(
                (c.uses_adjacent, c.uses_trans),
                (adj, trans),
                "{} misclassified: {c:?}",
                prog.name
            );
        }
    }

    #[test]
    fn hook_is_trans_vertex() {
        let p = programs::cc_sv();
        let loops = p.loops();
        // Hook reduces into parent(src_parent): trans.
        assert_eq!(classify_operator(&loops[0].body), OperatorKind::TransVertex);
        // Shortcut reads parent(parent(n)): trans.
        assert_eq!(classify_operator(&loops[1].body), OperatorKind::TransVertex);
    }

    #[test]
    fn map_read_deps_join_to_the_weakest_kind() {
        // CC-LP reads label(node) and label(edge.dst): Adjacent.
        let lp = programs::cc_lp();
        assert_eq!(
            classify_map_reads(&lp.loops()[0].body),
            vec![(0, ReadDep::Adjacent)]
        );
        // CC-SV shortcut reads parent(node) then parent(parent(node)):
        // the computed key degrades the map to Trans.
        let sv = programs::cc_sv();
        assert_eq!(
            classify_map_reads(&sv.loops()[1].body),
            vec![(0, ReadDep::Trans)]
        );
    }
}
