//! Dominator and post-dominator analysis (§2.3) via the
//! Cooper–Harvey–Kennedy iterative algorithm.

use crate::cfg::{Cfg, ENTRY, EXIT};

/// A dominator tree: `idom[n]` is the immediate dominator of node `n`
/// (`None` for the root and for unreachable nodes).
#[derive(Debug, Clone)]
pub struct DomTree {
    idom: Vec<Option<usize>>,
    root: usize,
}

impl DomTree {
    /// Dominator tree of `cfg` rooted at the entry node.
    pub fn dominators(cfg: &Cfg) -> DomTree {
        Self::compute(cfg.len(), ENTRY, |n| &cfg.succ[n], |n| &cfg.pred[n])
    }

    /// Post-dominator tree of `cfg` rooted at the exit node (dominators of
    /// the reversed CFG).
    pub fn post_dominators(cfg: &Cfg) -> DomTree {
        Self::compute(cfg.len(), EXIT, |n| &cfg.pred[n], |n| &cfg.succ[n])
    }

    fn compute<'a>(
        n: usize,
        root: usize,
        succ: impl Fn(usize) -> &'a [usize] + Copy,
        pred: impl Fn(usize) -> &'a [usize] + Copy,
    ) -> DomTree {
        // Reverse postorder from `root`.
        let mut order = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut stack = vec![(root, 0usize)];
        state[root] = 1;
        while let Some(&mut (node, ref mut i)) = stack.last_mut() {
            let ss = succ(node);
            if *i < ss.len() {
                let next = ss[*i];
                *i += 1;
                if state[next] == 0 {
                    state[next] = 1;
                    stack.push((next, 0));
                }
            } else {
                state[node] = 2;
                order.push(node);
                stack.pop();
            }
        }
        order.reverse(); // reverse postorder

        let mut rpo_num = vec![usize::MAX; n];
        for (i, &node) in order.iter().enumerate() {
            rpo_num[node] = i;
        }

        let mut idom: Vec<Option<usize>> = vec![None; n];
        idom[root] = Some(root);
        let mut changed = true;
        while changed {
            changed = false;
            for &node in order.iter().skip(1) {
                let mut new_idom = None;
                for &p in pred(node) {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_num, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[node] != Some(ni) {
                        idom[node] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        idom[root] = None; // the root has no (immediate) dominator
        DomTree { idom, root }
    }

    /// Immediate dominator of `n` (`None` for the root / unreachable).
    pub fn idom(&self, n: usize) -> Option<usize> {
        self.idom.get(n).copied().flatten()
    }

    /// `true` if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(next) => cur = next,
                None => return cur == a && a == self.root,
            }
        }
    }

    /// Nodes dominated by `n` (including `n`), in arbitrary order.
    pub fn dominated_by(&self, n: usize) -> Vec<usize> {
        (0..self.idom.len())
            .filter(|&m| self.dominates(n, m))
            .collect()
    }
}

fn intersect(idom: &[Option<usize>], rpo: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while rpo[a] > rpo[b] {
            a = idom[a].expect("processed node has idom");
        }
        while rpo[b] > rpo[a] {
            b = idom[b].expect("processed node has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::NodeKind;
    use crate::ir::{BinOp, Expr, Stmt};

    fn diamond() -> Cfg {
        // read; if { reduce }; read2 — diamond join at read2.
        Cfg::build(&[
            Stmt::Read { dst: 0, map: 0, key: Expr::Node },
            Stmt::If {
                cond: Expr::bin(BinOp::Gt, Expr::Var(0), Expr::Const(1)),
                then: vec![Stmt::Reduce { map: 0, key: Expr::Node, value: Expr::Var(0) }],
            },
            Stmt::Read { dst: 1, map: 0, key: Expr::Var(0) },
        ])
    }

    #[test]
    fn dominators_of_diamond() {
        let cfg = diamond();
        let dom = DomTree::dominators(&cfg);
        let reads = cfg.nodes_of_kind(NodeKind::Read);
        let iff = cfg.nodes_of_kind(NodeKind::If)[0];
        let red = cfg.nodes_of_kind(NodeKind::Reduce)[0];
        // entry dominates everything.
        for n in 0..cfg.len() {
            assert!(dom.dominates(ENTRY, n));
        }
        // The If dominates the reduce and the join read.
        assert!(dom.dominates(iff, red));
        assert!(dom.dominates(iff, reads[1]));
        // The reduce does NOT dominate the join (branch around it).
        assert!(!dom.dominates(red, reads[1]));
        assert_eq!(dom.idom(red), Some(iff));
        assert_eq!(dom.idom(reads[1]), Some(iff));
        assert_eq!(dom.idom(ENTRY), None);
    }

    #[test]
    fn post_dominators_of_diamond() {
        let cfg = diamond();
        let pdom = DomTree::post_dominators(&cfg);
        let reads = cfg.nodes_of_kind(NodeKind::Read);
        let red = cfg.nodes_of_kind(NodeKind::Reduce)[0];
        // The join read post-dominates the branch arms.
        assert!(pdom.dominates(reads[1], red));
        assert!(pdom.dominates(EXIT, ENTRY));
        assert_eq!(pdom.idom(red), Some(reads[1]));
    }

    #[test]
    fn loop_header_dominates_body() {
        let cfg = Cfg::build(&[Stmt::ForEdges {
            body: vec![Stmt::Read { dst: 0, map: 0, key: Expr::EdgeDst }],
        }]);
        let dom = DomTree::dominators(&cfg);
        let hdr = cfg.nodes_of_kind(NodeKind::ForEdges)[0];
        let rd = cfg.nodes_of_kind(NodeKind::Read)[0];
        assert!(dom.dominates(hdr, rd));
        assert!(!dom.dominates(rd, hdr));
        // Body does not post-dominate the header (zero-trip possible).
        let pdom = DomTree::post_dominators(&cfg);
        assert!(!pdom.dominates(rd, hdr));
        assert_eq!(pdom.idom(hdr), Some(EXIT));
    }

    #[test]
    fn dominated_by_collects_subtree() {
        let cfg = diamond();
        let dom = DomTree::dominators(&cfg);
        let iff = cfg.nodes_of_kind(NodeKind::If)[0];
        let subtree = dom.dominated_by(iff);
        assert!(subtree.contains(&iff));
        assert_eq!(subtree.len(), 4); // if, reduce, join read, exit
    }
}
