//! The vertex-program intermediate representation.
//!
//! The paper's compiler consumes C++ `KimbapWhile … ParFor` constructs
//! (Fig. 3). This reproduction consumes the same programs written in a
//! small typed IR: a [`Program`] is a sequence of [`TopStmt`]s; each
//! [`KimbapWhile`] holds one operator body of nested [`Stmt`]s evaluated
//! once per active node. Property values are `u64` (node ids, labels,
//! counters — everything the paper's executable examples need).
//!
//! Programs are written in SSA style: every [`Var`] is assigned exactly
//! once per operator execution (the transformations rely on this to slice
//! out request code).

use kimbap_npm::DynReduceOp;

/// A virtual register holding a `u64` within one operator application.
pub type Var = usize;

/// Index of a node-property map declared by the program.
pub type MapId = usize;

/// Index of a scalar reducer declared by the program.
pub type ReducerId = usize;

/// Binary operations in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `a < b` (1 or 0).
    Lt,
    /// `a > b` (1 or 0).
    Gt,
    /// `a != b` (1 or 0).
    Ne,
    /// `a == b` (1 or 0).
    Eq,
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Minimum.
    Min,
}

/// A side-effect-free expression over the active node, the current edge,
/// and previously assigned variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A constant.
    Const(u64),
    /// A variable assigned by an earlier `Let` or `Read`.
    Var(Var),
    /// The active node's global id.
    Node,
    /// The current edge's destination node id (only valid inside
    /// [`Stmt::ForEdges`]).
    EdgeDst,
    /// The current edge's weight (only valid inside [`Stmt::ForEdges`]).
    EdgeWeight,
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience: `Bin(op, a, b)`.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Variables read by this expression.
    pub fn vars(&self, out: &mut Vec<Var>) {
        match self {
            Expr::Var(v) => out.push(*v),
            Expr::Bin(_, a, b) => {
                a.vars(out);
                b.vars(out);
            }
            _ => {}
        }
    }

    /// `true` if the expression depends only on the active node / edge /
    /// constants — i.e. its value is known without reading any map.
    pub fn is_positional(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::Node | Expr::EdgeDst | Expr::EdgeWeight => true,
            Expr::Var(_) => false,
            Expr::Bin(_, a, b) => a.is_positional() && b.is_positional(),
        }
    }

    /// `true` if the expression is exactly the active node or the current
    /// edge destination — the *adjacent* keys of adjacent-vertex operators.
    pub fn is_adjacent_key(&self) -> bool {
        matches!(self, Expr::Node | Expr::EdgeDst)
    }
}

/// One statement of an operator body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `dst = <expr>`.
    Let {
        /// Variable assigned.
        dst: Var,
        /// Value.
        value: Expr,
    },
    /// `dst = map.Read(key)`.
    Read {
        /// Variable receiving the property value.
        dst: Var,
        /// Map read from.
        map: MapId,
        /// Key expression.
        key: Expr,
    },
    /// `map.Reduce(key, value)` with the map's operator.
    Reduce {
        /// Map reduced into.
        map: MapId,
        /// Key expression.
        key: Expr,
        /// Value expression.
        value: Expr,
    },
    /// `map.Request(key)` — only produced by the compiler.
    Request {
        /// Map requested from.
        map: MapId,
        /// Key expression.
        key: Expr,
    },
    /// `reducer.Reduce(value)` on a scalar reducer (e.g. `work_done`).
    ReduceScalar {
        /// Reducer updated.
        reducer: ReducerId,
        /// Value (0 = false, non-zero = true / summed).
        value: Expr,
    },
    /// `if (cond != 0) { … }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then: Vec<Stmt>,
    },
    /// `for (edge : graph.Edges(node)) { … }`.
    ForEdges {
        /// Loop body, evaluated once per out-edge of the active node.
        body: Vec<Stmt>,
    },
}

/// Which nodes a `ParFor` iterates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeIterator {
    /// All local proxies (the source program's `graph.Nodes()`).
    #[default]
    AllNodes,
    /// Master proxies only (installed by the master-elision optimization).
    Masters,
}

/// A `KimbapWhile (<map>) Updated ParFor (<iterator>) { <operator> }`
/// construct (paper Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct KimbapWhile {
    /// The quiescence map: iterate until it stops updating.
    pub quiesce_map: MapId,
    /// Node iterator of the ParFor.
    pub iterator: NodeIterator,
    /// The operator body.
    pub body: Vec<Stmt>,
}

/// Top-level program statements.
#[derive(Debug, Clone, PartialEq)]
pub enum TopStmt {
    /// `ParFor (node) map.Set(node, <expr>)` — map initialization.
    InitMap {
        /// Map initialized.
        map: MapId,
        /// Value per node (may use `Expr::Node`).
        value: Expr,
    },
    /// Reset a map's values to its operator identity — how programs model
    /// per-round scratch maps (e.g. MIS's best-neighbor-priority map).
    ResetMap {
        /// Map reset.
        map: MapId,
    },
    /// A single ParFor over all nodes (no quiescence loop) — used for
    /// one-shot phases like degree counting.
    ParForOnce {
        /// The operator body.
        body: Vec<Stmt>,
    },
    /// `reducer.Set(<value>)`.
    SetScalar {
        /// Reducer reset.
        reducer: ReducerId,
        /// New value.
        value: u64,
    },
    /// A `KimbapWhile` loop.
    While(KimbapWhile),
    /// `do { … } while (reducer.Read())` — e.g. CC-SV's outer loop.
    DoWhileScalar {
        /// Loop body.
        body: Vec<TopStmt>,
        /// Controlling boolean reducer (loop repeats while it reads true).
        reducer: ReducerId,
    },
}

/// Declaration of a node-property map used by a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapDecl {
    /// The reduction operator of the map.
    pub op: DynReduceOp,
    /// Human-readable name for diagnostics.
    pub name: &'static str,
}

/// A whole vertex program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name (for reports).
    pub name: &'static str,
    /// Node-property maps, indexed by [`MapId`].
    pub maps: Vec<MapDecl>,
    /// Number of scalar reducers, indexed by [`ReducerId`].
    pub num_reducers: usize,
    /// Number of virtual registers used by any operator.
    pub num_vars: usize,
    /// The program body.
    pub body: Vec<TopStmt>,
}

impl Program {
    /// Iterates all `KimbapWhile` loops in the program (in textual order).
    pub fn loops(&self) -> Vec<&KimbapWhile> {
        fn walk<'a>(stmts: &'a [TopStmt], out: &mut Vec<&'a KimbapWhile>) {
            for s in stmts {
                match s {
                    TopStmt::While(w) => out.push(w),
                    TopStmt::DoWhileScalar { body, .. } => walk(body, out),
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_positional_and_adjacent() {
        assert!(Expr::Node.is_positional());
        assert!(Expr::EdgeDst.is_adjacent_key());
        assert!(!Expr::Var(0).is_positional());
        assert!(Expr::bin(BinOp::Add, Expr::Node, Expr::Const(1)).is_positional());
        assert!(!Expr::bin(BinOp::Add, Expr::Node, Expr::Var(2)).is_positional());
        assert!(!Expr::Const(3).is_adjacent_key());
    }

    #[test]
    fn expr_vars_collects() {
        let e = Expr::bin(BinOp::Min, Expr::Var(1), Expr::bin(BinOp::Add, Expr::Var(2), Expr::Node));
        let mut vs = Vec::new();
        e.vars(&mut vs);
        assert_eq!(vs, vec![1, 2]);
    }

    #[test]
    fn loops_walks_nested() {
        let w = KimbapWhile {
            quiesce_map: 0,
            iterator: NodeIterator::AllNodes,
            body: vec![],
        };
        let p = Program {
            name: "t",
            maps: vec![MapDecl { op: DynReduceOp::Min, name: "m" }],
            num_reducers: 1,
            num_vars: 0,
            body: vec![
                TopStmt::While(w.clone()),
                TopStmt::DoWhileScalar {
                    body: vec![TopStmt::While(w.clone())],
                    reducer: 0,
                },
            ],
        };
        assert_eq!(p.loops().len(), 2);
    }
}
