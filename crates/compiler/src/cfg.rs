//! Statement-level control-flow graph construction (§2.3).

use crate::ir::Stmt;

/// What a CFG node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Synthetic entry block (the `ParFor` header).
    Entry,
    /// Synthetic exit block.
    Exit,
    /// A `Let`.
    Let,
    /// A `Read`.
    Read,
    /// A `Reduce`.
    Reduce,
    /// A `Request`.
    Request,
    /// A `ReduceScalar`.
    ReduceScalar,
    /// An `If` condition.
    If,
    /// A `ForEdges` loop header.
    ForEdges,
}

/// A statement-level control-flow graph for one operator body.
///
/// Node 0 is the entry, node 1 the exit; every statement (including `If`
/// conditions and `ForEdges` headers) is one node. `path` records where
/// each node's statement lives in the operator tree (indices into nested
/// statement lists), letting analyses map CFG facts back to the IR.
#[derive(Debug)]
pub struct Cfg {
    /// Node kinds, indexed by CFG node id.
    pub kind: Vec<NodeKind>,
    /// Tree path of each node's statement (empty for entry/exit).
    pub path: Vec<Vec<usize>>,
    /// Successor lists.
    pub succ: Vec<Vec<usize>>,
    /// Predecessor lists.
    pub pred: Vec<Vec<usize>>,
}

/// The entry node id.
pub const ENTRY: usize = 0;
/// The exit node id.
pub const EXIT: usize = 1;

impl Cfg {
    /// Builds the CFG of an operator body.
    pub fn build(body: &[Stmt]) -> Cfg {
        let mut cfg = Cfg {
            kind: vec![NodeKind::Entry, NodeKind::Exit],
            path: vec![Vec::new(), Vec::new()],
            succ: vec![Vec::new(), Vec::new()],
            pred: vec![Vec::new(), Vec::new()],
        };
        let tails = cfg.build_block(body, vec![ENTRY], &mut Vec::new());
        for t in tails {
            cfg.edge(t, EXIT);
        }
        cfg
    }

    fn add_node(&mut self, kind: NodeKind, path: &[usize]) -> usize {
        self.kind.push(kind);
        self.path.push(path.to_vec());
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        self.kind.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        self.succ[from].push(to);
        self.pred[to].push(from);
    }

    /// Wires a statement list after `preds`; returns the dangling tails.
    fn build_block(
        &mut self,
        stmts: &[Stmt],
        mut preds: Vec<usize>,
        path: &mut Vec<usize>,
    ) -> Vec<usize> {
        for (i, s) in stmts.iter().enumerate() {
            path.push(i);
            let kind = match s {
                Stmt::Let { .. } => NodeKind::Let,
                Stmt::Read { .. } => NodeKind::Read,
                Stmt::Reduce { .. } => NodeKind::Reduce,
                Stmt::Request { .. } => NodeKind::Request,
                Stmt::ReduceScalar { .. } => NodeKind::ReduceScalar,
                Stmt::If { .. } => NodeKind::If,
                Stmt::ForEdges { .. } => NodeKind::ForEdges,
            };
            let node = self.add_node(kind, path);
            for p in preds.drain(..) {
                self.edge(p, node);
            }
            match s {
                Stmt::If { then, .. } => {
                    // Condition node branches into the then-block and past it.
                    let tails = self.build_block(then, vec![node], path);
                    preds = tails;
                    preds.push(node);
                }
                Stmt::ForEdges { body } => {
                    // Loop header: into the body, body tail back to header,
                    // header onward.
                    let tails = self.build_block(body, vec![node], path);
                    for t in tails {
                        self.edge(t, node);
                    }
                    preds = vec![node];
                }
                _ => preds = vec![node],
            }
            path.pop();
        }
        preds
    }

    /// Number of CFG nodes.
    pub fn len(&self) -> usize {
        self.kind.len()
    }

    /// `true` if the graph has only entry and exit.
    pub fn is_empty(&self) -> bool {
        self.len() == 2
    }

    /// Ids of all nodes of a given kind, in insertion (program) order.
    pub fn nodes_of_kind(&self, k: NodeKind) -> Vec<usize> {
        (0..self.len()).filter(|&n| self.kind[n] == k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Expr};

    fn read(dst: usize, key: Expr) -> Stmt {
        Stmt::Read { dst, map: 0, key }
    }

    #[test]
    fn straight_line() {
        let body = vec![read(0, Expr::Node), read(1, Expr::Var(0))];
        let cfg = Cfg::build(&body);
        assert_eq!(cfg.len(), 4);
        assert_eq!(cfg.succ[ENTRY], vec![2]);
        assert_eq!(cfg.succ[2], vec![3]);
        assert_eq!(cfg.succ[3], vec![EXIT]);
        assert_eq!(cfg.path[3], vec![1]);
    }

    #[test]
    fn if_branches_and_joins() {
        let body = vec![
            read(0, Expr::Node),
            Stmt::If {
                cond: Expr::bin(BinOp::Gt, Expr::Var(0), Expr::Const(0)),
                then: vec![Stmt::Reduce {
                    map: 0,
                    key: Expr::Node,
                    value: Expr::Var(0),
                }],
            },
        ];
        let cfg = Cfg::build(&body);
        // entry, exit, read, if, reduce
        assert_eq!(cfg.len(), 5);
        let iff = cfg.nodes_of_kind(NodeKind::If)[0];
        let red = cfg.nodes_of_kind(NodeKind::Reduce)[0];
        // If branches to the reduce and (fall-through) to exit.
        assert!(cfg.succ[iff].contains(&red));
        assert!(cfg.succ[iff].contains(&EXIT));
        assert!(cfg.succ[red].contains(&EXIT));
    }

    #[test]
    fn for_edges_loops_back() {
        let body = vec![Stmt::ForEdges {
            body: vec![read(0, Expr::EdgeDst)],
        }];
        let cfg = Cfg::build(&body);
        let hdr = cfg.nodes_of_kind(NodeKind::ForEdges)[0];
        let rd = cfg.nodes_of_kind(NodeKind::Read)[0];
        assert!(cfg.succ[hdr].contains(&rd));
        assert!(cfg.succ[rd].contains(&hdr), "back edge missing");
        assert!(cfg.succ[hdr].contains(&EXIT));
        assert_eq!(cfg.path[rd], vec![0, 0]);
    }

    #[test]
    fn empty_operator() {
        let cfg = Cfg::build(&[]);
        assert!(cfg.is_empty());
        assert_eq!(cfg.succ[ENTRY], vec![EXIT]);
    }
}
