//! Value-domain certification: which maps can use a compact storage
//! layout.
//!
//! The node-property map stores master (and mirror) properties in dense
//! 8-byte tables. Many maps never hold values that need 8 bytes:
//! connected-components labels are node ids, MIS states are `{0, 1, 2}`.
//! This pass proves an upper bound on every value a map can hold, by a
//! fixed-point dataflow over the program's value sources:
//!
//! * `InitMap` / `Reduce` value expressions, evaluated in an abstract
//!   domain where `Node`/`EdgeDst` are bounded by the node space,
//!   constants by themselves, comparisons by 1, and arithmetic is
//!   unbounded (it wraps);
//! * map reads feed the source map's current domain back in (labels
//!   propagate through `Min` chains without widening);
//! * `Min`-selective operators keep the join of their sources, while
//!   accumulating operators (`Sum`) widen to unbounded as soon as any
//!   reduce targets the map.
//!
//! The reduction identity is deliberately *outside* the certified bound:
//! `Min`'s `u64::MAX` identity round-trips through every compact layout's
//! reserved all-ones sentinel (see `kimbap_npm::table`), so a bound of
//! "values are node ids" certifies a `u32` layout even though unwritten
//! masters read back as `u64::MAX`.

use crate::ir::{BinOp, Expr, Program, Stmt, TopStmt};
use kimbap_npm::DynReduceOp;

/// The certified domain of a map's non-identity values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueDomain {
    /// Every value is `≤ max(max_const, n − 1 if node)` where `n` is the
    /// number of nodes (known only at run time).
    Bounded {
        /// Values include node ids (bounded by the node space).
        node: bool,
        /// Largest constant-derived value.
        max_const: u64,
    },
    /// No bound could be proven (arithmetic, edge weights, `Sum` maps).
    Unbounded,
}

impl ValueDomain {
    /// The concrete bound once the node count is known, or `None` when
    /// unbounded.
    pub fn bound(self, num_nodes: usize) -> Option<u64> {
        match self {
            ValueDomain::Bounded { node, max_const } => {
                let node_max = if node { num_nodes.saturating_sub(1) as u64 } else { 0 };
                Some(node_max.max(max_const))
            }
            ValueDomain::Unbounded => None,
        }
    }

    fn join(self, other: ValueDomain) -> ValueDomain {
        match (self, other) {
            (
                ValueDomain::Bounded { node: a, max_const: x },
                ValueDomain::Bounded { node: b, max_const: y },
            ) => ValueDomain::Bounded {
                node: a || b,
                max_const: x.max(y),
            },
            _ => ValueDomain::Unbounded,
        }
    }
}

/// The bottom element: joins as the identity. Sound as the initial state
/// because a map's pre-write content is the reduction identity, which the
/// compact layouts represent via the sentinel (`u64::MAX`) or as zero.
const BOT: ValueDomain = ValueDomain::Bounded {
    node: false,
    max_const: 0,
};

// `maps` is threaded for map-read expressions, which the surface syntax
// routes through `Var` today; keeping the parameter keeps every call site
// ready for direct map reads.
#[allow(clippy::only_used_in_recursion)]
fn expr_domain(e: &Expr, vars: &[ValueDomain], maps: &[ValueDomain]) -> ValueDomain {
    match e {
        Expr::Const(c) => ValueDomain::Bounded {
            node: false,
            max_const: *c,
        },
        Expr::Node | Expr::EdgeDst => ValueDomain::Bounded {
            node: true,
            max_const: 0,
        },
        Expr::EdgeWeight => ValueDomain::Unbounded,
        Expr::Var(v) => vars.get(*v).copied().unwrap_or(ValueDomain::Unbounded),
        Expr::Bin(op, a, b) => {
            let (da, db) = (expr_domain(a, vars, maps), expr_domain(b, vars, maps));
            match op {
                BinOp::Lt | BinOp::Gt | BinOp::Ne | BinOp::Eq => ValueDomain::Bounded {
                    node: false,
                    max_const: 1,
                },
                // min(a, b) is bounded by either operand's bound.
                BinOp::Min => match (da, db) {
                    (ValueDomain::Bounded { .. }, _) => da,
                    (_, ValueDomain::Bounded { .. }) => db,
                    _ => ValueDomain::Unbounded,
                },
                // Wrapping arithmetic escapes any bound.
                BinOp::Add | BinOp::Sub | BinOp::Mul => ValueDomain::Unbounded,
            }
        }
    }
}

/// `true` if the operator only ever *selects* one of its inputs, so the
/// map's content domain is the join of its source domains. Accumulating
/// operators (`Sum`) grow beyond every source.
fn selective(op: DynReduceOp) -> bool {
    matches!(op, DynReduceOp::Min | DynReduceOp::Max)
}

fn walk_stmts(
    stmts: &[Stmt],
    vars: &mut Vec<ValueDomain>,
    doms: &mut [ValueDomain],
    ops: &[DynReduceOp],
) {
    for s in stmts {
        match s {
            Stmt::Let { dst, value } => {
                let d = expr_domain(value, vars, doms);
                vars[*dst] = d;
            }
            Stmt::Read { dst, map, .. } => {
                // A read observes the map's content or its identity; the
                // identity is sentinel-representable, so the content
                // domain is the right abstraction for storage purposes.
                vars[*dst] = doms[*map];
            }
            Stmt::Reduce { map, value, .. } => {
                let src = if selective(ops[*map]) {
                    expr_domain(value, vars, doms)
                } else {
                    ValueDomain::Unbounded
                };
                doms[*map] = doms[*map].join(src);
            }
            Stmt::Request { .. } | Stmt::ReduceScalar { .. } => {}
            Stmt::If { then, .. } => walk_stmts(then, vars, doms, ops),
            Stmt::ForEdges { body } => walk_stmts(body, vars, doms, ops),
        }
    }
}

fn walk_tops(
    tops: &[TopStmt],
    num_vars: usize,
    doms: &mut [ValueDomain],
    ops: &[DynReduceOp],
) {
    for t in tops {
        match t {
            TopStmt::InitMap { map, value } => {
                let d = expr_domain(value, &[], doms);
                doms[*map] = doms[*map].join(d);
            }
            // Reset writes the identity, which is outside the bound.
            TopStmt::ResetMap { .. } | TopStmt::SetScalar { .. } => {}
            TopStmt::ParForOnce { body } => {
                let mut vars = vec![ValueDomain::Unbounded; num_vars];
                walk_stmts(body, &mut vars, doms, ops);
            }
            TopStmt::While(w) => {
                let mut vars = vec![ValueDomain::Unbounded; num_vars];
                walk_stmts(&w.body, &mut vars, doms, ops);
            }
            TopStmt::DoWhileScalar { body, .. } => walk_tops(body, num_vars, doms, ops),
        }
    }
}

/// Certifies the value domain of every map in `p` (indexed by `MapId`).
///
/// Runs the dataflow to a fixed point; the domain lattice is finite (node
/// flag × the constants appearing in the program × unbounded), so this
/// terminates. Conservative: anything the analysis cannot bound is
/// [`ValueDomain::Unbounded`] and keeps the native 8-byte layout.
pub fn certify_domains(p: &Program) -> Vec<ValueDomain> {
    let ops: Vec<DynReduceOp> = p.maps.iter().map(|m| m.op).collect();
    let mut doms = vec![BOT; p.maps.len()];
    loop {
        let before = doms.clone();
        walk_tops(&p.body, p.num_vars, &mut doms, &ops);
        if doms == before {
            return doms;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    #[test]
    fn cc_labels_are_node_bounded() {
        for p in [programs::cc_lp(), programs::cc_sv(), programs::cc_sclp()] {
            let doms = certify_domains(&p);
            assert_eq!(
                doms[0],
                ValueDomain::Bounded {
                    node: true,
                    max_const: 0
                },
                "{}",
                p.name
            );
            assert_eq!(doms[0].bound(1 << 20), Some((1 << 20) - 1));
        }
    }

    #[test]
    fn mis_state_is_tiny_and_others_native() {
        let doms = certify_domains(&programs::mis());
        // degree: Sum-reduced → unbounded.
        assert_eq!(doms[0], ValueDomain::Unbounded);
        // state: Max over constants {1, 2} → bounded by 2.
        assert_eq!(
            doms[1],
            ValueDomain::Bounded {
                node: false,
                max_const: 2
            }
        );
        assert_eq!(doms[1].bound(1000), Some(2));
        // best: priorities built by Mul/Add → unbounded.
        assert_eq!(doms[2], ValueDomain::Unbounded);
    }

    #[test]
    fn min_of_unbounded_and_node_stays_bounded() {
        use crate::ir::{Expr, MapDecl, Program};
        use kimbap_npm::DynReduceOp;
        let p = Program {
            name: "t",
            maps: vec![MapDecl {
                op: DynReduceOp::Min,
                name: "m",
            }],
            num_reducers: 0,
            num_vars: 0,
            body: vec![TopStmt::InitMap {
                map: 0,
                value: Expr::bin(
                    BinOp::Min,
                    Expr::bin(BinOp::Mul, Expr::Node, Expr::Node),
                    Expr::Node,
                ),
            }],
        };
        assert_eq!(
            certify_domains(&p)[0],
            ValueDomain::Bounded {
                node: true,
                max_const: 0
            }
        );
    }

    #[test]
    fn read_feedback_propagates_through_min_chains() {
        // cc-lp's reduce value is a read of the same map: the fixed point
        // must keep it node-bounded rather than widening.
        let doms = certify_domains(&programs::cc_lp());
        assert_ne!(doms[0], ValueDomain::Unbounded);
    }

    #[test]
    fn sketches_certify_without_panicking() {
        for p in [
            programs::louvain_sketch(),
            programs::leiden_sketch(),
            programs::msf_sketch(),
        ] {
            let doms = certify_domains(&p);
            assert_eq!(doms.len(), p.maps.len());
        }
    }
}
