//! The paper's applications expressed in the vertex-program IR.
//!
//! [`cc_sv`], [`cc_lp`], [`cc_sclp`], and [`mis`] are fully executable by
//! the `kimbap` plan interpreter (tests cross-validate them against the
//! native implementations in `kimbap-algos`); [`louvain_sketch`],
//! [`leiden_sketch`], and [`msf_sketch`] capture those applications'
//! operator access patterns for classification (Table 2) — their
//! performance-grade implementations are native.

use crate::ir::{
    BinOp, Expr, KimbapWhile, MapDecl, NodeIterator, Program, Stmt, TopStmt,
};
use kimbap_npm::DynReduceOp;

fn v(i: usize) -> Expr {
    Expr::Var(i)
}

fn c(x: u64) -> Expr {
    Expr::Const(x)
}

fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
    Expr::bin(op, a, b)
}

fn read(dst: usize, map: usize, key: Expr) -> Stmt {
    Stmt::Read { dst, map, key }
}

fn reduce(map: usize, key: Expr, value: Expr) -> Stmt {
    Stmt::Reduce { map, key, value }
}

fn iff(cond: Expr, then: Vec<Stmt>) -> Stmt {
    Stmt::If { cond, then }
}

fn for_edges(body: Vec<Stmt>) -> Stmt {
    Stmt::ForEdges { body }
}

fn while_loop(quiesce_map: usize, body: Vec<Stmt>) -> TopStmt {
    TopStmt::While(KimbapWhile {
        quiesce_map,
        iterator: NodeIterator::AllNodes,
        body,
    })
}

/// Shiloach-Vishkin connected components — the paper's Fig. 4, verbatim.
pub fn cc_sv() -> Program {
    let parent = 0;
    let work_done = 0;
    let hook = vec![
        read(0, parent, Expr::Node),
        for_edges(vec![
            read(1, parent, Expr::EdgeDst),
            iff(
                bin(BinOp::Gt, v(0), v(1)),
                vec![
                    Stmt::ReduceScalar {
                        reducer: work_done,
                        value: c(1),
                    },
                    reduce(parent, v(0), v(1)),
                ],
            ),
        ]),
    ];
    let shortcut = vec![
        read(0, parent, Expr::Node),
        read(1, parent, v(0)),
        iff(bin(BinOp::Ne, v(0), v(1)), vec![reduce(parent, Expr::Node, v(1))]),
    ];
    Program {
        name: "cc-sv",
        maps: vec![MapDecl {
            op: DynReduceOp::Min,
            name: "parent",
        }],
        num_reducers: 1,
        num_vars: 2,
        body: vec![
            TopStmt::InitMap {
                map: parent,
                value: Expr::Node,
            },
            TopStmt::DoWhileScalar {
                body: vec![
                    TopStmt::SetScalar {
                        reducer: work_done,
                        value: 0,
                    },
                    while_loop(parent, hook),
                    while_loop(parent, shortcut),
                ],
                reducer: work_done,
            },
        ],
    }
}

/// Label-propagation connected components (push style, adjacent-vertex).
pub fn cc_lp() -> Program {
    let label = 0;
    Program {
        name: "cc-lp",
        maps: vec![MapDecl {
            op: DynReduceOp::Min,
            name: "label",
        }],
        num_reducers: 0,
        num_vars: 2,
        body: vec![
            TopStmt::InitMap {
                map: label,
                value: Expr::Node,
            },
            while_loop(
                label,
                vec![
                    read(0, label, Expr::Node),
                    for_edges(vec![
                        read(1, label, Expr::EdgeDst),
                        iff(
                            bin(BinOp::Lt, v(0), v(1)),
                            vec![reduce(label, Expr::EdgeDst, v(0))],
                        ),
                    ]),
                ],
            ),
        ],
    }
}

/// Shortcutting label propagation: LP sweeps and pointer-jumping sweeps
/// alternate until neither makes progress.
pub fn cc_sclp() -> Program {
    let label = 0;
    let changed = 0;
    let lp = vec![
        read(0, label, Expr::Node),
        for_edges(vec![
            read(1, label, Expr::EdgeDst),
            iff(
                bin(BinOp::Lt, v(0), v(1)),
                vec![
                    Stmt::ReduceScalar {
                        reducer: changed,
                        value: c(1),
                    },
                    reduce(label, Expr::EdgeDst, v(0)),
                ],
            ),
        ]),
    ];
    let shortcut = vec![
        read(0, label, Expr::Node),
        read(1, label, v(0)),
        iff(
            bin(BinOp::Ne, v(0), v(1)),
            vec![
                Stmt::ReduceScalar {
                    reducer: changed,
                    value: c(1),
                },
                reduce(label, Expr::Node, v(1)),
            ],
        ),
    ];
    Program {
        name: "cc-sclp",
        maps: vec![MapDecl {
            op: DynReduceOp::Min,
            name: "label",
        }],
        num_reducers: 1,
        num_vars: 2,
        body: vec![
            TopStmt::InitMap {
                map: label,
                value: Expr::Node,
            },
            TopStmt::DoWhileScalar {
                body: vec![
                    TopStmt::SetScalar {
                        reducer: changed,
                        value: 0,
                    },
                    while_loop(label, lp),
                    while_loop(label, shortcut),
                ],
                reducer: changed,
            },
        ],
    }
}

/// Priority-based maximal independent set. States: 0 undecided, 1 in-set,
/// 2 out. Priority: lower degree wins, node id breaks ties.
pub fn mis() -> Program {
    let (deg, state, best) = (0, 1, 2);
    let active = 0;
    // priority(d, id) = (0xFFFF_FFFF - d) * 2^32 + id
    let prio = |d: Expr, id: Expr| {
        bin(
            BinOp::Add,
            bin(
                BinOp::Mul,
                bin(BinOp::Sub, c(0xFFFF_FFFF), d),
                c(0x1_0000_0000),
            ),
            id,
        )
    };
    let degree_count = vec![for_edges(vec![reduce(deg, Expr::Node, c(1))])];
    let phase1 = vec![
        read(0, state, Expr::Node),
        iff(
            bin(BinOp::Eq, v(0), c(0)),
            vec![for_edges(vec![
                read(1, state, Expr::EdgeDst),
                iff(
                    bin(BinOp::Eq, v(1), c(0)),
                    vec![
                        read(2, deg, Expr::EdgeDst),
                        Stmt::Let {
                            dst: 3,
                            value: prio(v(2), Expr::EdgeDst),
                        },
                        reduce(best, Expr::Node, v(3)),
                    ],
                ),
            ])],
        ),
    ];
    let phase2 = vec![
        read(0, state, Expr::Node),
        iff(
            bin(BinOp::Eq, v(0), c(0)),
            vec![
                read(1, deg, Expr::Node),
                Stmt::Let {
                    dst: 2,
                    value: prio(v(1), Expr::Node),
                },
                read(3, best, Expr::Node),
                iff(
                    bin(BinOp::Gt, v(2), v(3)),
                    vec![reduce(state, Expr::Node, c(1))],
                ),
            ],
        ),
    ];
    let phase3 = vec![
        read(0, state, Expr::Node),
        iff(
            bin(BinOp::Eq, v(0), c(1)),
            vec![for_edges(vec![
                read(1, state, Expr::EdgeDst),
                iff(
                    bin(BinOp::Eq, v(1), c(0)),
                    vec![reduce(state, Expr::EdgeDst, c(2))],
                ),
            ])],
        ),
    ];
    let count = vec![
        read(0, state, Expr::Node),
        iff(
            bin(BinOp::Eq, v(0), c(0)),
            vec![Stmt::ReduceScalar {
                reducer: active,
                value: c(1),
            }],
        ),
    ];
    Program {
        name: "mis",
        maps: vec![
            MapDecl {
                op: DynReduceOp::Sum,
                name: "degree",
            },
            MapDecl {
                op: DynReduceOp::Max,
                name: "state",
            },
            MapDecl {
                op: DynReduceOp::Max,
                name: "best",
            },
        ],
        num_reducers: 1,
        num_vars: 4,
        body: vec![
            TopStmt::ParForOnce { body: degree_count },
            TopStmt::DoWhileScalar {
                body: vec![
                    TopStmt::SetScalar {
                        reducer: active,
                        value: 0,
                    },
                    TopStmt::ResetMap { map: best },
                    TopStmt::ParForOnce { body: phase1 },
                    TopStmt::ParForOnce { body: phase2 },
                    TopStmt::ParForOnce { body: phase3 },
                    TopStmt::ParForOnce { body: count },
                ],
                reducer: active,
            },
        ],
    }
}

/// Louvain's operator access pattern, for classification: the move
/// operator reads neighboring communities' totals (trans-vertex), while
/// the modularity/aggregation operator only reads adjacent communities.
pub fn louvain_sketch() -> Program {
    let (comm, comm_tot) = (0, 1);
    let move_op = vec![
        read(0, comm, Expr::Node),
        read(1, comm_tot, v(0)), // total of own community: computed key
        for_edges(vec![
            read(2, comm, Expr::EdgeDst),
            read(3, comm_tot, v(2)), // neighbor community total: computed key
            iff(
                bin(BinOp::Gt, v(3), v(1)),
                vec![reduce(comm, Expr::Node, v(2))],
            ),
        ]),
    ];
    let modularity_op = vec![
        read(0, comm, Expr::Node),
        for_edges(vec![
            read(1, comm, Expr::EdgeDst),
            iff(
                bin(BinOp::Eq, v(0), v(1)),
                vec![Stmt::ReduceScalar {
                    reducer: 0,
                    value: Expr::EdgeWeight,
                }],
            ),
        ]),
    ];
    Program {
        name: "louvain",
        maps: vec![
            MapDecl {
                op: DynReduceOp::Min,
                name: "comm",
            },
            MapDecl {
                op: DynReduceOp::Sum,
                name: "comm_tot",
            },
        ],
        num_reducers: 1,
        num_vars: 4,
        body: vec![
            TopStmt::InitMap {
                map: comm,
                value: Expr::Node,
            },
            while_loop(comm, move_op),
            while_loop(comm, modularity_op),
        ],
    }
}

/// Leiden's access pattern: Louvain's operators plus subcommunity
/// refinement (trans-vertex reads of subcommunity state).
pub fn leiden_sketch() -> Program {
    let mut p = louvain_sketch();
    p.name = "leiden";
    p.maps.push(MapDecl {
        op: DynReduceOp::Min,
        name: "subcomm",
    });
    p.maps.push(MapDecl {
        op: DynReduceOp::Sum,
        name: "subcomm_tot",
    });
    let (subcomm, subcomm_tot) = (2, 3);
    let refine_op = vec![
        read(0, subcomm, Expr::Node),
        read(1, subcomm_tot, v(0)), // computed key: trans
        for_edges(vec![
            read(2, subcomm, Expr::EdgeDst),
            iff(
                bin(BinOp::Lt, v(2), v(0)),
                vec![reduce(subcomm, Expr::Node, v(2))],
            ),
        ]),
    ];
    p.body.push(while_loop(subcomm, refine_op));
    p
}

/// Boruvka MSF's access pattern: every operator writes or reads through a
/// component representative (computed key), so the app is trans-only.
pub fn msf_sketch() -> Program {
    let (parent, minedge) = (0, 1);
    let select_op = vec![
        read(0, parent, Expr::Node),
        for_edges(vec![
            read(1, parent, Expr::EdgeDst),
            iff(
                bin(BinOp::Ne, v(0), v(1)),
                vec![
                    // Min-reduce the edge weight onto both components.
                    reduce(minedge, v(0), Expr::EdgeWeight),
                    reduce(minedge, v(1), Expr::EdgeWeight),
                ],
            ),
        ]),
    ];
    let hook_op = vec![
        read(0, minedge, Expr::Node),
        read(1, parent, v(0)),
        reduce(parent, v(1), v(0)),
    ];
    let shortcut_op = vec![
        read(0, parent, Expr::Node),
        read(1, parent, v(0)),
        iff(bin(BinOp::Ne, v(0), v(1)), vec![reduce(parent, Expr::Node, v(1))]),
    ];
    Program {
        name: "msf",
        maps: vec![
            MapDecl {
                op: DynReduceOp::Min,
                name: "parent",
            },
            MapDecl {
                op: DynReduceOp::Min,
                name: "minedge",
            },
        ],
        num_reducers: 0,
        num_vars: 2,
        body: vec![
            TopStmt::InitMap {
                map: parent,
                value: Expr::Node,
            },
            while_loop(parent, select_op),
            while_loop(parent, hook_op),
            while_loop(parent, shortcut_op),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_build() {
        for p in [
            cc_sv(),
            cc_lp(),
            cc_sclp(),
            mis(),
            louvain_sketch(),
            leiden_sketch(),
            msf_sketch(),
        ] {
            assert!(!p.maps.is_empty(), "{} has maps", p.name);
        }
    }

    #[test]
    fn cc_sv_matches_fig4_structure() {
        let p = cc_sv();
        // Outer do-while on work_done wrapping hook + shortcut whiles.
        assert_eq!(p.loops().len(), 2);
        match &p.body[1] {
            TopStmt::DoWhileScalar { body, reducer } => {
                assert_eq!(*reducer, 0);
                assert_eq!(body.len(), 3);
            }
            other => panic!("expected do-while, got {other:?}"),
        }
    }
}
