//! The compiler pipeline (§5): BSP transformation and the two
//! communication-elision optimizations.
//!
//! For every `KimbapWhile`, the compiler:
//!
//! 1. wraps the operator in a do-while on `IsUpdated()` (**DoWhile**);
//! 2. assigns every `Read` a *request level* — 0 if its key is computable
//!    from the active node/edge alone, `k+1` if the key depends on a
//!    level-`k` read — and emits one *request phase* (a sliced copy of the
//!    operator with reads-become-requests, paper §5.1 "split operator and
//!    request") per level, each followed by `RequestSync()`;
//! 3. appends `ReduceSync()` for every map the operator reduces into —
//!    placed, like the paper, at the immediate post-dominator of the
//!    `ParFor` (the statement right after it);
//! 4. **master-elision** (§5.2): if the operator never touches edges, the
//!    iterator is restricted to masters and requests whose key is the
//!    active node are deleted (they are local by construction);
//! 5. **adjacent-elision / pinned mirrors** (§5.2): maps whose reads are
//!    all to the active node or its edge endpoints are pinned — their
//!    requests disappear and a `BroadcastSync()` follows every
//!    `ReduceSync()`. (The paper applies this when *all* reads in the
//!    operator are adjacent; we apply it per map, which degenerates to the
//!    paper's rule for single-map operators like CC-SV and strictly
//!    removes more communication for multi-map operators.)
//!
//! Slicing uses the statement tree, whose prefix-paths coincide with CFG
//! dominance for this structured IR; [`crate::dom`] computes the general
//! dominator/post-dominator trees and the tests cross-check the slices
//! against them.

use crate::classify::{classify_map_reads, ReadDep};
use crate::domain::ValueDomain;
use crate::ir::{Expr, KimbapWhile, MapDecl, MapId, NodeIterator, Program, Stmt, TopStmt, Var};
use kimbap_npm::DynReduceOp;
use std::collections::{HashMap, HashSet};

/// Whether the §5.2 optimizations are applied — the OPT / NO-OPT axis of
/// Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// Required transformations only (requests + syncs, no elision).
    None,
    /// Master-elision and adjacent-elision (pinned mirrors) enabled.
    #[default]
    Full,
}

/// One request-compute phase: a sliced operator issuing `Request()` calls,
/// followed by `RequestSync()` on `sync_maps`.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestPhase {
    /// The sliced ParFor body.
    pub body: Vec<Stmt>,
    /// Maps to `RequestSync()` after the ParFor.
    pub sync_maps: Vec<MapId>,
}

/// The compiler's certificate that frontier (active-set) execution of a
/// loop is sound: emitted only when skipping nodes whose read inputs did
/// not change in the previous round provably yields the same result as
/// dense iteration. Absent (`None` on [`CompiledLoop::sparse`]) the engine
/// must iterate densely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsePlan {
    /// Per read map (sorted by id): how the body depends on its keys,
    /// i.e. which nodes a changed key of that map activates.
    pub read_deps: Vec<(MapId, ReadDep)>,
}

/// A compiled `KimbapWhile`: the BSP do-while of §4.1.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledLoop {
    /// Quiescence map (`IsUpdated()` target).
    pub quiesce_map: MapId,
    /// Node iterator after optimization.
    pub iterator: NodeIterator,
    /// Maps pinned for the duration of the loop (PinMirrors/UnpinMirrors).
    pub pinned_maps: Vec<MapId>,
    /// Request phases, in execution order.
    pub request_phases: Vec<RequestPhase>,
    /// The reduce-compute operator body.
    pub body: Vec<Stmt>,
    /// Maps to `ReduceSync()` after the body.
    pub reduce_maps: Vec<MapId>,
    /// Maps to `BroadcastSync()` after reduce-sync (pinned ∩ reduced).
    pub broadcast_maps: Vec<MapId>,
    /// Sparse-execution certificate, when frontier iteration is sound.
    pub sparse: Option<SparsePlan>,
}

/// A compiled top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledTop {
    /// Initialize a map over masters.
    InitMap {
        /// Target map.
        map: MapId,
        /// Value per node.
        value: Expr,
    },
    /// Reset a map to its identity (per-round scratch maps).
    ResetMap {
        /// Target map.
        map: MapId,
    },
    /// Set a scalar reducer.
    SetScalar {
        /// Target reducer.
        reducer: usize,
        /// Value.
        value: u64,
    },
    /// A compiled `KimbapWhile`.
    Loop(CompiledLoop),
    /// A compiled single-shot ParFor (no quiescence loop): request phases,
    /// body, reduce-syncs.
    Once(CompiledLoop),
    /// `do { … } while (reducer sums non-zero)`.
    DoWhileScalar {
        /// Loop body.
        body: Vec<CompiledTop>,
        /// Controlling reducer.
        reducer: usize,
    },
}

/// A fully compiled program, executable by the `kimbap` engine.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    /// Program name.
    pub name: &'static str,
    /// Map declarations (same ids as the source program).
    pub maps: Vec<MapDecl>,
    /// Scalar reducer count.
    pub num_reducers: usize,
    /// Virtual register count.
    pub num_vars: usize,
    /// Compiled body.
    pub body: Vec<CompiledTop>,
    /// The optimization level this was compiled with.
    pub opt: OptLevel,
    /// Certified value domain per map (see [`crate::domain`]): the
    /// engine's license to back a map with a compact storage layout.
    pub value_domains: Vec<ValueDomain>,
}

/// Compiles a program (see the [module docs](self) for the pipeline).
pub fn compile(p: &Program, opt: OptLevel) -> CompiledProgram {
    CompiledProgram {
        name: p.name,
        maps: p.maps.clone(),
        num_reducers: p.num_reducers,
        num_vars: p.num_vars,
        body: compile_tops(&p.body, &p.maps, opt),
        opt,
        value_domains: crate::domain::certify_domains(p),
    }
}

fn compile_tops(tops: &[TopStmt], maps: &[MapDecl], opt: OptLevel) -> Vec<CompiledTop> {
    tops.iter()
        .map(|t| match t {
            TopStmt::InitMap { map, value } => CompiledTop::InitMap {
                map: *map,
                value: value.clone(),
            },
            TopStmt::SetScalar { reducer, value } => CompiledTop::SetScalar {
                reducer: *reducer,
                value: *value,
            },
            TopStmt::ResetMap { map } => CompiledTop::ResetMap { map: *map },
            TopStmt::ParForOnce { body } => CompiledTop::Once(compile_while(
                &KimbapWhile {
                    quiesce_map: 0, // unused by Once
                    iterator: NodeIterator::AllNodes,
                    body: body.clone(),
                },
                maps,
                opt,
            )),
            TopStmt::While(w) => CompiledTop::Loop(compile_while(w, maps, opt)),
            TopStmt::DoWhileScalar { body, reducer } => CompiledTop::DoWhileScalar {
                body: compile_tops(body, maps, opt),
                reducer: *reducer,
            },
        })
        .collect()
}

/// Facts gathered about an operator body.
#[derive(Debug, Default)]
struct BodyFacts {
    /// Does the operator touch edges (ForEdges or EdgeDst/EdgeWeight)?
    touches_edges: bool,
    /// Per map: are all reads adjacent (Node/EdgeDst keys)?
    map_reads_adjacent: HashMap<MapId, bool>,
    /// Maps reduced into.
    reduced_maps: Vec<MapId>,
    /// Request level of each read, keyed by tree path.
    read_levels: HashMap<Vec<usize>, usize>,
    /// Highest request level.
    max_level: Option<usize>,
    /// Does the operator reduce into a scalar reducer?
    has_reduce_scalar: bool,
}

fn expr_uses_edge(e: &Expr) -> bool {
    match e {
        Expr::EdgeDst | Expr::EdgeWeight => true,
        Expr::Bin(_, a, b) => expr_uses_edge(a) || expr_uses_edge(b),
        _ => false,
    }
}

fn gather_facts(body: &[Stmt]) -> BodyFacts {
    let mut f = BodyFacts::default();
    let mut var_level: HashMap<Var, usize> = HashMap::new();
    fn expr_level(e: &Expr, var_level: &HashMap<Var, usize>) -> usize {
        let mut vs = Vec::new();
        e.vars(&mut vs);
        vs.iter()
            .map(|v| *var_level.get(v).expect("use before def"))
            .max()
            .unwrap_or(0)
    }
    fn walk(
        stmts: &[Stmt],
        path: &mut Vec<usize>,
        ctx_level: usize,
        var_level: &mut HashMap<Var, usize>,
        f: &mut BodyFacts,
    ) {
        for (i, s) in stmts.iter().enumerate() {
            path.push(i);
            match s {
                Stmt::Let { dst, value } => {
                    if expr_uses_edge(value) {
                        f.touches_edges = true;
                    }
                    var_level.insert(*dst, expr_level(value, var_level).max(ctx_level));
                }
                Stmt::Read { dst, map, key } => {
                    if expr_uses_edge(key) {
                        f.touches_edges = true;
                    }
                    let lvl = expr_level(key, var_level).max(ctx_level);
                    f.read_levels.insert(path.clone(), lvl);
                    f.max_level = Some(f.max_level.map_or(lvl, |m: usize| m.max(lvl)));
                    var_level.insert(*dst, lvl + 1);
                    let adj = f.map_reads_adjacent.entry(*map).or_insert(true);
                    *adj = *adj && key.is_adjacent_key();
                }
                Stmt::Reduce { map, key, value } => {
                    if expr_uses_edge(key) || expr_uses_edge(value) {
                        f.touches_edges = true;
                    }
                    if !f.reduced_maps.contains(map) {
                        f.reduced_maps.push(*map);
                    }
                }
                Stmt::Request { .. } => {
                    unreachable!("source programs contain no Request statements")
                }
                Stmt::ReduceScalar { value, .. } => {
                    if expr_uses_edge(value) {
                        f.touches_edges = true;
                    }
                    f.has_reduce_scalar = true;
                }
                Stmt::If { cond, then } => {
                    if expr_uses_edge(cond) {
                        f.touches_edges = true;
                    }
                    let lvl = expr_level(cond, var_level).max(ctx_level);
                    walk(then, path, lvl, var_level, f);
                }
                Stmt::ForEdges { body } => {
                    f.touches_edges = true;
                    walk(body, path, ctx_level, var_level, f);
                }
            }
            path.pop();
        }
    }
    walk(body, &mut Vec::new(), 0, &mut var_level, &mut f);
    f
}

/// Slices the operator into the request phase for `level`: reads below the
/// level survive (their values feed later keys), reads *at* the level
/// become `Request`s, everything else is dropped; dead code is then
/// eliminated. `skip_request` suppresses requests (pinned maps,
/// master-elided keys).
fn slice_requests(
    body: &[Stmt],
    level: usize,
    facts: &BodyFacts,
    skip_request: &dyn Fn(MapId, &Expr) -> bool,
) -> Vec<Stmt> {
    fn go(
        stmts: &[Stmt],
        path: &mut Vec<usize>,
        level: usize,
        facts: &BodyFacts,
        skip: &dyn Fn(MapId, &Expr) -> bool,
    ) -> Vec<Stmt> {
        let mut out = Vec::new();
        for (i, s) in stmts.iter().enumerate() {
            path.push(i);
            match s {
                Stmt::Let { .. } => out.push(s.clone()),
                Stmt::Read { dst, map, key } => {
                    let lvl = facts.read_levels[path.as_slice()];
                    if lvl < level {
                        out.push(Stmt::Read {
                            dst: *dst,
                            map: *map,
                            key: key.clone(),
                        });
                    } else if lvl == level && !skip(*map, key) {
                        out.push(Stmt::Request {
                            map: *map,
                            key: key.clone(),
                        });
                    }
                }
                Stmt::If { cond, then } => {
                    let inner = go(then, path, level, facts, skip);
                    if !inner.is_empty() {
                        out.push(Stmt::If {
                            cond: cond.clone(),
                            then: inner,
                        });
                    }
                }
                Stmt::ForEdges { body } => {
                    let inner = go(body, path, level, facts, skip);
                    if !inner.is_empty() {
                        out.push(Stmt::ForEdges { body: inner });
                    }
                }
                Stmt::Reduce { .. } | Stmt::ReduceScalar { .. } | Stmt::Request { .. } => {}
            }
            path.pop();
        }
        out
    }
    let sliced = go(body, &mut Vec::new(), level, facts, skip_request);
    eliminate_dead(sliced)
}

/// Removes `Let`/`Read` statements whose results feed nothing (single
/// backward pass; sound because programs are SSA and defs precede uses).
fn eliminate_dead(body: Vec<Stmt>) -> Vec<Stmt> {
    fn collect_into(used: &mut HashSet<Var>, exprs: &[&Expr]) {
        let mut tmp = Vec::new();
        for e in exprs {
            e.vars(&mut tmp);
        }
        used.extend(tmp);
    }
    fn go(stmts: Vec<Stmt>, used: &mut HashSet<Var>) -> Vec<Stmt> {
        let mut kept_rev = Vec::new();
        for s in stmts.into_iter().rev() {
            match s {
                Stmt::Let { dst, value } => {
                    if used.contains(&dst) {
                        collect_into(used, &[&value]);
                        kept_rev.push(Stmt::Let { dst, value });
                    }
                }
                Stmt::Read { dst, map, key } => {
                    if used.contains(&dst) {
                        collect_into(used, &[&key]);
                        kept_rev.push(Stmt::Read { dst, map, key });
                    }
                }
                Stmt::Request { map, key } => {
                    collect_into(used, &[&key]);
                    kept_rev.push(Stmt::Request { map, key });
                }
                Stmt::If { cond, then } => {
                    let inner = go(then, used);
                    if !inner.is_empty() {
                        collect_into(used, &[&cond]);
                        kept_rev.push(Stmt::If { cond, then: inner });
                    }
                }
                Stmt::ForEdges { body } => {
                    let inner = go(body, used);
                    if !inner.is_empty() {
                        kept_rev.push(Stmt::ForEdges { body: inner });
                    }
                }
                other @ (Stmt::Reduce { .. } | Stmt::ReduceScalar { .. }) => kept_rev.push(other),
            }
        }
        kept_rev.reverse();
        kept_rev
    }
    let mut used = HashSet::new();
    go(body, &mut used)
}

/// Maps requested in a phase body, in first-use order.
fn requested_maps(body: &[Stmt]) -> Vec<MapId> {
    fn go(stmts: &[Stmt], out: &mut Vec<MapId>) {
        for s in stmts {
            match s {
                Stmt::Request { map, .. }
                    if !out.contains(map) => {
                        out.push(*map);
                    }
                Stmt::If { then, .. } => go(then, out),
                Stmt::ForEdges { body } => go(body, out),
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    go(body, &mut out);
    out
}

/// Decides whether a loop may run over a changed-key frontier instead of
/// all nodes, and if so how changed keys map to nodes that must re-run.
///
/// The conditions are the soundness argument of DESIGN.md §10:
///
/// * `Full` only — NO-OPT plans exist to measure unoptimized communication
///   and stay dense;
/// * every reduced map's operator is idempotent (Min/Max): a skipped
///   node's unchanged contribution is already folded into the canonical
///   value, so omitting the re-reduce cannot change the result. Sum is
///   not idempotent — skipping would under-count;
/// * no scalar reductions: they observe every iteration, skipped or not;
/// * no request phases: request-materialized values change outside the
///   maps' per-key delta tracking;
/// * every read is covered by the delta — under `Masters` all reads are
///   self-keyed master reads (tracked by the owner's master bits); under
///   `AllNodes` every read map must be pinned, so remote-key changes
///   arrive through the broadcast delta. Trans-vertex reads are never
///   covered.
fn sparse_plan(
    opt: OptLevel,
    iterator: NodeIterator,
    pinned_maps: &[MapId],
    request_phases: &[RequestPhase],
    facts: &BodyFacts,
    body: &[Stmt],
    maps: &[MapDecl],
) -> Option<SparsePlan> {
    if opt != OptLevel::Full || facts.has_reduce_scalar || !request_phases.is_empty() {
        return None;
    }
    let idempotent = |op: DynReduceOp| matches!(op, DynReduceOp::Min | DynReduceOp::Max);
    if facts.reduced_maps.iter().any(|&m| !idempotent(maps[m].op)) {
        return None;
    }
    let read_deps = classify_map_reads(body);
    for &(m, dep) in &read_deps {
        let covered = match (iterator, dep) {
            (_, ReadDep::Trans) => false,
            (NodeIterator::Masters, ReadDep::SelfKey) => true,
            (NodeIterator::Masters, ReadDep::Adjacent) => false,
            (NodeIterator::AllNodes, _) => pinned_maps.contains(&m),
        };
        if !covered {
            return None;
        }
    }
    Some(SparsePlan { read_deps })
}

fn compile_while(w: &KimbapWhile, maps: &[MapDecl], opt: OptLevel) -> CompiledLoop {
    let facts = gather_facts(&w.body);

    // §5.2 master elision: no edge accesses -> masters only.
    let iterator = if opt == OptLevel::Full && !facts.touches_edges {
        NodeIterator::Masters
    } else {
        w.iterator
    };

    // §5.2 adjacent elision: pin maps whose reads are all adjacent.
    let pinned_maps: Vec<MapId> = if opt == OptLevel::Full && iterator == NodeIterator::AllNodes {
        let mut v: Vec<MapId> = facts
            .map_reads_adjacent
            .iter()
            .filter(|&(_, &adj)| adj)
            .map(|(&m, _)| m)
            .collect();
        v.sort_unstable();
        v
    } else {
        Vec::new()
    };

    let masters_only = iterator == NodeIterator::Masters;
    let pinned = pinned_maps.clone();
    let skip = move |map: MapId, key: &Expr| -> bool {
        if pinned.contains(&map) {
            return true; // served by pinned mirrors
        }
        // Master elision: requests for the active node are local.
        masters_only && matches!(key, Expr::Node)
    };

    let mut request_phases = Vec::new();
    if let Some(max) = facts.max_level {
        for level in 0..=max {
            let body = slice_requests(&w.body, level, &facts, &skip);
            let sync_maps = requested_maps(&body);
            if !sync_maps.is_empty() {
                request_phases.push(RequestPhase { body, sync_maps });
            }
        }
    }

    let broadcast_maps: Vec<MapId> = pinned_maps
        .iter()
        .copied()
        .filter(|m| facts.reduced_maps.contains(m))
        .collect();

    let sparse = sparse_plan(
        opt,
        iterator,
        &pinned_maps,
        &request_phases,
        &facts,
        &w.body,
        maps,
    );

    CompiledLoop {
        quiesce_map: w.quiesce_map,
        iterator,
        pinned_maps,
        request_phases,
        body: w.body.clone(),
        reduce_maps: facts.reduced_maps.clone(),
        broadcast_maps,
        sparse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{Cfg, NodeKind};
    use crate::ir::BinOp;
    use crate::dom::DomTree;
    use crate::programs;

    fn sv_loops(opt: OptLevel) -> (CompiledLoop, CompiledLoop) {
        let plan = compile(&programs::cc_sv(), opt);
        let CompiledTop::DoWhileScalar { body, .. } = &plan.body[1] else {
            panic!("expected do-while");
        };
        let CompiledTop::Loop(hook) = &body[1] else {
            panic!("expected hook loop");
        };
        let CompiledTop::Loop(shortcut) = &body[2] else {
            panic!("expected shortcut loop");
        };
        (hook.clone(), shortcut.clone())
    }

    #[test]
    fn optimized_cc_sv_matches_fig8() {
        let (hook, shortcut) = sv_loops(OptLevel::Full);

        // Hook (Fig. 8 left): pinned mirrors, no request phases, broadcast
        // after reduce-sync, all nodes iterated.
        assert_eq!(hook.iterator, NodeIterator::AllNodes);
        assert_eq!(hook.pinned_maps, vec![0]);
        assert!(hook.request_phases.is_empty());
        assert_eq!(hook.reduce_maps, vec![0]);
        assert_eq!(hook.broadcast_maps, vec![0]);

        // Shortcut (Fig. 8 right): masters only, exactly one request phase
        // (the first was elided), requesting `parent(node)`'s value.
        assert_eq!(shortcut.iterator, NodeIterator::Masters);
        assert!(shortcut.pinned_maps.is_empty());
        assert_eq!(shortcut.request_phases.len(), 1);
        let phase = &shortcut.request_phases[0];
        assert_eq!(phase.sync_maps, vec![0]);
        // Phase body: Read parent(node) into v0; Request parent(v0).
        assert_eq!(phase.body.len(), 2);
        assert!(matches!(&phase.body[0], Stmt::Read { key: Expr::Node, .. }));
        assert!(matches!(&phase.body[1], Stmt::Request { key: Expr::Var(0), .. }));
        assert!(shortcut.broadcast_maps.is_empty());
    }

    #[test]
    fn unoptimized_cc_sv_keeps_requests() {
        let (hook, shortcut) = sv_loops(OptLevel::None);
        // NO-OPT: everything iterates all nodes, nothing pinned, every read
        // generates requests.
        assert_eq!(hook.iterator, NodeIterator::AllNodes);
        assert!(hook.pinned_maps.is_empty());
        assert_eq!(hook.request_phases.len(), 1); // both reads are level 0
        assert!(hook.broadcast_maps.is_empty());

        assert_eq!(shortcut.iterator, NodeIterator::AllNodes);
        // Two phases: request parent(node); then read it, request
        // parent(parent(node)).
        assert_eq!(shortcut.request_phases.len(), 2);
        assert!(matches!(
            &shortcut.request_phases[0].body[0],
            Stmt::Request { key: Expr::Node, .. }
        ));
    }

    #[test]
    fn cc_lp_is_fully_pinned_when_optimized() {
        let plan = compile(&programs::cc_lp(), OptLevel::Full);
        let CompiledTop::Loop(lp) = &plan.body[1] else {
            panic!()
        };
        assert_eq!(lp.pinned_maps, vec![0]);
        assert!(lp.request_phases.is_empty());
        assert_eq!(lp.broadcast_maps, vec![0]);

        let noopt = compile(&programs::cc_lp(), OptLevel::None);
        let CompiledTop::Loop(lp0) = &noopt.body[1] else {
            panic!()
        };
        assert_eq!(lp0.request_phases.len(), 1);
        assert!(lp0.pinned_maps.is_empty());
    }

    #[test]
    fn mis_phase2_gets_master_elision() {
        let plan = compile(&programs::mis(), OptLevel::Full);
        let CompiledTop::DoWhileScalar { body, .. } = &plan.body[1] else {
            panic!()
        };
        // phase2 is the third entry (after SetScalar and ResetMap it's
        // index 3; ParForOnce order: phase1@2, phase2@3, phase3@4, count@5).
        let CompiledTop::Once(p2) = &body[3] else {
            panic!()
        };
        assert_eq!(p2.iterator, NodeIterator::Masters);
        assert!(p2.request_phases.is_empty(), "all keys are the active node");
        let CompiledTop::Once(count) = &body[5] else {
            panic!()
        };
        assert_eq!(count.iterator, NodeIterator::Masters);
    }

    #[test]
    fn dead_code_elimination_drops_unused_reads() {
        // Body: read a (used only by dropped reduce), read b, reduce keyed
        // by b. Slicing level 0 must request both; the phase for level 0
        // keeps no reads at all.
        let body = vec![
            Stmt::Read { dst: 0, map: 0, key: Expr::Node },
            Stmt::Read { dst: 1, map: 0, key: Expr::EdgeDst },
            Stmt::Reduce { map: 0, key: Expr::Var(1), value: Expr::Var(0) },
        ];
        let facts = gather_facts(&body);
        let sliced = slice_requests(&body, 0, &facts, &|_, _| false);
        assert!(sliced
            .iter()
            .all(|s| matches!(s, Stmt::Request { .. })));
        assert_eq!(sliced.len(), 2);
    }

    #[test]
    fn request_levels_follow_dependencies() {
        // read a(Node) -> read b(a) -> read c(b): levels 0, 1, 2.
        let body = vec![
            Stmt::Read { dst: 0, map: 0, key: Expr::Node },
            Stmt::Read { dst: 1, map: 0, key: Expr::Var(0) },
            Stmt::Read { dst: 2, map: 0, key: Expr::Var(1) },
        ];
        let facts = gather_facts(&body);
        assert_eq!(facts.max_level, Some(2));
        assert_eq!(facts.read_levels[&vec![0]], 0);
        assert_eq!(facts.read_levels[&vec![1]], 1);
        assert_eq!(facts.read_levels[&vec![2]], 2);
    }

    #[test]
    fn condition_context_raises_level() {
        // A read guarded by a condition on a level-0 read's value can only
        // be requested once the condition is evaluable.
        let body = vec![
            Stmt::Read { dst: 0, map: 0, key: Expr::Node },
            Stmt::If {
                cond: Expr::bin(BinOp::Gt, Expr::Var(0), Expr::Const(0)),
                then: vec![Stmt::Read { dst: 1, map: 1, key: Expr::Node }],
            },
        ];
        let facts = gather_facts(&body);
        assert_eq!(facts.read_levels[&vec![1, 0]], 1);
    }

    #[test]
    fn sliced_requests_respect_dominance() {
        // Cross-check the tree slicing against the CFG dominator relation:
        // every statement kept in a request phase corresponds to a CFG node
        // that dominates the Read it serves (for the straight-line
        // shortcut operator the phase is exactly the dominating prefix).
        let p = programs::cc_sv();
        let shortcut = &p.loops()[1].body;
        let cfg = Cfg::build(shortcut);
        let dom = DomTree::dominators(&cfg);
        let reads = cfg.nodes_of_kind(NodeKind::Read);
        // parent(node) dominates parent(parent(node)).
        assert!(dom.dominates(reads[0], reads[1]));
        // The generated phase contains exactly the dominating read + the
        // request derived from the dominated read.
        let (_, sc) = sv_loops(OptLevel::Full);
        assert_eq!(sc.request_phases[0].body.len(), 2);
    }

    fn loops_of(body: &[CompiledTop]) -> Vec<&CompiledLoop> {
        let mut out = Vec::new();
        for t in body {
            match t {
                CompiledTop::Loop(l) => out.push(l),
                CompiledTop::DoWhileScalar { body, .. } => out.extend(loops_of(body)),
                _ => {}
            }
        }
        out
    }

    #[test]
    fn sparse_plan_certifies_cc_lp_only_under_full_opt() {
        // CC-LP under Full: one idempotent (Min) map, pinned, no request
        // phases, adjacent reads -> sparse execution is sound.
        let plan = compile(&programs::cc_lp(), OptLevel::Full);
        let CompiledTop::Loop(lp) = &plan.body[1] else {
            panic!()
        };
        assert_eq!(
            lp.sparse,
            Some(SparsePlan {
                read_deps: vec![(0, ReadDep::Adjacent)]
            })
        );
        // NO-OPT keeps request phases and nothing pinned -> dense.
        let noopt = compile(&programs::cc_lp(), OptLevel::None);
        let CompiledTop::Loop(lp0) = &noopt.body[1] else {
            panic!()
        };
        assert_eq!(lp0.sparse, None);
    }

    #[test]
    fn trans_and_scalar_operators_stay_dense() {
        // CC-SV: the hook counts work in a scalar reducer and reduces
        // through a computed key; the shortcut reads parent(parent(n)).
        let (hook, shortcut) = sv_loops(OptLevel::Full);
        assert_eq!(hook.sparse, None);
        assert_eq!(shortcut.sparse, None);
        // CC-SCLP: every loop carries a scalar work counter.
        let sclp = compile(&programs::cc_sclp(), OptLevel::Full);
        for l in loops_of(&sclp.body) {
            assert_eq!(l.sparse, None, "CC-SCLP loop must stay dense");
        }
    }

    #[test]
    fn non_idempotent_reduction_stays_dense() {
        // A Sum-reduced map forbids skipping: a skipped node's contribution
        // from the previous round is not re-folded, so totals would drift.
        let p = Program {
            name: "sum-loop",
            maps: vec![MapDecl {
                op: kimbap_npm::DynReduceOp::Sum,
                name: "acc",
            }],
            num_reducers: 0,
            num_vars: 1,
            body: vec![TopStmt::While(KimbapWhile {
                quiesce_map: 0,
                iterator: NodeIterator::AllNodes,
                body: vec![Stmt::ForEdges {
                    body: vec![
                        Stmt::Read {
                            dst: 0,
                            map: 0,
                            key: Expr::EdgeDst,
                        },
                        Stmt::Reduce {
                            map: 0,
                            key: Expr::Node,
                            value: Expr::Var(0),
                        },
                    ],
                }],
            })],
        };
        let plan = compile(&p, OptLevel::Full);
        let CompiledTop::Loop(l) = &plan.body[0] else {
            panic!()
        };
        assert!(l.request_phases.is_empty(), "adjacent reads are pinned");
        assert_eq!(l.sparse, None);
    }

    #[test]
    fn sketches_compile_without_panic() {
        for p in [
            programs::louvain_sketch(),
            programs::leiden_sketch(),
            programs::msf_sketch(),
        ] {
            let full = compile(&p, OptLevel::Full);
            let none = compile(&p, OptLevel::None);
            assert_eq!(full.maps.len(), none.maps.len());
        }
    }
}
