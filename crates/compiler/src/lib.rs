//! The Kimbap compiler (§5 of the paper).
//!
//! Takes shared-memory vertex programs written in a small IR ([`ir`]) and
//! produces distributed BSP plans ([`transform::CompiledProgram`]) with all
//! required communication inserted and — at [`transform::OptLevel::Full`]
//! — the paper's two elision optimizations applied:
//!
//! * **master-nodes RequestSync elision**: operators that touch no edges
//!   iterate masters only and lose their self-requests;
//! * **adjacent-neighbors RequestSync elision**: maps read only at the
//!   active node / edge endpoints are served by pinned mirrors and
//!   broadcast instead of request/response.
//!
//! The underlying control-flow machinery (statement-level CFG, dominator
//! and post-dominator trees, §2.3) lives in [`mod@cfg`] and [`dom`];
//! [`classify`] reproduces Table 2's adjacent/trans-vertex classification;
//! [`programs`] contains the paper's applications in IR form. The compiled
//! plans execute on the `kimbap` crate's engine.
//!
//! # Example
//!
//! ```
//! use kimbap_compiler::{compile, programs, OptLevel};
//! use kimbap_compiler::transform::CompiledTop;
//!
//! let plan = compile(&programs::cc_sv(), OptLevel::Full);
//! // The shortcut loop (second While inside the do-while) iterates
//! // masters only and kept exactly one request phase — Fig. 8.
//! let CompiledTop::DoWhileScalar { body, .. } = &plan.body[1] else {
//!     panic!()
//! };
//! let CompiledTop::Loop(shortcut) = &body[2] else { panic!() };
//! assert_eq!(shortcut.request_phases.len(), 1);
//! ```

pub mod cfg;
pub mod classify;
pub mod dom;
pub mod domain;
pub mod frontend;
pub mod ir;
pub mod programs;
pub mod transform;

pub use classify::{classify_map_reads, classify_operator, classify_program, AppClassification, OperatorKind, ReadDep};
pub use domain::{certify_domains, ValueDomain};
pub use frontend::{parse, ParseError};
pub use transform::{compile, CompiledProgram, OptLevel, SparsePlan};
