//! Summary statistics for graphs (the contents of the paper's Table 1).

use crate::csr::Graph;
use std::fmt;

/// Summary statistics of a graph, matching the columns of Table 1 in the
/// paper: `|V|`, `|E|`, `|E|/|V|`, max degree, and in-memory size.
///
/// # Example
///
/// ```
/// use kimbap_graph::{gen, GraphStats};
///
/// let g = gen::grid_road(8, 8, 0);
/// let s = GraphStats::of(&g);
/// assert_eq!(s.num_nodes, 64);
/// assert_eq!(s.max_degree, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of directed edges.
    pub num_edges: usize,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// In-memory size in bytes (all components + struct overhead).
    pub size_bytes: usize,
    /// Bytes in the offsets array (raw) or sampled block index (compressed).
    pub offsets_bytes: usize,
    /// Bytes in the targets array (raw) or topology varints (compressed).
    pub targets_bytes: usize,
    /// Bytes in the weights array (raw) or weight varints (compressed).
    pub weights_bytes: usize,
    /// Whether the graph is stored on the compressed tier.
    pub compressed: bool,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn of(g: &Graph) -> Self {
        let b = g.size_breakdown();
        GraphStats {
            num_nodes: g.num_nodes(),
            num_edges: g.num_edges(),
            max_degree: g.max_degree(),
            size_bytes: b.total(),
            offsets_bytes: b.offsets,
            targets_bytes: b.targets,
            weights_bytes: b.weights,
            compressed: g.is_compressed(),
        }
    }

    /// Average stored bytes per directed edge, or 0.0 for an edgeless graph.
    pub fn bytes_per_edge(&self) -> f64 {
        if self.num_edges == 0 {
            0.0
        } else {
            self.size_bytes as f64 / self.num_edges as f64
        }
    }

    /// Average directed degree `|E| / |V|`, or 0.0 for the empty graph.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.num_edges as f64 / self.num_nodes as f64
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|V|={} |E|={} |E|/|V|={:.1} max-deg={} size={}B \
             (off={} tgt={} wt={}) {:.2}B/edge{}",
            self.num_nodes,
            self.num_edges,
            self.avg_degree(),
            self.max_degree,
            self.size_bytes,
            self.offsets_bytes,
            self.targets_bytes,
            self.weights_bytes,
            self.bytes_per_edge(),
            if self.compressed { " [compressed]" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_of_grid() {
        let g = gen::grid_road(3, 3, 0);
        let s = GraphStats::of(&g);
        assert_eq!(s.num_nodes, 9);
        assert_eq!(s.num_edges, 24);
        assert_eq!(s.max_degree, 4);
        assert!(s.avg_degree() > 2.0);
        assert!(s.to_string().contains("|V|=9"));
    }

    #[test]
    fn components_sum_and_compressed_budget() {
        let g = gen::rmat(10, 8, 2);
        let s = GraphStats::of(&g);
        assert!(!s.compressed);
        assert_eq!(
            s.size_bytes,
            s.offsets_bytes
                + s.targets_bytes
                + s.weights_bytes
                + std::mem::size_of::<crate::GraphStore>()
        );
        // The headline budget: unit-weight R-MAT under 4 B/edge and at
        // least 2.5x smaller than raw CSR.
        let unit = gen::with_unit_weights(&g);
        let cs = GraphStats::of(&unit.compress());
        assert!(cs.compressed);
        assert_eq!(cs.weights_bytes, 0, "unit weights store no weight bytes");
        assert!(cs.bytes_per_edge() < 4.0, "{:.2} B/edge", cs.bytes_per_edge());
        assert!(cs.size_bytes * 5 < s.size_bytes * 2);
    }

    #[test]
    fn empty_stats() {
        let g = crate::GraphBuilder::new().build();
        let s = GraphStats::of(&g);
        assert_eq!(s.avg_degree(), 0.0);
    }
}

/// Histogram of out-degrees as `(degree, count)` pairs, ascending and
/// sparse (only degrees that occur).
pub fn degree_histogram(g: &Graph) -> Vec<(usize, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for u in g.nodes() {
        *counts.entry(g.degree(u)).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

/// Lower-bound estimate of the graph's diameter by a double BFS sweep
/// (BFS from `start`, then BFS from the farthest node found). Exact on
/// trees; a good lower bound in general. Returns 0 for graphs with no
/// reachable pairs.
///
/// # Panics
///
/// Panics if `start` is out of range on a non-empty graph.
pub fn approx_diameter(g: &Graph, start: crate::NodeId) -> usize {
    if g.num_nodes() == 0 {
        return 0;
    }
    fn bfs_far(g: &Graph, s: crate::NodeId) -> (crate::NodeId, usize) {
        let mut dist = vec![usize::MAX; g.num_nodes()];
        dist[s as usize] = 0;
        let mut q = std::collections::VecDeque::from([s]);
        let (mut far, mut far_d) = (s, 0);
        while let Some(u) = q.pop_front() {
            for &v in g.neighbors(u).iter() {
                if dist[v as usize] == usize::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    if dist[v as usize] > far_d {
                        far_d = dist[v as usize];
                        far = v;
                    }
                    q.push_back(v);
                }
            }
        }
        (far, far_d)
    }
    let (far, _) = bfs_far(g, start);
    bfs_far(g, far).1
}

#[cfg(test)]
mod shape_tests {
    use super::*;
    use crate::gen;

    #[test]
    fn histogram_counts_every_node() {
        let g = gen::rmat(8, 4, 5);
        let h = degree_histogram(&g);
        let total: usize = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, g.num_nodes());
        // Power law: the top degree occurs far less often than degree 0/1.
        let max_deg = h.last().unwrap().0;
        assert_eq!(max_deg, g.max_degree());
    }

    #[test]
    fn diameter_of_path_is_exact() {
        let mut b = crate::GraphBuilder::new();
        for i in 0..40u32 {
            b.add_edge(i, i + 1, 1);
        }
        let g = b.symmetric(true).build();
        assert_eq!(approx_diameter(&g, 20), 40);
    }

    #[test]
    fn grid_diameter_matches_manhattan() {
        let g = gen::grid_road(7, 9, 0);
        assert_eq!(approx_diameter(&g, 0), 7 + 9 - 2);
    }

    #[test]
    fn road_analog_has_much_higher_diameter_than_social() {
        let road = gen::grid_road(40, 40, 1);
        let social = gen::rmat(10, 8, 1);
        let d_road = approx_diameter(&road, 0);
        let d_social = approx_diameter(&social, 0);
        assert!(
            d_road > 5 * d_social.max(1),
            "road {d_road} vs social {d_social}"
        );
    }

    #[test]
    fn empty_graph_diameter() {
        let g = crate::GraphBuilder::new().build();
        assert_eq!(approx_diameter(&g, 0), 0);
    }
}
