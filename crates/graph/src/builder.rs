//! Edge-list builder that normalizes input into CSR form.

use crate::csr::{Graph, NodeId, Weight};

/// How parallel edges (same source and destination) are merged by
/// [`GraphBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergePolicy {
    /// Sum the weights. This is the right semantics for community detection,
    /// where coarsening aggregates all inter-community edges into one.
    #[default]
    SumWeights,
    /// Keep the minimum weight. This is the right semantics for minimum
    /// spanning forest inputs.
    MinWeight,
}

/// Incrementally collects edges and produces a normalized [`Graph`].
///
/// Normalization sorts edges by `(src, dst)`, merges parallel edges
/// according to a [`MergePolicy`], and optionally symmetrizes the graph by
/// adding the reverse of every edge (the paper symmetrizes all inputs).
///
/// # Example
///
/// ```
/// use kimbap_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 1, 3);
/// b.add_edge(0, 1, 4); // parallel edge: merged (weights summed by default)
/// let g = b.symmetric(true).build();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.edge_weights(0), &[7]);
/// assert_eq!(g.edge_weights(1), &[7]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    edges: Vec<(NodeId, NodeId, Weight)>,
    min_nodes: usize,
    symmetric: bool,
    merge: MergePolicy,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-sized for `edges` edge insertions.
    pub fn with_capacity(edges: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(edges),
            ..Self::default()
        }
    }

    /// Adds a directed edge.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: Weight) -> &mut Self {
        self.edges.push((src, dst, weight));
        self
    }

    /// Ensures the built graph has at least `n` nodes even if some of them
    /// have no edges.
    pub fn ensure_nodes(&mut self, n: usize) -> &mut Self {
        self.min_nodes = self.min_nodes.max(n);
        self
    }

    /// If `true`, the reverse of every edge is added before normalization,
    /// producing a symmetric graph.
    pub fn symmetric(&mut self, yes: bool) -> &mut Self {
        self.symmetric = yes;
        self
    }

    /// Sets how parallel edges are merged. Defaults to
    /// [`MergePolicy::SumWeights`].
    pub fn merge_policy(&mut self, policy: MergePolicy) -> &mut Self {
        self.merge = policy;
        self
    }

    /// Number of edges currently collected (before merging).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Consumes the collected edges and produces a normalized [`Graph`].
    ///
    /// The node count is `max(ensure_nodes, 1 + max node id referenced)`;
    /// building with no edges and no `ensure_nodes` yields the empty graph.
    pub fn build(&mut self) -> Graph {
        let mut edges = std::mem::take(&mut self.edges);
        if self.symmetric {
            let rev: Vec<_> = edges.iter().map(|&(s, d, w)| (d, s, w)).collect();
            edges.extend(rev);
        }
        let n = edges
            .iter()
            .map(|&(s, d, _)| s.max(d) as usize + 1)
            .max()
            .unwrap_or(0)
            .max(self.min_nodes);

        edges.sort_unstable_by_key(|&(s, d, _)| (s, d));
        // Merge parallel edges in place.
        let mut merged: Vec<(NodeId, NodeId, Weight)> = Vec::with_capacity(edges.len());
        for (s, d, w) in edges {
            match merged.last_mut() {
                Some(last) if last.0 == s && last.1 == d => {
                    last.2 = match self.merge {
                        MergePolicy::SumWeights => last.2 + w,
                        MergePolicy::MinWeight => last.2.min(w),
                    };
                }
                _ => merged.push((s, d, w)),
            }
        }

        let mut offsets = vec![0u64; n + 1];
        for &(s, _, _) in &merged {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets = merged.iter().map(|&(_, d, _)| d).collect();
        let weights = merged.iter().map(|&(_, _, w)| w).collect();
        Graph::from_csr(offsets, targets, weights)
    }
}

/// Builds a graph from an iterator of `(src, dst, weight)` triples,
/// symmetrizing it. Convenience wrapper over [`GraphBuilder`].
///
/// # Example
///
/// ```
/// let g = kimbap_graph::builder::from_edges([(0u32, 1u32, 1u64), (1, 2, 1)]);
/// assert!(g.is_symmetric());
/// ```
pub fn from_edges<I>(edges: I) -> Graph
where
    I: IntoIterator<Item = (NodeId, NodeId, Weight)>,
{
    let mut b = GraphBuilder::new();
    for (s, d, w) in edges {
        b.add_edge(s, d, w);
    }
    b.symmetric(true).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_empty() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn ensure_nodes_pads_isolated() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1).ensure_nodes(5);
        let g = b.build();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    fn symmetrize_adds_reverse_edges() {
        let g = from_edges([(0, 1, 2), (2, 0, 3)]);
        assert!(g.is_symmetric());
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.edge_weights(0), &[2, 3]);
    }

    #[test]
    fn merge_sum_and_min() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 5).add_edge(0, 1, 3);
        let g = b.build();
        assert_eq!(g.edge_weights(0), &[8]);

        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 5).add_edge(0, 1, 3);
        b.merge_policy(MergePolicy::MinWeight);
        let g = b.build();
        assert_eq!(g.edge_weights(0), &[3]);
    }

    #[test]
    fn self_loops_survive() {
        let mut b = GraphBuilder::new();
        b.add_edge(1, 1, 4);
        let g = b.build();
        assert_eq!(g.neighbors(1), &[1]);
        assert_eq!(g.weighted_degree(1), 4);
    }

    #[test]
    fn symmetrize_merges_antiparallel_duplicates() {
        // (0,1) and (1,0) both present: symmetrization creates duplicates
        // that must merge.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1).add_edge(1, 0, 1);
        let g = b.symmetric(true).build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weights(0), &[2]);
    }

    #[test]
    fn neighbors_sorted() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 3, 1).add_edge(0, 1, 1).add_edge(0, 2, 1);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
    }
}
