//! Synthetic graph generators reproducing the *shapes* of the paper's
//! evaluation inputs.
//!
//! The paper's workloads divide into two shapes that drive every result:
//!
//! * **road-europe** — high diameter, roughly uniform small degrees (max 16).
//!   Reproduced by [`grid_road`], a 2-D grid whose diameter grows as
//!   `rows + cols`.
//! * **friendster / clueweb12 / wdc12** — power-law degree distributions with
//!   a few very high-degree hubs. Reproduced by [`rmat`], the standard
//!   recursive-matrix generator (Graph500 parameters).
//!
//! All generators return symmetric graphs with unit weights; use
//! [`with_random_weights`] to assign weights for spanning-forest workloads.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId, Weight};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT quadrant probabilities. The defaults are the Graph500 parameters
/// (`a = 0.57, b = 0.19, c = 0.19`), which produce a power-law degree
/// distribution with pronounced hubs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Probability of recursing into the top-right quadrant.
    pub b: f64,
    /// Probability of recursing into the bottom-left quadrant.
    pub c: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

/// Generates a symmetric power-law graph with `2^scale` nodes and
/// approximately `edge_factor * 2^scale` undirected edges, using the default
/// Graph500 R-MAT parameters.
///
/// Self-loops are dropped and parallel edges merged, so the realized edge
/// count is slightly below the nominal one (more so at small scales).
///
/// # Example
///
/// ```
/// let g = kimbap_graph::gen::rmat(8, 8, 1);
/// assert!(g.is_symmetric());
/// ```
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> Graph {
    rmat_with(scale, edge_factor, seed, RmatParams::default())
}

/// Generates an R-MAT graph with explicit quadrant probabilities.
///
/// # Panics
///
/// Panics if `scale >= 32`, or if the probabilities are not a valid
/// sub-distribution (`a + b + c > 1` or any negative).
pub fn rmat_with(scale: u32, edge_factor: usize, seed: u64, p: RmatParams) -> Graph {
    assert!(scale < 32, "scale must fit in a u32 node id");
    assert!(
        p.a >= 0.0 && p.b >= 0.0 && p.c >= 0.0 && p.a + p.b + p.c <= 1.0,
        "invalid R-MAT probabilities"
    );
    let n = 1usize << scale;
    let m = edge_factor * n;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(2 * m);
    b.ensure_nodes(n);
    for _ in 0..m {
        let (mut u, mut v) = (0u32, 0u32);
        for bit in (0..scale).rev() {
            let r: f64 = rng.random();
            let (du, dv) = if r < p.a {
                (0, 0)
            } else if r < p.a + p.b {
                (0, 1)
            } else if r < p.a + p.b + p.c {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= du << bit;
            v |= dv << bit;
        }
        if u != v {
            b.add_edge(u, v, 1);
        }
    }
    b.symmetric(true).build()
}

/// Generates a symmetric `rows x cols` 4-neighbor grid graph — the
/// high-diameter, uniform-low-degree analog of a road network.
///
/// Node `(r, c)` has id `r * cols + c`; every node has degree 2–4 and the
/// diameter is `rows + cols - 2`.
///
/// # Panics
///
/// Panics if `rows * cols` overflows `u32` or either dimension is zero.
///
/// # Example
///
/// ```
/// let g = kimbap_graph::gen::grid_road(10, 10, 7);
/// assert_eq!(g.num_nodes(), 100);
/// assert_eq!(g.max_degree(), 4);
/// ```
pub fn grid_road(rows: usize, cols: usize, seed: u64) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let n = rows
        .checked_mul(cols)
        .filter(|&n| n <= u32::MAX as usize)
        .expect("grid too large for u32 node ids");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(4 * n);
    b.ensure_nodes(n);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            // Road-like weights: short random segment lengths.
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1), rng.random_range(1..=8));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c), rng.random_range(1..=8));
            }
        }
    }
    b.symmetric(true).build()
}

/// Generates a symmetric Erdős–Rényi G(n, m) graph: `m` undirected edges
/// drawn uniformly (self-loops excluded, parallel edges merged).
///
/// # Panics
///
/// Panics if `n < 2` and `m > 0`.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m == 0 || n >= 2, "need at least two nodes to place an edge");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(2 * m);
    b.ensure_nodes(n);
    for _ in 0..m {
        let u = rng.random_range(0..n as u32);
        let mut v = rng.random_range(0..n as u32);
        while v == u {
            v = rng.random_range(0..n as u32);
        }
        b.add_edge(u, v, 1);
    }
    b.symmetric(true).build()
}

/// Returns a copy of `g` with every undirected edge assigned a random weight
/// in `1..=max_weight` (both directions get the same weight), for
/// minimum-spanning-forest workloads.
///
/// The weight of edge `{u, v}` depends only on `u`, `v`, `max_weight`, and
/// `seed`, so it is deterministic and symmetric by construction.
///
/// # Panics
///
/// Panics if `max_weight == 0`.
pub fn with_random_weights(g: &Graph, max_weight: Weight, seed: u64) -> Graph {
    assert!(max_weight > 0, "max_weight must be positive");
    let mut b = GraphBuilder::with_capacity(g.num_edges());
    b.ensure_nodes(g.num_nodes());
    for (u, v, _) in g.all_edges() {
        if u <= v {
            let (lo, hi) = (u.min(v) as u64, u.max(v) as u64);
            // Stable per-undirected-edge hash -> weight.
            let mut h = lo
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(hi)
                .wrapping_add(seed);
            h ^= h >> 31;
            h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h ^= h >> 29;
            b.add_edge(u, v, h % max_weight + 1);
        }
    }
    b.symmetric(true).build()
}

/// Returns a copy of `g` with every edge weight set to 1 — the storage
/// shape of weight-oblivious workloads (connected components, MIS), and
/// the shape that triggers the compressed tier's no-weight-array fast
/// path. Note the generators above can produce non-unit weights even from
/// unit input because [`GraphBuilder`] sums merged parallel edges.
pub fn with_unit_weights(g: &Graph) -> Graph {
    let mut offsets = Vec::with_capacity(g.num_nodes() + 1);
    offsets.push(0u64);
    let mut targets = Vec::with_capacity(g.num_edges());
    for u in g.nodes() {
        targets.extend_from_slice(&g.neighbors(u));
        offsets.push(targets.len() as u64);
    }
    let weights = vec![1; targets.len()];
    Graph::from_csr(offsets, targets, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_symmetric_and_power_law() {
        let g = rmat(10, 8, 42);
        assert!(g.num_nodes() <= 1 << 10);
        assert!(g.is_symmetric());
        // Power law: max degree far exceeds the average.
        let avg = g.num_edges() / g.num_nodes();
        assert!(g.max_degree() > 4 * avg, "expected hubs, got max {} avg {avg}", g.max_degree());
    }

    #[test]
    fn rmat_deterministic_by_seed() {
        assert_eq!(rmat(8, 4, 7), rmat(8, 4, 7));
        assert_ne!(rmat(8, 4, 7), rmat(8, 4, 8));
    }

    #[test]
    fn grid_shape() {
        let g = grid_road(5, 7, 1);
        assert_eq!(g.num_nodes(), 35);
        // Interior nodes have degree 4, corners 2.
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.degree(0), 2);
        // Undirected edge count: 5*6 + 4*7 horizontal/vertical.
        assert_eq!(g.num_edges(), 2 * (5 * 6 + 4 * 7));
        assert!(g.is_symmetric());
    }

    #[test]
    fn er_basic() {
        let g = erdos_renyi(100, 300, 3);
        assert_eq!(g.num_nodes(), 100);
        assert!(g.num_edges() <= 600);
        assert!(g.is_symmetric());
    }

    #[test]
    fn random_weights_symmetric_and_bounded() {
        let g = with_random_weights(&grid_road(4, 4, 0), 100, 5);
        assert!(g.is_symmetric());
        for (_, _, w) in g.all_edges() {
            assert!((1..=100).contains(&w));
        }
    }

    #[test]
    #[should_panic(expected = "scale must fit")]
    fn rmat_scale_too_large() {
        rmat(32, 1, 0);
    }
}
