//! Delta+varint-compressed CSR: the read-optimized storage tier.
//!
//! Each node's sorted neighbor block is stored as `varint(degree)`,
//! `zigzag(first_target − node)`, then ascending varint gaps; weighted
//! graphs append a varint weight run *after* the whole target run (with
//! a `varint(target_run_bytes)` header so the weights are O(1) to find),
//! keeping the two streams separate so weight-blind consumers
//! ([`CompressedGraph::targets`]) never touch weight bytes. The
//! unit-weight fast path stores no weight bytes at all and materializes
//! `1` on read. A sampled offset index (one `u32` byte offset every
//! `stride` nodes, default [`INDEX_STRIDE`]) gives near-O(1) random
//! access: locate the sample, then skip at most `stride − 1` blocks
//! sequentially. The default stride is 1 — direct block starts — because
//! the BSP hot loops decode every node's block once per round and a skip
//! multiplies straight into compute time.
//!
//! Raw CSR spends 4 bytes per edge on targets plus 8 on weights plus
//! 8 per node on offsets; the compressed form typically lands well under
//! 4 bytes per edge on the unit-weight power-law inputs (see the
//! `max_graph_size` bench and the `ci.sh` bytes-per-edge assertion).

use crate::csr::{NodeId, Weight};

/// Default index stride: one `u32` block-start sample per this many
/// nodes. Larger strides cost fewer index bytes (4 / stride per node) but
/// pay a sequential block skip on random access; profile-driven default
/// is 1 (a direct block-start per node) because the BSP hot loops call
/// `edges(u)` once per node per round and any skip multiplies straight
/// into compute time, while the index is ≤ 4 bytes/node — small next to
/// raw CSR's 8-byte offsets. [`CompressedGraph::from_csr_slices_with_stride`]
/// takes an explicit stride for memory-tighter, colder data.
pub const INDEX_STRIDE: usize = 1;

// --- LEB128 varints + zigzag ------------------------------------------------

#[inline]
pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[inline]
pub(crate) fn get_varint(data: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = data[*pos];
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Advances past one varint without decoding its value.
#[inline]
fn skip_varint(data: &[u8], pos: &mut usize) {
    while data[*pos] & 0x80 != 0 {
        *pos += 1;
    }
    *pos += 1;
}

/// [`get_varint`] without per-byte bounds checks, for the edge-decode
/// hot loop: the BSP engines decode every block once per round, and the
/// checked loop's branch per byte is measurable there.
///
/// # Safety
///
/// `*pos` must point at a complete, well-formed varint inside `data`.
/// All positions reached from the constructor-built index over the
/// constructor-encoded blocks satisfy this; the encoding is never read
/// from external input.
#[inline]
unsafe fn get_varint_unchecked(data: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        debug_assert!(*pos < data.len(), "varint runs past the block data");
        // SAFETY: caller guarantees the varint lies within `data`.
        let byte = unsafe { *data.get_unchecked(*pos) };
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

#[inline]
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// --- The compressed graph ---------------------------------------------------

/// A graph in per-node delta+varint blocks with a sampled offset index.
///
/// Neighbor blocks are sorted ascending (construction sorts each node's
/// `(target, weight)` pairs if the input CSR was not). All algorithms in
/// this workspace are order-independent over a node's edge list, so the
/// reordering is observable only through iteration order.
#[derive(Clone, PartialEq, Eq)]
pub struct CompressedGraph {
    num_nodes: usize,
    num_edges: usize,
    /// `true` iff every weight is 1; then no weight bytes are stored.
    unit_weights: bool,
    total_weight: u64,
    /// Concatenated per-node blocks.
    data: Vec<u8>,
    /// Byte offset of the block of node `i * stride`.
    index: Vec<u32>,
    /// Nodes per index sample (1 = direct block starts, no skipping).
    stride: usize,
    /// How many of `data`'s bytes encode weights (0 when unit-weight);
    /// lets size reporting split topology from weight storage honestly.
    weight_data_bytes: usize,
}

impl CompressedGraph {
    /// Compresses a raw CSR given as slices.
    ///
    /// # Panics
    ///
    /// Panics if the encoded data would exceed the `u32` index range
    /// (≈4 GiB of compressed blocks), or if the slices are inconsistent.
    pub fn from_csr_slices(offsets: &[u64], targets: &[NodeId], weights: &[Weight]) -> Self {
        Self::from_csr_slices_with_stride(offsets, targets, weights, INDEX_STRIDE)
    }

    /// [`CompressedGraph::from_csr_slices`] with an explicit index
    /// stride: one `u32` block-start sample every `stride` nodes, the
    /// other `stride − 1` blocks reached by sequential skip.
    ///
    /// # Panics
    ///
    /// Panics on `stride == 0`, on inconsistent slices, or if the encoded
    /// data would exceed the `u32` index range.
    pub fn from_csr_slices_with_stride(
        offsets: &[u64],
        targets: &[NodeId],
        weights: &[Weight],
        stride: usize,
    ) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(weights.len(), targets.len(), "one weight per edge");
        assert!(stride > 0, "index stride must be positive");
        let n = offsets.len() - 1;
        let unit_weights = weights.iter().all(|&w| w == 1);
        let mut data = Vec::with_capacity(targets.len() * 2);
        let mut index = Vec::with_capacity(n / stride + 1);
        let mut weight_data_bytes = 0usize;
        let mut total_weight = 0u64;
        let mut pairs: Vec<(NodeId, Weight)> = Vec::new();
        let mut run: Vec<u8> = Vec::new();
        for u in 0..n {
            if u % stride == 0 {
                let off = u32::try_from(data.len())
                    .expect("compressed graph blocks exceed the u32 index range");
                index.push(off);
            }
            let (s, e) = (offsets[u] as usize, offsets[u + 1] as usize);
            pairs.clear();
            pairs.extend(targets[s..e].iter().copied().zip(weights[s..e].iter().copied()));
            if !pairs.windows(2).all(|w| w[0].0 <= w[1].0) {
                pairs.sort_unstable();
            }
            put_varint(&mut data, pairs.len() as u64);
            // Target deltas build in a side buffer so the weighted layout
            // can prefix the run with its byte length.
            run.clear();
            let mut prev = u as i64;
            for (i, &(t, _)) in pairs.iter().enumerate() {
                if i == 0 {
                    put_varint(&mut run, zigzag(t as i64 - prev));
                } else {
                    put_varint(&mut run, (t as i64 - prev) as u64);
                }
                prev = t as i64;
            }
            if unit_weights {
                data.extend_from_slice(&run);
                total_weight += pairs.len() as u64;
            } else {
                let before = data.len();
                if !pairs.is_empty() {
                    put_varint(&mut data, run.len() as u64);
                }
                let header = data.len() - before;
                data.extend_from_slice(&run);
                let before = data.len();
                for &(_, w) in &pairs {
                    put_varint(&mut data, w);
                    total_weight += w;
                }
                // The run-length header exists only to reach the weight
                // run, so it bills to the weight bytes.
                weight_data_bytes += header + data.len() - before;
            }
        }
        CompressedGraph {
            num_nodes: n,
            num_edges: targets.len(),
            unit_weights,
            total_weight,
            data,
            index,
            stride,
            weight_data_bytes,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// `true` if the unit-weight fast path is active (no weight bytes
    /// stored; weights materialize as `1` on read).
    pub fn unit_weights(&self) -> bool {
        self.unit_weights
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Heap bytes of the block data.
    pub fn data_bytes(&self) -> usize {
        self.data.len()
    }

    /// Heap bytes of the sampled offset index.
    pub fn index_bytes(&self) -> usize {
        self.index.len() * std::mem::size_of::<u32>()
    }

    /// Bytes of `data` spent on weights (0 on the unit-weight path).
    pub fn weight_data_bytes(&self) -> usize {
        self.weight_data_bytes
    }

    /// Byte position of node `u`'s block: jump to the nearest index
    /// sample, then skip the remaining blocks sequentially.
    fn block_pos(&self, u: NodeId) -> usize {
        let u = u as usize;
        assert!(u < self.num_nodes, "node {u} out of range");
        if self.stride == 1 {
            // Direct block starts: the default, skip-free hot path.
            return self.index[u] as usize;
        }
        let mut pos = self.index[u / self.stride] as usize;
        for _ in 0..(u % self.stride) {
            self.skip_block(&mut pos);
        }
        pos
    }

    /// Advances `pos` past one whole block.
    fn skip_block(&self, pos: &mut usize) {
        let d = get_varint(&self.data, pos) as usize;
        if d == 0 {
            return;
        }
        if self.unit_weights {
            for _ in 0..d {
                skip_varint(&self.data, pos);
            }
        } else {
            let run = get_varint(&self.data, pos) as usize;
            *pos += run; // the whole target run at once
            for _ in 0..d {
                skip_varint(&self.data, pos); // the weight run
            }
        }
    }

    /// Out-degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: NodeId) -> usize {
        let mut pos = self.block_pos(u);
        get_varint(&self.data, &mut pos) as usize
    }

    /// Streams `(target, weight)` pairs of `u`'s out-edges, decoding
    /// varints on the fly (no scratch buffer).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn edges(&self, u: NodeId) -> CompressedEdges<'_> {
        let mut pos = self.block_pos(u);
        let remaining = get_varint(&self.data, &mut pos) as usize;
        let wpos = if self.unit_weights || remaining == 0 {
            0 // never read
        } else {
            let run = get_varint(&self.data, &mut pos) as usize;
            pos + run
        };
        CompressedEdges {
            data: &self.data,
            pos,
            wpos,
            remaining,
            prev: u as i64,
            first: true,
            unit: self.unit_weights,
        }
    }

    /// Streams just the (sorted) targets of `u`'s out-edges. On weighted
    /// graphs this decodes only the target-delta run and never touches
    /// the weight bytes — the path for weight-blind algorithms.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn targets(&self, u: NodeId) -> CompressedTargets<'_> {
        let mut pos = self.block_pos(u);
        let remaining = get_varint(&self.data, &mut pos) as usize;
        if !self.unit_weights && remaining > 0 {
            skip_varint(&self.data, &mut pos); // the target-run length header
        }
        CompressedTargets {
            data: &self.data,
            pos,
            remaining,
            prev: u as i64,
            first: true,
        }
    }

    /// Decodes `u`'s neighbors (and weights, if `weights` is `Some`) into
    /// reusable buffers, replacing their contents.
    pub fn decode_into(&self, u: NodeId, targets: &mut Vec<NodeId>, weights: Option<&mut Vec<Weight>>) {
        targets.clear();
        match weights {
            Some(ws) => {
                ws.clear();
                for (t, w) in self.edges(u) {
                    targets.push(t);
                    ws.push(w);
                }
            }
            None => targets.extend(self.targets(u)),
        }
    }
}

impl std::fmt::Debug for CompressedGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressedGraph")
            .field("num_nodes", &self.num_nodes)
            .field("num_edges", &self.num_edges)
            .field("unit_weights", &self.unit_weights)
            .field("data_bytes", &self.data.len())
            .finish()
    }
}

/// Streaming decoder over one node's block (see
/// [`CompressedGraph::edges`]): targets from the delta run, weights in
/// lockstep from the weight run.
pub struct CompressedEdges<'a> {
    data: &'a [u8],
    pos: usize,
    /// Cursor into the weight run (unused on the unit-weight path).
    wpos: usize,
    remaining: usize,
    prev: i64,
    first: bool,
    unit: bool,
}

impl Iterator for CompressedEdges<'_> {
    type Item = (NodeId, Weight);

    #[inline]
    fn next(&mut self) -> Option<(NodeId, Weight)> {
        if self.remaining == 0 {
            return None;
        }
        // SAFETY: `pos`/`wpos` came from the constructor-built index and
        // have only been advanced over whole varints; with
        // `remaining > 0` both runs still hold `remaining` encoded
        // entries, so a well-formed varint starts at each cursor.
        let raw = unsafe { get_varint_unchecked(self.data, &mut self.pos) };
        let t = if self.first {
            self.first = false;
            self.prev + unzigzag(raw)
        } else {
            self.prev + raw as i64
        };
        self.prev = t;
        let w = if self.unit {
            1
        } else {
            // SAFETY: same invariant as above.
            unsafe { get_varint_unchecked(self.data, &mut self.wpos) }
        };
        self.remaining -= 1;
        Some((t as NodeId, w))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }

    // `for_each` (what the BSP hot loops drive) lowers to `fold`; the
    // override peels the zigzag first edge and splits the unit-weight
    // case so the per-edge loop carries no branches beyond the decode
    // itself — measurably faster than the `next()` protocol on dense
    // power-law blocks.
    fn fold<B, F>(mut self, init: B, mut f: F) -> B
    where
        F: FnMut(B, Self::Item) -> B,
    {
        let mut acc = init;
        if self.remaining == 0 {
            return acc;
        }
        let data = self.data;
        let mut pos = self.pos;
        let mut wpos = self.wpos;
        let mut prev = self.prev;
        // SAFETY (all decodes below): both cursors start at offsets from
        // the constructor-built index and advance over whole varints;
        // `remaining` counts the entries still encoded in each run.
        if self.first {
            let raw = unsafe { get_varint_unchecked(data, &mut pos) };
            prev += unzigzag(raw);
            let w = if self.unit {
                1
            } else {
                unsafe { get_varint_unchecked(data, &mut wpos) }
            };
            acc = f(acc, (prev as NodeId, w));
            self.remaining -= 1;
        }
        if self.unit {
            for _ in 0..self.remaining {
                let raw = unsafe { get_varint_unchecked(data, &mut pos) };
                prev += raw as i64;
                acc = f(acc, (prev as NodeId, 1));
            }
        } else {
            for _ in 0..self.remaining {
                let raw = unsafe { get_varint_unchecked(data, &mut pos) };
                prev += raw as i64;
                let w = unsafe { get_varint_unchecked(data, &mut wpos) };
                acc = f(acc, (prev as NodeId, w));
            }
        }
        acc
    }
}

impl ExactSizeIterator for CompressedEdges<'_> {}

/// Streaming decoder over just the target-delta run of one node's block
/// (see [`CompressedGraph::targets`]); weight bytes are never read.
pub struct CompressedTargets<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: usize,
    prev: i64,
    first: bool,
}

impl Iterator for CompressedTargets<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.remaining == 0 {
            return None;
        }
        // SAFETY: `pos` came from the constructor-built index and has
        // only been advanced over whole varints; `remaining > 0` means
        // the target run still holds that many encoded deltas.
        let raw = unsafe { get_varint_unchecked(self.data, &mut self.pos) };
        let t = if self.first {
            self.first = false;
            self.prev + unzigzag(raw)
        } else {
            self.prev + raw as i64
        };
        self.prev = t;
        self.remaining -= 1;
        Some(t as NodeId)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }

    // Same rationale as [`CompressedEdges::fold`].
    fn fold<B, F>(mut self, init: B, mut f: F) -> B
    where
        F: FnMut(B, Self::Item) -> B,
    {
        let mut acc = init;
        if self.remaining == 0 {
            return acc;
        }
        let data = self.data;
        let mut pos = self.pos;
        let mut prev = self.prev;
        // SAFETY: as in `next` — cursor positions only ever derive from
        // the constructor-built index.
        if self.first {
            let raw = unsafe { get_varint_unchecked(data, &mut pos) };
            prev += unzigzag(raw);
            acc = f(acc, prev as NodeId);
            self.remaining -= 1;
        }
        for _ in 0..self.remaining {
            let raw = unsafe { get_varint_unchecked(data, &mut pos) };
            prev += raw as i64;
            acc = f(acc, prev as NodeId);
        }
        acc
    }
}

impl ExactSizeIterator for CompressedTargets<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(offsets: Vec<u64>, targets: Vec<NodeId>, weights: Vec<Weight>) {
        let c = CompressedGraph::from_csr_slices(&offsets, &targets, &weights);
        assert_eq!(c.num_nodes(), offsets.len() - 1);
        assert_eq!(c.num_edges(), targets.len());
        assert_eq!(c.total_weight(), weights.iter().sum::<u64>());
        for u in 0..c.num_nodes() as NodeId {
            let (s, e) = (offsets[u as usize] as usize, offsets[u as usize + 1] as usize);
            let mut expected: Vec<(NodeId, Weight)> = targets[s..e]
                .iter()
                .copied()
                .zip(weights[s..e].iter().copied())
                .collect();
            expected.sort_unstable();
            assert_eq!(c.degree(u), expected.len());
            assert_eq!(c.edges(u).collect::<Vec<_>>(), expected, "node {u}");
        }
    }

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), v);
            assert_eq!(pos, buf.len());
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn unit_weight_fast_path_stores_no_weight_bytes() {
        let c = CompressedGraph::from_csr_slices(
            &[0, 2, 4, 6],
            &[1, 2, 0, 2, 0, 1],
            &[1, 1, 1, 1, 1, 1],
        );
        assert!(c.unit_weights());
        assert_eq!(c.weight_data_bytes(), 0);
        assert_eq!(c.edges(0).collect::<Vec<_>>(), vec![(1, 1), (2, 1)]);
    }

    #[test]
    fn triangle_weighted() {
        roundtrip(
            vec![0, 2, 4, 6],
            vec![1, 2, 0, 2, 0, 1],
            vec![5, 9, 5, 2, 9, 2],
        );
    }

    #[test]
    fn degree_zero_and_isolated_tail() {
        roundtrip(vec![0, 0, 1, 1, 1], vec![0], vec![7]);
    }

    #[test]
    fn empty_graph() {
        let c = CompressedGraph::from_csr_slices(&[0], &[], &[]);
        assert_eq!(c.num_nodes(), 0);
        assert_eq!(c.num_edges(), 0);
    }

    #[test]
    fn weight_extremes_survive() {
        roundtrip(vec![0, 2], vec![0, 1], vec![u64::MAX, 0]);
    }

    #[test]
    fn unsorted_blocks_are_sorted_on_compression() {
        let c = CompressedGraph::from_csr_slices(&[0, 3], &[2, 0, 1], &[9, 9, 9]);
        assert_eq!(
            c.edges(0).collect::<Vec<_>>(),
            vec![(0, 9), (1, 9), (2, 9)]
        );
    }

    #[test]
    fn index_skip_crosses_strides() {
        // Wide strides force the sequential-skip path across several
        // index samples with mixed degrees; every stride must agree with
        // the skip-free default.
        let n = 3 * 8 + 5;
        let mut offsets = vec![0u64];
        let mut targets = Vec::new();
        let mut weights = Vec::new();
        for u in 0..n {
            let d = u % 4;
            for i in 0..d {
                targets.push(((u + i * 7 + 1) % n) as NodeId);
                weights.push((u * 31 + i) as u64 + 1);
            }
            offsets.push(targets.len() as u64);
        }
        roundtrip(offsets.clone(), targets.clone(), weights.clone());
        let direct = CompressedGraph::from_csr_slices(&offsets, &targets, &weights);
        for stride in [2, 8, 64] {
            let sampled = CompressedGraph::from_csr_slices_with_stride(
                &offsets, &targets, &weights, stride,
            );
            assert!(sampled.index_bytes() < direct.index_bytes());
            for u in 0..n as NodeId {
                assert_eq!(sampled.degree(u), direct.degree(u), "stride {stride}");
                assert_eq!(
                    sampled.edges(u).collect::<Vec<_>>(),
                    direct.edges(u).collect::<Vec<_>>(),
                    "stride {stride} node {u}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        CompressedGraph::from_csr_slices(&[0], &[], &[]).degree(0);
    }
}
