//! Graph serialization: whitespace edge lists (the interchange format of
//! SNAP / WebDataCommons dumps the paper's inputs ship as) and a compact
//! binary CSR format for fast reloads.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId, Weight};
use std::io::{self, BufRead, Read, Write};

/// Writes `g` as a text edge list: one `src dst weight` triple per line,
/// preceded by a `# nodes <n>` header that preserves isolated nodes.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_edge_list<W: Write>(g: &Graph, mut w: W) -> io::Result<()> {
    writeln!(w, "# nodes {}", g.num_nodes())?;
    for (u, v, wt) in g.all_edges() {
        writeln!(w, "{u} {v} {wt}")?;
    }
    Ok(())
}

/// Reads a text edge list produced by [`write_edge_list`] (or any
/// whitespace-separated `src dst [weight]` file; missing weights default
/// to 1; lines starting with `#` or `%` are comments, except the
/// `# nodes <n>` header).
///
/// The graph is **not** symmetrized — load exactly what the file says and
/// symmetrize with [`GraphBuilder`] if needed.
///
/// # Errors
///
/// Returns `InvalidData` for malformed lines and propagates I/O errors.
pub fn read_edge_list<R: BufRead>(r: R) -> io::Result<Graph> {
    let mut b = GraphBuilder::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# nodes ") {
            let n: usize = rest.trim().parse().map_err(|_| bad(lineno, line))?;
            b.ensure_nodes(n);
            continue;
        }
        if line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let u: NodeId = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad(lineno, line))?;
        let v: NodeId = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad(lineno, line))?;
        let w: Weight = match it.next() {
            Some(t) => t.parse().map_err(|_| bad(lineno, line))?,
            None => 1,
        };
        b.add_edge(u, v, w);
    }
    Ok(b.build())
}

fn bad(lineno: usize, line: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed edge list at line {}: {line:?}", lineno + 1),
    )
}

const MAGIC: &[u8; 8] = b"KIMBAPG1";

/// Writes `g` in the binary CSR format (magic, counts, then the raw
/// offset/target/weight arrays, little-endian).
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_binary<W: Write>(g: &Graph, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(g.num_nodes() as u64).to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    // Stream the CSR arrays from the accessors rather than the backing
    // store, so compressed graphs serialize to the same format (their
    // blocks decode in sorted order, which is CSR order for graphs built
    // by GraphBuilder).
    let mut off = 0u64;
    w.write_all(&off.to_le_bytes())?;
    for u in g.nodes() {
        off += g.degree(u) as u64;
        w.write_all(&off.to_le_bytes())?;
    }
    for u in g.nodes() {
        for &t in g.neighbors(u).iter() {
            w.write_all(&t.to_le_bytes())?;
        }
    }
    for u in g.nodes() {
        for &wt in g.edge_weights(u).iter() {
            w.write_all(&wt.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a graph written by [`write_binary`].
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic number or truncated/inconsistent
/// arrays, and propagates I/O errors.
pub fn read_binary<R: Read>(mut r: R) -> io::Result<Graph> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a kimbap binary graph (bad magic)",
        ));
    }
    let n = read_u64(&mut r)? as usize;
    let m = read_u64(&mut r)? as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(&mut r)?);
    }
    let mut targets = Vec::with_capacity(m);
    for _ in 0..m {
        let mut b = [0u8; 4];
        r.read_exact(&mut b)?;
        targets.push(u32::from_le_bytes(b));
    }
    let mut weights = Vec::with_capacity(m);
    for _ in 0..m {
        weights.push(read_u64(&mut r)?);
    }
    if offsets.last().copied() != Some(m as u64) || targets.iter().any(|&t| t as usize >= n) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "inconsistent CSR arrays",
        ));
    }
    Ok(Graph::from_csr(offsets, targets, weights))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn edge_list_roundtrip() {
        let g = gen::rmat(7, 4, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_preserves_isolated_nodes() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 5).ensure_nodes(10);
        let g = b.build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g2.num_nodes(), 10);
    }

    #[test]
    fn edge_list_defaults_weight_and_skips_comments() {
        let text = "% comment\n# another\n0 1\n1 2 7\n\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edges(0).next().unwrap(), (1, 1));
        assert_eq!(g.edges(1).next().unwrap(), (2, 7));
    }

    #[test]
    fn edge_list_rejects_garbage() {
        let err = read_edge_list("0 x 1\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn binary_roundtrip() {
        let g = gen::grid_road(9, 5, 2);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_write_is_tier_independent() {
        let g = gen::rmat(7, 4, 11);
        let mut raw_buf = Vec::new();
        write_binary(&g, &mut raw_buf).unwrap();
        let mut comp_buf = Vec::new();
        write_binary(&g.compress(), &mut comp_buf).unwrap();
        assert_eq!(raw_buf, comp_buf);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOTAGRAPH_______"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = gen::grid_road(4, 4, 0);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }
}
