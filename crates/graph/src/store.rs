//! [`GraphStore`]: one CSR, two storage tiers.
//!
//! Both [`crate::Graph`] and the distributed per-host local CSR hold their
//! adjacency through this enum, so every algorithm runs unchanged on
//! either tier: `Raw` keeps the classic offset/target/weight arrays and
//! hands out borrowed slices; `Compressed` wraps a
//! [`CompressedGraph`] and decodes neighbor lists into per-thread
//! reusable scratch buffers (or streams them edge-by-edge through
//! [`GraphStore::edges`], which allocates nothing).

use crate::compressed::{CompressedEdges, CompressedGraph, CompressedTargets};
use crate::csr::{NodeId, Weight};
use std::cell::RefCell;
use std::ops::Deref;

/// Storage backing one CSR adjacency structure.
#[derive(Clone, PartialEq, Eq)]
pub enum GraphStore {
    /// Uncompressed arrays: `offsets[u]..offsets[u+1]` indexes `targets`
    /// and `weights`.
    Raw {
        /// Edge range starts, length `num_nodes + 1`.
        offsets: Vec<u64>,
        /// Edge destinations, grouped by source.
        targets: Vec<NodeId>,
        /// One weight per edge, parallel to `targets`.
        weights: Vec<Weight>,
    },
    /// Delta+varint blocks with a sampled offset index.
    Compressed(CompressedGraph),
}

/// Per-component heap accounting of a [`GraphStore`] (plus the container
/// struct itself), so compression ratios are honest: for the compressed
/// tier, `offsets` is the sampled index and `targets`/`weights` split the
/// block bytes between topology and weight varints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SizeBreakdown {
    /// Offsets array (raw) or sampled block index (compressed).
    pub offsets: usize,
    /// Targets array (raw) or topology varint bytes (compressed).
    pub targets: usize,
    /// Weights array (raw) or weight varint bytes (compressed; 0 on the
    /// unit-weight fast path).
    pub weights: usize,
    /// Fixed in-struct overhead of the container itself.
    pub struct_bytes: usize,
}

impl SizeBreakdown {
    /// Sum of every component.
    pub fn total(&self) -> usize {
        self.offsets + self.targets + self.weights + self.struct_bytes
    }
}

// Per-thread scratch pools the decode guards borrow from, so hot loops
// calling `neighbors`/`edge_weights` on a compressed store reuse a
// handful of buffers instead of allocating per call.
thread_local! {
    static TARGET_SCRATCH: RefCell<Vec<Vec<NodeId>>> = const { RefCell::new(Vec::new()) };
    static WEIGHT_SCRATCH: RefCell<Vec<Vec<Weight>>> = const { RefCell::new(Vec::new()) };
}

fn take_target_buf() -> Vec<NodeId> {
    TARGET_SCRATCH.with(|p| p.borrow_mut().pop().unwrap_or_default())
}

fn take_weight_buf() -> Vec<Weight> {
    WEIGHT_SCRATCH.with(|p| p.borrow_mut().pop().unwrap_or_default())
}

/// A node's neighbor list: either a borrowed raw slice or a scratch
/// buffer holding the decoded block. Derefs to `[NodeId]`.
pub struct NeighborsRef<'a>(NbRepr<'a>);

enum NbRepr<'a> {
    Slice(&'a [NodeId]),
    Scratch(Vec<NodeId>),
}

impl Deref for NeighborsRef<'_> {
    type Target = [NodeId];

    fn deref(&self) -> &[NodeId] {
        match &self.0 {
            NbRepr::Slice(s) => s,
            NbRepr::Scratch(v) => v,
        }
    }
}

impl Drop for NeighborsRef<'_> {
    fn drop(&mut self) {
        if let NbRepr::Scratch(v) = &mut self.0 {
            let v = std::mem::take(v);
            TARGET_SCRATCH.with(|p| p.borrow_mut().push(v));
        }
    }
}

impl std::fmt::Debug for NeighborsRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

impl PartialEq<&[NodeId]> for NeighborsRef<'_> {
    fn eq(&self, other: &&[NodeId]) -> bool {
        &**self == *other
    }
}

impl<const N: usize> PartialEq<&[NodeId; N]> for NeighborsRef<'_> {
    fn eq(&self, other: &&[NodeId; N]) -> bool {
        **self == other[..]
    }
}

/// A node's weight list: a borrowed slice, a decoded scratch buffer, or
/// materialized `1`s on the unit-weight fast path. Derefs to `[Weight]`.
pub struct WeightsRef<'a>(WtRepr<'a>);

enum WtRepr<'a> {
    Slice(&'a [Weight]),
    Scratch(Vec<Weight>),
}

impl Deref for WeightsRef<'_> {
    type Target = [Weight];

    fn deref(&self) -> &[Weight] {
        match &self.0 {
            WtRepr::Slice(s) => s,
            WtRepr::Scratch(v) => v,
        }
    }
}

impl Drop for WeightsRef<'_> {
    fn drop(&mut self) {
        if let WtRepr::Scratch(v) = &mut self.0 {
            let v = std::mem::take(v);
            WEIGHT_SCRATCH.with(|p| p.borrow_mut().push(v));
        }
    }
}

impl std::fmt::Debug for WeightsRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

impl PartialEq<&[Weight]> for WeightsRef<'_> {
    fn eq(&self, other: &&[Weight]) -> bool {
        &**self == *other
    }
}

impl<const N: usize> PartialEq<&[Weight; N]> for WeightsRef<'_> {
    fn eq(&self, other: &&[Weight; N]) -> bool {
        **self == other[..]
    }
}

/// Iterator over one node's `(target, weight)` pairs; allocation-free on
/// both tiers.
pub enum EdgeIter<'a> {
    /// Zips the raw target/weight slices.
    Raw {
        /// The node's targets.
        targets: &'a [NodeId],
        /// The node's weights, parallel to `targets`.
        weights: &'a [Weight],
        /// Next edge index.
        i: usize,
    },
    /// Streams varint decodes.
    Compressed(CompressedEdges<'a>),
}

impl Iterator for EdgeIter<'_> {
    type Item = (NodeId, Weight);

    #[inline]
    fn next(&mut self) -> Option<(NodeId, Weight)> {
        match self {
            EdgeIter::Raw { targets, weights, i } => {
                let out = targets.get(*i).map(|&t| (t, weights[*i]));
                *i += 1;
                out
            }
            EdgeIter::Compressed(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            EdgeIter::Raw { targets, i, .. } => targets.len().saturating_sub(*i),
            EdgeIter::Compressed(it) => it.len(),
        };
        (n, Some(n))
    }

    // Hoists the tier dispatch out of the per-edge loop: `for_each`
    // lowers to `fold`, so consumers driving whole blocks pay the match
    // once per node instead of once per edge.
    fn fold<B, F>(self, init: B, mut f: F) -> B
    where
        F: FnMut(B, Self::Item) -> B,
    {
        match self {
            EdgeIter::Raw { targets, weights, i } => targets[i..]
                .iter()
                .zip(&weights[i..])
                .fold(init, |acc, (&t, &w)| f(acc, (t, w))),
            EdgeIter::Compressed(it) => it.fold(init, f),
        }
    }
}

impl ExactSizeIterator for EdgeIter<'_> {}

/// Iterator over one node's targets only (see [`GraphStore::targets`]);
/// allocation-free on both tiers, weight bytes untouched.
pub enum TargetIter<'a> {
    /// Walks the raw target slice.
    Raw(std::slice::Iter<'a, NodeId>),
    /// Streams varint target-delta decodes.
    Compressed(CompressedTargets<'a>),
}

impl Iterator for TargetIter<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        match self {
            TargetIter::Raw(it) => it.next().copied(),
            TargetIter::Compressed(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            TargetIter::Raw(it) => it.size_hint(),
            TargetIter::Compressed(it) => (it.len(), Some(it.len())),
        }
    }

    // Same rationale as [`EdgeIter::fold`]: one tier dispatch per node.
    fn fold<B, F>(self, init: B, mut f: F) -> B
    where
        F: FnMut(B, Self::Item) -> B,
    {
        match self {
            TargetIter::Raw(it) => it.fold(init, |acc, &t| f(acc, t)),
            TargetIter::Compressed(it) => it.fold(init, f),
        }
    }
}

impl ExactSizeIterator for TargetIter<'_> {}

impl GraphStore {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        match self {
            GraphStore::Raw { offsets, .. } => offsets.len() - 1,
            GraphStore::Compressed(c) => c.num_nodes(),
        }
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        match self {
            GraphStore::Raw { targets, .. } => targets.len(),
            GraphStore::Compressed(c) => c.num_edges(),
        }
    }

    /// `true` on the compressed tier.
    pub fn is_compressed(&self) -> bool {
        matches!(self, GraphStore::Compressed(_))
    }

    fn edge_range(&self, offsets: &[u64], u: NodeId) -> (usize, usize) {
        let u = u as usize;
        assert!(u + 1 < offsets.len(), "node {u} out of range");
        (offsets[u] as usize, offsets[u + 1] as usize)
    }

    /// Out-degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: NodeId) -> usize {
        match self {
            GraphStore::Raw { offsets, .. } => {
                let (s, e) = self.edge_range(offsets, u);
                e - s
            }
            GraphStore::Compressed(c) => c.degree(u),
        }
    }

    /// Neighbors of `u`, sorted ascending — a borrowed slice (raw) or a
    /// per-thread scratch decode (compressed).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: NodeId) -> NeighborsRef<'_> {
        match self {
            GraphStore::Raw { offsets, targets, .. } => {
                let (s, e) = self.edge_range(offsets, u);
                NeighborsRef(NbRepr::Slice(&targets[s..e]))
            }
            GraphStore::Compressed(c) => {
                let mut buf = take_target_buf();
                c.decode_into(u, &mut buf, None);
                NeighborsRef(NbRepr::Scratch(buf))
            }
        }
    }

    /// Weights of `u`'s out-edges, parallel to [`GraphStore::neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn edge_weights(&self, u: NodeId) -> WeightsRef<'_> {
        match self {
            GraphStore::Raw { offsets, weights, .. } => {
                let (s, e) = self.edge_range(offsets, u);
                WeightsRef(WtRepr::Slice(&weights[s..e]))
            }
            GraphStore::Compressed(c) => {
                let mut buf = take_weight_buf();
                buf.clear();
                buf.extend(c.edges(u).map(|(_, w)| w));
                WeightsRef(WtRepr::Scratch(buf))
            }
        }
    }

    /// Iterates `(target, weight)` pairs of `u`'s out-edges.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn edges(&self, u: NodeId) -> EdgeIter<'_> {
        match self {
            GraphStore::Raw { offsets, targets, weights } => {
                let (s, e) = self.edge_range(offsets, u);
                EdgeIter::Raw {
                    targets: &targets[s..e],
                    weights: &weights[s..e],
                    i: 0,
                }
            }
            GraphStore::Compressed(c) => EdgeIter::Compressed(c.edges(u)),
        }
    }

    /// Iterates just the targets of `u`'s out-edges. Weight-blind
    /// algorithms should prefer this over [`GraphStore::edges`]: on the
    /// compressed tier it decodes only the target-delta run and never
    /// touches the weight bytes.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn targets(&self, u: NodeId) -> TargetIter<'_> {
        match self {
            GraphStore::Raw { offsets, targets, .. } => {
                let (s, e) = self.edge_range(offsets, u);
                TargetIter::Raw(targets[s..e].iter())
            }
            GraphStore::Compressed(c) => TargetIter::Compressed(c.targets(u)),
        }
    }

    /// Sum of `u`'s edge weights. Unit-weight compressed graphs answer
    /// straight from the degree.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn weighted_degree(&self, u: NodeId) -> u64 {
        match self {
            GraphStore::Raw { offsets, weights, .. } => {
                let (s, e) = self.edge_range(offsets, u);
                weights[s..e].iter().sum()
            }
            GraphStore::Compressed(c) => {
                if c.unit_weights() {
                    c.degree(u) as u64
                } else {
                    c.edges(u).map(|(_, w)| w).sum()
                }
            }
        }
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> u64 {
        match self {
            GraphStore::Raw { weights, .. } => weights.iter().sum(),
            GraphStore::Compressed(c) => c.total_weight(),
        }
    }

    /// This store re-encoded on the compressed tier (a clone if already
    /// compressed).
    pub fn compressed(&self) -> GraphStore {
        match self {
            GraphStore::Raw { offsets, targets, weights } => GraphStore::Compressed(
                CompressedGraph::from_csr_slices(offsets, targets, weights),
            ),
            GraphStore::Compressed(c) => GraphStore::Compressed(c.clone()),
        }
    }

    /// This store re-materialized on the raw tier (a clone if already
    /// raw). Compressed blocks decode in sorted order.
    pub fn decompressed(&self) -> GraphStore {
        match self {
            GraphStore::Raw { offsets, targets, weights } => GraphStore::Raw {
                offsets: offsets.clone(),
                targets: targets.clone(),
                weights: weights.clone(),
            },
            GraphStore::Compressed(c) => {
                let n = c.num_nodes();
                let mut offsets = Vec::with_capacity(n + 1);
                let mut targets = Vec::with_capacity(c.num_edges());
                let mut weights = Vec::with_capacity(c.num_edges());
                offsets.push(0u64);
                for u in 0..n as NodeId {
                    for (t, w) in c.edges(u) {
                        targets.push(t);
                        weights.push(w);
                    }
                    offsets.push(targets.len() as u64);
                }
                GraphStore::Raw { offsets, targets, weights }
            }
        }
    }

    /// Per-component heap bytes (see [`SizeBreakdown`]). Uses vector
    /// *capacities*, so over-allocation is visible, and includes the
    /// store's own in-struct bytes.
    pub fn size_breakdown(&self) -> SizeBreakdown {
        let struct_bytes = std::mem::size_of::<GraphStore>();
        match self {
            GraphStore::Raw { offsets, targets, weights } => SizeBreakdown {
                offsets: offsets.capacity() * std::mem::size_of::<u64>(),
                targets: targets.capacity() * std::mem::size_of::<NodeId>(),
                weights: weights.capacity() * std::mem::size_of::<Weight>(),
                struct_bytes,
            },
            GraphStore::Compressed(c) => SizeBreakdown {
                offsets: c.index_bytes(),
                targets: c.data_bytes() - c.weight_data_bytes(),
                weights: c.weight_data_bytes(),
                struct_bytes,
            },
        }
    }

    /// Total in-memory bytes ([`SizeBreakdown::total`]).
    pub fn size_bytes(&self) -> usize {
        self.size_breakdown().total()
    }
}

impl std::fmt::Debug for GraphStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphStore")
            .field("compressed", &self.is_compressed())
            .field("num_nodes", &self.num_nodes())
            .field("num_edges", &self.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw_triangle() -> GraphStore {
        GraphStore::Raw {
            offsets: vec![0, 2, 4, 6],
            targets: vec![1, 2, 0, 2, 0, 1],
            weights: vec![3, 4, 3, 5, 4, 5],
        }
    }

    #[test]
    fn tiers_agree() {
        let raw = raw_triangle();
        let comp = raw.compressed();
        assert!(comp.is_compressed());
        assert_eq!(raw.num_nodes(), comp.num_nodes());
        assert_eq!(raw.num_edges(), comp.num_edges());
        assert_eq!(raw.total_weight(), comp.total_weight());
        for u in 0..3 {
            assert_eq!(raw.degree(u), comp.degree(u));
            assert_eq!(&raw.neighbors(u)[..], &comp.neighbors(u)[..]);
            assert_eq!(&raw.edge_weights(u)[..], &comp.edge_weights(u)[..]);
            assert_eq!(
                raw.edges(u).collect::<Vec<_>>(),
                comp.edges(u).collect::<Vec<_>>()
            );
            assert_eq!(raw.weighted_degree(u), comp.weighted_degree(u));
        }
        assert_eq!(comp.decompressed(), raw);
    }

    #[test]
    fn scratch_guards_nest() {
        let comp = raw_triangle().compressed();
        let a = comp.neighbors(0);
        let b = comp.neighbors(1);
        assert_eq!(a, &[1, 2]);
        assert_eq!(b, &[0, 2]);
        drop(a);
        let c = comp.neighbors(2);
        assert_eq!(c, &[0, 1]);
        assert_eq!(b, &[0, 2]); // untouched by the pool reuse
    }

    #[test]
    fn breakdown_components_sum() {
        for store in [raw_triangle(), raw_triangle().compressed()] {
            let b = store.size_breakdown();
            assert_eq!(b.total(), store.size_bytes());
            assert!(b.struct_bytes > 0);
        }
    }

    #[test]
    fn unit_weight_compression_beats_raw() {
        let n = 512usize;
        let mut offsets = vec![0u64];
        let mut targets = Vec::new();
        for u in 0..n {
            for k in 1..=4 {
                targets.push(((u + k) % n) as NodeId);
            }
            offsets.push(targets.len() as u64);
        }
        let weights = vec![1u64; targets.len()];
        let raw = GraphStore::Raw { offsets, targets, weights };
        let comp = raw.compressed();
        let raw_b = raw.size_bytes();
        let comp_b = comp.size_bytes();
        assert!(
            comp_b * 2 < raw_b,
            "compressed {comp_b}B should be far under raw {raw_b}B"
        );
    }
}
