//! In-memory graph representations and synthetic graph generators.
//!
//! This crate provides the graph substrate used throughout the Kimbap
//! reproduction: a compressed-sparse-row ([`Graph`]) representation with
//! optional edge weights, an edge-list [`GraphBuilder`] that normalizes input
//! (sorting, deduplication, symmetrization), generators for the graph shapes
//! the paper evaluates ([`gen`]), and summary statistics ([`stats`]).
//!
//! The paper evaluates four input graphs: a high-diameter road network
//! (road-europe) and three power-law graphs (friendster, clueweb12, wdc12).
//! Those datasets are multi-terabyte downloads, so this reproduction
//! substitutes synthetic analogs with the same *shapes*: 2-D grid graphs for
//! the road network and R-MAT graphs for the power-law inputs (see
//! `DESIGN.md` §2).
//!
//! # Example
//!
//! ```
//! use kimbap_graph::{gen, Graph};
//!
//! let g: Graph = gen::rmat(10, 8, 42); // 2^10 nodes, ~8 * 2^10 directed edges
//! assert!(g.num_nodes() <= 1 << 10);
//! let hub = (0..g.num_nodes() as u32).max_by_key(|&n| g.degree(n)).unwrap();
//! assert!(g.degree(hub) > 8); // power-law: hubs exist
//! ```

pub mod builder;
pub mod compressed;
pub mod csr;
pub mod gen;
pub mod io;
pub mod stats;
pub mod store;

pub use builder::GraphBuilder;
pub use compressed::CompressedGraph;
pub use csr::{Graph, NodeId, Weight};
pub use stats::GraphStats;
pub use store::{GraphStore, SizeBreakdown};
