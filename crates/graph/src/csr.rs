//! Compressed-sparse-row graph representation.

use crate::store::{EdgeIter, GraphStore, NeighborsRef, SizeBreakdown, WeightsRef};
use std::fmt;

/// Identifier of a node in a graph. Node ids are dense: a graph with `n`
/// nodes uses ids `0..n`.
pub type NodeId = u32;

/// Weight of an edge.
///
/// Weights are integral: the paper's workloads either ignore weights
/// (connected components, MIS), use unit weights that aggregate to integer
/// sums under coarsening (Louvain/Leiden), or compare weights for minima
/// (Boruvka). Integer weights keep reductions exact and deterministic.
pub type Weight = u64;

/// An immutable directed graph in compressed-sparse-row form, with one
/// weight per edge.
///
/// The adjacency lives in a [`GraphStore`]: either raw CSR arrays or a
/// delta+varint compressed tier ([`Graph::compress`]) — every accessor
/// works identically on both.
///
/// All algorithms in this workspace treat the graph as *symmetric* (every
/// edge has its reverse present); [`crate::GraphBuilder`] enforces that when
/// asked. `Graph` itself does not require symmetry.
///
/// # Example
///
/// ```
/// use kimbap_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 1, 5);
/// b.add_edge(1, 2, 7);
/// let g = b.symmetric(true).build();
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 4); // both directions
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    store: GraphStore,
}

impl Graph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// Prefer [`crate::GraphBuilder`] unless you already hold CSR data.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent: `offsets` must be non-empty and
    /// non-decreasing, its last element must equal `targets.len()`,
    /// `weights.len()` must equal `targets.len()`, and every target must be a
    /// valid node id.
    pub fn from_csr(offsets: Vec<u64>, targets: Vec<NodeId>, weights: Vec<Weight>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len() as u64,
            "last offset must equal the number of edges"
        );
        assert_eq!(weights.len(), targets.len(), "one weight per edge");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        let n = (offsets.len() - 1) as u64;
        assert!(
            targets.iter().all(|&t| (t as u64) < n),
            "edge target out of range"
        );
        Graph {
            store: GraphStore::Raw {
                offsets,
                targets,
                weights,
            },
        }
    }

    /// Wraps an already-validated store.
    pub fn from_store(store: GraphStore) -> Self {
        Graph { store }
    }

    /// The backing store.
    pub fn store(&self) -> &GraphStore {
        &self.store
    }

    /// This graph re-encoded on the compressed tier. Neighbor blocks are
    /// sorted during encoding, so an unsorted-within-source raw graph will
    /// come back with each node's edges sorted.
    pub fn compress(&self) -> Graph {
        Graph {
            store: self.store.compressed(),
        }
    }

    /// This graph re-materialized on the raw tier.
    pub fn decompress(&self) -> Graph {
        Graph {
            store: self.store.decompressed(),
        }
    }

    /// `true` if backed by the compressed tier.
    pub fn is_compressed(&self) -> bool {
        self.store.is_compressed()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.store.num_nodes()
    }

    /// Number of *directed* edges. A symmetric graph stores both directions
    /// of each undirected edge, so this is twice the undirected edge count.
    pub fn num_edges(&self) -> usize {
        self.store.num_edges()
    }

    /// Out-degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: NodeId) -> usize {
        self.store.degree(u)
    }

    /// Neighbors of `u`, sorted ascending. Borrowed on the raw tier;
    /// decoded into a per-thread scratch buffer on the compressed tier.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: NodeId) -> NeighborsRef<'_> {
        self.store.neighbors(u)
    }

    /// Weights of `u`'s out-edges, parallel to [`Graph::neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn edge_weights(&self, u: NodeId) -> WeightsRef<'_> {
        self.store.edge_weights(u)
    }

    /// Iterates `(neighbor, weight)` pairs of `u`'s out-edges.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn edges(&self, u: NodeId) -> EdgeIter<'_> {
        self.store.edges(u)
    }

    /// Sum of the weights of `u`'s out-edges (the *weighted degree* used by
    /// modularity computations).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn weighted_degree(&self, u: NodeId) -> u64 {
        self.store.weighted_degree(u)
    }

    /// Total weight of all directed edges.
    pub fn total_weight(&self) -> u64 {
        self.store.total_weight()
    }

    /// Maximum out-degree over all nodes, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes() as NodeId)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Iterates all node ids `0..num_nodes()`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_nodes() as NodeId
    }

    /// Iterates every directed edge as `(src, dst, weight)`.
    pub fn all_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.nodes()
            .flat_map(move |u| self.edges(u).map(move |(v, w)| (u, v, w)))
    }

    /// Returns `true` if every edge `(u, v, w)` has a reverse `(v, u, w)`.
    pub fn is_symmetric(&self) -> bool {
        self.all_edges()
            .all(|(u, v, w)| self.edges(v).any(|(t, tw)| t == u && tw == w))
    }

    /// In-memory size in bytes, including per-component allocations and
    /// struct overhead (see [`Graph::size_breakdown`]).
    pub fn size_bytes(&self) -> usize {
        self.store.size_bytes()
    }

    /// Per-component byte accounting of the backing store.
    pub fn size_breakdown(&self) -> SizeBreakdown {
        self.store.size_breakdown()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("num_nodes", &self.num_nodes())
            .field("num_edges", &self.num_edges())
            .field("compressed", &self.is_compressed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_csr(
            vec![0, 2, 4, 6],
            vec![1, 2, 0, 2, 0, 1],
            vec![1, 1, 1, 1, 1, 1],
        )
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(2), &[0, 1]);
        assert_eq!(g.weighted_degree(0), 2);
        assert_eq!(g.total_weight(), 6);
        assert_eq!(g.max_degree(), 2);
        assert!(g.is_symmetric());
    }

    #[test]
    fn compressed_tier_matches_raw() {
        let g = triangle();
        let c = g.compress();
        assert!(c.is_compressed());
        assert_eq!(g.num_edges(), c.num_edges());
        for u in g.nodes() {
            assert_eq!(&g.neighbors(u)[..], &c.neighbors(u)[..]);
            assert_eq!(&g.edge_weights(u)[..], &c.edge_weights(u)[..]);
        }
        assert_eq!(c.decompress(), g);
        assert!(c.size_bytes() < g.size_bytes());
    }

    #[test]
    fn size_bytes_counts_offsets_and_struct() {
        let g = Graph::from_csr(vec![0], vec![], vec![]);
        let b = g.size_breakdown();
        // Even an empty graph holds the one-entry offsets array plus the
        // container itself.
        assert!(b.offsets >= 8);
        assert!(b.struct_bytes > 0);
        assert_eq!(g.size_bytes(), b.total());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_csr(vec![0], vec![], vec![]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.is_symmetric());
    }

    #[test]
    fn isolated_nodes() {
        let g = Graph::from_csr(vec![0, 0, 0, 1], vec![0], vec![9]);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.edges(2).collect::<Vec<_>>(), vec![(0, 9)]);
        assert!(!g.is_symmetric());
    }

    #[test]
    fn all_edges_enumerates_in_csr_order() {
        let g = triangle();
        let edges: Vec<_> = g.all_edges().collect();
        assert_eq!(edges.len(), 6);
        assert_eq!(edges[0], (0, 1, 1));
        assert_eq!(edges[5], (2, 1, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn degree_out_of_range_panics() {
        triangle().degree(3);
    }

    #[test]
    #[should_panic(expected = "edge target out of range")]
    fn bad_target_panics() {
        Graph::from_csr(vec![0, 1], vec![5], vec![1]);
    }

    #[test]
    #[should_panic(expected = "last offset")]
    fn inconsistent_offsets_panic() {
        Graph::from_csr(vec![0, 2], vec![0], vec![1]);
    }
}
