//! Compressed-sparse-row graph representation.

use std::fmt;

/// Identifier of a node in a graph. Node ids are dense: a graph with `n`
/// nodes uses ids `0..n`.
pub type NodeId = u32;

/// Weight of an edge.
///
/// Weights are integral: the paper's workloads either ignore weights
/// (connected components, MIS), use unit weights that aggregate to integer
/// sums under coarsening (Louvain/Leiden), or compare weights for minima
/// (Boruvka). Integer weights keep reductions exact and deterministic.
pub type Weight = u64;

/// An immutable directed graph in compressed-sparse-row form, with one
/// weight per edge.
///
/// All algorithms in this workspace treat the graph as *symmetric* (every
/// edge has its reverse present); [`crate::GraphBuilder`] enforces that when
/// asked. `Graph` itself does not require symmetry.
///
/// # Example
///
/// ```
/// use kimbap_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 1, 5);
/// b.add_edge(1, 2, 7);
/// let g = b.symmetric(true).build();
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 4); // both directions
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[u]..offsets[u+1]` is the range of `u`'s out-edges.
    offsets: Vec<u64>,
    /// Destination of each edge, grouped by source, sorted within a source.
    targets: Vec<NodeId>,
    /// Weight of each edge, parallel to `targets`.
    weights: Vec<Weight>,
}

impl Graph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// Prefer [`crate::GraphBuilder`] unless you already hold CSR data.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent: `offsets` must be non-empty and
    /// non-decreasing, its last element must equal `targets.len()`,
    /// `weights.len()` must equal `targets.len()`, and every target must be a
    /// valid node id.
    pub fn from_csr(offsets: Vec<u64>, targets: Vec<NodeId>, weights: Vec<Weight>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len() as u64,
            "last offset must equal the number of edges"
        );
        assert_eq!(weights.len(), targets.len(), "one weight per edge");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        let n = (offsets.len() - 1) as u64;
        assert!(
            targets.iter().all(|&t| (t as u64) < n),
            "edge target out of range"
        );
        Graph {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of *directed* edges. A symmetric graph stores both directions
    /// of each undirected edge, so this is twice the undirected edge count.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: NodeId) -> usize {
        let (s, e) = self.edge_range(u);
        e - s
    }

    /// Neighbors of `u`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let (s, e) = self.edge_range(u);
        &self.targets[s..e]
    }

    /// Weights of `u`'s out-edges, parallel to [`Graph::neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn edge_weights(&self, u: NodeId) -> &[Weight] {
        let (s, e) = self.edge_range(u);
        &self.weights[s..e]
    }

    /// Iterates `(neighbor, weight)` pairs of `u`'s out-edges.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn edges(&self, u: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        self.neighbors(u)
            .iter()
            .copied()
            .zip(self.edge_weights(u).iter().copied())
    }

    /// Sum of the weights of `u`'s out-edges (the *weighted degree* used by
    /// modularity computations).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn weighted_degree(&self, u: NodeId) -> u64 {
        self.edge_weights(u).iter().sum()
    }

    /// Total weight of all directed edges.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// Maximum out-degree over all nodes, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes() as NodeId)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Iterates all node ids `0..num_nodes()`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_nodes() as NodeId
    }

    /// Iterates every directed edge as `(src, dst, weight)`.
    pub fn all_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.nodes()
            .flat_map(move |u| self.edges(u).map(move |(v, w)| (u, v, w)))
    }

    /// Returns `true` if every edge `(u, v, w)` has a reverse `(v, u, w)`.
    pub fn is_symmetric(&self) -> bool {
        self.all_edges().all(|(u, v, w)| {
            self.edges(v).any(|(t, tw)| t == u && tw == w)
        })
    }

    /// Approximate in-memory size in bytes (offsets + targets + weights).
    pub fn size_bytes(&self) -> usize {
        self.offsets.len() * 8 + self.targets.len() * 4 + self.weights.len() * 8
    }

    /// The raw CSR offsets array (length `num_nodes() + 1`).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw CSR targets array.
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    fn edge_range(&self, u: NodeId) -> (usize, usize) {
        let u = u as usize;
        assert!(u < self.num_nodes(), "node {u} out of range");
        (self.offsets[u] as usize, self.offsets[u + 1] as usize)
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("num_nodes", &self.num_nodes())
            .field("num_edges", &self.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_csr(
            vec![0, 2, 4, 6],
            vec![1, 2, 0, 2, 0, 1],
            vec![1, 1, 1, 1, 1, 1],
        )
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(2), &[0, 1]);
        assert_eq!(g.weighted_degree(0), 2);
        assert_eq!(g.total_weight(), 6);
        assert_eq!(g.max_degree(), 2);
        assert!(g.is_symmetric());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_csr(vec![0], vec![], vec![]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.is_symmetric());
    }

    #[test]
    fn isolated_nodes() {
        let g = Graph::from_csr(vec![0, 0, 0, 1], vec![0], vec![9]);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.edges(2).collect::<Vec<_>>(), vec![(0, 9)]);
        assert!(!g.is_symmetric());
    }

    #[test]
    fn all_edges_enumerates_in_csr_order() {
        let g = triangle();
        let edges: Vec<_> = g.all_edges().collect();
        assert_eq!(edges.len(), 6);
        assert_eq!(edges[0], (0, 1, 1));
        assert_eq!(edges[5], (2, 1, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn degree_out_of_range_panics() {
        triangle().degree(3);
    }

    #[test]
    #[should_panic(expected = "edge target out of range")]
    fn bad_target_panics() {
        Graph::from_csr(vec![0, 1], vec![5], vec![1]);
    }

    #[test]
    #[should_panic(expected = "last offset")]
    fn inconsistent_offsets_panic() {
        Graph::from_csr(vec![0, 2], vec![0], vec![1]);
    }
}
