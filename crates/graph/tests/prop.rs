//! Property-based tests for graph construction invariants.

use kimbap_graph::builder::{from_edges, MergePolicy};
use kimbap_graph::{gen, GraphBuilder};
use proptest::prelude::*;

fn edge_list() -> impl Strategy<Value = Vec<(u32, u32, u64)>> {
    prop::collection::vec((0u32..64, 0u32..64, 1u64..100), 0..200)
}

proptest! {
    #[test]
    fn built_graphs_are_symmetric(edges in edge_list()) {
        let g = from_edges(edges);
        prop_assert!(g.is_symmetric());
    }

    #[test]
    fn neighbors_sorted_and_unique(edges in edge_list()) {
        let g = from_edges(edges);
        for u in g.nodes() {
            let ns = g.neighbors(u);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn total_weight_preserved_by_sum_merge(edges in edge_list()) {
        // Without symmetrization, SumWeights merging preserves total weight.
        let expected: u64 = edges.iter().map(|&(_, _, w)| w).sum();
        let mut b = GraphBuilder::new();
        for (s, d, w) in &edges {
            b.add_edge(*s, *d, *w);
        }
        let g = b.build();
        prop_assert_eq!(g.total_weight(), expected);
    }

    #[test]
    fn min_merge_keeps_minimum(edges in edge_list()) {
        let mut b = GraphBuilder::new();
        for (s, d, w) in &edges {
            b.add_edge(*s, *d, *w);
        }
        b.merge_policy(MergePolicy::MinWeight);
        let g = b.build();
        for &(s, d, w) in &edges {
            let stored = g
                .edges(s)
                .find(|&(t, _)| t == d)
                .map(|(_, sw)| sw)
                .expect("edge present");
            prop_assert!(stored <= w);
        }
    }

    #[test]
    fn degree_sums_to_edge_count(edges in edge_list()) {
        let g = from_edges(edges);
        let sum: usize = g.nodes().map(|u| g.degree(u)).sum();
        prop_assert_eq!(sum, g.num_edges());
    }

    #[test]
    fn rmat_edge_bound(scale in 4u32..9, ef in 1usize..8, seed in 0u64..50) {
        let g = gen::rmat(scale, ef, seed);
        // Symmetrized and deduped: at most 2 * nominal edges.
        prop_assert!(g.num_edges() <= 2 * ef * (1 << scale));
        prop_assert!(g.is_symmetric());
    }

    // Differential: the compressed tier must answer every accessor exactly
    // like raw CSR, on arbitrary graphs (degree-0 nodes included — ids up
    // to 63 with as few as 0 edges leave isolated tails).
    #[test]
    fn compressed_tier_is_indistinguishable(edges in edge_list()) {
        let g = from_edges(edges);
        let c = g.compress();
        prop_assert!(c.is_compressed());
        prop_assert_eq!(g.num_nodes(), c.num_nodes());
        prop_assert_eq!(g.num_edges(), c.num_edges());
        prop_assert_eq!(g.total_weight(), c.total_weight());
        prop_assert_eq!(g.max_degree(), c.max_degree());
        for u in g.nodes() {
            prop_assert_eq!(g.degree(u), c.degree(u));
            prop_assert_eq!(&g.neighbors(u)[..], &c.neighbors(u)[..]);
            prop_assert_eq!(&g.edge_weights(u)[..], &c.edge_weights(u)[..]);
            prop_assert_eq!(
                g.edges(u).collect::<Vec<_>>(),
                c.edges(u).collect::<Vec<_>>()
            );
            prop_assert_eq!(g.weighted_degree(u), c.weighted_degree(u));
        }
        prop_assert_eq!(c.decompress(), g);
    }

    // Weight extremes: u64::MAX weights and a max-degree hub (node 0
    // linked to everyone) survive the varint roundtrip.
    #[test]
    fn compressed_survives_hubs_and_weight_extremes(
        n in 2u32..80,
        extreme in prop::collection::vec(prop::bool::ANY, 1..80),
    ) {
        let mut b = GraphBuilder::new();
        for v in 1..n {
            let w = if extreme[(v as usize - 1) % extreme.len()] {
                u64::MAX >> 10 // huge, but total_weight must not overflow
            } else {
                1
            };
            b.add_edge(0, v, w);
        }
        let g = b.symmetric(true).build();
        let c = g.compress();
        prop_assert_eq!(g.max_degree(), n as usize - 1);
        for u in g.nodes() {
            prop_assert_eq!(
                g.edges(u).collect::<Vec<_>>(),
                c.edges(u).collect::<Vec<_>>()
            );
        }
        prop_assert_eq!(c.total_weight(), g.total_weight());
    }
}
