//! The distributed, concurrent node-property map — the paper's core
//! contribution (§3.1, §4).
//!
//! A node-property map ([`Npm`]) stores `(node id, property)` pairs across
//! the hosts of a cluster. Programmers see the shared-memory API of the
//! paper's Fig. 2 — [`NodePropMap::read`], [`NodePropMap::reduce`],
//! [`NodePropMap::set`] — while the compiler/runtime drive the low-level
//! API of Fig. 5 ([`NodePropMap::request`], [`NodePropMap::request_sync`],
//! [`NodePropMap::reduce_sync`], [`NodePropMap::broadcast_sync`],
//! [`NodePropMap::pin_mirrors`], …).
//!
//! The default backend applies all three of the paper's optimizations:
//!
//! * **GAR** (graph-partition-aware representation): each host owns the
//!   properties of its master nodes in a dense vector addressed by O(1)
//!   ownership arithmetic; remote properties live in a sorted key/value
//!   vector pair looked up by binary search, materialized at request-sync
//!   and dropped after reduce-sync (Fig. 6).
//! * **CF** (conflict-free reductions): during reduce-compute each pool
//!   thread reduces into its own thread-local map; during reduce-sync
//!   threads combine all thread-local maps over disjoint key ranges
//!   (Fig. 7), so no two threads ever write the same entry.
//! * **SGR** (scatter-gather-reduce): one message per host pair per round;
//!   partial values are reduced onto the owner's canonical values.
//!
//! [`Variant`] selects the ablation backends of §6.4: `SgrOnly` (a single
//! shared sharded-lock map instead of thread-local maps, modulo-hashed key
//! distribution, every read through the cache) and `SgrCf` (thread-local
//! maps but still no partition-aware representation). The memcached-like
//! `MC` variant lives in `kimbap-baselines`.
//!
//! # Example
//!
//! ```
//! use kimbap_comm::Cluster;
//! use kimbap_dist::{partition, Policy};
//! use kimbap_graph::gen;
//! use kimbap_npm::{Min, NodePropMap, Npm};
//!
//! let g = gen::grid_road(4, 4, 0);
//! let parts = partition(&g, Policy::EdgeCutBlocked, 2);
//! let results = Cluster::new(2).run(|ctx| {
//!     let dg = &parts[ctx.host()];
//!     let mut npm: Npm<u64, Min> = Npm::new(dg, ctx, Min);
//!     // Initialize: every node's property is its own id.
//!     for m in dg.master_nodes() {
//!         let gid = dg.local_to_global(m);
//!         npm.set(gid, gid as u64);
//!     }
//!     // Reduce node 0's property from every host, then sync.
//!     npm.reduce(0, 0, ctx.host() as u64);
//!     npm.reduce_sync(ctx);
//!     npm.request(0);
//!     npm.request_sync(ctx);
//!     npm.read(0)
//! });
//! assert!(results.iter().all(|&v| v == 0));
//! ```

pub mod bitset;
pub mod map;
pub mod ops;
mod partial;
pub mod reducer;
pub mod table;
pub mod value;

pub use bitset::ConcurrentBitset;
pub use map::{ChangedKeys, MapSnapshot, MirrorSync, NodePropMap, Npm, NpmReadStats, Variant};
pub use ops::{DynReduceOp, Max, Min, Or, ReduceOp, Sum};
pub use reducer::{BoolReducer, MinReducer, SumReducer};
pub use table::{MapLayout, ValueTable, WordValue};
pub use value::PropValue;
