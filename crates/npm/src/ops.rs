//! Reduction operators.
//!
//! The paper's `Reduce(key, value, op)` takes an associative, commutative
//! combining function (§3.1). Here the operator is fixed per map at
//! construction time, which is what lets partial values serialize across
//! hosts and lets pinned-mirror bookkeeping know the identity value.

use crate::value::PropValue;

/// An associative, commutative reduction with an identity element.
///
/// `combine` must satisfy `combine(a, identity()) == a`,
/// `combine(a, b) == combine(b, a)`, and associativity — the runtime
/// reduces partial values in arbitrary order across threads and hosts.
pub trait ReduceOp<T>: Copy + Send + Sync + 'static {
    /// The identity element of the reduction.
    fn identity(&self) -> T;
    /// Combines two values.
    fn combine(&self, a: T, b: T) -> T;
}

/// Minimum reduction. Identity is the type's maximum value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Min;

/// Maximum reduction. Identity is the type's minimum value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Max;

/// Sum reduction. Identity is zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Sum;

/// Logical-OR reduction over booleans. Identity is `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Or;

/// Values with ordered extremes, enabling [`Min`] / [`Max`].
pub trait Bounded: PropValue + Ord {
    /// Largest representable value.
    const MAX_VALUE: Self;
    /// Smallest representable value.
    const MIN_VALUE: Self;
}

macro_rules! bounded_int {
    ($($t:ty),*) => {$(
        impl Bounded for $t {
            const MAX_VALUE: Self = <$t>::MAX;
            const MIN_VALUE: Self = <$t>::MIN;
        }
    )*};
}
bounded_int!(u8, u16, u32, u64, i64);

impl<A: Bounded, B: Bounded> Bounded for (A, B) {
    const MAX_VALUE: Self = (A::MAX_VALUE, B::MAX_VALUE);
    const MIN_VALUE: Self = (A::MIN_VALUE, B::MIN_VALUE);
}

impl<A: Bounded, B: Bounded, C: Bounded> Bounded for (A, B, C) {
    const MAX_VALUE: Self = (A::MAX_VALUE, B::MAX_VALUE, C::MAX_VALUE);
    const MIN_VALUE: Self = (A::MIN_VALUE, B::MIN_VALUE, C::MIN_VALUE);
}

impl<T: Bounded> ReduceOp<T> for Min {
    #[inline]
    fn identity(&self) -> T {
        T::MAX_VALUE
    }

    #[inline]
    fn combine(&self, a: T, b: T) -> T {
        a.min(b)
    }
}

impl<T: Bounded> ReduceOp<T> for Max {
    #[inline]
    fn identity(&self) -> T {
        T::MIN_VALUE
    }

    #[inline]
    fn combine(&self, a: T, b: T) -> T {
        a.max(b)
    }
}

macro_rules! sum_int {
    ($($t:ty),*) => {$(
        impl ReduceOp<$t> for Sum {
            #[inline]
            fn identity(&self) -> $t {
                0
            }

            #[inline]
            fn combine(&self, a: $t, b: $t) -> $t {
                a.wrapping_add(b)
            }
        }
    )*};
}
sum_int!(u32, u64, i64);

impl ReduceOp<f64> for Sum {
    #[inline]
    fn identity(&self) -> f64 {
        0.0
    }

    #[inline]
    fn combine(&self, a: f64, b: f64) -> f64 {
        a + b
    }
}

impl ReduceOp<bool> for Or {
    #[inline]
    fn identity(&self) -> bool {
        false
    }

    #[inline]
    fn combine(&self, a: bool, b: bool) -> bool {
        a || b
    }
}

/// A reduction operator chosen at runtime over `u64` values — used by the
/// compiler-generated plan interpreter, where the operator comes from the
/// program text rather than the type system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynReduceOp {
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Wrapping sum.
    Sum,
}

impl ReduceOp<u64> for DynReduceOp {
    #[inline]
    fn identity(&self) -> u64 {
        match self {
            DynReduceOp::Min => u64::MAX,
            DynReduceOp::Max => u64::MIN,
            DynReduceOp::Sum => 0,
        }
    }

    #[inline]
    fn combine(&self, a: u64, b: u64) -> u64 {
        match self {
            DynReduceOp::Min => a.min(b),
            DynReduceOp::Max => a.max(b),
            DynReduceOp::Sum => a.wrapping_add(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_laws() {
        assert_eq!(Min.combine(3u64, Min.identity()), 3);
        assert_eq!(Max.combine(3u64, Max.identity()), 3);
        assert_eq!(Min.combine(3u64, 5), 3);
        assert_eq!(Max.combine(3u64, 5), 5);
    }

    #[test]
    fn tuple_min_is_lexicographic() {
        let a = (2u64, 9u32);
        let b = (2u64, 3u32);
        assert_eq!(Min.combine(a, b), b);
        assert_eq!(Min.combine(a, Min.identity()), a);
    }

    #[test]
    fn sum_identity_and_wrap() {
        assert_eq!(Sum.combine(7u64, Sum.identity()), 7);
        assert_eq!(Sum.combine(u64::MAX, 1), 0);
        assert_eq!(Sum.combine(1.5f64, 2.5), 4.0);
    }

    #[test]
    fn or_laws() {
        assert!(!Or.combine(false, Or.identity()));
        assert!(Or.combine(false, true));
    }

    #[test]
    fn dyn_ops() {
        assert_eq!(DynReduceOp::Min.combine(4, 2), 2);
        assert_eq!(DynReduceOp::Max.combine(4, 2), 4);
        assert_eq!(DynReduceOp::Sum.combine(4, 2), 6);
        assert_eq!(DynReduceOp::Min.identity(), u64::MAX);
    }
}
