//! The distributed node-property map implementation (§4 of the paper).

use crate::bitset::ConcurrentBitset;
use crate::ops::ReduceOp;
use crate::partial::{PartialBuf, ThreadOwned};
use crate::table::{MapLayout, ValueTable, WordValue};
use crate::value::PropValue;
use kimbap_comm::wire::{decode_slice, encode_slice, iter_decoded};
use kimbap_comm::HostCtx;
use kimbap_dist::{DistGraph, Ownership};
use kimbap_graph::NodeId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Which of the paper's runtime designs backs a map (§6.4).
///
/// All variants use scatter-gather-reduce (SGR) for distributed reductions;
/// they differ in how in-memory reductions and reads are organized. The
/// memcached variant (`MC`), which lacks even SGR, is a separate type in
/// `kimbap-baselines`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Variant {
    /// SGR only: one shared sharded-lock map per host collects partial
    /// reductions (threads contend on hot keys), keys are distributed by
    /// modulo hash, and *every* read goes through the remote cache or a
    /// hash lookup.
    SgrOnly,
    /// SGR + conflict-free reductions: per-thread local maps during
    /// reduce-compute, combined over disjoint key ranges during
    /// reduce-sync. Keys still modulo-hashed; reads still hash lookups.
    SgrCf,
    /// SGR + CF + the graph-partition-aware representation: key ownership
    /// follows the graph partition, master properties live in a dense
    /// vector, remote properties in a sorted-vector cache. The default.
    #[default]
    SgrCfGar,
}

impl Variant {
    /// `true` if this variant uses conflict-free thread-local reductions.
    pub fn conflict_free(&self) -> bool {
        !matches!(self, Variant::SgrOnly)
    }

    /// `true` if this variant uses the graph-partition-aware
    /// representation.
    pub fn partition_aware(&self) -> bool {
        matches!(self, Variant::SgrCfGar)
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Variant::SgrOnly => "SGR-only",
            Variant::SgrCf => "SGR+CF",
            Variant::SgrCfGar => "SGR+CF+GAR",
        })
    }
}

/// How pinned mirrors are refreshed after a reduce-sync.
///
/// `Broadcast` is the general mechanism. `ResetToIdentity` implements
/// Gluon's structural-invariant optimization (§2.2): under an outgoing
/// edge-cut, mirrors of a push-style operator are never *semantically*
/// read — their cached value only pre-filters redundant reductions — so
/// instead of shipping the master value, each host locally reinitializes
/// mirrors to the reduction identity.
///
/// In Gluon this is a clear win because mirrors accumulate reductions
/// in place and only changed values ship. In Kimbap's node-property map
/// the same trade usually *loses*: identity-valued mirrors disable the
/// redundancy filter, so more distinct keys enter the thread-local maps
/// and the reduce-sync ships more pairs than the broadcast saved. This is
/// why `Broadcast` (plus the temporal invariant of sending only updated
/// values) is the default and what the paper's pinned mirrors do; the
/// option exists to measure that design choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MirrorSync {
    /// Push updated master values to mirrors (the general mechanism).
    #[default]
    Broadcast,
    /// Locally reset mirrors to the reduction identity (OEC push-style
    /// invariant; no communication).
    ResetToIdentity,
}

/// Read-locality counters (the measurement behind §4.2's motivation for
/// GAR: 50–65% of reads hit master properties).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NpmReadStats {
    /// Reads served by this host's own canonical (master) storage.
    pub master_reads: u64,
    /// Reads served by the remote-property cache.
    pub remote_reads: u64,
    /// Reduce calls issued.
    pub reduce_calls: u64,
    /// Keys requested across all request-syncs.
    pub requested_keys: u64,
}

/// The keys whose readable values changed since the last
/// [`NodePropMap::reset_updated`] — the per-round delta behind the engine's
/// frontier (active-set) execution.
///
/// `Tracked` borrows bookkeeping the map maintains anyway: `masters` is the
/// per-master update bitset written by `set`/`reduce_sync` (bit index =
/// master offset in the map's key distribution, which under the
/// partition-aware representation equals the `DistGraph` local id), and
/// `remote` lists the global ids of pinned mirrors whose cached value
/// changed in the last `broadcast_sync`. Together they cover every key
/// whose *readable* value differs from the start of the round.
///
/// `Untracked` means the map cannot vouch for a complete delta — either
/// the backend keeps no per-key bits (non-partition-aware variants), or an
/// untracked mutation (a `request_sync` materialization, `reset_values`,
/// a checkpoint restore) happened inside the window. Callers must then
/// treat every key as potentially changed.
#[derive(Debug, Clone, Copy)]
pub enum ChangedKeys<'a> {
    /// No complete delta is available: assume everything changed.
    Untracked,
    /// The complete set of keys whose readable value changed.
    Tracked {
        /// Per-master update bits; bit index = master offset.
        masters: &'a ConcurrentBitset,
        /// Global ids of pinned mirrors updated by the last broadcast.
        remote: &'a [NodeId],
    },
}

/// The shared-memory node-property map interface (paper Figs. 2 and 5).
///
/// `read`/`reduce`/`set` are the developer API; the remaining methods are
/// the low-level API driven by compiler-generated code. All `*_sync`
/// methods, `pin_mirrors`, and `is_updated` are **collectives**: every host
/// must call them in the same order.
pub trait NodePropMap<T: PropValue>: Send + Sync {
    /// Initializes every master property via `f(global_id)` (the paper's
    /// `Set` loop, e.g. `parent_npm.Set(node, node)` in Fig. 4).
    fn init_masters(&mut self, f: &dyn Fn(NodeId) -> T);

    /// Reads the property of `key`.
    ///
    /// Master properties are always readable. Remote properties must have
    /// been requested (or be pinned mirrors); reads observe the value
    /// materialized by the last `request_sync`/`broadcast_sync`, i.e. BSP
    /// semantics — reductions from the current round are not yet visible.
    ///
    /// # Panics
    ///
    /// Panics if `key` is a remote node that was never requested.
    fn read(&self, key: NodeId) -> T;

    /// Assigns `value` to `key`. For initialization only (§3.1): applied
    /// only on `key`'s owner host, not synchronized, no race detection.
    fn set(&mut self, key: NodeId, value: T);

    /// Reduces `value` into `key`'s property using the map's operator.
    /// `tid` is the calling pool thread's id. The result becomes visible
    /// after the next `reduce_sync`.
    fn reduce(&self, tid: usize, key: NodeId, value: T);

    /// Marks `key` as needed by the next `request_sync`. Duplicate
    /// requests are de-duplicated through a concurrent bitset.
    fn request(&self, key: NodeId);

    /// Collective: exchanges requests, serves them from canonical values,
    /// and materializes the remote cache.
    fn request_sync(&mut self, ctx: &HostCtx);

    /// Collective: combines thread partials (CF), scatters them to owners
    /// (SGR), reduces them onto canonical values, and drops unpinned cache
    /// entries.
    fn reduce_sync(&mut self, ctx: &HostCtx);

    /// Collective: pushes updated master values to their mirrors (only
    /// meaningful between `pin_mirrors`/`unpin_mirrors`).
    fn broadcast_sync(&mut self, ctx: &HostCtx);

    /// Collective: materializes all mirror properties in the cache and
    /// keeps them resident, served by broadcast instead of
    /// request/response.
    fn pin_mirrors(&mut self, ctx: &HostCtx);

    /// Drops pinned mirrors from the cache.
    fn unpin_mirrors(&mut self);

    /// Clears the per-round update flag and per-key delta (start of a BSP
    /// round): the window observed by [`NodePropMap::changed_keys`] begins
    /// here.
    fn reset_updated(&mut self);

    /// The keys whose readable values changed since the last
    /// [`NodePropMap::reset_updated`], as a cheap borrowed view. The
    /// default reports [`ChangedKeys::Untracked`], which is always sound
    /// (callers fall back to dense iteration).
    fn changed_keys(&self) -> ChangedKeys<'_> {
        ChangedKeys::Untracked
    }

    /// Resets every canonical value to the operator's identity and drops
    /// pending partials — equivalent to constructing a fresh map, which is
    /// what the paper's programs do for per-phase maps (e.g. the per-round
    /// neighbor-priority map in MIS or the per-level maps in Louvain);
    /// reusing the allocation just avoids churn. Pinned mirrors stay pinned
    /// and will hold identity until the next `broadcast_sync`.
    fn reset_values(&mut self, ctx: &HostCtx);

    /// Collective: `true` if any host's canonical value changed in the last
    /// `reduce_sync` — the quiescence condition of `KimbapWhile`.
    fn is_updated(&self, ctx: &HostCtx) -> bool;
}

/// A copy of a map's canonical (master) state, taken by [`Npm::snapshot`]
/// and reapplied by [`Npm::restore`] — the per-map payload of the engine's
/// round-level checkpoints.
///
/// Only canonical values are captured: caches, pending partials, and
/// request sets are transient within a BSP round, and a checkpoint is only
/// taken at round boundaries where they are empty or reconstructible.
#[derive(Debug, Clone)]
pub enum MapSnapshot<T> {
    /// GAR backend: the dense master-value vector.
    Dense(Vec<T>),
    /// Non-GAR backends: the sharded canonical hash maps.
    Sharded(Vec<HashMap<NodeId, T>>),
}

/// One (source thread, destination thread) spill cell of the CF combine.
type BucketCell<T> = Mutex<Vec<(NodeId, T)>>;

/// Canonical (master) property storage.
enum Canonical<T: PropValue> {
    /// GAR: dense table indexed by master offset + per-master update bits
    /// (shared by the broadcast temporal invariant and the frontier delta
    /// view). The table's [`MapLayout`] packs certified small-domain
    /// values (node-id labels, MIS states) below 8 bytes per master.
    Dense {
        vals: ValueTable<T>,
        updated: ConcurrentBitset,
    },
    /// Non-GAR: hash maps sharded by disjoint key range (one shard per pool
    /// thread, so the gather-reduce stays conflict-free).
    Sharded { shards: Vec<Mutex<HashMap<NodeId, T>>> },
}

/// Disjoint-range assignment of global keys to `parts` workers.
#[inline]
fn range_owner(key: NodeId, parts: usize, n: usize) -> usize {
    debug_assert!((key as usize) < n.max(1));
    ((key as u64 * parts as u64) / n.max(1) as u64) as usize
}

/// Precomputed is-mine test for this host's key-distribution map.
///
/// [`Ownership`]'s arithmetic answers "who owns key `k`" for *any* host,
/// with asserted bounds checks — fine for collectives, too slow for the
/// per-call `reduce`/`read` fast paths, which only ever ask "is `k` mine,
/// and at which master offset". `FastOwn` pre-resolves this host's block
/// bounds (blocked ownership) or modulus residue (hashed ownership) into
/// two branch-light operations.
#[derive(Debug, Clone, Copy)]
enum FastOwn {
    /// Blocked ownership: this host owns the contiguous range
    /// `lo .. lo + len`.
    Block { lo: u32, len: u32 },
    /// Hashed ownership: this host owns keys `≡ host (mod hosts)`.
    Mod { hosts: u32, host: u32 },
}

impl FastOwn {
    fn new(own: &Ownership, host: usize) -> Self {
        let len = own.num_masters(host) as u32;
        match own.scheme() {
            kimbap_dist::Scheme::Blocked { .. } => {
                let lo = if len == 0 {
                    // A host past the end of a short node space owns
                    // nothing; any `lo` works with `len == 0`.
                    0
                } else {
                    own.master_at(host, 0)
                };
                FastOwn::Block { lo, len }
            }
            kimbap_dist::Scheme::Hashed { hosts, .. } => FastOwn::Mod {
                hosts: hosts as u32,
                host: host as u32,
            },
        }
    }

    /// This host's master offset for `key`, or `None` if `key` is remote.
    #[inline]
    fn local_offset(self, key: NodeId) -> Option<u32> {
        match self {
            FastOwn::Block { lo, len } => {
                let d = key.wrapping_sub(lo);
                (d < len).then_some(d)
            }
            FastOwn::Mod { hosts, host } => {
                (key % hosts == host).then(|| key / hosts)
            }
        }
    }

    /// Inverse of [`FastOwn::local_offset`]: the global key at master
    /// offset `off`.
    #[inline]
    fn key_at(self, off: u32) -> NodeId {
        match self {
            FastOwn::Block { lo, .. } => lo + off,
            FastOwn::Mod { hosts, host } => off * hosts + host,
        }
    }
}

/// The node-property map (see the [crate docs](crate) and
/// [`NodePropMap`] for semantics).
pub struct Npm<'g, T: PropValue, Op: ReduceOp<T>> {
    dg: &'g DistGraph,
    op: Op,
    variant: Variant,
    host: usize,
    num_hosts: usize,
    threads: usize,
    /// Key-distribution map: the graph's ownership for GAR, modulo hash
    /// otherwise.
    key_own: Ownership,
    /// Precomputed is-mine test derived from `key_own` for the hot paths.
    fast_own: FastOwn,
    canonical: Canonical<T>,
    /// Remote cache: sorted keys + parallel values (paper Fig. 6). Under
    /// GAR this only spills requested keys that have *no* mirror proxy
    /// (trans-vertex requests); mirror values live in `mirror_vals`.
    cache_keys: Vec<NodeId>,
    cache_vals: Vec<T>,
    /// GAR: dense mirror-value table indexed by the partition's mirror
    /// slot, with presence bits. O(1) reads for materialized mirrors; the
    /// paper's sorted-pair form survives only on the wire. Empty without
    /// GAR. Shares the canonical table's [`MapLayout`], so a certified
    /// compact layout shrinks master *and* mirror bytes together.
    mirror_vals: ValueTable<T>,
    mirror_has: Vec<bool>,
    requests: ConcurrentBitset,
    /// CF: per-thread lock-free partial buffers (dense local range +
    /// open-addressed remote table).
    tls: ThreadOwned<PartialBuf<T>>,
    /// CF combine: spill cell per (source thread, destination thread).
    /// Region A of `cf_combine_scatter` fills row `tid`; region B drains
    /// column `tid`. Uncontended locks by construction.
    bucket_cells: Vec<Vec<BucketCell<T>>>,
    /// CF combine: per-destination-thread owned pairs that skip the wire
    /// and are applied locally after the exchange (self-delivery was
    /// always an uncounted memcpy).
    local_pairs: ThreadOwned<Vec<(NodeId, T)>>,
    /// Bytes serialized to each host by the previous reduce-sync: the
    /// capacity hint for this round's scatter buffers.
    prev_out_bytes: Vec<usize>,
    /// SGR-only: the single shared (sharded-lock) partial map.
    shared: Vec<Mutex<HashMap<NodeId, T>>>,
    pinned: bool,
    mirror_sync: MirrorSync,
    /// Read-locality counting is off by default: the per-read atomic
    /// increments contend across threads in the hottest loop of every
    /// algorithm. The locality experiment switches it on.
    count_reads: bool,
    /// Keys kept resident in the cache while pinned: the graph mirrors
    /// under GAR; *every* local proxy whose hashed key owner is remote for
    /// the non-partition-aware variants (they cache "both master and
    /// remote node properties", §6.4).
    pin_set: Vec<NodeId>,
    /// `Set()` calls targeting keys this host does not own (possible only
    /// without GAR, where key owners ignore the graph partition); shipped
    /// to owners at the next collective.
    pending_sets: Mutex<Vec<(NodeId, T)>>,
    /// Pin happened this round: the next broadcast must carry all mirror
    /// values, not just updated ones.
    broadcast_all: bool,
    /// Pinned mirrors whose cached value changed in the last
    /// `broadcast_sync` — the remote half of [`ChangedKeys::Tracked`].
    changed_remote: Vec<NodeId>,
    /// The current delta window is complete: no untracked mutation
    /// (request-sync materialization, value reset, restore) has happened
    /// since the last `reset_updated`. Cleared events force
    /// [`ChangedKeys::Untracked`] until the window rolls over.
    delta_tracked: bool,
    updated: AtomicBool,
    master_reads: AtomicU64,
    remote_reads: AtomicU64,
    reduce_calls: AtomicU64,
    requested_keys: AtomicU64,
}

/// Number of lock shards in the SGR-only shared map (mirrors the internal
/// sharding of a concurrent hash map like `phmap::flat_hash_map`).
const SHARED_SHARDS: usize = 64;

impl<'g, T: PropValue, Op: ReduceOp<T>> Npm<'g, T, Op> {
    /// Creates a map over `dg`'s node space with the default
    /// (SGR+CF+GAR) backend. Every master property starts at the
    /// operator's identity.
    pub fn new(dg: &'g DistGraph, ctx: &HostCtx, op: Op) -> Self {
        Self::with_variant(dg, ctx, op, Variant::SgrCfGar)
    }

    /// Creates a map with an explicit runtime [`Variant`] (for the §6.4
    /// ablations).
    pub fn with_variant(dg: &'g DistGraph, ctx: &HostCtx, op: Op, variant: Variant) -> Self {
        Self::build(dg, ctx, op, variant, |len, init| {
            ValueTable::native(len, init)
        })
    }

    /// Creates a map whose dense master and mirror tables use `layout` —
    /// valid only when the caller (normally the compiler's value-domain
    /// certification) has established that every non-identity value the
    /// map will hold fits the layout's domain; the tables assert this on
    /// every store. Non-partition-aware variants ignore the layout (their
    /// canonical storage is sharded hash maps).
    pub fn with_layout(
        dg: &'g DistGraph,
        ctx: &HostCtx,
        op: Op,
        variant: Variant,
        layout: MapLayout,
    ) -> Self
    where
        T: WordValue,
    {
        Self::build(dg, ctx, op, variant, |len, init| {
            ValueTable::with_layout(layout, len, init)
        })
    }

    fn build(
        dg: &'g DistGraph,
        ctx: &HostCtx,
        op: Op,
        variant: Variant,
        make_table: impl Fn(usize, T) -> ValueTable<T>,
    ) -> Self {
        let n = dg.num_global_nodes();
        let host = ctx.host();
        let num_hosts = ctx.num_hosts();
        let threads = ctx.threads();
        let key_own = if variant.partition_aware() {
            dg.ownership().clone()
        } else {
            Ownership::hashed(n, num_hosts)
        };
        let canonical = if variant.partition_aware() {
            let m = key_own.num_masters(host);
            Canonical::Dense {
                vals: make_table(m, op.identity()),
                updated: ConcurrentBitset::new(m),
            }
        } else {
            Canonical::Sharded {
                shards: (0..threads).map(|_| Mutex::new(HashMap::new())).collect(),
            }
        };
        let pin_set: Vec<NodeId> = if variant.partition_aware() {
            dg.mirror_globals().to_vec()
        } else {
            let mut v: Vec<NodeId> = dg
                .local_nodes()
                .map(|l| dg.local_to_global(l))
                .filter(|&g| key_own.owner(g) != host)
                .collect();
            v.sort_unstable();
            v
        };
        let auto_pinned = !variant.partition_aware();
        let (cache_keys, cache_vals) = if auto_pinned {
            (pin_set.clone(), vec![op.identity(); pin_set.len()])
        } else {
            (Vec::new(), Vec::new())
        };
        let (mirror_vals, mirror_has) = if variant.partition_aware() {
            let m = dg.num_mirrors();
            (make_table(m, op.identity()), vec![false; m])
        } else {
            (make_table(0, op.identity()), Vec::new())
        };
        let fast_own = FastOwn::new(&key_own, host);
        let cf_local = if variant.conflict_free() {
            key_own.num_masters(host)
        } else {
            0
        };
        Npm {
            dg,
            op,
            variant,
            host,
            num_hosts,
            threads,
            key_own,
            fast_own,
            canonical,
            cache_keys,
            cache_vals,
            mirror_vals,
            mirror_has,
            requests: ConcurrentBitset::new(n),
            tls: ThreadOwned::new(threads, || PartialBuf::new(cf_local, op.identity())),
            bucket_cells: (0..threads)
                .map(|_| (0..threads).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
            local_pairs: ThreadOwned::new(threads, Vec::new),
            prev_out_bytes: vec![0; num_hosts],
            shared: (0..SHARED_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            pinned: auto_pinned,
            mirror_sync: MirrorSync::default(),
            count_reads: false,
            pin_set,
            pending_sets: Mutex::new(Vec::new()),
            broadcast_all: false,
            changed_remote: Vec::new(),
            delta_tracked: true,
            updated: AtomicBool::new(false),
            master_reads: AtomicU64::new(0),
            remote_reads: AtomicU64::new(0),
            reduce_calls: AtomicU64::new(0),
            requested_keys: AtomicU64::new(0),
        }
    }

    /// The backend variant.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// The layout of the dense master/mirror tables ([`MapLayout::Native`]
    /// for the sharded non-GAR backends, whose canonical storage has no
    /// dense table to pack).
    pub fn layout(&self) -> MapLayout {
        match &self.canonical {
            Canonical::Dense { vals, .. } => vals.layout(),
            Canonical::Sharded { .. } => MapLayout::Native,
        }
    }

    /// Heap bytes of the dense master and mirror value tables — the
    /// storage a compact [`MapLayout`] shrinks. Zero for the sharded
    /// backends (their canonical bytes live in hash maps).
    pub fn table_bytes(&self) -> usize {
        let canonical = match &self.canonical {
            Canonical::Dense { vals, .. } => vals.heap_bytes(),
            Canonical::Sharded { .. } => 0,
        };
        canonical + self.mirror_vals.heap_bytes()
    }

    /// The map's reduction operator.
    pub fn op(&self) -> Op {
        self.op
    }

    /// Selects how pinned mirrors are refreshed (see [`MirrorSync`]).
    /// Only meaningful for the partition-aware variant; ignored otherwise
    /// (non-GAR variants have no broadcast path to elide).
    pub fn set_mirror_sync(&mut self, mode: MirrorSync) {
        self.mirror_sync = mode;
    }

    /// Enables master/remote read counting (see [`Npm::read_stats`]).
    /// Off by default: the counters are shared atomics on the read hot
    /// path.
    pub fn enable_read_stats(&mut self) {
        self.count_reads = true;
    }

    /// Read-locality counters accumulated so far.
    pub fn read_stats(&self) -> NpmReadStats {
        NpmReadStats {
            master_reads: self.master_reads.load(Ordering::Relaxed),
            remote_reads: self.remote_reads.load(Ordering::Relaxed),
            reduce_calls: self.reduce_calls.load(Ordering::Relaxed),
            requested_keys: self.requested_keys.load(Ordering::Relaxed),
        }
    }

    /// The value canonical storage holds for an owned `key` (identity if
    /// never written).
    fn canonical_get(&self, key: NodeId) -> T {
        debug_assert_eq!(self.key_own.owner(key), self.host);
        match &self.canonical {
            Canonical::Dense { vals, .. } => vals.get(self.key_own.master_offset(key)),
            Canonical::Sharded { shards } => {
                let shard = range_owner(key, self.threads, self.key_own.num_nodes());
                shards[shard]
                    .lock()
                    .get(&key)
                    .copied()
                    .unwrap_or_else(|| self.op.identity())
            }
        }
    }

    fn canonical_set(&mut self, key: NodeId, value: T) {
        debug_assert_eq!(self.key_own.owner(key), self.host);
        match &mut self.canonical {
            Canonical::Dense { vals, .. } => {
                vals.set(self.key_own.master_offset(key), value);
            }
            Canonical::Sharded { shards } => {
                let shard = range_owner(key, self.threads, self.key_own.num_nodes());
                shards[shard].get_mut().insert(key, value);
            }
        }
    }

    fn cache_lookup(&self, key: NodeId) -> Option<T> {
        self.cache_keys
            .binary_search(&key)
            .ok()
            .map(|i| self.cache_vals[i])
    }

    /// Replaces / merges the cache with `pairs` (sorted by key). Entries in
    /// `pairs` win over existing ones; existing entries are retained only
    /// when `keep_existing`.
    fn merge_cache(&mut self, pairs: Vec<(NodeId, T)>, keep_existing: bool) {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        if !keep_existing || self.cache_keys.is_empty() {
            self.cache_keys = pairs.iter().map(|&(k, _)| k).collect();
            self.cache_vals = pairs.iter().map(|&(_, v)| v).collect();
            return;
        }
        let mut keys = Vec::with_capacity(self.cache_keys.len() + pairs.len());
        let mut vals = Vec::with_capacity(keys.capacity());
        let (mut i, mut j) = (0, 0);
        while i < self.cache_keys.len() || j < pairs.len() {
            let take_new = j < pairs.len()
                && (i >= self.cache_keys.len() || pairs[j].0 <= self.cache_keys[i]);
            if take_new {
                if i < self.cache_keys.len() && pairs[j].0 == self.cache_keys[i] {
                    i += 1; // new value supersedes old
                }
                keys.push(pairs[j].0);
                vals.push(pairs[j].1);
                j += 1;
            } else {
                keys.push(self.cache_keys[i]);
                vals.push(self.cache_vals[i]);
                i += 1;
            }
        }
        self.cache_keys = keys;
        self.cache_vals = vals;
    }

    /// Fetches current canonical values for `keys` (grouped per owner,
    /// sorted) through the request/response protocol and returns the merged
    /// sorted pair list. Shared by `request_sync` and the non-GAR
    /// pin/broadcast fallback.
    fn fetch_keys(&mut self, ctx: &HostCtx, keys_by_owner: Vec<Vec<NodeId>>) -> Vec<(NodeId, T)> {
        // Round 1: ship request key lists.
        let outgoing = keys_by_owner
            .iter()
            .enumerate()
            .map(|(h, keys)| {
                if h == self.host {
                    Vec::new()
                } else {
                    encode_slice(keys)
                }
            })
            .collect();
        let incoming = ctx.exchange(outgoing);

        // Serve: respond with values in request order.
        let responses: Vec<Vec<u8>> = incoming
            .iter()
            .enumerate()
            .map(|(h, buf)| {
                if h == self.host {
                    return Vec::new();
                }
                let mut resp = Vec::with_capacity(buf.len() / NodeId::SIZE_HINT * T::SIZE);
                for key in iter_decoded::<NodeId>(buf) {
                    self.canonical_get(key).write(&mut resp);
                }
                resp
            })
            .collect();

        // Round 2: ship responses.
        let answers = ctx.exchange(responses);

        // Materialize.
        let mut pairs: Vec<(NodeId, T)> = Vec::new();
        for (h, keys) in keys_by_owner.iter().enumerate() {
            if h == self.host {
                for &k in keys {
                    pairs.push((k, self.canonical_get(k)));
                }
            } else {
                let vals = decode_slice::<T>(&answers[h]);
                assert_eq!(vals.len(), keys.len(), "response length mismatch");
                pairs.extend(keys.iter().copied().zip(vals));
            }
        }
        pairs.sort_unstable_by_key(|&(k, _)| k);
        pairs
    }

    /// Ships buffered `Set()` assignments to their key owners and applies
    /// them. Collective (no-op exchange when nothing is pending anywhere).
    fn flush_pending_sets(&mut self, ctx: &HostCtx) {
        if self.variant.partition_aware() {
            debug_assert!(self.pending_sets.get_mut().is_empty());
            return;
        }
        let pending = std::mem::take(&mut *self.pending_sets.get_mut());
        let mut per_host: Vec<Vec<u8>> = vec![Vec::new(); self.num_hosts];
        for (k, v) in pending {
            (k, v).write(&mut per_host[self.key_own.owner(k)]);
        }
        let received = ctx.exchange(per_host);
        for buf in &received {
            for (k, v) in iter_decoded::<(NodeId, T)>(buf) {
                let changed = self.canonical_get(k) != v;
                self.canonical_set(k, v);
                if changed {
                    self.updated.store(true, Ordering::Relaxed);
                }
            }
        }
    }

    /// Re-fetches the values of every resident (pin-set) key through the
    /// request/response protocol — the broadcast substitute for variants
    /// without the partition-aware representation. Collective.
    fn refresh_resident(&mut self, ctx: &HostCtx) {
        let mut keys_by_owner: Vec<Vec<NodeId>> = vec![Vec::new(); self.num_hosts];
        for &m in &self.pin_set {
            keys_by_owner[self.key_own.owner(m)].push(m);
        }
        let pairs = self.fetch_keys(ctx, keys_by_owner);
        // Residents replace the whole cache (ad-hoc requests are stale now).
        self.merge_cache(pairs, false);
    }

    /// Captures this host's canonical (master) values for checkpointing.
    ///
    /// Call at a BSP round boundary (after `reduce_sync`): the snapshot
    /// deliberately excludes the remote cache, pending partials, buffered
    /// `Set()`s, and the request set, which are all empty or
    /// reconstructible there.
    pub fn snapshot(&self) -> MapSnapshot<T> {
        match &self.canonical {
            Canonical::Dense { vals, .. } => MapSnapshot::Dense(vals.to_vec()),
            Canonical::Sharded { shards } => {
                MapSnapshot::Sharded(shards.iter().map(|s| s.lock().clone()).collect())
            }
        }
    }

    /// Rewinds this host's map to a [`Npm::snapshot`]: canonical values are
    /// reapplied and every transient (cache, partials, requests, buffered
    /// `Set()`s, update flags, pin state) is reset as if the map had just
    /// reached that round boundary.
    ///
    /// Mirrors are dropped: callers that had mirrors pinned must call
    /// `pin_mirrors` again (the engine's recovery path does), which
    /// re-materializes them from the restored canonical values. For the
    /// non-partition-aware variants the always-resident cache is reset to
    /// identity and likewise refreshed by the next `pin_mirrors` /
    /// `broadcast_sync`.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot came from a map with a different backend
    /// [`Variant`] or node space.
    pub fn restore(&mut self, snap: &MapSnapshot<T>) {
        match (&mut self.canonical, snap) {
            (Canonical::Dense { vals, updated }, MapSnapshot::Dense(saved)) => {
                assert_eq!(vals.len(), saved.len(), "snapshot from a different map");
                vals.copy_from_slice(saved);
                updated.clear();
            }
            (Canonical::Sharded { shards }, MapSnapshot::Sharded(saved)) => {
                assert_eq!(shards.len(), saved.len(), "snapshot from a different map");
                for (shard, s) in shards.iter_mut().zip(saved) {
                    *shard.get_mut() = s.clone();
                }
            }
            _ => panic!("snapshot taken from a different backend variant"),
        }
        let auto_pinned = !self.variant.partition_aware();
        if auto_pinned {
            self.cache_keys = self.pin_set.clone();
            self.cache_vals = vec![self.op.identity(); self.pin_set.len()];
        } else {
            self.cache_keys.clear();
            self.cache_vals.clear();
            self.mirror_vals.fill(self.op.identity());
            self.mirror_has.fill(false);
        }
        self.requests.clear();
        self.clear_partials();
        for m in self.shared.iter_mut() {
            m.get_mut().clear();
        }
        self.pending_sets.get_mut().clear();
        self.pinned = auto_pinned;
        self.broadcast_all = false;
        self.changed_remote.clear();
        // The rewind is not a tracked mutation; the next round must run
        // dense before delta windows resume.
        self.delta_tracked = false;
        self.updated.store(false, Ordering::Relaxed);
    }

    /// Expands a snapshot of **this host's** shard into explicit
    /// `(node, value)` pairs — the partition-independent form a host ships
    /// to its replication successor, and the form a survivor re-shards
    /// under a recomputed ownership after a membership shrink. Dense
    /// offsets are decoded through the shared ownership; sharded maps are
    /// flattened. The order is deterministic (ascending node id), so
    /// replicated payloads are byte-stable across runs.
    ///
    /// # Panics
    ///
    /// Panics if a dense snapshot's length does not match this host's
    /// master count (snapshot from a different shard or node space).
    pub fn globalize_snapshot(&self, snap: &MapSnapshot<T>) -> Vec<(NodeId, T)> {
        match snap {
            MapSnapshot::Dense(vals) => {
                assert_eq!(
                    vals.len(),
                    self.key_own.num_masters(self.host),
                    "snapshot from a different shard"
                );
                self.key_own
                    .masters(self.host)
                    .zip(vals.iter().copied())
                    .collect()
            }
            MapSnapshot::Sharded(shards) => {
                let mut pairs: Vec<(NodeId, T)> = shards
                    .iter()
                    .flat_map(|s| s.iter().map(|(&k, &v)| (k, v)))
                    .collect();
                pairs.sort_unstable_by_key(|p| p.0);
                pairs
            }
        }
    }

    /// Resets every CF transient (thread buffers, combine cells, owned
    /// pairs), keeping allocations.
    fn clear_partials(&mut self) {
        for b in self.tls.iter_mut() {
            b.clear();
        }
        for row in self.bucket_cells.iter_mut() {
            for cell in row.iter_mut() {
                cell.get_mut().clear();
            }
        }
        for p in self.local_pairs.iter_mut() {
            p.clear();
        }
    }

    /// CF scatter half of reduce-sync: drains every thread's partial
    /// buffer, combines partials over disjoint destination key ranges
    /// (Fig. 7), and serializes remote-owned pairs per destination host.
    ///
    /// The combine touches each entry exactly twice — once when its source
    /// thread buckets it by `range_owner` (region A), once when its
    /// destination thread folds the bucket into its own emptied buffer
    /// (region B) — O(entries) total, instead of the previous
    /// all-threads-rescan-everything O(threads × entries).
    ///
    /// Keys this host owns never reach the wire: they land in
    /// `local_pairs` and are folded during the gather. (They were
    /// previously self-delivered, which the traffic stats never counted,
    /// so observable message/byte counts are unchanged.)
    fn cf_combine_scatter(&mut self, ctx: &HostCtx) -> Vec<Vec<u8>> {
        let n = self.key_own.num_nodes();
        let threads = self.threads;
        let op = self.op;
        let fast = self.fast_own;
        let key_own = self.key_own.clone();
        let num_hosts = self.num_hosts;
        let host = self.host;
        let prev_bytes = self.prev_out_bytes.clone();
        let per_host: Vec<Mutex<Vec<u8>>> = prev_bytes
            .iter()
            .map(|&b| Mutex::new(Vec::with_capacity(b)))
            .collect();
        {
            let tls = &self.tls;
            let cells = &self.bucket_cells;
            // Region A: each thread drains its own buffer, pre-bucketing
            // every entry by its destination combine thread.
            ctx.pool().run(|tid| {
                // SAFETY: WorkerPool hands each worker a distinct dense
                // thread id, so no two threads share a slot.
                let buf = unsafe { tls.slot(tid) };
                let mut row: Vec<_> = cells[tid].iter().map(|c| c.lock()).collect();
                buf.drain_local(|off, v| {
                    let k = fast.key_at(off);
                    row[range_owner(k, threads, n)].push((k, v));
                });
                buf.drain_remote(|k, v| {
                    row[range_owner(k, threads, n)].push((k, v));
                });
            });
            let tls = &self.tls;
            let local_pairs = &self.local_pairs;
            let per_host = &per_host;
            let prev_bytes = &prev_bytes;
            // Region B: each thread folds its incoming buckets into its
            // own (drained) buffer, then serializes — owned keys into
            // `local_pairs`, remote keys into per-destination-host wire
            // buffers.
            ctx.pool().run(|tid| {
                // SAFETY: distinct tids per worker; region A's barrier has
                // passed, so every buffer is drained and reusable as this
                // thread's combine accumulator.
                let acc = unsafe { tls.slot(tid) };
                debug_assert!(acc.is_empty());
                for src_cells in cells.iter() {
                    let mut cell = src_cells[tid].lock();
                    for &(k, v) in cell.iter() {
                        match fast.local_offset(k) {
                            Some(off) => acc.reduce_local(off, v, |a, b| op.combine(a, b)),
                            None => acc.reduce_remote(k, v, |a, b| op.combine(a, b)),
                        }
                    }
                    cell.clear(); // keep capacity for the next round
                }
                // SAFETY: distinct tids per worker.
                let mine = unsafe { local_pairs.slot(tid) };
                debug_assert!(mine.is_empty());
                let mut wire: Vec<Vec<u8>> = (0..num_hosts)
                    .map(|h| Vec::with_capacity(prev_bytes[h] / threads))
                    .collect();
                acc.drain_local(|off, v| mine.push((fast.key_at(off), v)));
                acc.drain_remote(|k, v| (k, v).write(&mut wire[key_own.owner(k)]));
                for (h, w) in wire.into_iter().enumerate() {
                    debug_assert!(h != host || w.is_empty(), "owned key serialized");
                    if !w.is_empty() {
                        per_host[h].lock().extend_from_slice(&w);
                    }
                }
            });
        }
        let outgoing: Vec<Vec<u8>> = per_host.into_iter().map(|m| m.into_inner()).collect();
        for (prev, out) in self.prev_out_bytes.iter_mut().zip(&outgoing) {
            *prev = out.len();
        }
        outgoing
    }

    /// Folds the locally retained CF pairs (`local_pairs`) onto canonical
    /// values — the gather half that needs no network data, so the
    /// pipelined reduce-sync runs it while posted chunks are still on the
    /// wire. (SGR variants keep `local_pairs` empty; this is then a cheap
    /// no-op region.)
    fn gather_locals(&mut self, ctx: &HostCtx) {
        self.gather_fold(ctx, &[], true);
    }

    /// Folds pairs from every received buffer onto canonical values — the
    /// wire half of the gather.
    fn gather_received(&mut self, ctx: &HostCtx, received: &[Vec<u8>]) {
        self.gather_fold(ctx, received, false);
    }

    /// Gather-reduce: threads own disjoint key ranges and fold pairs onto
    /// canonical values — the locally retained CF pairs when `locals`,
    /// plus matching pairs from every buffer in `received`. Split in two
    /// calls so the local half can overlap a split-phase exchange; per key
    /// the fold order stays locals-then-received-in-host-order, exactly
    /// like the fused loop it replaced, so pipelining never changes
    /// results.
    fn gather_fold(&mut self, ctx: &HostCtx, received: &[Vec<u8>], locals: bool) {
        let n = self.key_own.num_nodes();
        let op = self.op;
        let threads = self.threads;
        let host = self.host;
        let key_own = self.key_own.clone();
        let fast = self.fast_own;
        let updated_any = &self.updated;
        let local_pairs = &self.local_pairs;
        match &mut self.canonical {
            Canonical::Dense { vals, updated } => {
                let table = vals.shared();
                let table = &table;
                let updated = &*updated;
                ctx.pool().run(|tid| {
                    let apply = |k: NodeId, v: T| {
                        debug_assert_eq!(key_own.owner(k), host);
                        let off = fast.local_offset(k).expect("gather key not owned") as usize;
                        // SAFETY: `off` is unique to this thread's key
                        // range for the duration of this parallel region.
                        unsafe {
                            let old = table.get_at(off);
                            let new = op.combine(old, v);
                            if new != old {
                                table.set_at(off, new);
                                updated.set(off);
                                updated_any.store(true, Ordering::Relaxed);
                            }
                        }
                    };
                    if locals {
                        // SAFETY: distinct tids per worker.
                        let mine = unsafe { local_pairs.slot(tid) };
                        for &(k, v) in mine.iter() {
                            debug_assert_eq!(range_owner(k, threads, n), tid);
                            apply(k, v);
                        }
                        mine.clear();
                    }
                    for buf in received {
                        for (k, v) in iter_decoded::<(NodeId, T)>(buf) {
                            if range_owner(k, threads, n) != tid {
                                continue;
                            }
                            apply(k, v);
                        }
                    }
                });
            }
            Canonical::Sharded { shards } => {
                let shards = &*shards;
                ctx.pool().run(|tid| {
                    let mut shard = shards[tid].lock();
                    let mut apply = |k: NodeId, v: T| {
                        debug_assert_eq!(key_own.owner(k), host);
                        let old = shard.get(&k).copied().unwrap_or_else(|| op.identity());
                        let new = op.combine(old, v);
                        if new != old {
                            shard.insert(k, new);
                            updated_any.store(true, Ordering::Relaxed);
                        }
                    };
                    if locals {
                        // SAFETY: distinct tids per worker.
                        let mine = unsafe { local_pairs.slot(tid) };
                        for &(k, v) in mine.iter() {
                            debug_assert_eq!(range_owner(k, threads, n), tid);
                            apply(k, v);
                        }
                        mine.clear();
                    }
                    for buf in received {
                        for (k, v) in iter_decoded::<(NodeId, T)>(buf) {
                            if range_owner(k, threads, n) != tid {
                                continue;
                            }
                            apply(k, v);
                        }
                    }
                });
            }
        }
    }

    /// SGR-only scatter half of reduce-sync: the shared sharded map is
    /// already combined; serialize every pair per owner host (including
    /// this host — self-delivery is an uncounted memcpy).
    fn shared_scatter(&mut self, ctx: &HostCtx) -> Vec<Vec<u8>> {
        let combined: Vec<HashMap<NodeId, T>> = self
            .shared
            .iter_mut()
            .map(|m| std::mem::take(&mut *m.get_mut()))
            .collect();
        let per_host: Vec<Mutex<Vec<u8>>> = self
            .prev_out_bytes
            .iter()
            .map(|&b| Mutex::new(Vec::with_capacity(b)))
            .collect();
        {
            let key_own = self.key_own.clone();
            let threads = self.threads;
            let combined = &combined;
            let per_host = &per_host;
            ctx.pool().run(|tid| {
                let mut local: Vec<Vec<u8>> = vec![Vec::new(); key_own.num_hosts()];
                // Combined maps are key-disjoint; distribute them
                // round-robin over the pool threads.
                for m in combined.iter().skip(tid).step_by(threads) {
                    for (&k, &v) in m {
                        (k, v).write(&mut local[key_own.owner(k)]);
                    }
                }
                for (h, buf) in local.into_iter().enumerate() {
                    if !buf.is_empty() {
                        per_host[h].lock().extend_from_slice(&buf);
                    }
                }
            });
        }
        let outgoing: Vec<Vec<u8>> = per_host.into_iter().map(|m| m.into_inner()).collect();
        for (prev, out) in self.prev_out_bytes.iter_mut().zip(&outgoing) {
            *prev = out.len();
        }
        outgoing
    }

    /// SGR-only reduce path: shard the shared map by key hash; hot keys
    /// contend (the cost the CF ablation measures).
    fn reduce_shared(&self, key: NodeId, value: T) {
        let h = (key as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let slot = (h >> 32) as usize % SHARED_SHARDS;
        let mut m = self.shared[slot].lock();
        match m.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let v = self.op.combine(*e.get(), value);
                e.insert(v);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(value);
            }
        }
    }

    /// Stores a broadcast value into the mirror table if `key`'s mirror is
    /// materialized (GAR receive path), recording actual changes in the
    /// remote delta.
    fn mirror_store(&mut self, key: NodeId, value: T) {
        if let Some(slot) = self.dg.mirror_slot(key) {
            let slot = slot as usize;
            if self.mirror_has[slot] {
                if self.mirror_vals.get(slot) != value {
                    self.changed_remote.push(key);
                }
                self.mirror_vals.set(slot, value);
            }
        }
    }

    /// Read slow path: `key` is remote and was neither requested nor
    /// pinned.
    #[cold]
    #[inline(never)]
    fn read_miss(&self, key: NodeId) -> ! {
        panic!(
            "host {}: read of remote node {} that was neither requested nor pinned",
            self.host, key
        );
    }
}

/// Helper giving `NodeId` a size constant usable in capacity hints.
trait SizeHint {
    const SIZE_HINT: usize;
}
impl SizeHint for NodeId {
    const SIZE_HINT: usize = 4;
}

use kimbap_comm::Wire;

impl<'g, T: PropValue, Op: ReduceOp<T>> NodePropMap<T> for Npm<'g, T, Op> {
    fn init_masters(&mut self, f: &dyn Fn(NodeId) -> T) {
        for i in 0..self.key_own.num_masters(self.host) {
            let g = self.key_own.master_at(self.host, i);
            self.set(g, f(g));
        }
        if !self.variant.partition_aware() {
            // The always-resident cache can be primed locally: `f` is the
            // same pure function on every host.
            for i in 0..self.cache_keys.len() {
                self.cache_vals[i] = f(self.cache_keys[i]);
            }
        }
    }

    #[inline]
    fn read(&self, key: NodeId) -> T {
        // Under GAR the cache never holds owned keys (requests for them are
        // elided), so the O(1) master path goes first; without GAR the
        // resident cache is authoritative for everything fetched.
        if self.variant.partition_aware() {
            // Masters: O(1) dense canonical via precomputed ownership.
            if let Some(off) = self.fast_own.local_offset(key) {
                if self.count_reads {
                    self.master_reads.fetch_add(1, Ordering::Relaxed);
                }
                return match &self.canonical {
                    Canonical::Dense { vals, .. } => vals.get(off as usize),
                    Canonical::Sharded { .. } => unreachable!("GAR canonical is dense"),
                };
            }
            // Materialized mirrors: O(1) dense table indexed by the
            // partition's mirror slot.
            if let Some(slot) = self.dg.mirror_slot(key) {
                let slot = slot as usize;
                if self.mirror_has[slot] {
                    if self.count_reads {
                        self.remote_reads.fetch_add(1, Ordering::Relaxed);
                    }
                    return self.mirror_vals.get(slot);
                }
            }
            // Requested keys without a mirror proxy (trans-vertex
            // requests): sorted spill, binary search.
            if let Some(v) = self.cache_lookup(key) {
                if self.count_reads {
                    self.remote_reads.fetch_add(1, Ordering::Relaxed);
                }
                return v;
            }
        } else {
            if let Some(v) = self.cache_lookup(key) {
                if self.count_reads {
                    self.remote_reads.fetch_add(1, Ordering::Relaxed);
                }
                return v;
            }
            if self.key_own.owner(key) == self.host {
                if self.count_reads {
                    self.master_reads.fetch_add(1, Ordering::Relaxed);
                }
                return self.canonical_get(key);
            }
        }
        self.read_miss(key)
    }

    fn set(&mut self, key: NodeId, value: T) {
        if self.key_own.owner(key) != self.host {
            // Only possible without GAR (key owners ignore the graph
            // partition): ship the assignment to the owner at the next
            // collective.
            self.pending_sets.get_mut().push((key, value));
            return;
        }
        let changed = self.canonical_get(key) != value;
        self.canonical_set(key, value);
        if changed {
            self.updated.store(true, Ordering::Relaxed);
            if let Canonical::Dense { updated, .. } = &self.canonical {
                updated.set(self.key_own.master_offset(key));
            }
        }
    }

    #[inline]
    fn reduce(&self, tid: usize, key: NodeId, value: T) {
        debug_assert!((key as usize) < self.key_own.num_nodes());
        if self.count_reads {
            self.reduce_calls.fetch_add(1, Ordering::Relaxed);
        }
        if self.variant.conflict_free() {
            let op = self.op;
            // SAFETY: `tid` is the caller's pool thread id; WorkerPool
            // hands each worker a distinct dense id, so no two concurrent
            // callers share a slot.
            let buf = unsafe { self.tls.slot(tid) };
            match self.fast_own.local_offset(key) {
                Some(off) => buf.reduce_local(off, value, |a, b| op.combine(a, b)),
                None => buf.reduce_remote(key, value, |a, b| op.combine(a, b)),
            }
        } else {
            self.reduce_shared(key, value);
        }
    }

    fn request(&self, key: NodeId) {
        if self.variant.partition_aware() && self.key_own.owner(key) == self.host {
            return; // masters are always materialized under GAR
        }
        self.requests.set(key as usize);
    }

    fn request_sync(&mut self, ctx: &HostCtx) {
        // Without GAR, Set() calls targeting hashed-remote keys are still
        // buffered; land them before any owner serves reads.
        self.flush_pending_sets(ctx);
        // Bucket requested keys per owner host, in parallel over word
        // chunks of the request bitset. Chunks are ascending in key space,
        // and both ownership kinds are monotone within a chunk, so
        // chunk-order concatenation keeps every per-host list sorted.
        let keys_by_owner: Vec<Vec<NodeId>> = {
            let requests = &self.requests;
            let key_own = self.key_own.clone();
            let num_hosts = self.num_hosts;
            let num_words = requests.num_words();
            let chunk = num_words.div_ceil(self.threads).max(1);
            let parts = ctx.pool().run_map(|tid| {
                let lo = (tid * chunk).min(num_words);
                let hi = ((tid + 1) * chunk).min(num_words);
                let mut per: Vec<Vec<NodeId>> = vec![Vec::new(); num_hosts];
                for k in requests.iter_set_words(lo..hi) {
                    let k = k as NodeId;
                    per[key_own.owner(k)].push(k);
                }
                per
            });
            let mut merged: Vec<Vec<NodeId>> = vec![Vec::new(); num_hosts];
            for per in parts {
                for (h, mut keys) in per.into_iter().enumerate() {
                    merged[h].append(&mut keys);
                }
            }
            merged
        };
        self.requested_keys.fetch_add(
            keys_by_owner.iter().map(|v| v.len() as u64).sum(),
            Ordering::Relaxed,
        );
        self.requests.clear();
        let pairs = self.fetch_keys(ctx, keys_by_owner);
        if self.variant.partition_aware() {
            // Request materialization changes readable values outside the
            // per-key delta bookkeeping: the current window can no longer
            // vouch for completeness.
            if !pairs.is_empty() {
                self.delta_tracked = false;
            }
            // Mirror-proxied keys materialize straight into the dense
            // mirror table; only trans-vertex requests (no proxy) go to
            // the sorted spill.
            let mut spill: Vec<(NodeId, T)> = Vec::new();
            for (k, v) in pairs {
                if let Some(slot) = self.dg.mirror_slot(k) {
                    self.mirror_vals.set(slot as usize, v);
                    self.mirror_has[slot as usize] = true;
                } else {
                    spill.push((k, v));
                }
            }
            self.merge_cache(spill, true);
        } else {
            // Keep existing entries: a BSP round may chain several
            // request-compute/request-sync phases (e.g. `parent(parent(n))`),
            // and earlier phases' values stay valid until reduce-sync drops
            // them. Fresh responses win on overlap.
            self.merge_cache(pairs, true);
        }
    }

    fn reduce_sync(&mut self, ctx: &HostCtx) {
        self.flush_pending_sets(ctx);

        // Scatter: combine thread partials over disjoint key ranges and
        // serialize (key, value) pairs per owner host.
        let outgoing = if self.variant.conflict_free() {
            self.cf_combine_scatter(ctx)
        } else {
            self.shared_scatter(ctx)
        };

        // Pipelined reduce-sync: open a split-phase exchange, post the
        // per-destination buffers (in parallel — posting serializes into
        // chunk frames and ships them immediately), fold the locally
        // retained CF pairs while those chunks travel, and only then block
        // for the peers' buffers. The serial path runs the same two gather
        // halves in the same order, so both modes produce byte-identical
        // results for the same inputs (each key sees local-then-received
        // folds either way).
        let received = if ctx.pipelined() {
            let ticket = ctx.exchange_start();
            {
                let per_dest: Vec<Mutex<Option<Vec<u8>>>> =
                    outgoing.into_iter().map(|b| Mutex::new(Some(b))).collect();
                let ticket = &ticket;
                let per_dest = &per_dest;
                let threads = self.threads;
                ctx.pool().run(move |tid| {
                    for to in (tid..per_dest.len()).step_by(threads) {
                        let payload = per_dest[to].lock().take().expect("dest posted twice");
                        ticket.post(to, payload);
                    }
                });
            }
            self.gather_locals(ctx);
            ctx.exchange_finish(ticket)
        } else {
            let received = ctx.exchange(outgoing);
            self.gather_locals(ctx);
            received
        };
        self.gather_received(ctx, &received);

        // Cached remote properties are now stale: drop them.
        if self.pinned && !self.variant.partition_aware() {
            // Non-partition-aware variants keep every local property
            // resident; without a broadcast path they must re-fetch it all
            // through request/response — the communication overhead the
            // GAR ablation measures.
            self.refresh_resident(ctx);
        } else if self.variant.partition_aware() {
            // GAR: ad-hoc requested (non-mirror) values always drop. The
            // mirror table stays resident while pinned — its (now stale)
            // values are refreshed by the following broadcast_sync — and
            // is invalidated wholesale through the presence bits
            // otherwise.
            self.cache_keys.clear();
            self.cache_vals.clear();
            if !self.pinned {
                self.mirror_has.fill(false);
            }
        } else {
            self.cache_keys.clear();
            self.cache_vals.clear();
        }
    }

    fn broadcast_sync(&mut self, ctx: &HostCtx) {
        if !self.variant.partition_aware() {
            // Without GAR, key owners do not align with the graph
            // partition, so there is no one-way broadcast: flush pending
            // assignments and re-fetch every resident property through
            // request/response.
            self.flush_pending_sets(ctx);
            self.refresh_resident(ctx);
            self.broadcast_all = false;
            return;
        }
        if !self.pinned {
            return;
        }

        // Structural-invariant elision: push-style programs under an
        // outgoing edge-cut never semantically read mirror values, so
        // reinitialize them locally instead of communicating. (The initial
        // materialization after pin_mirrors still broadcasts so that the
        // very first reads are exact.)
        if self.mirror_sync == MirrorSync::ResetToIdentity && !self.broadcast_all {
            // The local reinitialization is an untracked mirror mutation.
            self.delta_tracked = false;
            self.mirror_vals.fill(self.op.identity());
            // Peers may still be broadcasting to us this round; stay in the
            // collective but send nothing.
            let received = ctx.exchange(vec![Vec::new(); self.num_hosts]);
            for buf in &received {
                for (k, v) in iter_decoded::<(NodeId, T)>(buf) {
                    self.mirror_store(k, v);
                }
            }
            return;
        }

        // GAR: one-way push of master values to mirror hosts. The temporal
        // invariant (partitions don't change) lets us send only values
        // updated by the last reduce_sync — except right after pinning,
        // when mirrors hold no values yet.
        let all = self.broadcast_all;
        self.broadcast_all = false;
        let outgoing: Vec<Vec<u8>> = (0..self.num_hosts)
            .map(|peer| {
                if peer == self.host {
                    return Vec::new();
                }
                let mut buf = Vec::new();
                let updated = match &self.canonical {
                    Canonical::Dense { updated, .. } => updated,
                    Canonical::Sharded { .. } => unreachable!("GAR is dense"),
                };
                for &g in self.dg.mirrors_on_peer(peer) {
                    let off = self.key_own.master_offset(g);
                    if all || updated.get(off) {
                        (g, self.canonical_get(g)).write(&mut buf);
                    }
                }
                buf
            })
            .collect();
        let received = ctx.exchange(outgoing);
        for buf in &received {
            for (k, v) in iter_decoded::<(NodeId, T)>(buf) {
                self.mirror_store(k, v);
            }
        }
    }

    fn pin_mirrors(&mut self, ctx: &HostCtx) {
        self.pinned = true;
        if self.variant.partition_aware() {
            // Materialize the whole mirror table with identity
            // placeholders (ad-hoc spilled requests are superseded)…
            self.mirror_vals.fill(self.op.identity());
            self.mirror_has.fill(true);
            self.cache_keys.clear();
            self.cache_vals.clear();
        }
        // …then pull in the real values: a full broadcast under GAR, a
        // request-fetch otherwise.
        self.broadcast_all = true;
        self.broadcast_sync(ctx);
    }

    fn unpin_mirrors(&mut self) {
        if !self.variant.partition_aware() {
            return; // resident cache is permanent without GAR
        }
        self.pinned = false;
        self.mirror_has.fill(false);
        self.cache_keys.clear();
        self.cache_vals.clear();
    }

    fn reset_updated(&mut self) {
        self.updated.store(false, Ordering::Relaxed);
        if let Canonical::Dense { updated, .. } = &mut self.canonical {
            updated.clear();
        }
        self.changed_remote.clear();
        // A fresh window begins: the per-key delta is complete from here
        // until the next untracked mutation.
        self.delta_tracked = true;
    }

    fn reset_values(&mut self, _ctx: &HostCtx) {
        let id = self.op.identity();
        match &mut self.canonical {
            Canonical::Dense { vals, updated } => {
                vals.fill(id);
                updated.clear();
            }
            Canonical::Sharded { shards } => {
                for s in shards.iter_mut() {
                    s.get_mut().clear();
                }
            }
        }
        self.clear_partials();
        for m in self.shared.iter_mut() {
            m.get_mut().clear();
        }
        self.updated.store(false, Ordering::Relaxed);
        self.changed_remote.clear();
        // A wholesale reinitialization changes values without per-key
        // bookkeeping: invalidate the window.
        self.delta_tracked = false;
        if self.pinned {
            // Mirror values are now stale everywhere; the next broadcast
            // must resend everything.
            self.mirror_vals.fill(id);
            for v in self.cache_vals.iter_mut() {
                *v = id;
            }
            self.broadcast_all = true;
        }
    }

    fn changed_keys(&self) -> ChangedKeys<'_> {
        match &self.canonical {
            Canonical::Dense { updated, .. } if self.delta_tracked => ChangedKeys::Tracked {
                masters: updated,
                remote: &self.changed_remote,
            },
            _ => ChangedKeys::Untracked,
        }
    }

    fn is_updated(&self, ctx: &HostCtx) -> bool {
        ctx.all_reduce_or(self.updated.load(Ordering::Relaxed))
    }
}

impl<T: PropValue, Op: ReduceOp<T>> std::fmt::Debug for Npm<'_, T, Op> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Npm")
            .field("host", &self.host)
            .field("variant", &self.variant)
            .field("cached", &self.cache_keys.len())
            .field("pinned", &self.pinned)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Min, Sum};
    use kimbap_comm::Cluster;
    use kimbap_dist::{partition, Policy};
    use kimbap_graph::gen;

    fn with_cluster<R: Send>(
        hosts: usize,
        threads: usize,
        policy: Policy,
        f: impl Fn(&HostCtx, &DistGraph) -> R + Sync,
    ) -> Vec<R> {
        let g = gen::grid_road(6, 6, 3);
        let parts = partition(&g, policy, hosts);
        Cluster::with_threads(hosts, threads).run(|ctx| f(ctx, &parts[ctx.host()]))
    }

    #[test]
    fn set_and_read_masters() {
        let out = with_cluster(3, 1, Policy::EdgeCutBlocked, |ctx, dg| {
            let mut npm: Npm<u64, Min> = Npm::new(dg, ctx, Min);
            npm.init_masters(&|g| g as u64 * 2);
            dg.master_nodes()
                .all(|m| npm.read(dg.local_to_global(m)) == dg.local_to_global(m) as u64 * 2)
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn reduce_sync_applies_min_across_hosts() {
        let out = with_cluster(4, 2, Policy::EdgeCutBlocked, |ctx, dg| {
            let mut npm: Npm<u64, Min> = Npm::new(dg, ctx, Min);
            npm.init_masters(&|g| g as u64 + 100);
            // Every host reduces (host id) into node 5.
            npm.reduce(0, 5, ctx.host() as u64 + 10);
            npm.reduce_sync(ctx);
            npm.request(5);
            npm.request_sync(ctx);
            npm.read(5)
        });
        assert!(out.iter().all(|&v| v == 10));
    }

    #[test]
    fn reduce_keeps_smaller_canonical() {
        let out = with_cluster(2, 1, Policy::EdgeCutBlocked, |ctx, dg| {
            let mut npm: Npm<u64, Min> = Npm::new(dg, ctx, Min);
            npm.init_masters(&|_| 1); // canonical smaller than any reduce
            npm.reduce(0, 3, 50);
            npm.reduce_sync(ctx);
            npm.request(3);
            npm.request_sync(ctx);
            npm.read(3)
        });
        assert!(out.iter().all(|&v| v == 1));
    }

    #[test]
    fn is_updated_tracks_changes() {
        let out = with_cluster(2, 1, Policy::EdgeCutBlocked, |ctx, dg| {
            let mut npm: Npm<u64, Min> = Npm::new(dg, ctx, Min);
            npm.init_masters(&|_| 100);
            npm.reset_updated();
            npm.reduce(0, 0, 5);
            npm.reduce_sync(ctx);
            let first = npm.is_updated(ctx);
            npm.reset_updated();
            // Reducing a larger value changes nothing.
            npm.reduce(0, 0, 7);
            npm.reduce_sync(ctx);
            let second = npm.is_updated(ctx);
            (first, second)
        });
        assert!(out.iter().all(|&(a, b)| a && !b));
    }

    #[test]
    #[should_panic(expected = "host thread panicked")]
    fn unrequested_remote_read_panics() {
        // Node 0 is owned by host 0; host 1 reads it without requesting.
        let g = gen::grid_road(4, 4, 0);
        let parts = partition(&g, Policy::EdgeCutBlocked, 2);
        let got: Vec<u64> = Cluster::new(2).run(|ctx| {
            let npm: Npm<u64, Min> = Npm::new(&parts[ctx.host()], ctx, Min);
            if ctx.host() == 1 {
                npm.read(0)
            } else {
                0
            }
        });
        drop(got);
    }

    #[test]
    fn pinned_mirrors_follow_broadcast() {
        for variant in [Variant::SgrOnly, Variant::SgrCf, Variant::SgrCfGar] {
            let out = with_cluster(3, 2, Policy::EdgeCutBlocked, move |ctx, dg| {
                let mut npm: Npm<u64, Min> =
                    Npm::with_variant(dg, ctx, Min, variant);
                npm.init_masters(&|g| g as u64 + 1000);
                npm.pin_mirrors(ctx);
                // All mirror reads now resolve to the owner's canonical.
                let ok_initial = dg
                    .mirror_globals()
                    .iter()
                    .all(|&m| npm.read(m) == m as u64 + 1000);
                // Owners update node values; broadcast refreshes mirrors.
                npm.reset_updated();
                npm.reduce(0, 7, 3); // min: 3 < 1007
                npm.reduce_sync(ctx);
                npm.broadcast_sync(ctx);
                let ok_after = dg
                    .mirror_globals()
                    .iter()
                    .all(|&m| npm.read(m) == if m == 7 { 3 } else { m as u64 + 1000 });
                npm.unpin_mirrors();
                ok_initial && ok_after
            });
            assert!(out.iter().all(|&b| b), "variant {variant:?} failed");
        }
    }

    #[test]
    fn variants_agree_on_results() {
        // The same reduction workload must produce identical values on all
        // three backends.
        let reference = run_workload(Variant::SgrCfGar);
        assert_eq!(run_workload(Variant::SgrOnly), reference);
        assert_eq!(run_workload(Variant::SgrCf), reference);
    }

    fn run_workload(variant: Variant) -> Vec<u64> {
        let g = gen::rmat(6, 4, 9);
        let n = g.num_nodes();
        let parts = partition(&g, Policy::EdgeCutBlocked, 3);
        let mut out = vec![0u64; n];
        let per_host = Cluster::with_threads(3, 2).run(|ctx| {
            let dg = &parts[ctx.host()];
            let mut npm: Npm<u64, Min> = Npm::with_variant(dg, ctx, Min, variant);
            npm.init_masters(&|g| g as u64 + 500);
            // Deterministic scatter of reduces from every host.
            ctx.par_for(0..n, |tid, range| {
                for i in range {
                    npm.reduce(tid, i as NodeId, ((i * 7 + ctx.host() * 13) % 600) as u64);
                }
            });
            npm.reduce_sync(ctx);
            // Collect this host's canonical values.
            (0..npm.key_own.num_masters(ctx.host()))
                .map(|i| {
                    let g = npm.key_own.master_at(ctx.host(), i);
                    (g, npm.canonical_get(g))
                })
                .collect::<Vec<_>>()
        });
        for host_vals in per_host {
            for (g, v) in host_vals {
                out[g as usize] = v;
            }
        }
        out
    }

    #[test]
    fn compact_layouts_match_native_and_shrink_tables() {
        use crate::table::MapLayout;
        // Same workload as the variant-parity test, but swapping the dense
        // table layout: results must be identical, bytes must shrink.
        let g = gen::rmat(6, 4, 9);
        let n = g.num_nodes();
        let parts = partition(&g, Policy::EdgeCutBlocked, 3);
        let run = |layout: MapLayout| {
            let parts = &parts;
            let per_host = Cluster::with_threads(3, 2).run(|ctx| {
                let dg = &parts[ctx.host()];
                let mut npm: Npm<u64, Min> =
                    Npm::with_layout(dg, ctx, Min, Variant::SgrCfGar, layout);
                assert_eq!(npm.layout(), layout);
                npm.init_masters(&|g| g as u64);
                npm.pin_mirrors(ctx);
                ctx.par_for(0..n, |tid, range| {
                    for i in range {
                        npm.reduce(tid, i as NodeId, ((i * 7 + ctx.host() * 13) % 600) as u64);
                    }
                });
                npm.reduce_sync(ctx);
                npm.broadcast_sync(ctx);
                // Snapshot/restore must round-trip through the packed
                // representation (the checkpoint path).
                let snap = npm.snapshot();
                npm.restore(&snap);
                npm.pin_mirrors(ctx);
                let mirrors: Vec<u64> =
                    dg.mirror_globals().iter().map(|&m| npm.read(m)).collect();
                let masters: Vec<(NodeId, u64)> = (0..npm.key_own.num_masters(ctx.host()))
                    .map(|i| {
                        let g = npm.key_own.master_at(ctx.host(), i);
                        (g, npm.canonical_get(g))
                    })
                    .collect();
                (masters, mirrors, npm.table_bytes())
            });
            per_host
        };
        let native = run(MapLayout::Native);
        for layout in [MapLayout::U32, MapLayout::Bits(16)] {
            let packed = run(layout);
            for (h, (nat, pck)) in native.iter().zip(&packed).enumerate() {
                assert_eq!(nat.0, pck.0, "host {h} masters diverged under {layout}");
                assert_eq!(nat.1, pck.1, "host {h} mirrors diverged under {layout}");
                // Bits(16) rounds up to whole u64 words, so small tables
                // land just under the ideal 4x.
                let shrink = if layout == MapLayout::U32 { 2 } else { 3 };
                assert!(
                    pck.2 * shrink <= nat.2,
                    "host {h}: {layout} tables ({}B) not {shrink}x under native ({}B)",
                    pck.2,
                    nat.2
                );
            }
        }
    }

    #[test]
    fn sum_map_accumulates() {
        let out = with_cluster(2, 2, Policy::EdgeCutBlocked, |ctx, dg| {
            let mut npm: Npm<u64, Sum> = Npm::new(dg, ctx, Sum);
            // 4 threads-worth of adds onto key 2 from both hosts.
            ctx.par_for(0..100, |tid, range| {
                for _ in range {
                    npm.reduce(tid, 2, 1);
                }
            });
            npm.reduce_sync(ctx);
            npm.request(2);
            npm.request_sync(ctx);
            npm.read(2)
        });
        assert!(out.iter().all(|&v| v == 200));
    }

    #[test]
    fn read_stats_classify_reads() {
        let out = with_cluster(2, 1, Policy::EdgeCutBlocked, |ctx, dg| {
            let mut npm: Npm<u64, Min> = Npm::new(dg, ctx, Min);
            npm.enable_read_stats();
            npm.init_masters(&|g| g as u64);
            let my_master = dg.local_to_global(0);
            npm.read(my_master);
            npm.read(my_master);
            // One remote read.
            let remote = if ctx.host() == 0 { 20 } else { 0 };
            npm.request(remote);
            npm.request_sync(ctx);
            npm.read(remote);
            npm.read_stats()
        });
        for s in out {
            assert_eq!(s.master_reads, 2);
            assert_eq!(s.remote_reads, 1);
            assert_eq!(s.requested_keys, 1);
        }
    }

    #[test]
    fn request_dedup_counts_once() {
        let out = with_cluster(2, 2, Policy::EdgeCutBlocked, |ctx, dg| {
            let npm_cell = parking_lot::Mutex::new(Npm::<u64, Min>::new(dg, ctx, Min));
            {
                let npm = npm_cell.lock();
                let remote = if ctx.host() == 0 { 30u32 } else { 0 };
                for _ in 0..1000 {
                    npm.request(remote);
                }
            }
            let mut npm = npm_cell.into_inner();
            npm.request_sync(ctx);
            npm.read_stats().requested_keys
        });
        assert!(out.iter().all(|&c| c == 1));
    }

    #[test]
    fn changed_keys_tracks_round_delta() {
        let out = with_cluster(2, 2, Policy::EdgeCutBlocked, |ctx, dg| {
            let mut npm: Npm<u64, Min> = Npm::new(dg, ctx, Min);
            npm.init_masters(&|g| g as u64 + 100);
            npm.pin_mirrors(ctx);
            npm.reset_updated();
            // Quiet round: nothing changes anywhere.
            npm.reduce_sync(ctx);
            npm.broadcast_sync(ctx);
            let quiet = match npm.changed_keys() {
                ChangedKeys::Tracked { masters, remote } => {
                    masters.none_set() && remote.is_empty()
                }
                ChangedKeys::Untracked => false,
            };
            npm.reset_updated();
            // Node 3 (owned by host 0) improves under Min.
            npm.reduce(0, 3, 1);
            npm.reduce_sync(ctx);
            npm.broadcast_sync(ctx);
            let delta_ok = match npm.changed_keys() {
                ChangedKeys::Tracked { masters, remote } => {
                    if npm.key_own.owner(3) == ctx.host() {
                        masters.get(npm.key_own.master_offset(3))
                            && masters.count_set() == 1
                            && remote.is_empty()
                    } else {
                        // The non-owner sees the change exactly when node 3
                        // is mirrored here.
                        let expect: Vec<NodeId> =
                            if dg.mirror_slot(3).is_some() { vec![3] } else { vec![] };
                        masters.none_set() && remote == expect.as_slice()
                    }
                }
                ChangedKeys::Untracked => false,
            };
            quiet && delta_ok
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn changed_keys_invalidated_by_untracked_mutations() {
        let out = with_cluster(2, 1, Policy::EdgeCutBlocked, |ctx, dg| {
            let mut npm: Npm<u64, Min> = Npm::new(dg, ctx, Min);
            npm.init_masters(&|g| g as u64);
            npm.reset_updated();
            // Request materialization mutates readable values outside the
            // delta bookkeeping.
            let remote = if ctx.host() == 0 { 20u32 } else { 0 };
            npm.request(remote);
            npm.request_sync(ctx);
            let after_request = matches!(npm.changed_keys(), ChangedKeys::Untracked);
            npm.reset_updated();
            let after_reset = matches!(npm.changed_keys(), ChangedKeys::Tracked { .. });
            npm.reset_values(ctx);
            let after_reset_values = matches!(npm.changed_keys(), ChangedKeys::Untracked);
            after_request && after_reset && after_reset_values
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn non_gar_variants_report_untracked() {
        for variant in [Variant::SgrOnly, Variant::SgrCf] {
            let out = with_cluster(2, 1, Policy::EdgeCutBlocked, move |ctx, dg| {
                let mut npm: Npm<u64, Min> = Npm::with_variant(dg, ctx, Min, variant);
                npm.init_masters(&|g| g as u64);
                npm.reset_updated();
                matches!(npm.changed_keys(), ChangedKeys::Untracked)
            });
            assert!(out.iter().all(|&b| b), "variant {variant:?}");
        }
    }

    #[test]
    fn snapshot_restore_rewinds_canonical_state() {
        for variant in [Variant::SgrCfGar, Variant::SgrCf, Variant::SgrOnly] {
            let out = with_cluster(3, 2, Policy::EdgeCutBlocked, move |ctx, dg| {
                let mut npm: Npm<u64, Min> = Npm::with_variant(dg, ctx, Min, variant);
                npm.init_masters(&|g| g as u64 + 50);
                let snap = npm.snapshot();
                // Diverge: reductions, requests, and a pin all mutate state.
                npm.reduce(0, 4, 1);
                npm.reduce_sync(ctx);
                npm.pin_mirrors(ctx);
                npm.restore(&snap);
                npm.pin_mirrors(ctx); // recovery path: re-materialize mirrors
                let ok_values = dg
                    .local_nodes()
                    .map(|l| dg.local_to_global(l))
                    .all(|g| npm.read(g) == g as u64 + 50);
                // The restored map must behave identically going forward.
                npm.reset_updated();
                npm.reduce(0, 4, 1);
                npm.reduce_sync(ctx);
                npm.request(4);
                npm.request_sync(ctx);
                ok_values && npm.read(4) == 1
            });
            assert!(out.iter().all(|&b| b), "variant {variant:?} failed");
        }
    }

    #[test]
    fn cache_dropped_after_reduce_sync() {
        let g = gen::grid_road(4, 4, 0);
        let parts = partition(&g, Policy::EdgeCutBlocked, 2);
        let panicked = Cluster::new(2).run(|ctx| {
            let dg = &parts[ctx.host()];
            let mut npm: Npm<u64, Min> = Npm::new(dg, ctx, Min);
            npm.init_masters(&|g| g as u64);
            let remote = if ctx.host() == 0 { 15u32 } else { 0 };
            npm.request(remote);
            npm.request_sync(ctx);
            let _ = npm.read(remote);
            npm.reduce_sync(ctx);
            // Cache must be gone now.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| npm.read(remote))).is_err()
        });
        // Node 15 is remote to host 0 and node 0 is remote to host 1, so
        // both post-sync reads must fail.
        assert!(panicked[0]);
        assert!(panicked[1]);
    }
}
