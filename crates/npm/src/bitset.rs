//! Concurrent bitset used to de-duplicate property requests.
//!
//! During request-compute, every thread that needs a remote property sets
//! the node's bit (§4.1: "we use a concurrent bitset and set the *i*th bit
//! if node *i* is requested, which avoids duplicate requests"). Setting an
//! already-set bit is a cheap idempotent atomic OR, so a hub node requested
//! by thousands of edges costs one entry in the request message.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-capacity bitset with lock-free concurrent `set`.
///
/// # Example
///
/// ```
/// use kimbap_npm::ConcurrentBitset;
///
/// let bits = ConcurrentBitset::new(100);
/// bits.set(7);
/// bits.set(7); // idempotent
/// bits.set(64);
/// assert!(bits.get(7));
/// assert_eq!(bits.iter_set().collect::<Vec<_>>(), vec![7, 64]);
/// ```
#[derive(Debug)]
pub struct ConcurrentBitset {
    words: Vec<AtomicU64>,
    len: usize,
}

impl ConcurrentBitset {
    /// Creates a bitset holding `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        ConcurrentBitset {
            words: (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            len,
        }
    }

    /// Capacity in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the bitset has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`. Safe to call concurrently from any thread.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&self, i: usize) {
        assert!(i < self.len, "bit {i} out of range");
        self.words[i / 64].fetch_or(1 << (i % 64), Ordering::Relaxed);
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range");
        self.words[i / 64].load(Ordering::Relaxed) & (1 << (i % 64)) != 0
    }

    /// Clears all bits. Requires exclusive access (called between BSP
    /// phases, never concurrently with `set`).
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w.get_mut() = 0;
        }
    }

    /// Returns `true` if no bit is set.
    pub fn none_set(&self) -> bool {
        self.words.iter().all(|w| w.load(Ordering::Relaxed) == 0)
    }

    /// Number of 64-bit words backing the set — the unit of
    /// [`ConcurrentBitset::iter_set_words`] chunking.
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Iterates the indices of set bits in ascending order.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.iter_set_words(0..self.words.len())
    }

    /// Iterates the indices of set bits within the word range `words`
    /// (bits `64 * words.start .. 64 * words.end`), in ascending order.
    /// Disjoint word ranges cover disjoint bits, so threads can scan
    /// chunks of the set in parallel.
    ///
    /// # Panics
    ///
    /// Panics if `words.end > num_words()`.
    pub fn iter_set_words(
        &self,
        words: std::ops::Range<usize>,
    ) -> impl Iterator<Item = usize> + '_ {
        let lo = words.start;
        self.words[words].iter().enumerate().flat_map(move |(wi, w)| {
            let mut bits = w.load(Ordering::Relaxed);
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some((lo + wi) * 64 + b)
                }
            })
        })
    }

    /// Number of set bits.
    pub fn count_set(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let b = ConcurrentBitset::new(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!b.get(i));
            b.set(i);
            assert!(b.get(i));
        }
        assert_eq!(b.count_set(), 8);
    }

    #[test]
    fn iter_set_sorted() {
        let b = ConcurrentBitset::new(200);
        for i in [199, 3, 64, 70, 0] {
            b.set(i);
        }
        assert_eq!(b.iter_set().collect::<Vec<_>>(), vec![0, 3, 64, 70, 199]);
    }

    #[test]
    fn clear_resets() {
        let mut b = ConcurrentBitset::new(65);
        b.set(64);
        assert!(!b.none_set());
        b.clear();
        assert!(b.none_set());
        assert_eq!(b.count_set(), 0);
    }

    #[test]
    fn concurrent_sets_all_land() {
        let b = ConcurrentBitset::new(10_000);
        std::thread::scope(|s| {
            for t in 0..8 {
                let b = &b;
                s.spawn(move || {
                    for i in (t..10_000).step_by(8) {
                        b.set(i);
                    }
                });
            }
        });
        assert_eq!(b.count_set(), 10_000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        ConcurrentBitset::new(10).set(10);
    }

    #[test]
    fn zero_capacity() {
        let b = ConcurrentBitset::new(0);
        assert!(b.is_empty());
        assert!(b.none_set());
        assert_eq!(b.iter_set().count(), 0);
    }
}
