//! Compact backing storage for dense master/mirror value tables.
//!
//! The paper's node-property map stores every master property in a dense
//! `Vec<T>` (and mirrors likewise). For label-typed maps that is 8 bytes
//! per node even when the compiler can certify the value domain fits in
//! 32 bits (connected-components labels are node ids) or in a couple of
//! bits (MIS states are `{0, 1, 2}`). [`ValueTable`] keeps the dense
//! addressing but lets the map choose a packed representation per
//! [`MapLayout`], halving (or better) master+mirror table bytes where the
//! domain allows.
//!
//! # The sentinel contract
//!
//! Both compact layouts reserve their all-ones pattern as a sentinel that
//! round-trips `u64::MAX` — the identity of `Min` reductions. A layout is
//! therefore valid for a map when every *other* value the map can hold is
//! strictly below the sentinel (`< u32::MAX` for [`MapLayout::U32`],
//! `< 2^w − 1` for [`MapLayout::Bits`]). The compiler's value-domain
//! certification (`kimbap-compiler`) establishes this bound statically;
//! the table still asserts it on every store, so a mis-certified program
//! panics instead of silently truncating.

use crate::value::PropValue;
use std::sync::atomic::{AtomicU64, Ordering};

/// Property types that round-trip through a `u64` word — the gate on
/// compact layouts. Implemented for the integer property types the
/// compiled-program engine uses; maps over other types (tuples, floats)
/// always use the native layout.
pub trait WordValue: PropValue {
    /// The value as a word.
    fn to_word(self) -> u64;
    /// Inverse of [`WordValue::to_word`].
    fn from_word(w: u64) -> Self;
}

impl WordValue for u64 {
    fn to_word(self) -> u64 {
        self
    }

    fn from_word(w: u64) -> Self {
        w
    }
}

impl WordValue for u32 {
    fn to_word(self) -> u64 {
        self as u64
    }

    fn from_word(w: u64) -> Self {
        debug_assert!(w == u64::MAX || w <= u32::MAX as u64);
        w as u32
    }
}

/// How a dense value table is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapLayout {
    /// One `T` per entry (the paper's layout; always valid).
    #[default]
    Native,
    /// One `u32` per entry; `u64::MAX ↔ u32::MAX` sentinel. Valid when
    /// every non-identity value is `< u32::MAX` — e.g. node-id labels.
    U32,
    /// `width` bits per entry packed into `u64` words; the all-ones field
    /// is the `u64::MAX` sentinel. `width` must divide 64 (1, 2, 4, 8,
    /// 16, 32) so no field straddles a word. Valid when every
    /// non-identity value is `< 2^width − 1` — e.g. MIS's 3-state map at
    /// `width = 2`.
    Bits(u32),
}

impl MapLayout {
    /// The tightest layout for a map whose non-identity values are
    /// certified `≤ bound` (`None` = uncertified → native). `u64::MAX`
    /// (the `Min` identity) is representable under every layout via the
    /// sentinel, so it is deliberately outside `bound`.
    pub fn for_bound(bound: Option<u64>) -> MapLayout {
        let Some(bound) = bound else {
            return MapLayout::Native;
        };
        for width in [1u32, 2, 4, 8, 16] {
            if bound < (1u64 << width) - 1 {
                return MapLayout::Bits(width);
            }
        }
        if bound < u32::MAX as u64 {
            MapLayout::U32
        } else {
            MapLayout::Native
        }
    }

    /// Bits per stored entry (native counts `size_of::<u64>()`; callers
    /// with a differently sized `T` should use [`ValueTable::heap_bytes`]).
    pub fn bits_per_entry(self) -> u32 {
        match self {
            MapLayout::Native => 64,
            MapLayout::U32 => 32,
            MapLayout::Bits(w) => w,
        }
    }
}

impl std::fmt::Display for MapLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapLayout::Native => f.write_str("native"),
            MapLayout::U32 => f.write_str("u32"),
            MapLayout::Bits(w) => write!(f, "bits{w}"),
        }
    }
}

fn pack_u32(w: u64) -> u32 {
    if w == u64::MAX {
        u32::MAX
    } else {
        assert!(
            w < u32::MAX as u64,
            "value {w} outside the certified u32 layout domain"
        );
        w as u32
    }
}

fn unpack_u32(p: u32) -> u64 {
    if p == u32::MAX {
        u64::MAX
    } else {
        p as u64
    }
}

fn pack_bits(w: u64, mask: u64) -> u64 {
    if w == u64::MAX {
        mask
    } else {
        assert!(w < mask, "value {w} outside the certified {mask:#x}-mask bit layout domain");
        w
    }
}

fn unpack_bits(field: u64, mask: u64) -> u64 {
    if field == mask {
        u64::MAX
    } else {
        field
    }
}

/// A dense, index-addressed value table with a choice of packed backing
/// stores (see the module docs). The API mirrors the `Vec<T>` operations
/// the node-property map uses: indexed get/set, fill, and whole-table
/// import/export for checkpoints.
pub struct ValueTable<T: PropValue> {
    repr: Repr<T>,
}

enum Repr<T> {
    Native(Vec<T>),
    U32 {
        words: Vec<u32>,
        to: fn(T) -> u64,
        from: fn(u64) -> T,
    },
    Bits {
        /// Atomic so the gather-reduce can CAS sub-word fields whose
        /// word is shared across the threads' disjoint index ranges.
        words: Vec<AtomicU64>,
        width: u32,
        len: usize,
        to: fn(T) -> u64,
        from: fn(u64) -> T,
    },
}

fn to_word_of<T: WordValue>(v: T) -> u64 {
    v.to_word()
}

fn from_word_of<T: WordValue>(w: u64) -> T {
    T::from_word(w)
}

impl<T: PropValue> ValueTable<T> {
    /// A native (`Vec<T>`) table of `len` copies of `init` — valid for
    /// every property type.
    pub fn native(len: usize, init: T) -> Self {
        ValueTable {
            repr: Repr::Native(vec![init; len]),
        }
    }

    /// A table in the given layout. Compact layouts require a word-typed
    /// property; `init` (normally the reduction identity) must be
    /// representable, which every layout guarantees for `u64::MAX` and
    /// for values within the certified bound.
    pub fn with_layout(layout: MapLayout, len: usize, init: T) -> Self
    where
        T: WordValue,
    {
        let repr = match layout {
            MapLayout::Native => Repr::Native(vec![init; len]),
            MapLayout::U32 => Repr::U32 {
                words: vec![pack_u32(init.to_word()); len],
                to: to_word_of::<T>,
                from: from_word_of::<T>,
            },
            MapLayout::Bits(width) => {
                assert!(
                    width > 0 && width < 64 && 64 % width == 0,
                    "bit width {width} must divide 64"
                );
                let mask = (1u64 << width) - 1;
                let field = pack_bits(init.to_word(), mask);
                let mut word = 0u64;
                for i in 0..(64 / width) {
                    word |= field << (i * width);
                }
                let nwords = (len as u64 * width as u64).div_ceil(64) as usize;
                Repr::Bits {
                    words: (0..nwords).map(|_| AtomicU64::new(word)).collect(),
                    width,
                    len,
                    to: to_word_of::<T>,
                    from: from_word_of::<T>,
                }
            }
        };
        ValueTable { repr }
    }

    /// The layout this table stores under.
    pub fn layout(&self) -> MapLayout {
        match &self.repr {
            Repr::Native(_) => MapLayout::Native,
            Repr::U32 { .. } => MapLayout::U32,
            Repr::Bits { width, .. } => MapLayout::Bits(*width),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Native(v) => v.len(),
            Repr::U32 { words, .. } => words.len(),
            Repr::Bits { len, .. } => *len,
        }
    }

    /// `true` if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes behind the table (capacity-based, like the graph's size
    /// accounting).
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Native(v) => v.capacity() * std::mem::size_of::<T>(),
            Repr::U32 { words, .. } => words.capacity() * 4,
            Repr::Bits { words, .. } => words.capacity() * 8,
        }
    }

    /// The value at `i`.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        match &self.repr {
            Repr::Native(v) => v[i],
            Repr::U32 { words, from, .. } => from(unpack_u32(words[i])),
            Repr::Bits {
                words,
                width,
                len,
                from,
                ..
            } => {
                assert!(i < *len);
                let bit = i as u64 * *width as u64;
                let mask = (1u64 << *width) - 1;
                let word = words[(bit / 64) as usize].load(Ordering::Relaxed);
                from(unpack_bits((word >> (bit % 64)) & mask, mask))
            }
        }
    }

    /// Stores `v` at `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: T) {
        match &mut self.repr {
            Repr::Native(vals) => vals[i] = v,
            Repr::U32 { words, to, .. } => words[i] = pack_u32(to(v)),
            Repr::Bits {
                words,
                width,
                len,
                to,
                ..
            } => {
                assert!(i < *len);
                let bit = i as u64 * *width as u64;
                let mask = (1u64 << *width) - 1;
                let field = pack_bits(to(v), mask);
                let word = words[(bit / 64) as usize].get_mut();
                let shift = bit % 64;
                *word = (*word & !(mask << shift)) | (field << shift);
            }
        }
    }

    /// Sets every entry to `v`.
    pub fn fill(&mut self, v: T) {
        match &mut self.repr {
            Repr::Native(vals) => vals.fill(v),
            Repr::U32 { words, to, .. } => words.fill(pack_u32(to(v))),
            Repr::Bits {
                words, width, to, ..
            } => {
                let mask = (1u64 << *width) - 1;
                let field = pack_bits(to(v), mask);
                let mut word = 0u64;
                for i in 0..(64 / *width) {
                    word |= field << (i * *width);
                }
                for w in words.iter_mut() {
                    *w.get_mut() = word;
                }
            }
        }
    }

    /// Exports the table as the `Vec<T>` checkpoints and the wire use.
    pub fn to_vec(&self) -> Vec<T> {
        match &self.repr {
            Repr::Native(v) => v.clone(),
            _ => (0..self.len()).map(|i| self.get(i)).collect(),
        }
    }

    /// Imports `src` (e.g. a checkpoint snapshot) over the whole table.
    ///
    /// # Panics
    ///
    /// Panics when lengths differ or a value violates the layout's
    /// certified domain.
    pub fn copy_from_slice(&mut self, src: &[T]) {
        assert_eq!(self.len(), src.len(), "table/source length mismatch");
        match &mut self.repr {
            Repr::Native(vals) => vals.copy_from_slice(src),
            _ => {
                for (i, &v) in src.iter().enumerate() {
                    self.set(i, v);
                }
            }
        }
    }

    /// A view for the gather-reduce's disjoint-index concurrent writes.
    pub fn shared(&mut self) -> SharedTable<'_, T> {
        let repr = match &mut self.repr {
            Repr::Native(v) => SharedRepr::Native {
                ptr: v.as_mut_ptr(),
                len: v.len(),
            },
            Repr::U32 { words, to, from } => SharedRepr::U32 {
                ptr: words.as_mut_ptr(),
                len: words.len(),
                to: *to,
                from: *from,
            },
            Repr::Bits {
                words,
                width,
                len,
                to,
                from,
            } => SharedRepr::Bits {
                words,
                width: *width,
                len: *len,
                to: *to,
                from: *from,
            },
        };
        SharedTable {
            repr,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: PropValue> std::fmt::Debug for ValueTable<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ValueTable")
            .field("layout", &self.layout())
            .field("len", &self.len())
            .finish()
    }
}

/// A [`ValueTable`] view writable from multiple threads at *disjoint*
/// indices — the compact-layout generalization of the map's shared-slice
/// gather. Packed layouts may share a backing word between two threads'
/// index ranges: `U32` words are still written whole (4-byte stores don't
/// tear neighboring entries), and `Bits` fields go through a CAS so
/// concurrent sub-word updates merge instead of clobbering.
pub struct SharedTable<'a, T: PropValue> {
    repr: SharedRepr<'a, T>,
    _marker: std::marker::PhantomData<&'a mut ()>,
}

enum SharedRepr<'a, T> {
    Native {
        ptr: *mut T,
        len: usize,
    },
    U32 {
        ptr: *mut u32,
        len: usize,
        to: fn(T) -> u64,
        from: fn(u64) -> T,
    },
    Bits {
        words: &'a [AtomicU64],
        width: u32,
        len: usize,
        to: fn(T) -> u64,
        from: fn(u64) -> T,
    },
}

// SAFETY: callers guarantee disjoint index sets per thread (the key-range
// partition in reduce_sync's gather phase); word-sharing across ranges is
// handled per-variant as documented on `SharedTable`.
unsafe impl<T: Send> Sync for SharedRepr<'_, T> {}
unsafe impl<T: Send> Send for SharedRepr<'_, T> {}

impl<T: PropValue> SharedTable<'_, T> {
    /// # Safety
    ///
    /// No two threads may pass the same `i` during one parallel region.
    #[inline]
    pub unsafe fn get_at(&self, i: usize) -> T {
        match &self.repr {
            SharedRepr::Native { ptr, len } => {
                debug_assert!(i < *len);
                unsafe { *ptr.add(i) }
            }
            SharedRepr::U32 { ptr, len, from, .. } => {
                debug_assert!(i < *len);
                from(unpack_u32(unsafe { *ptr.add(i) }))
            }
            SharedRepr::Bits {
                words,
                width,
                len,
                from,
                ..
            } => {
                debug_assert!(i < *len);
                let bit = i as u64 * *width as u64;
                let mask = (1u64 << *width) - 1;
                let word = words[(bit / 64) as usize].load(Ordering::Relaxed);
                from(unpack_bits((word >> (bit % 64)) & mask, mask))
            }
        }
    }

    /// # Safety
    ///
    /// No two threads may pass the same `i` during one parallel region.
    #[inline]
    pub unsafe fn set_at(&self, i: usize, v: T) {
        match &self.repr {
            SharedRepr::Native { ptr, len } => {
                debug_assert!(i < *len);
                unsafe { *ptr.add(i) = v }
            }
            SharedRepr::U32 { ptr, len, to, .. } => {
                debug_assert!(i < *len);
                unsafe { *ptr.add(i) = pack_u32(to(v)) }
            }
            SharedRepr::Bits {
                words,
                width,
                len,
                to,
                ..
            } => {
                debug_assert!(i < *len);
                let bit = i as u64 * *width as u64;
                let mask = (1u64 << *width) - 1;
                let field = pack_bits(to(v), mask);
                let shift = bit % 64;
                // CAS merge: this entry's field is exclusive to the
                // caller, but the word may interleave other threads'
                // concurrent fields.
                words[(bit / 64) as usize]
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |w| {
                        Some((w & !(mask << shift)) | (field << shift))
                    })
                    .expect("fetch_update closure never fails");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_resolution_tightens_with_bound() {
        assert_eq!(MapLayout::for_bound(None), MapLayout::Native);
        assert_eq!(MapLayout::for_bound(Some(0)), MapLayout::Bits(1));
        assert_eq!(MapLayout::for_bound(Some(2)), MapLayout::Bits(2));
        assert_eq!(MapLayout::for_bound(Some(200)), MapLayout::Bits(8));
        assert_eq!(MapLayout::for_bound(Some(65_000)), MapLayout::Bits(16));
        assert_eq!(MapLayout::for_bound(Some(1 << 20)), MapLayout::U32);
        assert_eq!(
            MapLayout::for_bound(Some(u32::MAX as u64)),
            MapLayout::Native
        );
    }

    #[test]
    fn all_layouts_roundtrip_values_and_sentinel() {
        for layout in [
            MapLayout::Native,
            MapLayout::U32,
            MapLayout::Bits(2),
            MapLayout::Bits(16),
        ] {
            let dom = match layout {
                MapLayout::Bits(w) => (1u64 << w) - 2,
                _ => 1000,
            };
            let mut t: ValueTable<u64> = ValueTable::with_layout(layout, 100, u64::MAX);
            assert_eq!(t.len(), 100);
            assert!((0..100).all(|i| t.get(i) == u64::MAX), "{layout}");
            for i in 0..100 {
                t.set(i, (i as u64) % (dom + 1));
            }
            t.set(7, u64::MAX);
            for i in 0..100 {
                let want = if i == 7 { u64::MAX } else { (i as u64) % (dom + 1) };
                assert_eq!(t.get(i), want, "{layout} idx {i}");
            }
            let v = t.to_vec();
            let mut t2: ValueTable<u64> = ValueTable::with_layout(layout, 100, 0);
            t2.copy_from_slice(&v);
            assert!((0..100).all(|i| t2.get(i) == t.get(i)));
        }
    }

    #[test]
    fn compact_layouts_shrink_heap_bytes() {
        let native: ValueTable<u64> = ValueTable::native(1024, 0);
        let u32t: ValueTable<u64> = ValueTable::with_layout(MapLayout::U32, 1024, 0);
        let bits2: ValueTable<u64> = ValueTable::with_layout(MapLayout::Bits(2), 1024, 0);
        assert_eq!(native.heap_bytes(), 8 * 1024);
        assert_eq!(u32t.heap_bytes(), 4 * 1024); // half of native
        assert_eq!(bits2.heap_bytes(), 2 * 1024 / 8); // 1/32 of native
    }

    #[test]
    fn fill_spans_word_tails() {
        let mut t: ValueTable<u64> = ValueTable::with_layout(MapLayout::Bits(2), 33, 0);
        t.fill(2);
        assert!((0..33).all(|i| t.get(i) == 2));
        t.fill(u64::MAX);
        assert!((0..33).all(|i| t.get(i) == u64::MAX));
    }

    #[test]
    #[should_panic(expected = "outside the certified")]
    fn out_of_domain_store_panics() {
        let mut t: ValueTable<u64> = ValueTable::with_layout(MapLayout::Bits(2), 8, 0);
        t.set(0, 3); // 3 is the width-2 sentinel pattern, reserved
    }

    #[test]
    fn shared_view_bits_cas_merges_neighbors() {
        // Two "threads" interleave on fields of the same backing word.
        let mut t: ValueTable<u64> = ValueTable::with_layout(MapLayout::Bits(2), 64, 0);
        {
            let shared = t.shared();
            std::thread::scope(|s| {
                let sh = &shared;
                s.spawn(move || {
                    for i in (0..64).step_by(2) {
                        unsafe { sh.set_at(i, 1) };
                    }
                });
                s.spawn(move || {
                    for i in (1..64).step_by(2) {
                        unsafe { sh.set_at(i, 2) };
                    }
                });
            });
        }
        assert!((0..64).all(|i| t.get(i) == if i % 2 == 0 { 1 } else { 2 }));
    }

    #[test]
    fn u32_table_roundtrips_u32_values() {
        let mut t: ValueTable<u32> = ValueTable::with_layout(MapLayout::Bits(8), 10, 0);
        t.set(3, 200);
        assert_eq!(t.get(3), 200);
        assert_eq!(t.to_vec()[3], 200);
    }
}
