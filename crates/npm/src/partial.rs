//! Thread-owned partial-reduction buffers for conflict-free reductions.
//!
//! §4.1's CF optimization gives every pool thread its own partial map so
//! that `reduce()` never contends. The original implementation still paid
//! a `Mutex` acquire and a SipHash `HashMap` probe per call on a map that
//! is thread-private *by construction*. [`PartialBuf`] removes both costs:
//!
//! - keys in this host's GAR master range land in a **dense
//!   identity-initialized array** indexed by master offset, with a
//!   touched-list so draining skips untouched slots;
//! - remote keys land in an **open-addressed table** with an FxHash-style
//!   multiplicative hash and linear probing — no per-entry allocation, no
//!   SipHash.
//!
//! Draining resets entries but keeps every allocation, so a buffer's
//! capacity converges to the round's working set — the capacity
//! pre-sizing from previous-round counts falls out for free.
//!
//! [`ThreadOwned`] supplies the aliasing model: a fixed slot per pool
//! thread, handed out as `&mut` under the invariant that concurrent
//! callers use distinct thread ids (exactly the guarantee `WorkerPool`
//! provides).

use kimbap_graph::NodeId;
use std::cell::UnsafeCell;

/// Fixed-size array of per-thread slots, mutable through a shared
/// reference under a caller-enforced distinct-thread-id discipline.
pub(crate) struct ThreadOwned<V> {
    slots: Vec<UnsafeCell<V>>,
}

// SAFETY: a slot is only ever accessed by the pool thread whose id it is
// keyed by (callers uphold this; see `slot`), so sharing the container
// across threads is sound whenever the payload itself is `Send`.
unsafe impl<V: Send> Sync for ThreadOwned<V> {}

impl<V> ThreadOwned<V> {
    pub fn new(n: usize, mut make: impl FnMut() -> V) -> Self {
        ThreadOwned {
            slots: (0..n).map(|_| UnsafeCell::new(make())).collect(),
        }
    }

    /// Exclusive access to slot `tid` through a shared reference.
    ///
    /// # Safety
    ///
    /// During any parallel region, no two concurrent callers may pass the
    /// same `tid`, and the slot must not be accessed through `iter_mut`
    /// concurrently. `WorkerPool::run`/`par_for` hand each worker a unique
    /// dense thread id, which is exactly this contract.
    #[allow(clippy::mut_from_ref)] // aliasing discharged by the tid contract
    #[inline]
    pub unsafe fn slot(&self, tid: usize) -> &mut V {
        debug_assert!(tid < self.slots.len(), "thread id {tid} out of range");
        unsafe { &mut *self.slots[tid].get() }
    }

    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.slots.iter_mut().map(|c| c.get_mut())
    }
}

impl<V> std::fmt::Debug for ThreadOwned<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadOwned").field("slots", &self.slots.len()).finish()
    }
}

/// Sentinel marking a vacant open-addressing cell. `NodeId::MAX` cannot be
/// a real key: reduce keys are bounded by `Ownership::num_nodes()`, which
/// is a `usize` node count below 2^32 in every supported graph.
const EMPTY: NodeId = NodeId::MAX;

/// First remote-table allocation, in slots (power of two).
const REMOTE_MIN_CAP: usize = 64;

/// One thread's lock-free partial-reduction buffer (dense local range +
/// open-addressed remote table). All methods are plain `&mut self`; the
/// thread-ownership discipline lives in [`ThreadOwned`].
pub(crate) struct PartialBuf<T> {
    /// The reduction identity: initial value of dense slots and filler for
    /// vacant remote cells.
    identity: T,
    /// Dense partials for keys in this host's master range, indexed by
    /// master offset.
    local_vals: Vec<T>,
    /// Which dense slots hold a live partial. A separate bit (rather than
    /// comparing against identity) because a reduction may legitimately
    /// produce the identity value.
    local_hit: Vec<bool>,
    /// Master offsets with `local_hit` set, in first-touch order.
    touched: Vec<u32>,
    /// Open-addressed remote table: keys (EMPTY = vacant) and values in
    /// parallel arrays, capacity always zero or a power of two.
    rkeys: Vec<NodeId>,
    rvals: Vec<T>,
    /// Live entries in the remote table.
    rlive: usize,
}

#[inline]
fn fx_slot(key: NodeId, mask: usize) -> usize {
    // Fibonacci multiplicative hash; the high half mixes best, so fold it
    // down before masking.
    let h = (key as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    ((h >> 32) as usize) & mask
}

impl<T: Copy> PartialBuf<T> {
    /// A buffer whose dense part covers `local_len` master offsets.
    pub fn new(local_len: usize, identity: T) -> Self {
        PartialBuf {
            identity,
            local_vals: vec![identity; local_len],
            local_hit: vec![false; local_len],
            touched: Vec::new(),
            rkeys: Vec::new(),
            rvals: Vec::new(),
            rlive: 0,
        }
    }

    /// `true` if no partial has been recorded since the last drain.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty() && self.rlive == 0
    }

    /// Folds `value` into the dense slot for master offset `off`.
    #[inline]
    pub fn reduce_local(&mut self, off: u32, value: T, combine: impl Fn(T, T) -> T) {
        let o = off as usize;
        if self.local_hit[o] {
            self.local_vals[o] = combine(self.local_vals[o], value);
        } else {
            self.local_hit[o] = true;
            self.local_vals[o] = value;
            self.touched.push(off);
        }
    }

    /// Folds `value` into the open-addressed slot for remote `key`.
    #[inline]
    pub fn reduce_remote(&mut self, key: NodeId, value: T, combine: impl Fn(T, T) -> T) {
        debug_assert_ne!(key, EMPTY, "node id collides with the vacant sentinel");
        if self.rlive * 8 >= self.rkeys.len() * 7 {
            self.grow_remote();
        }
        let mask = self.rkeys.len() - 1;
        let mut i = fx_slot(key, mask);
        loop {
            let k = self.rkeys[i];
            if k == key {
                self.rvals[i] = combine(self.rvals[i], value);
                return;
            }
            if k == EMPTY {
                self.rkeys[i] = key;
                self.rvals[i] = value;
                self.rlive += 1;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /// Doubles (or first-allocates) the remote table and rehashes.
    #[cold]
    fn grow_remote(&mut self) {
        let new_cap = (self.rkeys.len() * 2).max(REMOTE_MIN_CAP);
        let old_keys = std::mem::replace(&mut self.rkeys, vec![EMPTY; new_cap]);
        let old_vals = std::mem::replace(&mut self.rvals, vec![self.identity; new_cap]);
        let mask = new_cap - 1;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k == EMPTY {
                continue;
            }
            let mut i = fx_slot(k, mask);
            while self.rkeys[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.rkeys[i] = k;
            self.rvals[i] = v;
        }
    }

    /// Drains every dense (local-range) partial as `(master_offset,
    /// value)`, resetting the dense part but keeping its allocation.
    pub fn drain_local(&mut self, mut sink: impl FnMut(u32, T)) {
        let identity = self.identity;
        for off in self.touched.drain(..) {
            let o = off as usize;
            sink(off, self.local_vals[o]);
            self.local_vals[o] = identity;
            self.local_hit[o] = false;
        }
    }

    /// Drains every remote partial as `(key, value)`, resetting the table
    /// but keeping its allocation (so next round's inserts pay no growth).
    pub fn drain_remote(&mut self, mut sink: impl FnMut(NodeId, T)) {
        if self.rlive == 0 {
            return;
        }
        let identity = self.identity;
        for (k, v) in self.rkeys.iter_mut().zip(self.rvals.iter_mut()) {
            if *k != EMPTY {
                sink(*k, *v);
                *k = EMPTY;
                *v = identity;
            }
        }
        self.rlive = 0;
    }

    /// Resets the buffer without observing its contents.
    pub fn clear(&mut self) {
        self.drain_local(|_, _| {});
        self.drain_remote(|_, _| {});
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_partials_combine_and_drain() {
        let mut b: PartialBuf<u64> = PartialBuf::new(8, u64::MAX);
        let min = |a: u64, b: u64| a.min(b);
        b.reduce_local(3, 10, min);
        b.reduce_local(3, 4, min);
        b.reduce_local(0, u64::MAX, min); // identity value is still a hit
        assert!(!b.is_empty());
        let mut out = Vec::new();
        b.drain_local(|off, v| out.push((off, v)));
        out.sort_unstable();
        assert_eq!(out, vec![(0, u64::MAX), (3, 4)]);
        assert!(b.is_empty());
        // Slots reset for the next round.
        b.reduce_local(3, 9, min);
        let mut out = Vec::new();
        b.drain_local(|off, v| out.push((off, v)));
        assert_eq!(out, vec![(3, 9)]);
    }

    #[test]
    fn remote_table_grows_and_drains() {
        let mut b: PartialBuf<u64> = PartialBuf::new(0, 0);
        let sum = |a: u64, b: u64| a + b;
        // Enough distinct keys to force several growth steps.
        for round in 0..3u64 {
            for k in 0..500u32 {
                b.reduce_remote(k * 7 + 1, round + 1, sum);
            }
        }
        let mut out = Vec::new();
        b.drain_remote(|k, v| out.push((k, v)));
        assert_eq!(out.len(), 500);
        assert!(out.iter().all(|&(_, v)| v == 1 + 2 + 3));
        assert!(b.is_empty());
        // Draining kept capacity: re-inserting the same keys needs no growth.
        let cap = b.rkeys.len();
        for k in 0..500u32 {
            b.reduce_remote(k * 7 + 1, 1, sum);
        }
        assert_eq!(b.rkeys.len(), cap);
    }

    #[test]
    fn thread_owned_slots_are_disjoint() {
        let owned: ThreadOwned<Vec<usize>> = ThreadOwned::new(4, Vec::new);
        std::thread::scope(|s| {
            for tid in 0..4 {
                let owned = &owned;
                s.spawn(move || {
                    // SAFETY: each spawned thread uses a distinct tid.
                    let v = unsafe { owned.slot(tid) };
                    for i in 0..100 {
                        v.push(tid * 1000 + i);
                    }
                });
            }
        });
        let mut owned = owned;
        for (tid, v) in owned.iter_mut().enumerate() {
            assert_eq!(v.len(), 100);
            assert!(v.iter().all(|&x| x / 1000 == tid));
        }
    }
}
