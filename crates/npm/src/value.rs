//! The bound on property value types.

use kimbap_comm::Wire;
use std::fmt::Debug;

/// Types usable as node-property values.
///
/// Properties must be cheap to copy (they flow through thread-local maps
/// and wire buffers by value), comparable (the runtime detects whether a
/// reduction changed a canonical value to drive the quiescence check), and
/// wire-encodable (they cross host boundaries in reduce/broadcast/response
/// messages).
///
/// This trait is blanket-implemented; never implement it manually.
pub trait PropValue: Copy + Send + Sync + PartialEq + Debug + Wire + 'static {}

impl<T> PropValue for T where T: Copy + Send + Sync + PartialEq + Debug + Wire + 'static {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_prop<T: PropValue>() {}

    #[test]
    fn common_types_are_prop_values() {
        assert_prop::<u32>();
        assert_prop::<u64>();
        assert_prop::<f64>();
        assert_prop::<bool>();
        assert_prop::<(u64, u32)>();
        assert_prop::<(u64, u32, u32)>();
    }
}
