//! Distributed scalar reducers.
//!
//! The paper's programs use small distributed reducers alongside the
//! node-property maps — e.g. the `BoolReducer` tracking `work_done` in
//! CC-SV (Fig. 4), or global modularity sums in Louvain. A scalar reducer
//! accumulates thread-locally during compute and combines across hosts on
//! demand.

use kimbap_comm::HostCtx;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A distributed logical-OR reducer over a boolean.
///
/// Threads call [`BoolReducer::reduce`] during compute;
/// [`BoolReducer::read`] performs an OR all-reduce across hosts (all hosts
/// must call it together, like any collective).
///
/// # Example
///
/// ```
/// use kimbap_comm::Cluster;
/// use kimbap_npm::BoolReducer;
///
/// let out = Cluster::new(3).run(|ctx| {
///     let flag = BoolReducer::new();
///     if ctx.host() == 1 {
///         flag.reduce(true);
///     }
///     flag.read(ctx)
/// });
/// assert_eq!(out, vec![true, true, true]);
/// ```
#[derive(Debug, Default)]
pub struct BoolReducer {
    local: AtomicBool,
}

impl BoolReducer {
    /// Creates a reducer holding `false`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the local value (all hosts must reset together to stay
    /// consistent).
    pub fn set(&self, v: bool) {
        self.local.store(v, Ordering::Relaxed);
    }

    /// ORs `v` into the local value. Callable concurrently.
    #[inline]
    pub fn reduce(&self, v: bool) {
        if v {
            self.local.store(true, Ordering::Relaxed);
        }
    }

    /// The local value, without communication.
    #[inline]
    pub fn local(&self) -> bool {
        self.local.load(Ordering::Relaxed)
    }

    /// OR all-reduce across hosts. Collective: every host must call it.
    pub fn read(&self, ctx: &HostCtx) -> bool {
        ctx.all_reduce_or(self.local())
    }
}

/// A distributed sum reducer over `u64`.
#[derive(Debug, Default)]
pub struct SumReducer {
    local: AtomicU64,
}

impl SumReducer {
    /// Creates a reducer holding zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the local value.
    pub fn set(&self, v: u64) {
        self.local.store(v, Ordering::Relaxed);
    }

    /// Adds `v` into the local value. Callable concurrently.
    #[inline]
    pub fn reduce(&self, v: u64) {
        self.local.fetch_add(v, Ordering::Relaxed);
    }

    /// The local value, without communication.
    #[inline]
    pub fn local(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }

    /// Sum all-reduce across hosts. Collective: every host must call it.
    pub fn read(&self, ctx: &HostCtx) -> u64 {
        ctx.all_reduce_u64(self.local(), |a, b| a.wrapping_add(b))
    }
}

/// A distributed minimum reducer over `u64`.
#[derive(Debug)]
pub struct MinReducer {
    local: AtomicU64,
}

impl Default for MinReducer {
    fn default() -> Self {
        MinReducer {
            local: AtomicU64::new(u64::MAX),
        }
    }
}

impl MinReducer {
    /// Creates a reducer holding `u64::MAX`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the local value.
    pub fn set(&self, v: u64) {
        self.local.store(v, Ordering::Relaxed);
    }

    /// Min-combines `v` into the local value. Callable concurrently.
    #[inline]
    pub fn reduce(&self, v: u64) {
        self.local.fetch_min(v, Ordering::Relaxed);
    }

    /// The local value, without communication.
    #[inline]
    pub fn local(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }

    /// Min all-reduce across hosts. Collective: every host must call it.
    pub fn read(&self, ctx: &HostCtx) -> u64 {
        ctx.all_reduce_u64(self.local(), |a, b| a.min(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kimbap_comm::Cluster;

    #[test]
    fn bool_reducer_or_across_hosts() {
        let out = Cluster::new(4).run(|ctx| {
            let r = BoolReducer::new();
            r.reduce(ctx.host() == 3);
            let first = r.read(ctx);
            r.set(false);
            let second = r.read(ctx);
            (first, second)
        });
        assert!(out.iter().all(|&(a, b)| a && !b));
    }

    #[test]
    fn sum_reducer_totals() {
        let out = Cluster::new(3).run(|ctx| {
            let r = SumReducer::new();
            ctx.par_for(0..100, |_, range| {
                for _ in range {
                    r.reduce(1);
                }
            });
            r.read(ctx)
        });
        assert_eq!(out, vec![300, 300, 300]);
    }

    #[test]
    fn min_reducer() {
        let out = Cluster::new(3).run(|ctx| {
            let r = MinReducer::new();
            r.reduce(10 + ctx.host() as u64);
            r.read(ctx)
        });
        assert_eq!(out, vec![10, 10, 10]);
    }
}
